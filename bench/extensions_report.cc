// Report on the paper's §3.2/§3.4 future-work extensions implemented in
// this library, on the mail-order stand-in dataset:
//   [1] linear optimization criterion vs the constrained criterion,
//   [2] combinatorial bellwether analysis (greedy region unions),
//   [3] multi-instance bellwether analysis (mean-embedding bags),
//   [4] classification bellwethers (query-generated class labels).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/basic_search.h"
#include "core/classification_search.h"
#include "core/combinatorial.h"
#include "core/multi_instance.h"
#include "core/training_data_gen.h"
#include "datagen/mail_order.h"
#include "storage/training_data.h"

namespace {
using namespace bellwether;         // NOLINT
using namespace bellwether::bench;  // NOLINT
}  // namespace

int main(int argc, char** argv) {
  BenchRunner runner(argc, argv, "extensions_report",
                     "§3.2/§3.4 future-work extensions, implemented");
  const double scale = FlagDouble(argc, argv, "scale", 1.0);
  datagen::MailOrderConfig config;
  config.num_items = static_cast<int32_t>(200 * scale);
  config.seed = 404;
  runner.report().SetConfig("scale", scale);
  runner.report().SetConfig("num_items",
                            static_cast<int64_t>(config.num_items));
  runner.report().SetConfig("seed", static_cast<int64_t>(config.seed));
  datagen::MailOrderDataset dataset;
  runner.TimePhase("datagen", [&] {
    dataset = datagen::GenerateMailOrder(config);
  });
  const core::BellwetherSpec spec = dataset.MakeSpec(60.0, 0.5);
  Result<core::GeneratedTrainingData> data = Status::OK();
  runner.TimePhase("training_data_gen", [&] {
    data = core::GenerateTrainingDataInMemory(spec);
  });
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  storage::TrainingDataSource& source = *data->source;

  // ---- [1] linear criterion ----
  std::printf("\n[1] linear criterion Error + w1*cost - w2*coverage\n");
  core::BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kCrossValidation;
  options.min_examples = 30;
  Result<core::BasicSearchResult> full = Status::OK();
  runner.TimePhase("search_cv", [&] {
    full = core::RunBasicBellwetherSearch(&source, options);
  });
  if (!full.ok() || !full->found()) return 1;
  Row({"w1(cost)", "w2(cover)", "Region", "RMSE", "Cost"});
  for (const auto& [w1, w2] :
       std::vector<std::pair<double, double>>{
           {0.0, 0.0}, {50.0, 0.0}, {200.0, 0.0}, {0.0, 5000.0}}) {
    auto r = core::SelectLinearCriterion(*full, &source,
                                         data->profile.region_costs,
                                         data->profile.region_coverage, w1,
                                         w2);
    if (!r.ok() || !r->found()) continue;
    Row({Fmt(w1, "%.0f"), Fmt(w2, "%.0f"),
         spec.space->RegionLabel(r->bellwether), Fmt(r->error.rmse),
         Fmt(data->profile.region_costs[r->bellwether], "%.1f")});
  }

  // ---- [2] combinatorial ----
  std::printf("\n[2] combinatorial bellwether (greedy region unions)\n");
  Row({"Budget", "Single-best", "Combination", "Regions"});
  for (double budget : {15.0, 30.0}) {
    auto single = core::SelectUnderBudget(*full, &source,
                                          data->profile.region_costs, budget);
    core::CombinatorialOptions copts;
    copts.budget = budget;
    copts.max_regions = 3;
    copts.cv_folds = 5;
    copts.min_examples = 20;
    Result<core::CombinatorialResult> combo = Status::OK();
    runner.TimePhase("combinatorial_search", [&] {
      combo = core::RunCombinatorialSearch(spec, copts);
    });
    std::string regions = "-";
    std::string combo_err = "-";
    if (combo.ok() && combo->found()) {
      combo_err = Fmt(combo->error.rmse);
      regions.clear();
      for (auto r : combo->regions) {
        if (!regions.empty()) regions += " + ";
        regions += spec.space->RegionLabel(r);
      }
    }
    Row({Fmt(budget, "%.0f"),
         single.ok() && single->found() ? Fmt(single->error.rmse) : "-",
         combo_err, regions},
        18);
  }

  // ---- [3] multi-instance ----
  std::printf("\n[3] multi-instance (bags of per-cell instances, "
              "mean-embedding model)\n");
  core::MiSearchOptions mi_opts;
  mi_opts.cv_folds = 5;
  mi_opts.min_bags = 30;
  Result<core::MiSearchResult> mi = Status::OK();
  const double mi_s = runner.TimePhase("multi_instance_search", [&] {
    mi = core::RunMultiInstanceSearch(spec, mi_opts);
  });
  if (mi.ok() && mi->found()) {
    std::printf("  bellwether %s  cv rmse %.4g  (%zu regions scored, "
                "%.1fs)\n",
                spec.space->RegionLabel(mi->bellwether).c_str(),
                mi->error.rmse, mi->scores.size(), mi_s);
    std::printf("  aggregated-feature search on the same data: %s  %.4g\n",
                spec.space->RegionLabel(full->bellwether).c_str(),
                full->error.rmse);
  }

  // ---- [4] classification ----
  std::printf("\n[4] classification bellwether (label: profit above "
              "median?)\n");
  core::ClassificationOptions copts;
  copts.labeler = core::ThresholdLabeler(core::MedianTarget(data->profile.targets));
  copts.num_classes = 2;
  copts.cv_folds = 5;
  copts.min_examples = 30;
  Result<core::ClassificationSearchResult> cls = Status::OK();
  runner.TimePhase("classification_search", [&] {
    cls = core::RunClassificationBellwetherSearch(&source, copts);
  });
  if (cls.ok() && cls->found()) {
    std::printf("  bellwether %s  misclassification %.3f  (average region "
                "%.3f, chance 0.5)\n",
                spec.space->RegionLabel(cls->bellwether).c_str(),
                cls->error.rmse, cls->AverageError());
  }
  return runner.Finish();
}
