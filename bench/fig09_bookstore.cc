// Reproduces Figure 9: bellwether analysis of the book store dataset — the
// negative case. (a) error vs budget, (b) fraction of indistinguishable
// regions (expected to stay HIGH: no unique bellwether exists in this
// data), (c) Basic/Tree/Cube prediction errors (no clear winner expected).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/baselines.h"
#include "core/basic_search.h"
#include "core/bellwether_cube.h"
#include "core/item_centric_eval.h"
#include "core/training_data_gen.h"
#include "datagen/book_store.h"
#include "storage/training_data.h"

namespace {
using namespace bellwether;         // NOLINT
using namespace bellwether::bench;  // NOLINT
}  // namespace

int main(int argc, char** argv) {
  BenchRunner runner(argc, argv, "fig09_bookstore",
                     "Bellwether analysis of the book store dataset");
  const double scale = FlagDouble(argc, argv, "scale", 1.0);
  datagen::BookStoreConfig config;
  config.num_books = static_cast<int32_t>(200 * scale);
  runner.report().SetConfig("scale", scale);
  runner.report().SetConfig("num_books",
                            static_cast<int64_t>(config.num_books));
  datagen::BookStoreDataset dataset;
  runner.TimePhase("datagen", [&] {
    dataset = datagen::GenerateBookStore(config);
  });
  std::printf("books=%zu transactions=%zu (no planted bellwether; small "
              "sample)\n",
              dataset.items.num_rows(), dataset.fact.num_rows());

  const double max_budget = 200.0;
  const core::BellwetherSpec spec = dataset.MakeSpec(max_budget, 0.4);
  Result<core::GeneratedTrainingData> data = Status::OK();
  runner.TimePhase("training_data_gen", [&] {
    data = core::GenerateTrainingDataInMemory(spec);
  });
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  storage::TrainingDataSource& source = *data->source;

  core::BasicSearchOptions opts;
  opts.estimate = regression::ErrorEstimate::kCrossValidation;
  opts.cv_folds = 10;
  opts.min_examples = 30;
  Result<core::BasicSearchResult> full = Status::OK();
  runner.TimePhase("search_cv", [&] {
    full = core::RunBasicBellwetherSearch(&source, opts);
  });
  if (!full.ok()) {
    std::fprintf(stderr, "%s\n", full.status().ToString().c_str());
    return 1;
  }
  runner.report().SetCount("search.regions_scored",
                           full->telemetry.regions_scored);
  runner.report().SetCount("search.bellwether_region",
                           static_cast<int64_t>(full->bellwether));

  const std::vector<double> budgets{25, 50, 75, 100, 125, 150, 175, 200};
  obs::TraceSpan sweep_span("budget_sweep", "bench");
  std::printf("\n(a) error vs budget — 10-fold cross-validation RMSE\n");
  Row({"Budget", "BelErr", "AvgErr", "SmpErr", "Returned region"});
  for (double budget : budgets) {
    auto r = core::SelectUnderBudget(*full, &source,
                                     data->profile.region_costs, budget);
    if (!r.ok() || !r->found()) {
      Row({Fmt(budget, "%.0f"), "-", "-", "-", "(none feasible)"});
      continue;
    }
    Rng rng(2004);
    auto smp = core::RandomSamplingError(spec, budget, 3, &rng);
    Row({Fmt(budget, "%.0f"), Fmt(r->error.rmse), Fmt(r->AverageError()),
         smp.ok() ? Fmt(smp->rmse) : "-",
         spec.space->RegionLabel(r->bellwether)});
  }

  std::printf("\n(b) fraction of indistinguishable regions (expected to stay "
              "high)\n");
  Row({"Budget", "95%", "99%"});
  for (double budget : budgets) {
    auto r = core::SelectUnderBudget(*full, &source,
                                     data->profile.region_costs, budget);
    if (!r.ok() || !r->found()) {
      Row({Fmt(budget, "%.0f"), "-", "-"});
      continue;
    }
    Row({Fmt(budget, "%.0f"), Fmt(r->FractionIndistinguishable(0.95)),
         Fmt(r->FractionIndistinguishable(0.99))});
  }

  sweep_span.End();
  std::printf("\n(c) item-centric prediction — no clear winner expected\n");
  auto subsets =
      core::ItemSubsetSpace::Create(dataset.items, dataset.item_hierarchies);
  if (!subsets.ok()) {
    std::fprintf(stderr, "%s\n", subsets.status().ToString().c_str());
    return 1;
  }
  core::ItemCentricOptions iopts;
  iopts.folds = 10;
  iopts.tree.split_columns = {"Genre", "PriceBand", "ListPrice"};
  iopts.tree.min_items = 40;
  iopts.tree.max_depth = 3;
  iopts.tree.max_numeric_split_points = 8;
  iopts.tree.min_examples_per_model = 15;
  iopts.cube.min_subset_size = 25;
  iopts.cube.min_examples_per_model = 15;
  iopts.basic.estimate = regression::ErrorEstimate::kTrainingSet;
  iopts.basic.min_examples = 15;
  Row({"Budget", "SingleRegion", "Tree", "Cube"});
  for (double budget : {50.0, 100.0, 150.0, 200.0}) {
    std::vector<storage::RegionTrainingSet> sets;
    runner.TimePhase("budget_setup", [&] {
      sets = core::FilterSetsByBudget(
          *data->memory_sets(), data->profile.region_costs, budget);
    });
    if (sets.empty()) {
      Row({Fmt(budget, "%.0f"), "-", "-", "-"});
      continue;
    }
    core::ItemCentricInput input;
    input.sets = &sets;
    input.targets = &data->profile.targets;
    input.item_table = &dataset.items;
    input.subsets = *subsets;
    Result<core::ItemCentricResult> r = Status::OK();
    runner.TimePhase("evaluate", [&] {
      r = core::EvaluateItemCentric(input, iopts);
    });
    if (!r.ok()) {
      Row({Fmt(budget, "%.0f"), "-", "-", "-"});
      continue;
    }
    Row({Fmt(budget, "%.0f"), Fmt(r->basic.rmse), Fmt(r->tree.rmse),
         Fmt(r->cube.rmse)});
  }
  return runner.Finish();
}
