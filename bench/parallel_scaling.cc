// Parallel scaling of the exec layer (docs/PERFORMANCE.md): builds one
// fig11-scale disk-resident workload and times the basic search, the RF
// tree, and the single-scan cube at num_threads = 1, 2, 4. Every parallel
// run is checked in-bench for bit-identity against the serial build (the
// determinism contract), and the results are written as JSON for the CI
// artifact:
//
//   ./build/bench/parallel_scaling --out=BENCH_parallel_scaling.json
//
// On a single-core container this honestly reports ~1x speedups; the >=2x
// target at 4 threads applies to multi-core CI hardware.

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/basic_search.h"
#include "core/bellwether_cube.h"
#include "core/bellwether_tree.h"
#include "datagen/scalability.h"
#include "storage/training_data.h"
#include "storage/training_data_sink.h"

namespace {

using namespace bellwether;         // NOLINT
using namespace bellwether::bench;  // NOLINT

struct Workload {
  datagen::ScalabilityDataset meta;
  std::unique_ptr<storage::TrainingDataSource> source;
  std::string path;
};

Workload Generate(double scale) {
  Workload out;
  out.path = "/tmp/bw_parallel_scaling.spill";
  datagen::ScalabilityConfig config;
  const int64_t examples = static_cast<int64_t>(900000 * scale);
  // 169 regions (two {3,3} trees, 13 nodes each), as in Fig. 11(a).
  config.num_items = static_cast<int32_t>(examples / 169);
  config.dim1_fanouts = {3, 3};
  config.dim2_fanouts = {3, 3};
  config.num_numeric_item_features = 2;
  config.item_hierarchy_fanouts = {2};
  auto sink = storage::SpillSink::Create(out.path);
  if (!sink.ok()) {
    std::fprintf(stderr, "%s\n", sink.status().ToString().c_str());
    std::exit(1);
  }
  auto meta = datagen::GenerateScalability(config, sink->get());
  if (!meta.ok()) {
    std::fprintf(stderr, "generation failed\n");
    std::exit(1);
  }
  out.meta = std::move(meta).value();
  auto src = (*sink)->Finish();
  if (!src.ok()) {
    std::fprintf(stderr, "%s\n", src.status().ToString().c_str());
    std::exit(1);
  }
  out.source = std::move(src).value();
  return out;
}

struct BuildResult {
  core::BasicSearchResult search;
  core::BellwetherTree tree;
  core::BellwetherCube cube;
  double search_seconds = 0.0;
  double tree_seconds = 0.0;
  double cube_seconds = 0.0;
};

BuildResult RunAll(BenchRunner* runner, Workload& w,
                   const std::shared_ptr<const core::ItemSubsetSpace>& subsets,
                   int32_t num_threads) {
  core::BasicSearchOptions search_options;  // cross-validated: compute-heavy
  search_options.exec.num_threads = num_threads;

  core::TreeBuildConfig tree_config;
  tree_config.split_columns = w.meta.numeric_feature_columns;
  tree_config.min_items = 200;
  tree_config.max_depth = 3;
  tree_config.max_numeric_split_points = 4;
  tree_config.min_examples_per_model = 10;
  tree_config.exec.num_threads = num_threads;

  core::CubeBuildConfig cube_config;
  cube_config.min_subset_size = 50;
  cube_config.min_examples_per_model = 10;
  cube_config.compute_cv_stats = false;
  cube_config.exec.num_threads = num_threads;

  const std::string suffix = "_t" + std::to_string(num_threads);
  Result<core::BasicSearchResult> search = Status::OK();
  Result<core::BellwetherTree> tree = Status::OK();
  Result<core::BellwetherCube> cube = Status::OK();
  const double t_search = runner->TimePhase(("search" + suffix).c_str(), [&] {
    search = core::RunBasicBellwetherSearch(w.source.get(), search_options);
  });
  const double t_tree = runner->TimePhase(("tree" + suffix).c_str(), [&] {
    tree = core::BuildBellwetherTreeRainForest(w.source.get(), w.meta.items,
                                               tree_config);
  });
  const double t_cube = runner->TimePhase(("cube" + suffix).c_str(), [&] {
    cube = core::BuildBellwetherCubeSingleScan(w.source.get(), subsets,
                                               cube_config);
  });
  if (!search.ok() || !tree.ok() || !cube.ok()) {
    std::fprintf(stderr, "build failed at num_threads=%d\n", num_threads);
    std::exit(1);
  }
  return BuildResult{std::move(search).value(), std::move(tree).value(),
                     std::move(cube).value(), t_search, t_tree, t_cube};
}

// Bit-identity across every artifact the determinism tests compare.
bool IdenticalToSerial(const BuildResult& got, const BuildResult& ref) {
  if (got.search.bellwether != ref.search.bellwether ||
      got.search.error.rmse != ref.search.error.rmse ||
      got.search.model.beta() != ref.search.model.beta() ||
      got.search.scores.size() != ref.search.scores.size()) {
    return false;
  }
  for (size_t i = 0; i < ref.search.scores.size(); ++i) {
    if (got.search.scores[i].region != ref.search.scores[i].region ||
        got.search.scores[i].usable != ref.search.scores[i].usable) {
      return false;
    }
  }
  if (got.tree.nodes().size() != ref.tree.nodes().size()) return false;
  for (size_t i = 0; i < ref.tree.nodes().size(); ++i) {
    const core::TreeNode& a = got.tree.nodes()[i];
    const core::TreeNode& b = ref.tree.nodes()[i];
    if (a.region != b.region || a.error != b.error ||
        a.model.beta() != b.model.beta() || a.children != b.children ||
        a.split.column != b.split.column ||
        a.split.threshold != b.split.threshold) {
      return false;
    }
  }
  if (got.cube.cells().size() != ref.cube.cells().size()) return false;
  for (size_t i = 0; i < ref.cube.cells().size(); ++i) {
    const core::CubeCell& a = got.cube.cells()[i];
    const core::CubeCell& b = ref.cube.cells()[i];
    if (a.region != b.region || a.error != b.error ||
        a.model.beta() != b.model.beta() ||
        a.fallback_pick != b.fallback_pick) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchRunner runner(argc, argv, "parallel_scaling",
                     "Thread-pooled search/tree/cube vs the serial builds");
  const double scale = FlagDouble(argc, argv, "scale", 0.1);
  runner.set_default_report_path(
      FlagString(argc, argv, "out", "BENCH_parallel_scaling.json"));
  runner.report().SetConfig("scale", scale);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency=%u scale=%.2f\n", hw, scale);

  Workload w;
  runner.TimePhase("datagen", [&] { w = Generate(scale); });
  auto subsets =
      core::ItemSubsetSpace::Create(w.meta.items, w.meta.item_hierarchies);
  if (!subsets.ok()) {
    std::fprintf(stderr, "%s\n", subsets.status().ToString().c_str());
    return 1;
  }
  std::printf("examples=%lld regions=%lld\n",
              static_cast<long long>(w.meta.total_examples),
              static_cast<long long>(w.meta.num_regions));
  runner.report().SetCount("examples", w.meta.total_examples);
  runner.report().SetCount("regions", w.meta.num_regions);

  const std::vector<int32_t> thread_counts{1, 2, 4};
  std::vector<BuildResult> results;
  Row({"Threads", "search (s)", "tree (s)", "cube (s)", "identical"});
  for (int32_t t : thread_counts) {
    results.push_back(RunAll(&runner, w, *subsets, t));
    const BuildResult& r = results.back();
    const bool identical = IdenticalToSerial(r, results.front());
    Row({Fmt(static_cast<double>(t), "%.0f"), Fmt(r.search_seconds, "%.3f"),
         Fmt(r.tree_seconds, "%.3f"), Fmt(r.cube_seconds, "%.3f"),
         identical ? "yes" : "NO"});
    if (!identical) {
      std::fprintf(stderr,
                   "determinism violation at num_threads=%d: parallel build "
                   "differs from serial\n",
                   t);
      return 1;
    }
  }

  // All runs were bit-identical to the serial build (checked above): record
  // it as a logical count so benchdiff would flag any future drift.
  runner.report().SetCount("identical_to_serial", 1);
  const BuildResult& serial = results.front();
  const BuildResult& fastest = results.back();
  std::printf("speedup at %d threads: search %.2fx tree %.2fx cube %.2fx\n",
              thread_counts.back(),
              serial.search_seconds / fastest.search_seconds,
              serial.tree_seconds / fastest.tree_seconds,
              serial.cube_seconds / fastest.cube_seconds);
  std::remove(w.path.c_str());
  return runner.Finish();
}
