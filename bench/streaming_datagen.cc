// Out-of-core smoke bench for the streaming training-data pipeline
// (docs/PERFORMANCE.md "Memory footprint & spill"): generates the mail-order
// training data twice — once unbudgeted into memory, once through a
// BudgetedSink with a deliberately tiny memory budget so the sets migrate
// to disk mid-stream — then asserts the budgeted run is bit-identical in
// every artifact the determinism tests compare (training sets, profile,
// basic-search result). Results are written as JSON for the CI artifact:
//
//   ./build/bench/streaming_datagen --budget-bytes=4096 \
//       --out=BENCH_streaming_datagen.json

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/basic_search.h"
#include "core/training_data_gen.h"
#include "datagen/mail_order.h"
#include "obs/metrics.h"
#include "storage/training_data.h"
#include "storage/training_data_sink.h"

namespace {

using namespace bellwether;         // NOLINT
using namespace bellwether::bench;  // NOLINT

bool SetsIdentical(storage::TrainingDataSource* a,
                   storage::TrainingDataSource* b) {
  if (a->num_region_sets() != b->num_region_sets()) return false;
  for (size_t i = 0; i < a->num_region_sets(); ++i) {
    auto sa = a->Read(i);
    auto sb = b->Read(i);
    if (!sa.ok() || !sb.ok()) return false;
    if (sa->region != sb->region || sa->items != sb->items ||
        sa->features != sb->features || sa->targets != sb->targets ||
        sa->weights != sb->weights) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchRunner runner(argc, argv, "streaming_datagen",
                     "Budgeted out-of-core generation vs the unbudgeted run");
  const double scale = FlagDouble(argc, argv, "scale", 1.0);
  const auto budget_bytes = static_cast<size_t>(
      FlagDouble(argc, argv, "budget-bytes", 4096.0));
  runner.set_default_report_path(
      FlagString(argc, argv, "out", "BENCH_streaming_datagen.json"));
  const std::string spill_path =
      FlagString(argc, argv, "spill", "/tmp/bw_streaming_datagen.spill");
  runner.report().SetConfig("scale", scale);
  runner.report().SetConfig("memory_budget_bytes",
                            static_cast<int64_t>(budget_bytes));

  datagen::MailOrderConfig config;
  config.num_items = static_cast<int32_t>(300 * scale);
  config.seed = 1996;
  runner.report().SetConfig("seed", static_cast<int64_t>(config.seed));
  datagen::MailOrderDataset dataset;
  runner.TimePhase("datagen", [&] {
    dataset = datagen::GenerateMailOrder(config);
  });
  const core::BellwetherSpec spec = dataset.MakeSpec(85.0, 0.5);

  // ---- Unbudgeted reference: everything resident ----
  Result<core::GeneratedTrainingData> ref = Status::OK();
  const double mem_seconds = runner.TimePhase("training_data_gen_memory", [&] {
    ref = core::GenerateTrainingDataInMemory(spec);
  });
  if (!ref.ok()) {
    std::fprintf(stderr, "%s\n", ref.status().ToString().c_str());
    return 1;
  }
  size_t total_bytes = 0, largest_set_bytes = 0;
  for (const auto& set : *ref->memory_sets()) {
    total_bytes += set.ByteSize();
    largest_set_bytes = std::max(largest_set_bytes, set.ByteSize());
  }

  // ---- Budgeted run: budget << total data forces the spill ----
  auto* gauge =
      obs::DefaultMetrics().GetGauge(obs::kMDatagenPeakResidentBytes);
  gauge->Reset();
  storage::BudgetedSink sink(budget_bytes, spill_path);
  Result<core::TrainingDataProfile> profile = Status::OK();
  Result<std::unique_ptr<storage::TrainingDataSource>> source = Status::OK();
  const double budget_seconds =
      runner.TimePhase("training_data_gen_budgeted", [&] {
        profile = core::GenerateTrainingData(spec, &sink);
        if (profile.ok()) source = sink.Finish();
      });
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  const double peak_resident = gauge->Value();

  // ---- Bit-identity assertions (the out-of-core determinism contract) ----
  bool identical = SetsIdentical(ref->source.get(), source->get());
  identical = identical && profile->targets == ref->profile.targets &&
              profile->region_costs == ref->profile.region_costs &&
              profile->feasible.regions == ref->profile.feasible.regions;
  core::BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kTrainingSet;
  Result<core::BasicSearchResult> ref_search = Status::OK();
  Result<core::BasicSearchResult> budget_search = Status::OK();
  runner.TimePhase("search_reference", [&] {
    ref_search = core::RunBasicBellwetherSearch(ref->source.get(), options);
  });
  runner.TimePhase("search_budgeted", [&] {
    budget_search = core::RunBasicBellwetherSearch(source->get(), options);
  });
  if (!ref_search.ok() || !budget_search.ok()) {
    std::fprintf(stderr, "search failed\n");
    return 1;
  }
  identical = identical &&
              budget_search->bellwether == ref_search->bellwether &&
              budget_search->error.rmse == ref_search->error.rmse &&
              budget_search->model.beta() == ref_search->model.beta();

  Row({"Mode", "Time(s)", "Resident", "Sets"});
  Row({"memory", Fmt(mem_seconds, "%.3f"),
       Fmt(static_cast<double>(total_bytes), "%.0f"),
       Fmt(static_cast<double>(ref->source->num_region_sets()), "%.0f")});
  Row({"budgeted", Fmt(budget_seconds, "%.3f"), Fmt(peak_resident, "%.0f"),
       Fmt(static_cast<double>((*source)->num_region_sets()), "%.0f")});
  std::printf("\nbudget=%zu bytes, total=%zu bytes, largest set=%zu bytes, "
              "spilled=%s, identical=%s\n",
              budget_bytes, total_bytes, largest_set_bytes,
              sink.spilled() ? "yes" : "no", identical ? "yes" : "NO");
  if (!identical) {
    std::fprintf(stderr,
                 "determinism violation: budgeted generation differs from "
                 "the unbudgeted run\n");
    return 1;
  }
  if (!sink.spilled() && budget_bytes < total_bytes) {
    std::fprintf(stderr, "budget below total data but the sink never "
                         "spilled\n");
    return 1;
  }

  runner.report().SetCount("total_training_set_bytes",
                           static_cast<int64_t>(total_bytes));
  runner.report().SetCount("largest_region_set_bytes",
                           static_cast<int64_t>(largest_set_bytes));
  runner.report().SetCount(
      "region_sets", static_cast<int64_t>(ref->source->num_region_sets()));
  runner.report().SetCount("spilled", sink.spilled() ? 1 : 0);
  runner.report().SetCount("identical_to_unbudgeted", identical ? 1 : 0);
  runner.report().SetValue("peak_resident_training_bytes", peak_resident);
  (void)mem_seconds;
  (void)budget_seconds;
  std::remove(spill_path.c_str());
  return runner.Finish();
}
