// Reproduces Figure 12: characteristics of the optimized cube and the RF
// tree. (a) optimized-cube construction time scales linearly in the number
// of significant item subsets (fixed example count); (b) RF-tree
// construction time scales linearly in the number of item-table features
// (fixed example count). Sizes are scaled down from the paper (2.5M / 1M
// examples); pass --scale=1.0 for paper-sized runs.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/bellwether_cube.h"
#include "core/bellwether_tree.h"
#include "datagen/scalability.h"
#include "storage/training_data.h"
#include "storage/training_data_sink.h"

namespace {
using namespace bellwether;         // NOLINT
using namespace bellwether::bench;  // NOLINT
}  // namespace

int main(int argc, char** argv) {
  BenchRunner runner(argc, argv, "fig12_characteristics",
                     "Characteristics of the optimized cube and RF tree");
  const double scale = FlagDouble(argc, argv, "scale", 0.1);
  runner.report().SetConfig("scale", scale);

  // ---- (a) optimized cube vs number of significant subsets ----
  // Paper: 2.5M examples, subsets varied via the item hierarchies.
  std::printf("\n(a) optimized cube, time (s) vs significant subsets "
              "(%.3g examples)\n", 2.5e6 * scale);
  Row({"Subsets", "Time(s)"});
  for (int32_t fanout : {2, 3, 4, 5, 6}) {
    datagen::ScalabilityConfig config;
    config.num_items = static_cast<int32_t>(2500 * scale * 10.0);
    config.dim1_fanouts = {9};
    config.dim2_fanouts = {9};  // 100 regions
    config.item_hierarchy_fanouts = {fanout, fanout};
    storage::MemorySink sink;
    Result<datagen::ScalabilityDataset> meta = Status::OK();
    runner.TimePhase("datagen", [&] {
      meta = datagen::GenerateScalability(config, &sink);
    });
    if (!meta.ok()) return 1;
    auto src = sink.Finish();
    if (!src.ok()) return 1;
    storage::TrainingDataSource& source = **src;
    auto subsets =
        core::ItemSubsetSpace::Create(meta->items, meta->item_hierarchies);
    if (!subsets.ok()) return 1;
    core::CubeBuildConfig cube_cfg;
    cube_cfg.min_subset_size = 1;  // every non-empty subset is significant
    cube_cfg.min_examples_per_model = 10;
    cube_cfg.compute_cv_stats = false;
    Result<core::BellwetherCube> cube = Status::OK();
    const double t_cube = runner.TimePhase("cube_optimized", [&] {
      cube = core::BuildBellwetherCubeOptimized(&source, *subsets, cube_cfg);
    });
    if (!cube.ok()) return 1;
    Row({Fmt(static_cast<double>(cube->cells().size()), "%.0f"),
         Fmt(t_cube, "%.2f")});
  }

  // ---- (b) RF tree vs number of item-table features ----
  std::printf("\n(b) RF tree, time (s) vs item-table features "
              "(%.3g examples)\n", 1e6 * scale);
  Row({"Features", "Time(s)"});
  for (int32_t features : {5, 10, 20, 40}) {
    datagen::ScalabilityConfig config;
    config.num_items = static_cast<int32_t>(2500 * scale * 4.0);
    config.dim1_fanouts = {9};
    config.dim2_fanouts = {9};
    config.num_numeric_item_features = features;
    storage::MemorySink sink;
    Result<datagen::ScalabilityDataset> meta = Status::OK();
    runner.TimePhase("datagen", [&] {
      meta = datagen::GenerateScalability(config, &sink);
    });
    if (!meta.ok()) return 1;
    auto src = sink.Finish();
    if (!src.ok()) return 1;
    storage::TrainingDataSource& source = **src;
    core::TreeBuildConfig tree_cfg;
    tree_cfg.split_columns = meta->numeric_feature_columns;
    tree_cfg.min_items = 100;
    tree_cfg.max_depth = 3;
    tree_cfg.max_numeric_split_points = 4;
    tree_cfg.min_examples_per_model = 10;
    Result<core::BellwetherTree> tree = Status::OK();
    const double t_tree = runner.TimePhase("tree_rainforest", [&] {
      tree = core::BuildBellwetherTreeRainForest(&source, meta->items,
                                                 tree_cfg);
    });
    if (!tree.ok()) return 1;
    Row({Fmt(features, "%.0f"), Fmt(t_tree, "%.2f")});
  }
  return runner.Finish();
}
