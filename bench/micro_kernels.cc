// Micro-benchmarks (google-benchmark) of the kernels the bellwether
// algorithms are built from: regression sufficient-statistics accumulation
// and merging (Theorem 1's g and q), WLS solves, CUBE rollup, region
// enumeration, the iceberg feasible-region search, and spill-file record
// reads.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/random.h"
#include "datagen/hierarchy_util.h"
#include "olap/cost.h"
#include "olap/cube.h"
#include "olap/iceberg.h"
#include "olap/region.h"
#include "regression/linear_model.h"
#include "storage/training_data.h"

namespace {

using namespace bellwether;  // NOLINT

// Rows cycled by the accumulation benchmarks: a pool large enough to defeat
// a single cached row (realistic cache behavior, varying values) but small
// enough to pregenerate cheaply.
constexpr size_t kRowPool = 1024;

std::vector<double> MakeRowPool(size_t p, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> rows(kRowPool * p);
  for (auto& v : rows) v = rng.NextDouble(-1, 1);
  return rows;
}

// Bytes a single Add touches: the example row plus the packed X'WX
// triangle and X'WY accumulators (read + write).
int64_t AddBytesPerItem(size_t p) {
  return static_cast<int64_t>(
      8 * (p + 2 * (regression::RegressionSuffStats::PackedSize(p) + p)));
}

void BM_SuffStatsAdd(benchmark::State& state) {
  const size_t p = state.range(0);
  const std::vector<double> rows = MakeRowPool(p, 1);
  regression::RegressionSuffStats stats(p);
  size_t i = 0;
  for (auto _ : state) {
    stats.Add(rows.data() + i * p, 1.5);
    i = (i + 1) % kRowPool;
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * AddBytesPerItem(p));
}
BENCHMARK(BM_SuffStatsAdd)->Arg(3)->Arg(6)->Arg(12)->Arg(24);

void BM_SuffStatsAddBatch(benchmark::State& state) {
  const size_t p = state.range(0);
  const std::vector<double> rows = MakeRowPool(p, 1);
  std::vector<double> ys(kRowPool);
  {
    Rng rng(9);
    for (auto& y : ys) y = rng.NextDouble();
  }
  regression::RegressionSuffStats stats(p);
  for (auto _ : state) {
    stats.AddBatch(rows.data(), ys.data(), nullptr, kRowPool);
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kRowPool));
  // Row reads per example; accumulator read+write amortized over the
  // rank-4 register blocking.
  const int64_t batch_bytes = static_cast<int64_t>(
      8 * (kRowPool * p +
           2 * (regression::RegressionSuffStats::PackedSize(p) + p) *
               (kRowPool / 4)));
  state.SetBytesProcessed(state.iterations() * batch_bytes);
}
BENCHMARK(BM_SuffStatsAddBatch)->Arg(3)->Arg(6)->Arg(12)->Arg(24);

void BM_SuffStatsMerge(benchmark::State& state) {
  const size_t p = state.range(0);
  Rng rng(2);
  // A pool of pregenerated statistics merged into one accumulator — the
  // tree/cube builders' actual pattern (many children folded into a parent),
  // with no per-iteration deep copy polluting the measurement. The values
  // grow across iterations but stay finite; Merge's cost is value-oblivious.
  constexpr size_t kPool = 64;
  std::vector<regression::RegressionSuffStats> pool;
  pool.reserve(kPool);
  std::vector<double> x(p);
  for (size_t s = 0; s < kPool; ++s) {
    regression::RegressionSuffStats stats(p);
    for (int i = 0; i < 16; ++i) {
      for (auto& v : x) v = rng.NextDouble(-1, 1);
      stats.Add(x.data(), rng.NextDouble());
    }
    pool.push_back(std::move(stats));
  }
  regression::RegressionSuffStats acc(p);
  size_t i = 0;
  for (auto _ : state) {
    acc.Merge(pool[i]);
    i = (i + 1) % kPool;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
  // One merge reads the source's packed triangle + X'WY and read-writes the
  // accumulator's.
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<int64_t>(
          8 * 3 * (regression::RegressionSuffStats::PackedSize(p) + p)));
}
BENCHMARK(BM_SuffStatsMerge)->Arg(3)->Arg(6)->Arg(12)->Arg(24);

void BM_WlsFit(benchmark::State& state) {
  const size_t p = state.range(0);
  Rng rng(3);
  regression::RegressionSuffStats stats(p);
  std::vector<double> x(p);
  for (size_t i = 0; i < 8 * p; ++i) {
    x[0] = 1.0;
    for (size_t j = 1; j < p; ++j) x[j] = rng.NextDouble(-1, 1);
    stats.Add(x.data(), rng.NextDouble(), rng.NextDouble(0.5, 1.5));
  }
  for (auto _ : state) {
    auto model = stats.Fit();
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_WlsFit)->Arg(3)->Arg(6)->Arg(12)->Arg(24);

void BM_TrainingSseFromStats(benchmark::State& state) {
  const size_t p = 6;
  Rng rng(4);
  regression::RegressionSuffStats stats(p);
  std::vector<double> x(p);
  for (int i = 0; i < 200; ++i) {
    x[0] = 1.0;
    for (size_t j = 1; j < p; ++j) x[j] = rng.NextDouble(-1, 1);
    stats.Add(x.data(), rng.NextDouble());
  }
  for (auto _ : state) {
    auto sse = stats.TrainingSse();
    benchmark::DoNotOptimize(sse);
  }
}
BENCHMARK(BM_TrainingSseFromStats);

olap::RegionSpace MakeSpace(int32_t months, int32_t fanout) {
  std::vector<olap::Dimension> dims;
  dims.emplace_back(olap::IntervalDimension("Time", months));
  dims.emplace_back(datagen::BuildBalancedHierarchy("Loc", "All",
                                                    {fanout, fanout}, "L"));
  return olap::RegionSpace(std::move(dims));
}

void BM_CubeRollup(benchmark::State& state) {
  const int32_t items = state.range(0);
  olap::RegionSpace space = MakeSpace(10, 5);
  Rng rng(5);
  const auto& loc = std::get<olap::HierarchicalDimension>(space.dim(1));
  const auto& leaves = loc.leaves();
  for (auto _ : state) {
    state.PauseTiming();
    olap::RegionItemCube<olap::NumericAgg> cube(&space, items);
    for (int32_t i = 0; i < items; ++i) {
      for (int k = 0; k < 10; ++k) {
        cube.BaseCell({static_cast<int32_t>(1 + rng.NextUint64(10)),
                       leaves[rng.NextUint64(leaves.size())]},
                      i)
            .Add(rng.NextDouble());
      }
    }
    state.ResumeTiming();
    cube.Rollup();
    benchmark::DoNotOptimize(cube);
  }
  state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(BM_CubeRollup)->Arg(100)->Arg(400)->Arg(1600);

void BM_ForEachContainingRegion(benchmark::State& state) {
  olap::RegionSpace space = MakeSpace(10, 5);
  const auto& loc = std::get<olap::HierarchicalDimension>(space.dim(1));
  const olap::PointCoords point{3, loc.leaves()[7]};
  for (auto _ : state) {
    int64_t count = 0;
    space.ForEachContainingRegion(point, [&](olap::RegionId) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_ForEachContainingRegion);

void BM_IcebergSearch(benchmark::State& state) {
  const bool pruned = state.range(0) == 1;
  olap::RegionSpace space = MakeSpace(10, 6);
  Rng rng(6);
  std::vector<double> cell_costs(space.NumFinestCells());
  for (auto& c : cell_costs) c = rng.NextDouble(0.5, 2.0);
  auto cost = olap::CostModel::Create(&space, cell_costs);
  std::vector<double> coverage(space.NumRegions());
  // Monotone synthetic coverage: proportional to region size.
  for (olap::RegionId r = 0; r < space.NumRegions(); ++r) {
    coverage[r] = std::min(
        1.0, static_cast<double>(space.FinestCellsIn(r).size()) / 40.0);
  }
  for (auto _ : state) {
    auto result = pruned
                      ? olap::FindFeasibleRegionsPruned(
                            space, cost->region_costs(), coverage, 30.0, 0.3)
                      : olap::FindFeasibleRegionsBruteForce(
                            space, cost->region_costs(), coverage, 30.0, 0.3);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_IcebergSearch)->Arg(0)->Arg(1);

// Writes a spill file of `num_regions` records with `rows` examples each and
// returns its path. The file persists for the process lifetime (benchmarks
// re-open it per run).
std::string MakeSpillFile(int32_t num_regions, int32_t rows, int32_t p) {
  static int counter = 0;
  std::string path =
      "/tmp/bw_micro_spill_" + std::to_string(counter++) + ".bin";
  Rng rng(7);
  auto writer = storage::SpillFileWriter::Create(path);
  for (int32_t r = 0; r < num_regions; ++r) {
    storage::RegionTrainingSet set;
    set.region = r;
    set.num_features = p;
    for (int32_t i = 0; i < rows; ++i) {
      set.items.push_back(i);
      set.features.push_back(1.0);
      for (int32_t j = 1; j < p; ++j) {
        set.features.push_back(rng.NextDouble(-1, 1));
      }
      set.targets.push_back(rng.NextDouble());
    }
    if (!writer.value()->Append(set).ok()) std::abort();
  }
  if (!writer.value()->Finish().ok()) std::abort();
  return path;
}

// Sequential scan over a spilled source: after the single-buffer read
// optimization each record costs one seek + one read, so this measures the
// per-record parse + copy cost that every fig11-scale build pays.
void BM_SpillScan(benchmark::State& state) {
  const int32_t rows = state.range(0);
  static const std::string* path = new std::string(MakeSpillFile(64, 256, 8));
  (void)rows;
  auto source = storage::SpilledTrainingData::Open(*path);
  if (!source.ok()) std::abort();
  int64_t bytes = 0;
  for (auto _ : state) {
    int64_t rows_seen = 0;
    auto st = source.value()->Scan(
        [&](const storage::RegionTrainingSet& set) {
          rows_seen += static_cast<int64_t>(set.num_examples());
          return Status::OK();
        });
    if (!st.ok()) std::abort();
    benchmark::DoNotOptimize(rows_seen);
  }
  bytes = source.value()->io_stats().bytes_read;
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_SpillScan)->Arg(256);

// Random record reads (the naive builders' access pattern).
void BM_SpillRead(benchmark::State& state) {
  static const std::string* path = new std::string(MakeSpillFile(64, 256, 8));
  auto source = storage::SpilledTrainingData::Open(*path);
  if (!source.ok()) std::abort();
  Rng rng(8);
  for (auto _ : state) {
    auto set = source.value()->Read(rng.NextUint64(64));
    if (!set.ok()) std::abort();
    benchmark::DoNotOptimize(set.value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpillRead);

// Console reporter that also records every per-iteration run as a report
// phase "bm/<name>" whose wall time is seconds per iteration, so the micro
// benchmarks feed the same BENCH_<name>.json flight-recorder format (and
// benchdiff gate) as the figure drivers.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  explicit RecordingReporter(obs::RunReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      if (run.iterations <= 0) continue;
      report_->AddPhase("bm/" + run.benchmark_name(),
                        run.real_accumulated_time /
                            static_cast<double>(run.iterations));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

 private:
  obs::RunReport* report_;
};

}  // namespace

int main(int argc, char** argv) {
  bellwether::bench::BenchRunner runner(argc, argv, "micro_kernels",
                                        "Kernel micro-benchmarks");
  // benchmark::Initialize strips the flags it recognizes and leaves ours
  // (--report-out etc.) in place for BenchRunner.
  benchmark::Initialize(&argc, argv);
  RecordingReporter reporter(&runner.report());
  const size_t run = benchmark::RunSpecifiedBenchmarks(&reporter);
  runner.report().SetCount("benchmarks_run", static_cast<int64_t>(run));
  benchmark::Shutdown();
  return runner.Finish();
}
