// Reproduces Figure 11: efficiency and scalability of the bellwether tree
// and cube algorithms on disk-resident entire training data.
//   (a) naive algorithms vs the scan-based ones when every request of a
//       region's training set is a disk read (naive reads the file hundreds
//       of times; the scan-based algorithms read it once per scan);
//   (b) single-scan and optimized cube scale linearly in the number of
//       training examples;
//   (c) the RF tree scales linearly in the number of training examples.
// Sizes are scaled down from the paper's 2.5M-10M examples so the default
// run finishes in minutes; pass --scale=1.0 for paper-sized runs.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/bellwether_cube.h"
#include "core/bellwether_tree.h"
#include "datagen/scalability.h"
#include "storage/training_data.h"
#include "storage/training_data_sink.h"

namespace {

using namespace bellwether;         // NOLINT
using namespace bellwether::bench;  // NOLINT

struct Generated {
  datagen::ScalabilityDataset meta;
  std::unique_ptr<storage::TrainingDataSource> source;
  std::string path;
};

// Generates a spilled dataset with ~`target_examples` examples.
Generated Generate(int64_t target_examples, int32_t items,
                   const std::vector<int32_t>& dim1,
                   const std::vector<int32_t>& dim2,
                   int32_t numeric_features, int32_t hierarchy_fanout) {
  Generated out;
  out.path = std::string("/tmp/bw_scal_") + std::to_string(target_examples) +
             "_" + std::to_string(numeric_features) + "_" +
             std::to_string(hierarchy_fanout) + ".spill";
  datagen::ScalabilityConfig config;
  config.num_items = items;
  config.dim1_fanouts = dim1;
  config.dim2_fanouts = dim2;
  config.num_numeric_item_features = numeric_features;
  config.item_hierarchy_fanouts = {hierarchy_fanout};
  auto sink = storage::SpillSink::Create(out.path);
  if (!sink.ok()) {
    std::fprintf(stderr, "%s\n", sink.status().ToString().c_str());
    std::exit(1);
  }
  auto meta = datagen::GenerateScalability(config, sink->get());
  if (!meta.ok()) {
    std::fprintf(stderr, "generation failed\n");
    std::exit(1);
  }
  out.meta = std::move(meta).value();
  auto src = (*sink)->Finish();
  if (!src.ok()) {
    std::fprintf(stderr, "%s\n", src.status().ToString().c_str());
    std::exit(1);
  }
  out.source = std::move(src).value();
  return out;
}

core::TreeBuildConfig TreeConfig(const datagen::ScalabilityDataset& meta,
                                 int32_t max_depth, int32_t min_items = 200) {
  core::TreeBuildConfig config;
  config.split_columns = meta.numeric_feature_columns;
  config.min_items = min_items;
  config.max_depth = max_depth;
  config.max_numeric_split_points = 4;
  config.min_examples_per_model = 10;
  return config;
}

core::CubeBuildConfig CubeConfig() {
  core::CubeBuildConfig config;
  config.min_subset_size = 50;
  config.min_examples_per_model = 10;
  config.compute_cv_stats = false;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  BenchRunner runner(argc, argv, "fig11_scalability",
                     "Scalability of the algorithms (disk-resident data)");
  const double scale = FlagDouble(argc, argv, "scale", 0.1);
  runner.report().SetConfig("scale", scale);
  std::printf("scale=%.2f of the paper's sizes (use --scale=1.0 for 2.5M-10M "
              "examples)\n", scale);

  // ---- (a) naive vs scan-based, every request hits the disk ----
  std::printf("\n(a) naive vs scan-based algorithms, time (s) vs examples\n");
  Row({"Examples", "naive-tree", "RF-tree", "naive-cube", "single-scan",
       "optimized"},
      14);
  for (int64_t target : {100000, 200000, 300000}) {
    const int64_t examples = static_cast<int64_t>(target * scale * 3.0);
    // 169 regions (two {3,3} trees, 13 nodes each).
    const int32_t items = static_cast<int32_t>(examples / 169);
    Generated g;
    runner.TimePhase("datagen", [&] {
      g = Generate(examples, items, {3, 3}, {3, 3},
                   /*numeric_features=*/2, /*hierarchy_fanout=*/2);
    });
    // The paper's simulation: every request of a region's training set is a
    // disk read; emulate a device with a fixed per-request latency so the
    // OS page cache does not mask the random-read penalty.
    auto* spilled =
        dynamic_cast<storage::SpilledTrainingData*>(g.source.get());
    if (spilled == nullptr) return 1;
    spilled->set_simulated_read_latency_micros(500);
    auto subsets =
        core::ItemSubsetSpace::Create(g.meta.items, g.meta.item_hierarchies);
    if (!subsets.ok()) return 1;
    const auto tree_cfg = TreeConfig(g.meta, /*max_depth=*/2,
                                     /*min_items=*/50);
    const auto cube_cfg = CubeConfig();
    const double t_naive_tree = runner.TimePhase("tree_naive", [&] {
      auto r = core::BuildBellwetherTreeNaive(g.source.get(), g.meta.items,
                                              tree_cfg);
      if (!r.ok()) std::exit(1);
    });
    const double t_rf_tree = runner.TimePhase("tree_rainforest", [&] {
      auto r = core::BuildBellwetherTreeRainForest(g.source.get(),
                                                   g.meta.items, tree_cfg);
      if (!r.ok()) std::exit(1);
    });
    const double t_naive_cube = runner.TimePhase("cube_naive", [&] {
      auto r = core::BuildBellwetherCubeNaive(g.source.get(), *subsets,
                                              cube_cfg);
      if (!r.ok()) std::exit(1);
    });
    const double t_scan_cube =
        runner.TimePhase("cube_single_scan_latency", [&] {
      auto r = core::BuildBellwetherCubeSingleScan(g.source.get(), *subsets,
                                                   cube_cfg);
      if (!r.ok()) std::exit(1);
    });
    const double t_opt_cube =
        runner.TimePhase("cube_optimized_latency", [&] {
      auto r = core::BuildBellwetherCubeOptimized(g.source.get(), *subsets,
                                                  cube_cfg);
      if (!r.ok()) std::exit(1);
    });
    Row({Fmt(static_cast<double>(g.meta.total_examples), "%.3g"),
         Fmt(t_naive_tree, "%.2f"), Fmt(t_rf_tree, "%.2f"),
         Fmt(t_naive_cube, "%.2f"), Fmt(t_scan_cube, "%.2f"),
         Fmt(t_opt_cube, "%.2f")});
    std::remove(g.path.c_str());
  }

  // ---- (b) cube algorithms scale linearly ----
  std::printf("\n(b) cube construction, time (s) vs examples\n");
  Row({"Examples", "single-scan", "optimized"});
  const std::vector<std::pair<std::vector<int32_t>, std::vector<int32_t>>>
      region_shapes{{{9}, {9}}, {{9}, {19}}, {{14}, {19}}, {{19}, {19}}};
  for (size_t k = 0; k < region_shapes.size(); ++k) {
    const int64_t paper_examples = 2500000 * static_cast<int64_t>(k + 1);
    const int32_t items =
        static_cast<int32_t>(2500 * scale * 10.0);  // paper: 2500 items
    Generated g;
    runner.TimePhase("datagen", [&] {
      g = Generate(static_cast<int64_t>(paper_examples * scale), items,
                   region_shapes[k].first, region_shapes[k].second, 4, 3);
    });
    auto subsets =
        core::ItemSubsetSpace::Create(g.meta.items, g.meta.item_hierarchies);
    if (!subsets.ok()) return 1;
    const auto cube_cfg = CubeConfig();
    const double t_scan = runner.TimePhase("cube_single_scan", [&] {
      auto r = core::BuildBellwetherCubeSingleScan(g.source.get(), *subsets,
                                                   cube_cfg);
      if (!r.ok()) std::exit(1);
    });
    const double t_opt = runner.TimePhase("cube_optimized", [&] {
      auto r = core::BuildBellwetherCubeOptimized(g.source.get(), *subsets,
                                                  cube_cfg);
      if (!r.ok()) std::exit(1);
    });
    Row({Fmt(static_cast<double>(g.meta.total_examples), "%.3g"),
         Fmt(t_scan, "%.2f"), Fmt(t_opt, "%.2f")});
    std::remove(g.path.c_str());
  }

  // ---- (c) RF tree scales linearly ----
  std::printf("\n(c) RF tree construction, time (s) vs examples\n");
  Row({"Examples", "RF-tree"});
  for (size_t k = 0; k < region_shapes.size(); ++k) {
    const int64_t paper_examples = 2500000 * static_cast<int64_t>(k + 1);
    const int32_t items = static_cast<int32_t>(2500 * scale * 10.0);
    Generated g;
    runner.TimePhase("datagen", [&] {
      g = Generate(static_cast<int64_t>(paper_examples * scale), items,
                   region_shapes[k].first, region_shapes[k].second, 4, 3);
    });
    const auto tree_cfg = TreeConfig(g.meta, /*max_depth=*/3);
    const double t = runner.TimePhase("tree_rainforest_scan", [&] {
      auto r = core::BuildBellwetherTreeRainForest(g.source.get(),
                                                   g.meta.items, tree_cfg);
      if (!r.ok()) std::exit(1);
    });
    Row({Fmt(static_cast<double>(g.meta.total_examples), "%.3g"),
         Fmt(t, "%.2f")});
    std::remove(g.path.c_str());
  }
  return runner.Finish();
}
