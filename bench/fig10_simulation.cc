// Reproduces Figure 10: prediction error of the cube, basic, and tree
// methods on simulated data. (a) error as a function of the noise level at
// a fixed generator complexity of 15 tree nodes; (b) error as a function of
// the generator tree size at noise 0.5. Each point averages several
// generated datasets (paper: 10; default here: 5, --datasets=N to change).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/bellwether_cube.h"
#include "core/item_centric_eval.h"
#include "datagen/simulation.h"

namespace {

using namespace bellwether;         // NOLINT
using namespace bellwether::bench;  // NOLINT

struct Point {
  double basic = 0.0;
  double tree = 0.0;
  double cube = 0.0;
};

// Setup (dataset generation) and the measured evaluation are timed as
// separate report phases; a point averages `datasets` generated datasets.
Point RunOne(BenchRunner* runner, int32_t tree_nodes, double noise,
             int32_t datasets, int32_t items) {
  Point acc;
  for (int32_t d = 0; d < datasets; ++d) {
    datagen::SimulationConfig config;
    config.num_items = items;
    config.generator_tree_nodes = tree_nodes;
    config.noise = noise;
    config.num_hierarchies = 6;
    config.seed = 1000 * (d + 1) + tree_nodes;
    datagen::SimulationDataset sim;
    runner->TimePhase("datagen", [&] {
      sim = datagen::GenerateSimulation(config);
    });
    auto subsets =
        core::ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
    if (!subsets.ok()) continue;
    core::ItemCentricInput input;
    input.sets = &sim.sets;
    input.targets = &sim.targets;
    input.item_table = &sim.items;
    input.subsets = *subsets;
    core::ItemCentricOptions opts;
    opts.folds = 10;
    opts.tree.split_columns = sim.feature_columns;
    opts.tree.min_items = 50;
    opts.tree.max_depth = 5;
    opts.tree.min_examples_per_model = 10;
    opts.cube.min_subset_size = 30;
    opts.cube.min_examples_per_model = 10;
    opts.cube.compute_cv_stats = true;
    opts.basic.estimate = regression::ErrorEstimate::kTrainingSet;
    Result<core::ItemCentricResult> r = Status::OK();
    runner->TimePhase("evaluate", [&] {
      r = core::EvaluateItemCentric(input, opts);
    });
    if (!r.ok()) continue;
    acc.basic += r->basic.rmse / datasets;
    acc.tree += r->tree.rmse / datasets;
    acc.cube += r->cube.rmse / datasets;
  }
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  BenchRunner runner(argc, argv, "fig10_simulation",
                     "Error of cube, basic and tree on simulated data");
  const double scale = FlagDouble(argc, argv, "scale", 1.0);
  const int32_t datasets =
      static_cast<int32_t>(FlagDouble(argc, argv, "datasets", 5));
  const int32_t items = static_cast<int32_t>(500 * scale);
  runner.report().SetConfig("scale", scale);
  runner.report().SetConfig("datasets", static_cast<int64_t>(datasets));
  runner.report().SetConfig("items", static_cast<int64_t>(items));
  std::printf("items=%d datasets_per_point=%d (paper: 1000 items, 10 "
              "datasets)\n",
              items, datasets);

  std::printf("\n(a) RMSE vs noise level (generator complexity: 15 nodes)\n");
  Row({"Noise", "cube", "basic", "tree"});
  for (double noise : {0.05, 0.5, 1.0, 2.0, 4.0}) {
    const Point p = RunOne(&runner, 15, noise, datasets, items);
    Row({Fmt(noise), Fmt(p.cube), Fmt(p.basic), Fmt(p.tree)});
  }

  std::printf("\n(b) RMSE vs number of generator-tree nodes (noise 0.5)\n");
  Row({"Nodes", "cube", "basic", "tree"});
  for (int32_t nodes : {3, 7, 15, 31, 63}) {
    const Point p = RunOne(&runner, nodes, 0.5, datasets, items);
    Row({Fmt(nodes, "%.0f"), Fmt(p.cube), Fmt(p.basic), Fmt(p.tree)});
  }
  return runner.Finish();
}
