#ifndef BELLWETHER_BENCH_BENCH_UTIL_H_
#define BELLWETHER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace bellwether::bench {

/// Minimal flag reader: --name=value. Returns fallback when absent.
inline double FlagDouble(int argc, char** argv, const char* name,
                         double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline bool FlagBool(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Prints a header banner for one reproduced figure.
inline void Banner(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("================================================================\n");
}

/// Prints one table row: label followed by columns.
inline void Row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, const char* fmt = "%.4g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace bellwether::bench

#endif  // BELLWETHER_BENCH_BENCH_UTIL_H_
