#ifndef BELLWETHER_BENCH_BENCH_UTIL_H_
#define BELLWETHER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "obs/export.h"
#include "obs/heap_track.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"

namespace bellwether::bench {

/// Minimal flag reader: --name=value. Returns fallback when absent.
inline double FlagDouble(int argc, char** argv, const char* name,
                         double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline std::string FlagString(int argc, char** argv, const char* name,
                              const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline bool FlagBool(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Prints a header banner for one reproduced figure.
inline void Banner(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("================================================================\n");
}

/// Prints one table row: label followed by columns.
inline void Row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, const char* fmt = "%.4g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

/// Wall-clock time of one call, in seconds.
inline double TimeIt(const std::function<void()>& fn) {
  Stopwatch sw;
  fn();
  return sw.ElapsedSeconds();
}

/// Telemetry hook shared by the bench mains: when --metrics-out=<path> was
/// passed, writes the process metrics registry as JSON to <path> and the
/// trace buffer as Chrome trace JSON next to it (or to --trace-out=<path>).
/// Call once at the end of main.
inline void DumpTelemetryIfRequested(int argc, char** argv) {
  const std::string metrics_path = FlagString(argc, argv, "metrics-out", "");
  if (metrics_path.empty()) return;
  const std::string trace_path = FlagString(argc, argv, "trace-out", "");
  const Status st = obs::DumpDefaultTelemetry(metrics_path, trace_path);
  if (!st.ok()) {
    std::fprintf(stderr, "telemetry dump failed: %s\n",
                 st.ToString().c_str());
    return;
  }
  std::printf("\nmetrics written to %s\ntrace written to %s\n",
              metrics_path.c_str(),
              (trace_path.empty() ? obs::DeriveTracePath(metrics_path)
                                  : trace_path)
                  .c_str());
}

/// Fault-injection hook shared by the bench mains: when --faults=<spec> was
/// passed (same grammar as BELLWETHER_FAULTS, e.g.
/// "storage.scan:io@3;csv.row:corrupt@0.02"), arms the default fault
/// registry so a bench run doubles as a resilience drill. --fault-seed=<n>
/// fixes the probabilistic-trigger seed. Call once at the start of main.
inline void ArmFaultsIfRequested(int argc, char** argv) {
  const std::string spec = FlagString(argc, argv, "faults", "");
  if (spec.empty()) return;
  robust::FaultRegistry& faults = robust::FaultRegistry::Default();
  faults.set_seed(
      static_cast<uint64_t>(FlagDouble(argc, argv, "fault-seed", 0)));
  const Status st = faults.Arm(spec);
  if (!st.ok()) {
    std::fprintf(stderr, "bad --faults spec: %s\n", st.ToString().c_str());
    std::exit(2);
  }
  std::printf("fault injection armed: %s\n", spec.c_str());
}

/// Common flight-recorder harness for the bench drivers. Every driver
/// constructs one BenchRunner at the top of main (arms faults, prints the
/// banner), records measured work through TimePhase()/report(), and returns
/// Finish() — which captures trace spans, metrics, and environment metadata
/// into the report and writes `BENCH_<name>.json` (overridable with
/// --report-out=<path>; --no-report suppresses it). Setup work (data
/// generation) must be timed as its own phase, never folded into the
/// measured build phase.
///
/// Profiling: --profile-out=<path> arms the sampling CPU profiler and the
/// heap tracker for the whole run (--profile-period-us=<n> overrides the
/// 1 ms sampling period). Finish() writes the folded profile as
/// flamegraph.pl-compatible collapsed-stack text to <path> (tools/profdump
/// renders and diffs it) and attaches the top self-time frames plus
/// per-phase allocation counters to the run report's "profile" section.
/// Without the flag both facilities stay disarmed and the run and its
/// report are byte-for-byte what they were before profiling existed.
class BenchRunner {
 public:
  BenchRunner(int argc, char** argv, const char* name, const char* title)
      : argc_(argc), argv_(argv), report_(name) {
    obs::SetCurrentThreadName("main");
    obs::Profiler::RegisterCurrentThread();
    ArmFaultsIfRequested(argc, argv);
    const std::string faults = FlagString(argc, argv, "faults", "");
    if (!faults.empty()) report_.SetText("faults_armed", faults);
    profile_out_ = FlagString(argc, argv, "profile-out", "");
    if (!profile_out_.empty()) {
      obs::ProfilerOptions options;
      options.period_us = static_cast<int64_t>(
          FlagDouble(argc, argv, "profile-period-us", 1000));
      const Status st = obs::Profiler::Default().Start(options);
      if (!st.ok()) {
        std::fprintf(stderr, "profiler start failed: %s\n",
                     st.ToString().c_str());
        std::exit(2);
      }
      obs::HeapTracker::Enable();
      std::printf("profiling armed: %lldus CPU sampling -> %s\n",
                  static_cast<long long>(options.period_us),
                  profile_out_.c_str());
    }
    Banner(name, title);
  }

  obs::RunReport& report() { return report_; }

  /// Overrides the default report path (`BENCH_<name>.json`). Drivers with a
  /// legacy --out flag route it here; --report-out still wins.
  void set_default_report_path(std::string path) {
    default_report_path_ = std::move(path);
  }

  /// Runs `fn` under a trace span and records its wall time as a report
  /// phase. Same-name calls accumulate. Returns the elapsed seconds.
  double TimePhase(const char* phase, const std::function<void()>& fn) {
    obs::TraceSpan span(phase, "bench");
    const double seconds = TimeIt(fn);
    report_.AddPhase(phase, seconds);
    return seconds;
  }

  /// Finalizes and writes the report (plus the legacy --metrics-out dump).
  /// Returns the process exit code: 0, or 1 when the report write failed.
  int Finish() {
    obs::RegisterStandardMetrics(&obs::DefaultMetrics());
    report_.CapturePhasesFromTrace();
    report_.CaptureMetrics();
    report_.CaptureEnvironment();
    int code = 0;
    if (!profile_out_.empty()) {
      auto profile = obs::Profiler::Default().Stop();
      obs::HeapTracker::Disable();
      if (!profile.ok()) {
        std::fprintf(stderr, "profiler stop failed: %s\n",
                     profile.status().ToString().c_str());
        code = 1;
      } else {
        report_.set_profile(obs::SummarizeProfile(
            *profile, obs::HeapTracker::Snapshot()));
        const Status st =
            obs::WriteTextFile(profile_out_, profile->ToCollapsed());
        if (st.ok()) {
          std::printf("\ncollapsed-stack profile (%lld samples) written to "
                      "%s\n",
                      static_cast<long long>(profile->total_samples()),
                      profile_out_.c_str());
        } else {
          std::fprintf(stderr, "profile write failed: %s\n",
                       st.ToString().c_str());
          code = 1;
        }
      }
    }
    if (!FlagBool(argc_, argv_, "no-report")) {
      const std::string path =
          FlagString(argc_, argv_, "report-out",
                     default_report_path_.empty()
                         ? "BENCH_" + report_.name() + ".json"
                         : default_report_path_);
      const Status st = obs::WriteTextFile(path, report_.ToJson() + "\n");
      if (st.ok()) {
        std::printf("\nrun report written to %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "run report write failed: %s\n",
                     st.ToString().c_str());
        code = 1;
      }
    }
    DumpTelemetryIfRequested(argc_, argv_);
    return code;
  }

 private:
  int argc_;
  char** argv_;
  obs::RunReport report_;
  std::string default_report_path_;
  std::string profile_out_;
};

}  // namespace bellwether::bench

#endif  // BELLWETHER_BENCH_BENCH_UTIL_H_
