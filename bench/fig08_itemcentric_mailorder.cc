// Reproduces Figure 8: item-centric bellwether-based prediction on the mail
// order dataset — 10-fold cross-validated prediction RMSE of the Basic,
// Tree, and Cube methods across budgets.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/bellwether_cube.h"
#include "core/item_centric_eval.h"
#include "core/training_data_gen.h"
#include "datagen/mail_order.h"

namespace {
using namespace bellwether;         // NOLINT
using namespace bellwether::bench;  // NOLINT
}  // namespace

int main(int argc, char** argv) {
  BenchRunner runner(argc, argv, "fig08_itemcentric_mailorder",
                     "Bellwether-based prediction on the mail order dataset");
  const double scale = FlagDouble(argc, argv, "scale", 1.0);
  datagen::MailOrderConfig config;
  config.num_items = static_cast<int32_t>(300 * scale);
  config.seed = 1996;
  runner.report().SetConfig("scale", scale);
  runner.report().SetConfig("num_items",
                            static_cast<int64_t>(config.num_items));
  runner.report().SetConfig("seed", static_cast<int64_t>(config.seed));

  datagen::MailOrderDataset dataset;
  runner.TimePhase("datagen", [&] {
    dataset = datagen::GenerateMailOrder(config);
  });
  const core::BellwetherSpec spec = dataset.MakeSpec(85.0, 0.5);
  Result<core::GeneratedTrainingData> data = Status::OK();
  runner.TimePhase("training_data_gen", [&] {
    data = core::GenerateTrainingDataInMemory(spec);
  });
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto subsets =
      core::ItemSubsetSpace::Create(dataset.items, dataset.item_hierarchies);
  if (!subsets.ok()) {
    std::fprintf(stderr, "%s\n", subsets.status().ToString().c_str());
    return 1;
  }

  core::ItemCentricOptions opts;
  opts.folds = 10;
  opts.seed = 7;
  opts.tree.split_columns = {"Category", "ExpenseRange", "RDExpense"};
  opts.tree.min_items = 40;
  opts.tree.max_depth = 4;
  opts.tree.max_numeric_split_points = 8;
  opts.tree.min_examples_per_model = 20;
  opts.cube.min_subset_size = 30;
  opts.cube.min_examples_per_model = 20;
  opts.cube.compute_cv_stats = true;
  opts.basic.estimate = regression::ErrorEstimate::kTrainingSet;
  opts.basic.min_examples = 20;

  // Per-budget setup (set filtering, input wiring) is timed separately from
  // the measured evaluation, so the report isolates the method cost.
  int64_t budgets_evaluated = 0;
  Row({"Budget", "Basic", "Tree", "Cube", "(predicted/missed)"});
  for (double budget : {10.0, 25.0, 40.0, 55.0, 70.0, 85.0}) {
    std::vector<storage::RegionTrainingSet> sets;
    runner.TimePhase("budget_setup", [&] {
      sets = core::FilterSetsByBudget(
          *data->memory_sets(), data->profile.region_costs, budget);
    });
    if (sets.empty()) {
      Row({Fmt(budget, "%.0f"), "-", "-", "-", "(no feasible region)"});
      continue;
    }
    core::ItemCentricInput input;
    input.sets = &sets;
    input.targets = &data->profile.targets;
    input.item_table = &dataset.items;
    input.subsets = *subsets;
    Result<core::ItemCentricResult> r = Status::OK();
    runner.TimePhase("evaluate", [&] {
      r = core::EvaluateItemCentric(input, opts);
    });
    if (!r.ok()) {
      Row({Fmt(budget, "%.0f"), "-", "-", "-",
           r.status().ToString().c_str()});
      continue;
    }
    ++budgets_evaluated;
    char counts[64];
    std::snprintf(counts, sizeof(counts), "(%lld/%lld)",
                  static_cast<long long>(r->basic.predicted),
                  static_cast<long long>(r->basic.missed));
    Row({Fmt(budget, "%.0f"), Fmt(r->basic.rmse), Fmt(r->tree.rmse),
         Fmt(r->cube.rmse), counts});
  }
  runner.report().SetCount("budgets_evaluated", budgets_evaluated);
  return runner.Finish();
}
