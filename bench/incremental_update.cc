// Incremental-maintenance bench: builds a bellwether cube once through the
// BellwetherState delta path, then folds in a small batch of late-arriving
// fact rows — all rows of a few items, well under 1% of the data, the
// "corrected facts for these products" workload — with ApplyDelta +
// Finalize, and compares that against a from-scratch single-scan rebuild
// over the same rows. Reports the delta-vs-rebuild speedup and the
// dirty-cell reuse counters, and exits non-zero unless the maintained cube
// is bit-identical to the rebuild — the same determinism contract
// tests/state_delta_test.cc enforces.
//
//   ./build/bench/incremental_update --scale=0.25 \
//       --report-out=BENCH_incremental_update.json

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/bellwether_cube.h"
#include "core/bellwether_state.h"
#include "core/model_io.h"
#include "datagen/simulation.h"
#include "obs/metrics.h"
#include "storage/training_data.h"

namespace {

using namespace bellwether;         // NOLINT
using namespace bellwether::bench;  // NOLINT

storage::RegionTrainingSet SliceRows(const storage::RegionTrainingSet& set,
                                     size_t begin, size_t end) {
  storage::RegionTrainingSet out;
  out.region = set.region;
  out.num_features = set.num_features;
  const size_t p = static_cast<size_t>(set.num_features);
  for (size_t i = begin; i < end; ++i) {
    out.items.push_back(set.items[i]);
    out.targets.push_back(set.targets[i]);
    for (size_t j = 0; j < p; ++j) {
      out.features.push_back(set.features[i * p + j]);
    }
    if (!set.weights.empty()) out.weights.push_back(set.weights[i]);
  }
  return out;
}

std::string ReadAll(const std::string& path) {
  std::string out;
  if (FILE* f = std::fopen(path.c_str(), "rb")) {
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
    std::fclose(f);
  }
  return out;
}

/// Saves the cube and returns the artifact bytes (the comparison the
/// determinism tests make).
std::string ArtifactBytes(const core::BellwetherCube& cube,
                          const std::string& path) {
  const Status st = core::SaveBellwetherCube(cube, path);
  if (!st.ok()) {
    std::fprintf(stderr, "cube save failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  std::string bytes = ReadAll(path);
  std::remove(path.c_str());
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  BenchRunner runner(argc, argv, "incremental_update",
                     "ApplyDelta maintenance vs a from-scratch rebuild");
  const double scale = FlagDouble(argc, argv, "scale", 1.0);
  const auto delta_items = static_cast<int32_t>(
      FlagDouble(argc, argv, "delta-items", 2.0));
  runner.report().SetConfig("scale", scale);
  runner.report().SetConfig("delta_items", static_cast<int64_t>(delta_items));

  datagen::SimulationConfig sim_config;
  sim_config.num_items = static_cast<int32_t>(1200 * scale);
  sim_config.generator_tree_nodes = 15;
  sim_config.noise = 0.3;
  sim_config.num_windows = 4;
  sim_config.location_fanouts = {3, 3};
  sim_config.seed = 2006;
  runner.report().SetConfig("seed", static_cast<int64_t>(sim_config.seed));
  datagen::SimulationDataset sim;
  runner.TimePhase("datagen", [&] {
    sim = datagen::GenerateSimulation(sim_config);
  });

  // Split out the rows of the first `delta_items` items as the late batch.
  // Dirty-cell reuse depends on the delta being localized in the item
  // lattice — only the subsets containing these items need re-derivation.
  // Relative row order is preserved on both sides of the split, so a
  // single-scan rebuild over base-then-delta per region is the exact
  // ground truth for the maintained state.
  std::vector<storage::RegionTrainingSet> base, delta, rebuilt_sets;
  size_t total_rows = 0, delta_rows = 0;
  for (const auto& set : sim.sets) {
    const size_t n = set.targets.size();
    storage::RegionTrainingSet head = SliceRows(set, 0, 0);
    storage::RegionTrainingSet tail = SliceRows(set, 0, 0);
    const size_t p = static_cast<size_t>(set.num_features);
    for (size_t i = 0; i < n; ++i) {
      storage::RegionTrainingSet& side =
          set.items[i] < delta_items ? tail : head;
      side.items.push_back(set.items[i]);
      side.targets.push_back(set.targets[i]);
      for (size_t j = 0; j < p; ++j) {
        side.features.push_back(set.features[i * p + j]);
      }
      if (!set.weights.empty()) side.weights.push_back(set.weights[i]);
    }
    storage::RegionTrainingSet both = head;
    both.items.insert(both.items.end(), tail.items.begin(), tail.items.end());
    both.targets.insert(both.targets.end(), tail.targets.begin(),
                        tail.targets.end());
    both.features.insert(both.features.end(), tail.features.begin(),
                         tail.features.end());
    both.weights.insert(both.weights.end(), tail.weights.begin(),
                        tail.weights.end());
    rebuilt_sets.push_back(std::move(both));
    delta_rows += tail.targets.size();
    total_rows += n;
    if (!head.targets.empty()) base.push_back(std::move(head));
    if (!tail.targets.empty()) delta.push_back(std::move(tail));
  }
  runner.report().SetCount("rows_total", static_cast<int64_t>(total_rows));
  runner.report().SetCount("rows_delta", static_cast<int64_t>(delta_rows));

  auto subsets = core::ItemSubsetSpace::Create(sim.items,
                                               sim.item_hierarchies);
  if (!subsets.ok()) {
    std::fprintf(stderr, "%s\n", subsets.status().ToString().c_str());
    return 1;
  }
  core::CubeBuildConfig config;
  config.min_subset_size = 20;
  config.min_examples_per_model = 8;

  // ---- Base build through the state (the "build once" half) ----
  core::BellwetherState::Options options;
  options.config = config;
  auto state = core::BellwetherState::Init(*subsets, options);
  if (!state.ok()) {
    std::fprintf(stderr, "%s\n", state.status().ToString().c_str());
    return 1;
  }
  Result<core::BellwetherCube> base_cube = Status::OK();
  runner.TimePhase("base_build", [&] {
    Status st = (*state)->ApplyDelta(base);
    if (st.ok()) {
      base_cube = (*state)->Finalize();
    } else {
      base_cube = st;
    }
  });
  if (!base_cube.ok()) {
    std::fprintf(stderr, "%s\n", base_cube.status().ToString().c_str());
    return 1;
  }

  // ---- From-scratch rebuild over all rows (what the delta path replaces) --
  storage::MemoryTrainingData full_source(std::move(rebuilt_sets));
  Result<core::BellwetherCube> rebuilt = Status::OK();
  const double rebuild_seconds = runner.TimePhase("full_rebuild", [&] {
    rebuilt = core::BuildBellwetherCubeSingleScan(&full_source, *subsets,
                                                  config);
  });
  if (!rebuilt.ok()) {
    std::fprintf(stderr, "%s\n", rebuilt.status().ToString().c_str());
    return 1;
  }

  // ---- Incremental maintenance: fold in the delta, re-finalize ----
  auto* rederived =
      obs::DefaultMetrics().GetCounter(obs::kMStateCellsRederived);
  auto* reused = obs::DefaultMetrics().GetCounter(obs::kMStateCellsReused);
  const int64_t rederived_before = rederived->Value();
  const int64_t reused_before = reused->Value();
  Result<core::BellwetherCube> maintained = Status::OK();
  const double apply_seconds = runner.TimePhase("delta_apply", [&] {
    const Status st = (*state)->ApplyDelta(std::move(delta));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      std::exit(1);
    }
  });
  const double finalize_seconds = runner.TimePhase("delta_finalize", [&] {
    maintained = (*state)->Finalize();
  });
  if (!maintained.ok()) {
    std::fprintf(stderr, "%s\n", maintained.status().ToString().c_str());
    return 1;
  }
  const int64_t cells_rederived = rederived->Value() - rederived_before;
  const int64_t cells_reused = reused->Value() - reused_before;

  // ---- Bit-identity: maintained artifact == rebuilt artifact ----
  // The saved cube carries every cell (subset, region, error, model, CV
  // stats), so byte equality is the full content contract. The reports'
  // logical sections differ only in the builder name ("cube_state" vs
  // "cube_single_scan"); their state-vs-state equality is covered by
  // tests/state_delta_test.cc.
  const std::string tmp = "/tmp/bw_incremental_update.bwc";
  const bool identical =
      ArtifactBytes(*maintained, tmp) == ArtifactBytes(*rebuilt, tmp);

  const double delta_seconds = apply_seconds + finalize_seconds;
  const double speedup =
      delta_seconds > 0 ? rebuild_seconds / delta_seconds : 0.0;
  Row({"Path", "Time(s)", "Cells", "Rows"});
  Row({"rebuild", Fmt(rebuild_seconds, "%.3f"),
       Fmt(static_cast<double>(rebuilt->cells().size()), "%.0f"),
       Fmt(static_cast<double>(total_rows), "%.0f")});
  Row({"delta", Fmt(delta_seconds, "%.3f"),
       Fmt(static_cast<double>(cells_rederived), "%.0f"),
       Fmt(static_cast<double>(delta_rows), "%.0f")});
  std::printf("\ndelta rows=%zu/%zu, cells rederived=%lld reused=%lld, "
              "speedup=%.1fx, identical=%s\n",
              delta_rows, total_rows, static_cast<long long>(cells_rederived),
              static_cast<long long>(cells_reused), speedup,
              identical ? "yes" : "NO");
  if (!identical) {
    std::fprintf(stderr,
                 "determinism violation: ApplyDelta-maintained cube differs "
                 "from the from-scratch rebuild\n");
    return 1;
  }

  runner.report().SetCount("cells_rederived", cells_rederived);
  runner.report().SetCount("cells_reused", cells_reused);
  runner.report().SetCount("identical_to_rebuild", identical ? 1 : 0);
  runner.report().SetValue("delta_speedup", speedup);
  return runner.Finish();
}
