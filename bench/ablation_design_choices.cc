// Ablation benches for the design choices DESIGN.md calls out:
//   1. Theorem 1 (algebraic SSE): the optimized cube's base-subset
//      accumulation + lattice rollup vs the single-scan builder's
//      per-subset refits, as the subset lattice grows.
//   2. Error estimate: training-set scoring vs 10-fold cross-validation
//      scoring in the basic search — the cost of the expensive estimate the
//      paper avoids via Fig. 7(c)'s agreement argument.
//   3. Iceberg pruning: pruned vs brute-force feasible-region search as the
//      constraints tighten.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/basic_search.h"
#include "core/bellwether_cube.h"
#include "core/training_data_gen.h"
#include "datagen/mail_order.h"
#include "datagen/scalability.h"
#include "olap/iceberg.h"
#include "storage/training_data.h"
#include "storage/training_data_sink.h"

namespace {
using namespace bellwether;         // NOLINT
using namespace bellwether::bench;  // NOLINT
}  // namespace

int main(int argc, char** argv) {
  BenchRunner runner(argc, argv, "ablation_design_choices",
                     "Design-choice ablations");
  const double scale = FlagDouble(argc, argv, "scale", 1.0);
  runner.report().SetConfig("scale", scale);

  // ---- 1. Optimized rollup vs per-subset refits ----
  std::printf("\n[1] Theorem-1 rollup vs per-subset accumulation, "
              "time (s) by lattice size\n");
  Row({"Subsets", "single-scan", "optimized", "speedup"});
  for (int32_t fanout : {2, 4, 6, 8}) {
    datagen::ScalabilityConfig config;
    config.num_items = static_cast<int32_t>(1500 * scale);
    config.dim1_fanouts = {7};
    config.dim2_fanouts = {7};
    config.item_hierarchy_fanouts = {fanout, fanout};
    storage::MemorySink sink;
    Result<datagen::ScalabilityDataset> meta = Status::OK();
    runner.TimePhase("datagen", [&] {
      meta = datagen::GenerateScalability(config, &sink);
    });
    if (!meta.ok()) return 1;
    auto src = sink.Finish();
    if (!src.ok()) return 1;
    storage::TrainingDataSource& source = **src;
    auto subsets =
        core::ItemSubsetSpace::Create(meta->items, meta->item_hierarchies);
    if (!subsets.ok()) return 1;
    core::CubeBuildConfig cube_cfg;
    cube_cfg.min_subset_size = 1;
    cube_cfg.min_examples_per_model = 10;
    cube_cfg.compute_cv_stats = false;
    Result<core::BellwetherCube> scan = Status::OK();
    const double t_scan = runner.TimePhase("cube_single_scan", [&] {
      scan = core::BuildBellwetherCubeSingleScan(&source, *subsets, cube_cfg);
    });
    if (!scan.ok()) return 1;
    Result<core::BellwetherCube> opt = Status::OK();
    const double t_opt = runner.TimePhase("cube_optimized", [&] {
      opt = core::BuildBellwetherCubeOptimized(&source, *subsets, cube_cfg);
    });
    if (!opt.ok()) return 1;
    Row({Fmt(static_cast<double>(scan->cells().size()), "%.0f"),
         Fmt(t_scan, "%.2f"), Fmt(t_opt, "%.2f"),
         Fmt(t_scan / std::max(t_opt, 1e-9), "%.1fx")});
  }

  // ---- 2. Training-set vs cross-validation scoring ----
  std::printf("\n[2] basic search scoring: training-set vs 10-fold CV\n");
  datagen::MailOrderConfig mo;
  mo.num_items = static_cast<int32_t>(300 * scale);
  datagen::MailOrderDataset dataset;
  runner.TimePhase("datagen", [&] {
    dataset = datagen::GenerateMailOrder(mo);
  });
  const core::BellwetherSpec spec = dataset.MakeSpec(85.0, 0.5);
  Result<core::GeneratedTrainingData> data = Status::OK();
  runner.TimePhase("training_data_gen", [&] {
    data = core::GenerateTrainingDataInMemory(spec);
  });
  if (!data.ok()) return 1;
  storage::TrainingDataSource& source = *data->source;
  Row({"Estimate", "Time(s)", "Bellwether", "RMSE"});
  for (const bool cv : {false, true}) {
    core::BasicSearchOptions opts;
    opts.estimate = cv ? regression::ErrorEstimate::kCrossValidation
                       : regression::ErrorEstimate::kTrainingSet;
    opts.min_examples = 40;
    Result<core::BasicSearchResult> r = Status::OK();
    const double t = runner.TimePhase(
        cv ? "search_cv" : "search_training_set", [&] {
          r = core::RunBasicBellwetherSearch(&source, opts);
        });
    if (!r.ok() || !r->found()) return 1;
    Row({cv ? "10-fold-CV" : "training-set", Fmt(t, "%.2f"),
         spec.space->RegionLabel(r->bellwether), Fmt(r->error.rmse)});
  }

  // ---- 3. Iceberg pruning ----
  std::printf("\n[3] feasible-region search: pruned vs brute force "
              "(examined regions)\n");
  Row({"Budget", "brute", "pruned-examined", "pruned-skipped"});
  for (double budget : {10.0, 30.0, 60.0, 85.0}) {
    olap::FeasibleRegions brute, pruned;
    runner.TimePhase("iceberg_brute_force", [&] {
      brute = olap::FindFeasibleRegionsBruteForce(
          *spec.space, data->profile.region_costs,
          data->profile.region_coverage, budget, 0.5);
    });
    runner.TimePhase("iceberg_pruned", [&] {
      pruned = olap::FindFeasibleRegionsPruned(
          *spec.space, data->profile.region_costs,
          data->profile.region_coverage, budget, 0.5);
    });
    if (brute.regions != pruned.regions) {
      std::fprintf(stderr, "MISMATCH at budget %.0f\n", budget);
      return 1;
    }
    Row({Fmt(budget, "%.0f"),
         Fmt(static_cast<double>(brute.regions_examined), "%.0f"),
         Fmt(static_cast<double>(pruned.regions_examined), "%.0f"),
         Fmt(static_cast<double>(pruned.regions_pruned), "%.0f")});
  }
  return runner.Finish();
}
