// Reproduces Figure 7 of the paper (basic bellwether analysis of the mail
// order dataset): (a) bellwether / average / random-sampling RMSE vs budget
// using 10-fold cross-validation error, (b) the fraction of regions
// statistically indistinguishable from the bellwether at 95% / 99%
// confidence, and (c) the same error curves using training-set error.
//
// The proprietary 1996 mail-order dataset is replaced by the synthetic
// generator of src/datagen/mail_order.* (planted bellwether state); see
// DESIGN.md for the substitution rationale.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/baselines.h"
#include "core/basic_search.h"
#include "core/training_data_gen.h"
#include "datagen/mail_order.h"
#include "storage/training_data.h"

namespace {

using namespace bellwether;            // NOLINT
using namespace bellwether::bench;     // NOLINT
using core::BasicSearchOptions;
using core::BasicSearchResult;

void PrintErrorTable(const char* caption, const BasicSearchResult& full,
                     storage::TrainingDataSource* source,
                     const core::GeneratedTrainingData& data,
                     const core::BellwetherSpec& spec,
                     const std::vector<double>& budgets, bool with_sampling,
                     uint64_t seed) {
  std::printf("\n%s\n", caption);
  Row({"Budget", "BelErr", "AvgErr", with_sampling ? "SmpErr" : "",
       "Bellwether"});
  for (double budget : budgets) {
    auto r = core::SelectUnderBudget(full, source,
                                     data.profile.region_costs, budget);
    if (!r.ok() || !r->found()) {
      Row({Fmt(budget, "%.0f"), "-", "-", "-", "(none feasible)"});
      continue;
    }
    std::string smp = "";
    if (with_sampling) {
      Rng rng(seed);
      auto s = core::RandomSamplingError(spec, budget, /*trials=*/3, &rng);
      smp = s.ok() ? Fmt(s->rmse) : std::string("-");
    }
    Row({Fmt(budget, "%.0f"), Fmt(r->error.rmse), Fmt(r->AverageError()), smp,
         spec.space->RegionLabel(r->bellwether)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchRunner runner(argc, argv, "fig07_basic_mailorder",
                     "Basic bellwether analysis of the mail order dataset");
  const double scale = FlagDouble(argc, argv, "scale", 1.0);
  datagen::MailOrderConfig config;
  config.num_items = static_cast<int32_t>(400 * scale);
  config.seed = 1996;
  runner.report().SetConfig("scale", scale);
  runner.report().SetConfig("num_items", static_cast<int64_t>(config.num_items));
  runner.report().SetConfig("seed", static_cast<int64_t>(config.seed));
  std::printf("items=%d months=%d (planted bellwether: [1-8, %s])\n",
              config.num_items, config.num_months, config.planted_state);

  // Setup (data generation) is timed as its own phase, separate from the
  // measured search phases below.
  datagen::MailOrderDataset dataset;
  const double gen_s = runner.TimePhase("datagen", [&] {
    dataset = datagen::GenerateMailOrder(config);
  });
  std::printf("generated %zu transactions in %.1fs\n",
              dataset.fact.num_rows(), gen_s);

  const double max_budget = 85.0;
  const core::BellwetherSpec spec = dataset.MakeSpec(max_budget, 0.5);
  Result<core::GeneratedTrainingData> data = Status::OK();
  runner.TimePhase("training_data_gen", [&] {
    data = core::GenerateTrainingDataInMemory(spec);
  });
  if (!data.ok()) {
    std::fprintf(stderr, "training data generation failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("feasible regions at budget %.0f: %zu (examined %lld, pruned "
              "%lld of %lld candidate regions)\n",
              max_budget, data->source->num_region_sets(),
              static_cast<long long>(data->profile.feasible.regions_examined),
              static_cast<long long>(data->profile.feasible.regions_pruned),
              static_cast<long long>(spec.space->NumRegions()));
  runner.report().SetCount(
      "feasible_regions",
      static_cast<int64_t>(data->source->num_region_sets()));

  storage::TrainingDataSource& source = *data->source;
  const std::vector<double> budgets{5, 15, 25, 35, 45, 55, 65, 75, 85};

  // ---- (a) Cross-validation error vs budget ----
  BasicSearchOptions cv_opts;
  cv_opts.estimate = regression::ErrorEstimate::kCrossValidation;
  cv_opts.cv_folds = 10;
  cv_opts.min_examples = 40;
  Result<BasicSearchResult> cv_full = Status::OK();
  runner.TimePhase("search_cv", [&] {
    cv_full = core::RunBasicBellwetherSearch(&source, cv_opts);
  });
  if (!cv_full.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 cv_full.status().ToString().c_str());
    return 1;
  }
  runner.report().SetCount("cv.regions_scored",
                           cv_full->telemetry.regions_scored);
  runner.report().SetCount("cv.bellwether_region",
                           static_cast<int64_t>(cv_full->bellwether));
  if (cv_full->found()) {
    runner.report().SetValue("cv.bellwether_rmse", cv_full->error.rmse);
  }
  runner.TimePhase("budget_sweep", [&] {
    PrintErrorTable("(a) error vs budget — 10-fold cross-validation RMSE",
                    *cv_full, &source, *data, spec, budgets,
                    /*with_sampling=*/true, config.seed);

    // ---- (b) Fraction of indistinguishable regions ----
    std::printf("\n(b) fraction of regions within the bellwether's "
                "confidence interval\n");
    Row({"Budget", "95%", "99%"});
    for (double budget : budgets) {
      auto r = core::SelectUnderBudget(*cv_full, &source,
                                       data->profile.region_costs, budget);
      if (!r.ok() || !r->found()) {
        Row({Fmt(budget, "%.0f"), "-", "-"});
        continue;
      }
      Row({Fmt(budget, "%.0f"), Fmt(r->FractionIndistinguishable(0.95)),
           Fmt(r->FractionIndistinguishable(0.99))});
    }
  });

  // ---- (c) Training-set error vs budget ----
  BasicSearchOptions tr_opts = cv_opts;
  tr_opts.estimate = regression::ErrorEstimate::kTrainingSet;
  Result<BasicSearchResult> tr_full = Status::OK();
  runner.TimePhase("search_training_set", [&] {
    tr_full = core::RunBasicBellwetherSearch(&source, tr_opts);
  });
  if (!tr_full.ok()) return 1;
  runner.report().SetCount("training_set.bellwether_region",
                           static_cast<int64_t>(tr_full->bellwether));
  PrintErrorTable("(c) error vs budget — training-set RMSE (cheap estimate)",
                  *tr_full, &source, *data, spec, budgets,
                  /*with_sampling=*/false, config.seed);

  return runner.Finish();
}
