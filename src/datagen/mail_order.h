#ifndef BELLWETHER_DATAGEN_MAIL_ORDER_H_
#define BELLWETHER_DATAGEN_MAIL_ORDER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/bellwether_cube.h"
#include "core/spec.h"
#include "olap/cost.h"
#include "olap/region.h"
#include "table/table.h"

namespace bellwether::datagen {

/// Parameters of the synthetic mail-order catalog dataset — the stand-in for
/// the proprietary 1996 dataset of §7.1 (1,012 items / 4M transactions).
/// The generator plants a bellwether: one state's sales track each item's
/// total profit with far less noise than any other state's, so the basic
/// search should recover [1-k months, planted state].
struct MailOrderConfig {
  int32_t num_items = 400;
  int32_t num_months = 10;     // interval dimension 1..10 (paper §7.1)
  int32_t num_catalogs = 40;
  /// Postal abbreviation of the planted bellwether state.
  const char* planted_state = "MD";
  /// Month-level relative noise of the planted state's early sales; longer
  /// windows average it away. Other states additionally carry a persistent
  /// per-(item, state) bias that no window length can remove.
  double planted_noise = 0.3;
  double other_noise_min = 0.3;
  double other_noise_max = 0.8;
  /// Mean transactions per (item, state, month).
  double density = 1.2;
  uint64_t seed = 2006;
};

/// The generated dataset: the star schema, the region space, the cost model,
/// and the item hierarchies used by the bellwether cube.
struct MailOrderDataset {
  table::Table fact;      // Time, Location, ItemID, CatalogNo, Quantity, Profit
  table::Table items;     // ItemID, Category, ExpenseRange, RDExpense
  table::Table catalogs;  // CatalogNo, Pages, Circulation
  std::unique_ptr<olap::RegionSpace> space;
  std::unique_ptr<olap::CostModel> cost;
  /// The planted region [1-8, planted_state].
  olap::RegionId planted_region = olap::kInvalidRegion;
  /// Node id of the planted state in the location hierarchy.
  olap::NodeId planted_state_node = olap::kInvalidNode;
  std::vector<core::ItemHierarchy> item_hierarchies;

  /// Assembles a BellwetherSpec over this dataset (pointers into *this; the
  /// dataset must outlive the spec). Features: regional profit (sum),
  /// regional orders (count), regional max catalog pages, regional distinct
  /// catalogs; item feature: RDExpense. Target: total profit.
  core::BellwetherSpec MakeSpec(double budget, double min_coverage) const;
};

/// Generates the dataset deterministically from config.seed.
MailOrderDataset GenerateMailOrder(const MailOrderConfig& config);

}  // namespace bellwether::datagen

#endif  // BELLWETHER_DATAGEN_MAIL_ORDER_H_
