#include "datagen/scalability.h"

#include <cmath>

#include "common/check.h"
#include "common/random.h"
#include "datagen/hierarchy_util.h"

namespace bellwether::datagen {

namespace {

using olap::HierarchicalDimension;
using olap::NodeId;
using olap::RegionId;
using table::DataType;
using table::Field;
using table::Schema;
using table::Table;
using table::Value;

// Counter-based uniform value in [0, 10): the regional features of a
// (region, item, k) triple are a pure hash, so the generator can stream
// region by region without materializing the whole feature tensor.
double HashedFeature(uint64_t seed, int64_t region, int32_t item, int32_t k) {
  uint64_t z = seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(region) + 1));
  z ^= 0xBF58476D1CE4E5B9ULL * (static_cast<uint64_t>(item) + 1);
  z ^= 0x94D049BB133111EBULL * (static_cast<uint64_t>(k) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return 10.0 * static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

std::vector<std::string> ScalabilityDataset::TreeSplitColumns() const {
  return numeric_feature_columns;
}

Result<ScalabilityDataset> GenerateScalability(
    const ScalabilityConfig& config, storage::TrainingDataSink* sink) {
  if (sink == nullptr) {
    return Status::InvalidArgument("GenerateScalability: sink is null");
  }
  Rng rng(config.seed);
  ScalabilityDataset out;

  // ---- Fact dimensions and region space ----
  std::vector<olap::Dimension> dims;
  dims.emplace_back(
      BuildBalancedHierarchy("Dim1", "All1", config.dim1_fanouts, "A"));
  dims.emplace_back(
      BuildBalancedHierarchy("Dim2", "All2", config.dim2_fanouts, "B"));
  out.space = std::make_unique<olap::RegionSpace>(std::move(dims));
  out.num_regions = out.space->NumRegions();
  out.total_examples = out.num_regions * config.num_items;

  // ---- Item hierarchies ----
  std::vector<HierarchicalDimension> item_dims;
  for (int32_t h = 0; h < config.num_item_hierarchies; ++h) {
    item_dims.push_back(BuildBalancedHierarchy(
        "IH" + std::to_string(h + 1), "Any" + std::to_string(h + 1),
        config.item_hierarchy_fanouts, "H" + std::to_string(h + 1)));
  }

  // ---- Item table ----
  std::vector<Field> fields{{"ItemID", DataType::kInt64}};
  for (int32_t h = 0; h < config.num_item_hierarchies; ++h) {
    fields.push_back({"IH" + std::to_string(h + 1), DataType::kString});
  }
  for (int32_t k = 0; k < config.num_numeric_item_features; ++k) {
    const std::string name = "N" + std::to_string(k + 1);
    fields.push_back({name, DataType::kDouble});
    out.numeric_feature_columns.push_back(name);
  }
  out.items = Table(Schema(fields));
  for (int32_t i = 0; i < config.num_items; ++i) {
    std::vector<Value> row{Value(static_cast<int64_t>(i + 1))};
    for (int32_t h = 0; h < config.num_item_hierarchies; ++h) {
      const auto& leaves = item_dims[h].leaves();
      const NodeId leaf = leaves[rng.NextUint64(leaves.size())];
      row.emplace_back(item_dims[h].label(leaf));
    }
    for (int32_t k = 0; k < config.num_numeric_item_features; ++k) {
      row.emplace_back(rng.NextDouble(0.0, 1.0));
    }
    out.items.AppendRow(row);
  }

  // ---- Four predefined bellwether regions with small error ----
  const int32_t kGroups = 4;
  std::vector<RegionId> group_region(kGroups);
  std::vector<std::vector<double>> group_beta(kGroups);
  for (int32_t g = 0; g < kGroups; ++g) {
    group_region[g] = static_cast<RegionId>(rng.NextUint64(out.num_regions));
    group_beta[g].resize(config.num_regional_features);
    for (auto& b : group_beta[g]) b = rng.NextDouble(-2.0, 2.0);
  }
  std::vector<int32_t> group_of(config.num_items);
  out.targets.resize(config.num_items);
  for (int32_t i = 0; i < config.num_items; ++i) {
    group_of[i] = static_cast<int32_t>(rng.NextUint64(kGroups));
    const int32_t g = group_of[i];
    double y = 0.0;
    for (int32_t k = 0; k < config.num_regional_features; ++k) {
      y += group_beta[g][k] *
           HashedFeature(config.seed, group_region[g], i, k);
    }
    out.targets[i] = y + config.noise * rng.NextGaussian();
  }

  // ---- Stream the entire training data, region-major ----
  // The item/target columns are identical across regions; build them once
  // and copy into each region's freshly built set, which is then moved into
  // the sink — only one region is ever resident on the producer side.
  const int32_t p = 1 + config.num_regional_features;
  std::vector<int32_t> item_ids(config.num_items);
  for (int32_t i = 0; i < config.num_items; ++i) item_ids[i] = i;
  for (RegionId r = 0; r < out.num_regions; ++r) {
    storage::RegionTrainingSet set;
    set.region = r;
    set.num_features = p;
    set.items = item_ids;
    set.targets = out.targets;
    set.features.resize(static_cast<size_t>(config.num_items) * p);
    for (int32_t i = 0; i < config.num_items; ++i) {
      double* row = set.features.data() + static_cast<size_t>(i) * p;
      row[0] = 1.0;
      for (int32_t k = 0; k < config.num_regional_features; ++k) {
        row[1 + k] = HashedFeature(config.seed, r, i, k);
      }
    }
    BW_RETURN_IF_ERROR(sink->Append(std::move(set)));
  }

  for (int32_t h = 0; h < config.num_item_hierarchies; ++h) {
    out.item_hierarchies.push_back(core::ItemHierarchy{
        "IH" + std::to_string(h + 1), std::move(item_dims[h])});
  }
  return out;
}

}  // namespace bellwether::datagen
