#include "datagen/mail_order.h"

#include <cmath>

#include "common/check.h"
#include "common/random.h"
#include "datagen/hierarchy_util.h"

namespace bellwether::datagen {

namespace {

using olap::HierarchicalDimension;
using olap::IntervalDimension;
using olap::NodeId;
using table::DataType;
using table::Field;
using table::Schema;
using table::Table;
using table::Value;

// Two-level item hierarchy over categories:
// All -> Hardware {Desktop, Laptop} ; Peripherals {Printer, Monitor}.
HierarchicalDimension BuildCategoryHierarchy() {
  HierarchicalDimension dim("Category", "AnyCategory");
  const NodeId hw = dim.AddNode("Hardware", dim.root());
  dim.AddNode("Desktop", hw);
  dim.AddNode("Laptop", hw);
  const NodeId ph = dim.AddNode("Peripherals", dim.root());
  dim.AddNode("Printer", ph);
  dim.AddNode("Monitor", ph);
  return dim;
}

// One-level expense-range hierarchy: All -> {Low, Medium, High}.
HierarchicalDimension BuildExpenseHierarchy() {
  HierarchicalDimension dim("ExpenseRange", "AnyExpense");
  dim.AddNode("Low", dim.root());
  dim.AddNode("Medium", dim.root());
  dim.AddNode("High", dim.root());
  return dim;
}

constexpr const char* kCategories[] = {"Desktop", "Laptop", "Printer",
                                       "Monitor"};

}  // namespace

core::BellwetherSpec MailOrderDataset::MakeSpec(double budget,
                                                double min_coverage) const {
  core::BellwetherSpec spec;
  spec.space = space.get();
  spec.fact = &fact;
  spec.item_id_column = "ItemID";
  spec.dimension_columns = {"Time", "Location"};
  spec.references["catalogs"] = core::ReferenceTable{&catalogs, "CatalogNo"};
  spec.item_table = &items;
  spec.item_table_id_column = "ItemID";
  spec.item_feature_columns = {"RDExpense"};
  spec.regional_features = {
      {core::FeatureQuery::Kind::kFactMeasure, table::AggFn::kSum,
       "RegionalProfit", "Profit", "", ""},
      {core::FeatureQuery::Kind::kFactMeasure, table::AggFn::kCount,
       "RegionalOrders", "Profit", "", ""},
      {core::FeatureQuery::Kind::kReferenceMeasure, table::AggFn::kMax,
       "RegionalMaxPages", "Pages", "catalogs", "CatalogNo"},
      {core::FeatureQuery::Kind::kFkDistinctMeasure, table::AggFn::kCount,
       "RegionalDistinctCatalogs", "Pages", "catalogs", "CatalogNo"},
  };
  spec.target_fn = table::AggFn::kSum;
  spec.target_column = "Profit";
  spec.cost = cost.get();
  spec.budget = budget;
  spec.min_coverage = min_coverage;
  return spec;
}

MailOrderDataset GenerateMailOrder(const MailOrderConfig& config) {
  Rng rng(config.seed);
  MailOrderDataset out;

  // ---- Dimensions ----
  HierarchicalDimension location = BuildUsCensusLocationHierarchy();
  const std::vector<NodeId> states = location.leaves();
  auto planted = location.FindNode(config.planted_state);
  BW_CHECK(planted.ok());
  out.planted_state_node = *planted;

  std::vector<olap::Dimension> dims;
  dims.emplace_back(IntervalDimension("Time", config.num_months));
  dims.emplace_back(location);
  out.space = std::make_unique<olap::RegionSpace>(std::move(dims));
  {
    const int32_t planted_months = std::max(1, config.num_months * 8 / 10);
    olap::RegionCoords coords{planted_months - 1, out.planted_state_node};
    out.planted_region = out.space->Encode(coords);
  }

  // ---- Cost table: cost([1-m, loc]) = m * sum of state zip densities ----
  std::vector<double> state_zip(states.size());
  for (size_t s = 0; s < states.size(); ++s) {
    state_zip[s] = rng.NextDouble(3.0, 10.0);  // "zip codes / 100"
    // Pin the planted state's cost so that the planted region [1-8, state]
    // costs 48 — the budget around which the paper's error curve converges.
    if (states[s] == out.planted_state_node) state_zip[s] = 6.0;
  }
  // Each category also gets a *favored* state: a cheap, mildly reliable
  // local market for that category. Item-centric methods (tree/cube) can
  // exploit these at budgets where the planted state is unaffordable —
  // the low-budget improvement of Fig. 8.
  std::vector<size_t> category_state(4);
  {
    size_t assigned = 0;
    for (size_t s = 0; s < states.size() && assigned < 4; ++s) {
      if (states[s] == out.planted_state_node) continue;
      if (s % 11 == 3) {  // spread the favored states around
        category_state[assigned++] = s;
        state_zip[s] = 3.0;
      }
    }
    BW_CHECK(assigned == 4);
  }
  std::vector<double> cell_costs(out.space->NumFinestCells());
  {
    olap::PointCoords p(2);
    for (int32_t m = 1; m <= config.num_months; ++m) {
      for (size_t s = 0; s < states.size(); ++s) {
        p[0] = m;
        p[1] = states[s];
        cell_costs[out.space->FinestCellOf(p)] = state_zip[s];
      }
    }
  }
  auto cost = olap::CostModel::Create(out.space.get(), std::move(cell_costs));
  BW_CHECK(cost.ok());
  out.cost = std::make_unique<olap::CostModel>(std::move(cost).value());

  // ---- Catalogs ----
  out.catalogs = Table(Schema({{"CatalogNo", DataType::kInt64},
                               {"Pages", DataType::kDouble},
                               {"Circulation", DataType::kDouble}}));
  std::vector<double> catalog_pages(config.num_catalogs);
  for (int32_t c = 0; c < config.num_catalogs; ++c) {
    catalog_pages[c] = rng.NextDouble(20.0, 200.0);
    out.catalogs.AppendRow({Value(static_cast<int64_t>(c + 1)),
                            Value(catalog_pages[c]),
                            Value(rng.NextDouble(1e4, 1e6))});
  }

  // ---- Items ----
  out.items = Table(Schema({{"ItemID", DataType::kInt64},
                            {"Category", DataType::kString},
                            {"ExpenseRange", DataType::kString},
                            {"RDExpense", DataType::kDouble}}));
  std::vector<double> item_base(config.num_items);
  std::vector<int32_t> item_category(config.num_items);
  for (int32_t i = 0; i < config.num_items; ++i) {
    const double quality = rng.NextGaussian();
    item_base[i] = 40.0 * std::exp(0.6 * quality);
    item_category[i] = static_cast<int32_t>(rng.NextUint64(4));
    // RDExpense correlates loosely with the latent quality: item-table-only
    // models have some, but limited, predictive power (§3.1's motivation).
    const double rd = 50e3 * std::exp(0.5 * quality + 0.8 * rng.NextGaussian());
    const char* range = rd < 30e3 ? "Low" : (rd < 120e3 ? "Medium" : "High");
    out.items.AppendRow({Value(static_cast<int64_t>(i + 1)),
                         Value(kCategories[item_category[i]]), Value(range),
                         Value(rd)});
  }

  // ---- Transactions ----
  // Profit of item i in (state s, month m):
  //   base_i * share_s * b_{i,s} * trend(m) * (1 + sigma_s * eta)
  // where b_{i,s} is a *persistent* per-(item, state) multiplicative bias
  // that no window length can average away. The biases are normalized per
  // item so that they cancel exactly in the worldwide sum — the target is
  // cleanly proportional to base_i — and the planted state is pinned at
  // b = 1: it is the unique small region that tracks the worldwide total
  // ("a microcosm of the whole market"). Its month-level noise shrinks as
  // the window grows, giving the converging error-vs-budget curve of
  // Fig. 7(a); broad regions that would also track the total are priced
  // out by the cost model.
  std::vector<double> state_share(states.size());
  std::vector<double> state_noise(states.size());
  size_t planted_index = 0;
  for (size_t s = 0; s < states.size(); ++s) {
    state_share[s] = rng.NextDouble(0.4, 1.6);
    if (states[s] == out.planted_state_node) {
      planted_index = s;
      state_noise[s] = config.planted_noise;
    } else {
      state_noise[s] =
          rng.NextDouble(config.other_noise_min, config.other_noise_max);
    }
  }
  for (size_t s : category_state) {
    state_noise[s] = 0.5 * (config.planted_noise + config.other_noise_min);
  }
  out.fact = Table(Schema({{"Time", DataType::kInt64},
                           {"Location", DataType::kInt64},
                           {"ItemID", DataType::kInt64},
                           {"CatalogNo", DataType::kInt64},
                           {"Quantity", DataType::kInt64},
                           {"Profit", DataType::kDouble}}));
  std::vector<double> bias(states.size());
  for (int32_t i = 0; i < config.num_items; ++i) {
    // Category-specific seasonal trend.
    const double phase = 0.7 * item_category[i];
    // Draw the persistent biases, then renormalize the biased states so the
    // share-weighted bias sum equals the unbiased share sum: the worldwide
    // aggregate is exactly proportional to base_i. The planted state and
    // the item's category-favored state are pinned at b = 1 (unbiased
    // observers of the total).
    const size_t favored_index = category_state[item_category[i]];
    double share_sum = 0.0;
    double biased_sum = 0.0;
    for (size_t s = 0; s < states.size(); ++s) {
      const bool pinned = s == planted_index || s == favored_index;
      bias[s] = pinned ? 1.0 : std::exp(0.8 * rng.NextGaussian());
      if (!pinned) {
        share_sum += state_share[s];
        biased_sum += state_share[s] * bias[s];
      }
    }
    const double renorm = share_sum / biased_sum;
    for (size_t s = 0; s < states.size(); ++s) {
      if (s != planted_index && s != favored_index) bias[s] *= renorm;
    }
    for (size_t s = 0; s < states.size(); ++s) {
      // Item/state affinity keeps coverage below 1 in small regions.
      const double affinity = rng.NextDouble(0.3, 1.0);
      for (int32_t m = 1; m <= config.num_months; ++m) {
        const double trend = 1.0 + 0.3 * std::sin(0.5 * m + phase);
        const double lambda = config.density * state_share[s] * affinity;
        // Cheap Poisson-ish: floor + Bernoulli remainder.
        int32_t orders = static_cast<int32_t>(lambda);
        if (rng.NextDouble() < lambda - orders) ++orders;
        for (int32_t o = 0; o < orders; ++o) {
          const double eta = rng.NextGaussian();
          const double profit = item_base[i] * state_share[s] * bias[s] *
                                trend * (1.0 + state_noise[s] * eta) /
                                std::max(1.0, lambda);
          const int64_t catalog =
              1 + static_cast<int64_t>(rng.NextUint64(config.num_catalogs));
          // Catalog pages give a weak multiplicative bump.
          const double page_bump =
              1.0 + 0.05 * (catalog_pages[catalog - 1] - 110.0) / 180.0;
          out.fact.AppendRow({Value(static_cast<int64_t>(m)),
                              Value(static_cast<int64_t>(states[s])),
                              Value(static_cast<int64_t>(i + 1)),
                              Value(catalog),
                              Value(static_cast<int64_t>(1 + rng.NextUint64(3))),
                              Value(profit * page_bump)});
        }
      }
    }
  }

  // ---- Item hierarchies for the bellwether cube ----
  out.item_hierarchies.push_back(
      core::ItemHierarchy{"Category", BuildCategoryHierarchy()});
  out.item_hierarchies.push_back(
      core::ItemHierarchy{"ExpenseRange", BuildExpenseHierarchy()});
  return out;
}

}  // namespace bellwether::datagen
