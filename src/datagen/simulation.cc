#include "datagen/simulation.h"

#include <cmath>

#include "common/check.h"
#include "common/random.h"
#include "datagen/hierarchy_util.h"

namespace bellwether::datagen {

namespace {

using olap::HierarchicalDimension;
using olap::IntervalDimension;
using olap::RegionId;
using table::DataType;
using table::Field;
using table::Schema;
using table::Table;
using table::Value;

// The random generator tree: internal nodes test one binary feature; leaves
// carry a planted bellwether region and linear model.
struct GenNode {
  int32_t feature = -1;  // -1 = leaf
  int32_t child0 = -1;   // feature value 0
  int32_t child1 = -1;   // feature value 1
  RegionId region = olap::kInvalidRegion;
  std::vector<double> beta;  // over the regional features
};

// Grows a random binary tree with approximately `target_nodes` nodes by
// repeatedly splitting a random leaf on a random feature.
std::vector<GenNode> GrowGeneratorTree(int32_t target_nodes,
                                       int32_t num_features, Rng* rng) {
  std::vector<GenNode> nodes(1);
  std::vector<int32_t> leaves{0};
  while (static_cast<int32_t>(nodes.size()) + 2 <= target_nodes &&
         !leaves.empty()) {
    const size_t pick = rng->NextUint64(leaves.size());
    const int32_t v = leaves[pick];
    leaves.erase(leaves.begin() + pick);
    nodes[v].feature = static_cast<int32_t>(rng->NextUint64(num_features));
    nodes[v].child0 = static_cast<int32_t>(nodes.size());
    nodes.emplace_back();
    nodes[v].child1 = static_cast<int32_t>(nodes.size());
    nodes.emplace_back();
    leaves.push_back(nodes[v].child0);
    leaves.push_back(nodes[v].child1);
  }
  return nodes;
}

int32_t RouteToLeaf(const std::vector<GenNode>& tree,
                    const std::vector<int32_t>& features) {
  int32_t v = 0;
  while (tree[v].feature >= 0) {
    v = features[tree[v].feature] == 0 ? tree[v].child0 : tree[v].child1;
  }
  return v;
}

}  // namespace

SimulationDataset GenerateSimulation(const SimulationConfig& config) {
  BW_CHECK(config.num_binary_features >= config.num_hierarchies);
  BW_CHECK(config.num_hierarchies >= 1);
  Rng rng(config.seed);
  SimulationDataset out;

  // ---- Region space ----
  std::vector<olap::Dimension> dims;
  dims.emplace_back(IntervalDimension("Time", config.num_windows));
  dims.emplace_back(BuildBalancedHierarchy("Location", "All",
                                           config.location_fanouts, "L"));
  out.space = std::make_unique<olap::RegionSpace>(std::move(dims));
  const int64_t num_regions = out.space->NumRegions();

  // ---- Item table: binary features; the first num_hierarchies double as
  // 1-level item hierarchies for the bellwether cube ----
  std::vector<Field> fields{{"ItemID", DataType::kInt64}};
  for (int32_t f = 0; f < config.num_binary_features; ++f) {
    const std::string name = "F" + std::to_string(f + 1);
    fields.push_back({name, DataType::kInt64});
    out.feature_columns.push_back(name);
  }
  for (int32_t h = 0; h < config.num_hierarchies; ++h) {
    fields.push_back({"H" + std::to_string(h + 1), DataType::kString});
  }
  out.items = Table(Schema(fields));

  std::vector<std::vector<int32_t>> item_features(config.num_items);
  for (int32_t i = 0; i < config.num_items; ++i) {
    auto& feats = item_features[i];
    feats.resize(config.num_binary_features);
    std::vector<Value> row{Value(static_cast<int64_t>(i + 1))};
    for (int32_t f = 0; f < config.num_binary_features; ++f) {
      feats[f] = rng.NextBool() ? 1 : 0;
      row.emplace_back(static_cast<int64_t>(feats[f]));
    }
    for (int32_t h = 0; h < config.num_hierarchies; ++h) {
      row.emplace_back(std::string(feats[h] ? "1" : "0"));
    }
    out.items.AppendRow(row);
  }

  // ---- Generator tree with per-leaf planted bellwether ----
  std::vector<GenNode> tree = GrowGeneratorTree(
      config.generator_tree_nodes, config.num_binary_features, &rng);
  for (auto& n : tree) {
    if (n.feature >= 0) continue;
    n.region = static_cast<RegionId>(rng.NextUint64(num_regions));
    n.beta.resize(config.num_regional_features);
    for (auto& b : n.beta) b = rng.NextDouble(-2.0, 2.0);
  }

  // ---- Regional features X(i, r), uniform in [0, 10) everywhere ----
  const int32_t num_rf = config.num_regional_features;
  std::vector<double> x(static_cast<size_t>(num_regions) * config.num_items *
                        num_rf);
  for (double& v : x) v = rng.NextDouble(0.0, 10.0);
  auto x_of = [&](RegionId r, int32_t item) {
    return x.data() +
           (static_cast<size_t>(r) * config.num_items + item) * num_rf;
  };

  // ---- Targets from each item's leaf region/model ----
  out.targets.resize(config.num_items);
  out.true_region_of_item.resize(config.num_items);
  for (int32_t i = 0; i < config.num_items; ++i) {
    const int32_t leaf = RouteToLeaf(tree, item_features[i]);
    const RegionId r = tree[leaf].region;
    out.true_region_of_item[i] = r;
    double y = 0.0;
    const double* xi = x_of(r, i);
    for (int32_t k = 0; k < num_rf; ++k) y += tree[leaf].beta[k] * xi[k];
    out.targets[i] = y + config.noise * rng.NextGaussian();
  }

  // ---- Materialize the entire training data: one set per region ----
  // Design matrix: intercept + the regional features (the binary item
  // features drive partitioning, not the per-region linear model).
  const int32_t p = 1 + num_rf;
  out.sets.reserve(num_regions);
  for (RegionId r = 0; r < num_regions; ++r) {
    storage::RegionTrainingSet set;
    set.region = r;
    set.num_features = p;
    set.items.resize(config.num_items);
    set.targets.resize(config.num_items);
    set.features.resize(static_cast<size_t>(config.num_items) * p);
    for (int32_t i = 0; i < config.num_items; ++i) {
      set.items[i] = i;
      set.targets[i] = out.targets[i];
      double* row = set.features.data() + static_cast<size_t>(i) * p;
      row[0] = 1.0;
      const double* xi = x_of(r, i);
      for (int32_t k = 0; k < num_rf; ++k) row[1 + k] = xi[k];
    }
    out.sets.push_back(std::move(set));
  }

  // ---- Item hierarchies: All -> {0, 1} over H1..Hk ----
  for (int32_t h = 0; h < config.num_hierarchies; ++h) {
    HierarchicalDimension dim("H" + std::to_string(h + 1), "Any");
    dim.AddNode("0", dim.root());
    dim.AddNode("1", dim.root());
    out.item_hierarchies.push_back(
        core::ItemHierarchy{"H" + std::to_string(h + 1), std::move(dim)});
  }
  return out;
}

}  // namespace bellwether::datagen
