#ifndef BELLWETHER_DATAGEN_HIERARCHY_UTIL_H_
#define BELLWETHER_DATAGEN_HIERARCHY_UTIL_H_

#include <string>
#include <vector>

#include "olap/dimension.h"

namespace bellwether::datagen {

/// Builds a balanced tree dimension: level k has fanouts[k] children under
/// every node of level k-1. Labels are "<prefix><path>" (e.g. "L2.1.3").
olap::HierarchicalDimension BuildBalancedHierarchy(
    const std::string& name, const std::string& root_label,
    const std::vector<int32_t>& fanouts, const std::string& label_prefix);

/// The US Census location hierarchy used by the mail-order experiments:
/// All -> 4 regions -> 9 divisions -> 50 states (postal abbreviations).
olap::HierarchicalDimension BuildUsCensusLocationHierarchy();

}  // namespace bellwether::datagen

#endif  // BELLWETHER_DATAGEN_HIERARCHY_UTIL_H_
