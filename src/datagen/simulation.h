#ifndef BELLWETHER_DATAGEN_SIMULATION_H_
#define BELLWETHER_DATAGEN_SIMULATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/bellwether_cube.h"
#include "olap/region.h"
#include "storage/training_data.h"
#include "table/table.h"

namespace bellwether::datagen {

/// Parameters of the §7.3 simulation: the target of each item is generated
/// by a random decision tree over binary item-table features; each leaf of
/// the generator tree carries its own planted bellwether region and linear
/// model over four regional features. Varying the tree size controls the
/// complexity of the bellwether distribution; varying `noise` controls the
/// irreducible error.
struct SimulationConfig {
  int32_t num_items = 1000;
  int32_t num_binary_features = 8;
  /// Number of nodes of the generator decision tree (paper: 3..63).
  int32_t generator_tree_nodes = 15;
  /// Standard deviation of the additive error term (paper: 0.05..2).
  double noise = 0.5;
  int32_t num_regional_features = 4;
  /// How many of the binary features double as 1-level item hierarchies for
  /// the bellwether cube (the paper's cube partitions on item hierarchies
  /// derived from the item-table features).
  int32_t num_hierarchies = 3;
  /// Region space: prefix windows x a balanced location tree.
  int32_t num_windows = 5;
  std::vector<int32_t> location_fanouts = {3, 3};
  uint64_t seed = 7;
};

/// The generated "entire training data" (one training set per region — all
/// regions are feasible in this experiment) plus the item-table structures.
struct SimulationDataset {
  table::Table items;  // ItemID, F1..Fk (int64 0/1), H1..Hk (string "0"/"1")
  std::vector<double> targets;  // per dense item (= item row)
  std::unique_ptr<olap::RegionSpace> space;
  std::vector<storage::RegionTrainingSet> sets;
  std::vector<core::ItemHierarchy> item_hierarchies;  // first k features
  /// Ground truth: the leaf bellwether region of every item.
  std::vector<olap::RegionId> true_region_of_item;
  /// Names of the binary feature columns (tree split columns).
  std::vector<std::string> feature_columns;
};

SimulationDataset GenerateSimulation(const SimulationConfig& config);

}  // namespace bellwether::datagen

#endif  // BELLWETHER_DATAGEN_SIMULATION_H_
