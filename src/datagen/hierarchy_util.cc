#include "datagen/hierarchy_util.h"

namespace bellwether::datagen {

olap::HierarchicalDimension BuildBalancedHierarchy(
    const std::string& name, const std::string& root_label,
    const std::vector<int32_t>& fanouts, const std::string& label_prefix) {
  olap::HierarchicalDimension dim(name, root_label);
  struct Entry {
    olap::NodeId node;
    std::string path;
  };
  std::vector<Entry> frontier{{dim.root(), label_prefix}};
  for (size_t level = 0; level < fanouts.size(); ++level) {
    std::vector<Entry> next;
    for (const Entry& e : frontier) {
      for (int32_t c = 1; c <= fanouts[level]; ++c) {
        const std::string path = e.path + "." + std::to_string(c);
        next.push_back({dim.AddNode(path, e.node), path});
      }
    }
    frontier = std::move(next);
  }
  return dim;
}

olap::HierarchicalDimension BuildUsCensusLocationHierarchy() {
  olap::HierarchicalDimension dim("Location", "All");
  struct Division {
    const char* name;
    std::vector<const char*> states;
  };
  struct Region {
    const char* name;
    std::vector<Division> divisions;
  };
  const std::vector<Region> census = {
      {"Northeast",
       {{"NewEngland", {"CT", "ME", "MA", "NH", "RI", "VT"}},
        {"MidAtlantic", {"NJ", "NY", "PA"}}}},
      {"Midwest",
       {{"EastNorthCentral", {"IL", "IN", "MI", "OH", "WI"}},
        {"WestNorthCentral", {"IA", "KS", "MN", "MO", "NE", "ND", "SD"}}}},
      {"South",
       {{"SouthAtlantic",
         {"DE", "FL", "GA", "MD", "NC", "SC", "VA", "WV"}},
        {"EastSouthCentral", {"AL", "KY", "MS", "TN"}},
        {"WestSouthCentral", {"AR", "LA", "OK", "TX"}}}},
      {"West",
       {{"Mountain", {"AZ", "CO", "ID", "MT", "NV", "NM", "UT", "WY"}},
        {"Pacific", {"AK", "CA", "HI", "OR", "WA"}}}},
  };
  for (const Region& r : census) {
    const olap::NodeId region = dim.AddNode(r.name, dim.root());
    for (const Division& d : r.divisions) {
      const olap::NodeId division = dim.AddNode(d.name, region);
      for (const char* s : d.states) dim.AddNode(s, division);
    }
  }
  return dim;
}

}  // namespace bellwether::datagen
