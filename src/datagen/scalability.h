#ifndef BELLWETHER_DATAGEN_SCALABILITY_H_
#define BELLWETHER_DATAGEN_SCALABILITY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/bellwether_cube.h"
#include "olap/region.h"
#include "storage/training_data.h"
#include "storage/training_data_sink.h"
#include "table/table.h"

namespace bellwether::datagen {

/// Parameters of the §7.4 efficiency/scalability workload. Following the
/// paper, the *entire training data* is generated directly (the iceberg
/// feature-generation step is assumed done): one training example per item
/// per region, so |training data| = #regions * num_items. Targets come from
/// four predefined bellwether regions with small error; regional features
/// are random.
struct ScalabilityConfig {
  int32_t num_items = 2500;
  /// Fanouts of the two tree-structured fact dimensions; #regions is the
  /// product of the two node counts.
  std::vector<int32_t> dim1_fanouts = {3, 3};
  std::vector<int32_t> dim2_fanouts = {3, 3};
  int32_t num_regional_features = 4;
  /// Item hierarchies (for cube experiments): number and fanouts. The number
  /// of cube subsets grows with these.
  int32_t num_item_hierarchies = 3;
  std::vector<int32_t> item_hierarchy_fanouts = {3, 3};
  /// Numeric item-table attributes (for tree experiments, Fig. 12(b)).
  int32_t num_numeric_item_features = 4;
  double noise = 0.1;
  uint64_t seed = 42;
};

struct ScalabilityDataset {
  table::Table items;
  std::unique_ptr<olap::RegionSpace> space;
  std::vector<double> targets;
  std::vector<core::ItemHierarchy> item_hierarchies;
  std::vector<std::string> numeric_feature_columns;
  int64_t num_regions = 0;
  int64_t total_examples = 0;

  /// Columns of the item table used by tree building.
  std::vector<std::string> TreeSplitColumns() const;
};

/// Generates the dataset metadata and streams every region's training set
/// into `sink` (ascending region order, one freshly built set per region —
/// moved, never copied). The caller finalizes the sink: a MemorySink keeps
/// everything resident, a SpillSink streams to disk, a BudgetedSink decides
/// at runtime.
Result<ScalabilityDataset> GenerateScalability(
    const ScalabilityConfig& config, storage::TrainingDataSink* sink);

}  // namespace bellwether::datagen

#endif  // BELLWETHER_DATAGEN_SCALABILITY_H_
