#ifndef BELLWETHER_DATAGEN_BOOK_STORE_H_
#define BELLWETHER_DATAGEN_BOOK_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/bellwether_cube.h"
#include "core/spec.h"
#include "olap/cost.h"
#include "table/table.h"

namespace bellwether::datagen {

/// Parameters of the synthetic book-store dataset — the stand-in for the
/// 2004 five-state bookstore sample of §7.2. Unlike the mail-order
/// generator, *no* bellwether is planted: per-region noise is uniformly
/// high and the sample is small, so the basic search should NOT be able to
/// single out a region with confidence (Fig. 9(b): a large fraction of
/// regions stays indistinguishable from the returned one).
struct BookStoreConfig {
  int32_t num_books = 200;
  int32_t num_months = 12;
  int32_t num_states = 5;
  int32_t cities_per_state = 4;
  /// Uniform per-region relative noise.
  double noise = 0.8;
  /// Mean transactions per (book, city, month); the dataset is "a
  /// relatively small sample of the actual data warehouse".
  double density = 0.35;
  uint64_t seed = 2004;
};

struct BookStoreDataset {
  table::Table fact;   // Time, Location, ItemID, Quantity, Profit
  table::Table items;  // ItemID, Genre, PriceBand, ListPrice
  std::unique_ptr<olap::RegionSpace> space;
  std::unique_ptr<olap::CostModel> cost;
  std::vector<core::ItemHierarchy> item_hierarchies;

  /// Spec with features regional profit (sum) and regional orders (count),
  /// item feature ListPrice, target total profit.
  core::BellwetherSpec MakeSpec(double budget, double min_coverage) const;
};

BookStoreDataset GenerateBookStore(const BookStoreConfig& config);

}  // namespace bellwether::datagen

#endif  // BELLWETHER_DATAGEN_BOOK_STORE_H_
