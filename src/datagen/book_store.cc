#include "datagen/book_store.h"

#include <cmath>

#include "common/check.h"
#include "common/random.h"

namespace bellwether::datagen {

namespace {

using olap::HierarchicalDimension;
using olap::IntervalDimension;
using olap::NodeId;
using table::DataType;
using table::Schema;
using table::Table;
using table::Value;

constexpr const char* kGenres[] = {"Fiction", "Mystery", "SciFi", "History",
                                   "Science", "Cooking"};

HierarchicalDimension BuildGenreHierarchy() {
  HierarchicalDimension dim("Genre", "AnyGenre");
  const NodeId fic = dim.AddNode("FictionAll", dim.root());
  dim.AddNode("Fiction", fic);
  dim.AddNode("Mystery", fic);
  dim.AddNode("SciFi", fic);
  const NodeId nonfic = dim.AddNode("NonFiction", dim.root());
  dim.AddNode("History", nonfic);
  dim.AddNode("Science", nonfic);
  dim.AddNode("Cooking", nonfic);
  return dim;
}

HierarchicalDimension BuildPriceHierarchy() {
  HierarchicalDimension dim("PriceBand", "AnyPrice");
  dim.AddNode("Budget", dim.root());
  dim.AddNode("Standard", dim.root());
  dim.AddNode("Premium", dim.root());
  return dim;
}

}  // namespace

core::BellwetherSpec BookStoreDataset::MakeSpec(double budget,
                                                double min_coverage) const {
  core::BellwetherSpec spec;
  spec.space = space.get();
  spec.fact = &fact;
  spec.item_id_column = "ItemID";
  spec.dimension_columns = {"Time", "Location"};
  spec.item_table = &items;
  spec.item_table_id_column = "ItemID";
  spec.item_feature_columns = {"ListPrice"};
  spec.regional_features = {
      {core::FeatureQuery::Kind::kFactMeasure, table::AggFn::kSum,
       "RegionalProfit", "Profit", "", ""},
      {core::FeatureQuery::Kind::kFactMeasure, table::AggFn::kCount,
       "RegionalOrders", "Profit", "", ""},
  };
  spec.target_fn = table::AggFn::kSum;
  spec.target_column = "Profit";
  spec.cost = cost.get();
  spec.budget = budget;
  spec.min_coverage = min_coverage;
  return spec;
}

BookStoreDataset GenerateBookStore(const BookStoreConfig& config) {
  Rng rng(config.seed);
  BookStoreDataset out;

  // ---- Location: All -> states -> cities ----
  HierarchicalDimension location("Location", "All");
  for (int32_t s = 1; s <= config.num_states; ++s) {
    const NodeId state =
        location.AddNode("State" + std::to_string(s), location.root());
    for (int32_t c = 1; c <= config.cities_per_state; ++c) {
      location.AddNode("City" + std::to_string(s) + "." + std::to_string(c),
                       state);
    }
  }
  const std::vector<NodeId> cities = location.leaves();

  std::vector<olap::Dimension> dims;
  dims.emplace_back(IntervalDimension("Time", config.num_months));
  dims.emplace_back(location);
  out.space = std::make_unique<olap::RegionSpace>(std::move(dims));

  // ---- Cost: per (month, city), proportional to city size ----
  std::vector<double> city_cost(cities.size());
  for (size_t c = 0; c < cities.size(); ++c) {
    city_cost[c] = rng.NextDouble(1.0, 6.0);
  }
  std::vector<double> cell_costs(out.space->NumFinestCells());
  {
    olap::PointCoords p(2);
    for (int32_t m = 1; m <= config.num_months; ++m) {
      for (size_t c = 0; c < cities.size(); ++c) {
        p[0] = m;
        p[1] = cities[c];
        cell_costs[out.space->FinestCellOf(p)] = city_cost[c];
      }
    }
  }
  auto cost = olap::CostModel::Create(out.space.get(), std::move(cell_costs));
  BW_CHECK(cost.ok());
  out.cost = std::make_unique<olap::CostModel>(std::move(cost).value());

  // ---- Books ----
  out.items = Table(Schema({{"ItemID", DataType::kInt64},
                            {"Genre", DataType::kString},
                            {"PriceBand", DataType::kString},
                            {"ListPrice", DataType::kDouble}}));
  std::vector<double> book_base(config.num_books);
  for (int32_t b = 0; b < config.num_books; ++b) {
    book_base[b] = 3.0 * std::exp(0.7 * rng.NextGaussian());
    const double price = rng.NextDouble(6.0, 60.0);
    const char* band =
        price < 15.0 ? "Budget" : (price < 35.0 ? "Standard" : "Premium");
    out.items.AppendRow({Value(static_cast<int64_t>(b + 1)),
                         Value(kGenres[rng.NextUint64(6)]), Value(band),
                         Value(price)});
  }

  // ---- Transactions: every city equally noisy, nothing planted ----
  out.fact = Table(Schema({{"Time", DataType::kInt64},
                           {"Location", DataType::kInt64},
                           {"ItemID", DataType::kInt64},
                           {"Quantity", DataType::kInt64},
                           {"Profit", DataType::kDouble}}));
  for (int32_t b = 0; b < config.num_books; ++b) {
    for (size_t c = 0; c < cities.size(); ++c) {
      const double affinity = rng.NextDouble();
      // Persistent per-(book, city) bias, NOT normalized: unlike the
      // mail-order generator there is no city whose sales track the total,
      // so many regions end up statistically indistinguishable (Fig. 9(b)).
      const double bias = std::exp(0.5 * rng.NextGaussian());
      for (int32_t m = 1; m <= config.num_months; ++m) {
        const double lambda = config.density * affinity * 2.0;
        int32_t orders = static_cast<int32_t>(lambda);
        if (rng.NextDouble() < lambda - orders) ++orders;
        for (int32_t o = 0; o < orders; ++o) {
          const double profit = book_base[b] * bias *
                                (1.0 + config.noise * rng.NextGaussian());
          out.fact.AppendRow({Value(static_cast<int64_t>(m)),
                              Value(static_cast<int64_t>(cities[c])),
                              Value(static_cast<int64_t>(b + 1)),
                              Value(static_cast<int64_t>(1)),
                              Value(profit)});
        }
      }
    }
  }

  out.item_hierarchies.push_back(
      core::ItemHierarchy{"Genre", BuildGenreHierarchy()});
  out.item_hierarchies.push_back(
      core::ItemHierarchy{"PriceBand", BuildPriceHierarchy()});
  return out;
}

}  // namespace bellwether::datagen
