#ifndef BELLWETHER_EXEC_THREAD_POOL_H_
#define BELLWETHER_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bellwether::exec {

/// Parallel-execution knob threaded through the search, tree, and cube
/// options. The default is strictly serial: the instrumented builders take
/// their historical single-threaded code path and produce byte-for-byte the
/// same artifacts they always have. Any other value opts into the worker
/// pool, under the determinism contract of docs/PERFORMANCE.md: for every
/// thread count the results (models, errors, picked regions, logical
/// scan-count telemetry) are bit-identical to the serial build.
struct BellwetherExecOptions {
  /// 1 = serial (default), 0 = std::thread::hardware_concurrency(),
  /// N > 1 = exactly N workers. Negative values behave like 1.
  int32_t num_threads = 1;
};

/// Resolves a BellwetherExecOptions::num_threads request to a concrete
/// worker count: 0 maps to hardware_concurrency (at least 1), anything
/// below 1 maps to 1.
int32_t ResolveNumThreads(int32_t requested);

/// Fixed-size worker pool with a FIFO task queue. Construction spawns the
/// workers; destruction drains the queue (remaining tasks run, nothing is
/// silently dropped) and joins them. Submission is thread-safe, though the
/// bellwether builders only ever submit from their scan thread.
///
/// The pool mirrors its activity into the process MetricsRegistry
/// (bellwether_exec_tasks_submitted_total, bellwether_exec_queue_depth,
/// bellwether_exec_worker_busy_seconds_total — see docs/OBSERVABILITY.md).
class ThreadPool {
 public:
  /// `num_threads` must be >= 1 (callers resolve via ResolveNumThreads).
  explicit ThreadPool(int32_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int32_t num_threads() const {
    return static_cast<int32_t>(workers_.size());
  }

  /// Enqueues a task. Tasks start in FIFO order; completion order is
  /// whatever the hardware makes of it, which is why result consumers go
  /// through MergeInSubmissionOrder (see parallel.h).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // Wait() waits for quiescence
  std::deque<std::function<void()>> queue_;
  int32_t in_flight_ = 0;  // tasks currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace bellwether::exec

#endif  // BELLWETHER_EXEC_THREAD_POOL_H_
