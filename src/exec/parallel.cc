#include "exec/parallel.h"

namespace bellwether::exec {

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn, const char* label) {
  obs::TraceSpan span(label, "exec");
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Dynamic scheduling: workers grab the next index until exhausted. The
  // number of tasks equals the worker count, not n, so tiny iterations do
  // not pay a queue round-trip each.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  const int32_t tasks =
      static_cast<int32_t>(std::min<size_t>(pool->num_threads(), n));
  std::vector<std::future<void>> done;
  done.reserve(tasks);
  for (int32_t t = 0; t < tasks; ++t) {
    auto packaged = std::make_shared<std::packaged_task<void()>>([&fn, next,
                                                                  n] {
      for (size_t i = next->fetch_add(1, std::memory_order_relaxed); i < n;
           i = next->fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
    });
    done.push_back(packaged->get_future());
    pool->Submit([packaged] { (*packaged)(); });
  }
  for (auto& f : done) f.get();
}

}  // namespace bellwether::exec
