#ifndef BELLWETHER_EXEC_PARALLEL_H_
#define BELLWETHER_EXEC_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"

namespace bellwether::exec {

/// Runs fn(i) for every i in [0, n). With a null pool or a single worker the
/// loop runs inline in index order; otherwise the indices are distributed
/// dynamically across the pool and the call blocks until all are done. One
/// trace span covers the whole batch.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn,
                 const char* label = "exec.ParallelFor");

/// Maps [0, n) through fn, returning results in index order regardless of
/// which worker computed them. fn must be safe to call concurrently.
template <typename R>
std::vector<R> ParallelMap(ThreadPool* pool, size_t n,
                           const std::function<R(size_t)>& fn,
                           const char* label = "exec.ParallelMap") {
  std::vector<R> out(n);
  ParallelFor(
      pool, n, [&](size_t i) { out[i] = fn(i); }, label);
  return out;
}

/// Ordered streaming reduce over a producer the pool cannot reorder: tasks
/// are submitted one at a time (typically from a storage scan), execute
/// concurrently, and their results are handed to `reduce` strictly in
/// submission order — the same order the serial loop would have produced
/// them in. This is what makes the parallel builders bit-identical to the
/// serial ones: every floating-point accumulator is still folded in the
/// deterministic region order, only the per-region computation runs on
/// workers.
///
/// With a null pool (serial mode) Submit runs the task inline and reduces
/// immediately, so task lambdas may capture scan-local state by reference;
/// in parallel mode (`parallel()` true) the task outlives the Submit call
/// and must own copies of everything it touches. `max_outstanding` bounds
/// the completed-but-unreduced window, which bounds both memory and how far
/// the scan can run ahead of the merge.
///
/// A reduce error aborts the stream: Submit/Finish return it, and remaining
/// results are discarded (their tasks still run to completion in the pool).
template <typename R>
class MergeInSubmissionOrder {
 public:
  /// `reduce(index, result)` is invoked in submission order (index counts
  /// from 0). `pool` may be null for serial inline execution.
  MergeInSubmissionOrder(ThreadPool* pool, size_t max_outstanding,
                         const char* label,
                         std::function<Status(size_t, R)> reduce)
      : pool_(pool),
        max_outstanding_(max_outstanding < 1 ? 1 : max_outstanding),
        reduce_(std::move(reduce)),
        span_(label, "exec") {}

  ~MergeInSubmissionOrder() { span_.End(); }
  MergeInSubmissionOrder(const MergeInSubmissionOrder&) = delete;
  MergeInSubmissionOrder& operator=(const MergeInSubmissionOrder&) = delete;

  /// True when tasks run on pool workers (so they must own their inputs).
  bool parallel() const { return pool_ != nullptr; }

  /// Schedules one task. In serial mode the task runs inline and its result
  /// is reduced before Submit returns. In parallel mode the call first
  /// reduces the oldest completed results until fewer than max_outstanding
  /// tasks are pending, then enqueues.
  Status Submit(std::function<R()> task) {
    if (pool_ == nullptr) {
      return reduce_(next_reduce_index_++, task());
    }
    while (pending_.size() >= max_outstanding_) {
      BW_RETURN_IF_ERROR(ReduceFront());
    }
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::move(task));
    pending_.push_back(packaged->get_future());
    pool_->Submit([packaged] { (*packaged)(); });
    return Status::OK();
  }

  /// Reduces everything still pending, in order. Must be called before the
  /// results are consumed; further Submits are allowed afterwards (the
  /// stream simply continues).
  Status Finish() {
    while (!pending_.empty()) {
      BW_RETURN_IF_ERROR(ReduceFront());
    }
    return Status::OK();
  }

 private:
  Status ReduceFront() {
    R result = pending_.front().get();
    pending_.pop_front();
    return reduce_(next_reduce_index_++, std::move(result));
  }

  ThreadPool* pool_;
  const size_t max_outstanding_;
  std::function<Status(size_t, R)> reduce_;
  std::deque<std::future<R>> pending_;
  size_t next_reduce_index_ = 0;
  obs::TraceSpan span_;
};

}  // namespace bellwether::exec

#endif  // BELLWETHER_EXEC_PARALLEL_H_
