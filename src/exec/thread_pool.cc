#include "exec/thread_pool.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace bellwether::exec {

namespace {

// Registry handles resolved once and cached (registry pointers are stable).
struct ExecMetrics {
  obs::Counter* tasks_submitted;
  obs::Gauge* queue_depth;
  obs::Gauge* busy_seconds;
};

const ExecMetrics& Metrics() {
  static const ExecMetrics m{
      obs::DefaultMetrics().GetCounter(obs::kMExecTasksSubmitted),
      obs::DefaultMetrics().GetGauge(obs::kMExecQueueDepth),
      obs::DefaultMetrics().GetGauge(obs::kMExecWorkerBusySeconds)};
  return m;
}

}  // namespace

int32_t ResolveNumThreads(int32_t requested) {
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int32_t>(hw);
  }
  return std::max<int32_t>(requested, 1);
}

ThreadPool::ThreadPool(int32_t num_threads) {
  const int32_t n = std::max<int32_t>(num_threads, 1);
  workers_.reserve(n);
  for (int32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] {
      // Label the worker for trace output and register it with the
      // sampling profiler for the pool's lifetime; unregistration flushes
      // any buffered samples so they survive the worker thread.
      obs::SetCurrentThreadName("exec-worker-" + std::to_string(i));
      obs::Profiler::RegisterCurrentThread();
      WorkerLoop();
      obs::Profiler::UnregisterCurrentThread();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    Metrics().tasks_submitted->Increment();
    Metrics().queue_depth->SetMax(static_cast<double>(queue_.size()));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: destruction must not drop
      // submitted work (consumers may hold futures on it).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    Stopwatch busy;
    task();
    Metrics().busy_seconds->Add(busy.ElapsedSeconds());
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace bellwether::exec
