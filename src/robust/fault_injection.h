#ifndef BELLWETHER_ROBUST_FAULT_INJECTION_H_
#define BELLWETHER_ROBUST_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace bellwether::robust {

/// What an armed fault point does when it fires. The consuming call site
/// declares which kind it honors, so a spec arming the wrong kind at a point
/// simply never fires there.
enum class FaultKind {
  kIoError,  // "io": the operation reports a transient Status::IoError
  kCorrupt,  // "corrupt": the payload (row, record) is treated as malformed
  kCrash,    // "crash": the operation aborts mid-flight (simulated kill)
};

const char* FaultKindName(FaultKind kind);

/// Deterministic, seedable fault injector. Production code is sprinkled with
/// *named fault points* (e.g. "storage.scan", "csv.row"); nothing fires
/// unless a schedule is armed, and the disarmed check is one relaxed atomic
/// load, so instrumented binaries stay bit-identical and effectively free.
///
/// Schedules are armed programmatically via Arm() or from the environment
/// variable BELLWETHER_FAULTS. The spec grammar is
///
///   spec     := entry (';' entry)*
///   entry    := point ':' kind '@' trigger
///   kind     := "io" | "corrupt" | "crash"
///   trigger  := integer N   — fire on the first N arrivals at the point
///             | float p<1   — fire each arrival with probability p
///                             (deterministic, seeded per point)
///
/// Examples:
///   BELLWETHER_FAULTS="storage.scan:io@3"          first 3 record reads fail
///   BELLWETHER_FAULTS="csv.row:corrupt@0.02"       2% of CSV rows malformed
///   BELLWETHER_FAULTS="storage.scan:io@2;cube.scan:crash@1"
///
/// The probabilistic trigger hashes (seed, point name, arrival index), so a
/// given seed reproduces the exact same fault schedule on every run and the
/// schedule at one point is independent of how often other points are hit.
class FaultRegistry {
 public:
  FaultRegistry() = default;
  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  /// Process-wide instance used by the built-in fault points. The first call
  /// arms it from BELLWETHER_FAULTS / BELLWETHER_FAULT_SEED when set.
  static FaultRegistry& Default();

  /// Replaces the armed schedule with `spec` (see grammar above). An empty
  /// spec disarms everything. Malformed specs leave the registry disarmed
  /// and return InvalidArgument naming the offending entry.
  Status Arm(std::string_view spec);

  /// Removes every armed fault point and resets arrival/fire counts.
  void Disarm();

  /// Seed of the probabilistic triggers (takes effect for later arrivals).
  void set_seed(uint64_t seed);

  /// Records an arrival at `point` and returns true when an armed schedule
  /// of the given kind fires. Disarmed registries return false without
  /// taking a lock.
  bool ShouldFire(std::string_view point, FaultKind kind);

  /// Observability for tests and post-mortems.
  int64_t arrivals(std::string_view point) const;
  int64_t fires(std::string_view point) const;
  int64_t total_fires() const;
  std::vector<std::string> ArmedPoints() const;

 private:
  struct PointSchedule {
    FaultKind kind = FaultKind::kIoError;
    int64_t fire_first_n = 0;  // count trigger; 0 = use probability
    double probability = 0.0;
    int64_t arrivals = 0;
    int64_t fires = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, PointSchedule, std::less<>> points_;
  uint64_t seed_ = 0x5EEDFA17ULL;
  std::atomic<bool> armed_{false};
};

/// Convenience wrappers around FaultRegistry::Default() used by the
/// instrumented call sites. Each mirrors fires into the
/// bellwether_fault_injections_total metric.

/// Returns an injected transient IoError when `point` (kind io) fires.
Status MaybeInjectIo(std::string_view point);

/// True when `point` (kind corrupt) fires — the caller must then treat the
/// current row/record as malformed and route it through its quarantine path.
bool ShouldCorrupt(std::string_view point);

/// True when `point` (kind crash) fires — the caller must abandon the
/// operation as if the process had been killed (after any checkpointing it
/// performs as part of normal operation).
bool ShouldCrash(std::string_view point);

// Canonical fault point names. Kept in one place so tests, docs, and the
// instrumented sites agree on spelling.
inline constexpr std::string_view kFaultStorageScan = "storage.scan";
inline constexpr std::string_view kFaultStorageRead = "storage.read";
inline constexpr std::string_view kFaultStorageSpill = "storage.spill";
inline constexpr std::string_view kFaultCsvRow = "csv.row";
inline constexpr std::string_view kFaultDatagenRow = "datagen.row";
inline constexpr std::string_view kFaultCubeScan = "cube.scan";
inline constexpr std::string_view kFaultStateDelta = "state.delta";

}  // namespace bellwether::robust

#endif  // BELLWETHER_ROBUST_FAULT_INJECTION_H_
