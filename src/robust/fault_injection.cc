#include "robust/fault_injection.h"

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace bellwether::robust {

namespace {

// SplitMix64 finalizer — decorrelates (seed, point, arrival) tuples so the
// probabilistic trigger is a high-quality deterministic Bernoulli stream.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t HashName(std::string_view name) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

obs::Counter* InjectionCounter() {
  static obs::Counter* c =
      obs::DefaultMetrics().GetCounter(obs::kMFaultInjections);
  return c;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kIoError:
      return "io";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kCrash:
      return "crash";
  }
  return "unknown";
}

FaultRegistry& FaultRegistry::Default() {
  static FaultRegistry* instance = [] {
    auto* r = new FaultRegistry();
    if (const char* seed = std::getenv("BELLWETHER_FAULT_SEED")) {
      r->set_seed(std::strtoull(seed, nullptr, 10));
    }
    if (const char* spec = std::getenv("BELLWETHER_FAULTS")) {
      // A malformed env spec must not silently disable fault testing; fail
      // loudly on stderr but keep the process alive (the registry stays
      // disarmed, which is the safe state).
      Status st = r->Arm(spec);
      if (!st.ok()) {
        std::fprintf(stderr, "BELLWETHER_FAULTS ignored: %s\n",
                     st.ToString().c_str());
      }
    }
    return r;
  }();
  return *instance;
}

Status FaultRegistry::Arm(std::string_view spec) {
  std::map<std::string, PointSchedule, std::less<>> parsed;
  for (const std::string& entry : SplitString(spec, ';')) {
    const std::string trimmed(StripAsciiWhitespace(entry));
    if (trimmed.empty()) continue;
    const size_t colon = trimmed.find(':');
    const size_t at = trimmed.find('@');
    if (colon == std::string::npos || at == std::string::npos || at < colon ||
        colon == 0) {
      return Status::InvalidArgument(
          "fault spec entry must be point:kind@trigger, got '" + trimmed +
          "'");
    }
    const std::string point(StripAsciiWhitespace(trimmed.substr(0, colon)));
    const std::string kind_text(
        StripAsciiWhitespace(trimmed.substr(colon + 1, at - colon - 1)));
    const std::string trigger(StripAsciiWhitespace(trimmed.substr(at + 1)));
    PointSchedule sched;
    if (kind_text == "io") {
      sched.kind = FaultKind::kIoError;
    } else if (kind_text == "corrupt") {
      sched.kind = FaultKind::kCorrupt;
    } else if (kind_text == "crash") {
      sched.kind = FaultKind::kCrash;
    } else {
      return Status::InvalidArgument("unknown fault kind '" + kind_text +
                                     "' in '" + trimmed + "'");
    }
    if (trigger.empty()) {
      return Status::InvalidArgument("empty fault trigger in '" + trimmed +
                                     "'");
    }
    char* end = nullptr;
    if (trigger.find('.') == std::string::npos) {
      const long long n = std::strtoll(trigger.c_str(), &end, 10);
      if (end == trigger.c_str() || *end != '\0' || n <= 0) {
        return Status::InvalidArgument("bad fault count trigger '" + trigger +
                                       "' in '" + trimmed + "'");
      }
      sched.fire_first_n = n;
    } else {
      const double p = std::strtod(trigger.c_str(), &end);
      if (end == trigger.c_str() || *end != '\0' || !(p > 0.0) || p >= 1.0) {
        return Status::InvalidArgument(
            "fault probability must be in (0, 1), got '" + trigger + "' in '" +
            trimmed + "'");
      }
      sched.probability = p;
    }
    parsed[point] = sched;
  }
  std::lock_guard<std::mutex> lock(mu_);
  points_ = std::move(parsed);
  armed_.store(!points_.empty(), std::memory_order_release);
  return Status::OK();
}

void FaultRegistry::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_.store(false, std::memory_order_release);
}

void FaultRegistry::set_seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
}

bool FaultRegistry::ShouldFire(std::string_view point, FaultKind kind) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || it->second.kind != kind) return false;
  PointSchedule& s = it->second;
  const int64_t arrival = s.arrivals++;
  bool fire = false;
  if (s.fire_first_n > 0) {
    fire = arrival < s.fire_first_n;
  } else {
    const uint64_t h =
        Mix64(seed_ ^ HashName(point) ^ static_cast<uint64_t>(arrival));
    // Top 53 bits -> uniform double in [0, 1).
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    fire = u < s.probability;
  }
  if (fire) {
    ++s.fires;
    InjectionCounter()->Increment();
  }
  return fire;
}

int64_t FaultRegistry::arrivals(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.arrivals;
}

int64_t FaultRegistry::fires(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

int64_t FaultRegistry::total_fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [name, s] : points_) total += s.fires;
  return total;
}

std::vector<std::string> FaultRegistry::ArmedPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [name, s] : points_) out.push_back(name);
  return out;
}

Status MaybeInjectIo(std::string_view point) {
  if (FaultRegistry::Default().ShouldFire(point, FaultKind::kIoError)) {
    return Status::IoError("injected transient I/O fault at " +
                           std::string(point));
  }
  return Status::OK();
}

bool ShouldCorrupt(std::string_view point) {
  return FaultRegistry::Default().ShouldFire(point, FaultKind::kCorrupt);
}

bool ShouldCrash(std::string_view point) {
  return FaultRegistry::Default().ShouldFire(point, FaultKind::kCrash);
}

}  // namespace bellwether::robust
