#include "robust/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace bellwether::robust {

namespace {

constexpr const char* kMagic = "bellwether-cube-checkpoint-v1";
// Sanity bound on serialized counts; a corrupt length field must not turn
// into a multi-gigabyte allocation.
constexpr int64_t kMaxCount = int64_t{1} << 26;

// Doubles round-trip exactly through %.17g; "inf"/"-inf"/"nan" are written
// and parsed explicitly (istream's operator>> rejects them).
void WriteDouble(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

Status ReadDouble(std::istream& in, double* v) {
  std::string tok;
  if (!(in >> tok)) return Status::IoError("truncated checkpoint (double)");
  errno = 0;
  char* end = nullptr;
  *v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0') {
    return Status::IoError("bad double in checkpoint: '" + tok + "'");
  }
  return Status::OK();
}

void WriteStats(std::ostream& out,
                const regression::RegressionSuffStats& s) {
  const size_t p = s.num_features();
  out << "stats " << p << ' ' << s.num_examples() << ' ';
  WriteDouble(out, s.sum_weights());
  out << ' ';
  WriteDouble(out, s.ytwy());
  const linalg::Matrix xtwx = s.xtwx();  // unpack once, not per element
  for (size_t r = 0; r < p; ++r) {
    for (size_t c = 0; c < p; ++c) {
      out << ' ';
      WriteDouble(out, xtwx(r, c));
    }
  }
  for (size_t j = 0; j < p; ++j) {
    out << ' ';
    WriteDouble(out, s.xtwy()[j]);
  }
  out << '\n';
}

Result<regression::RegressionSuffStats> ReadStats(std::istream& in) {
  std::string tag;
  int64_t p = 0;
  int64_t n = 0;
  if (!(in >> tag >> p >> n) || tag != "stats") {
    return Status::IoError("truncated checkpoint (stats header)");
  }
  if (p < 0 || p > 4096) {
    return Status::IoError("implausible feature count in checkpoint");
  }
  double sum_w = 0.0;
  double ytwy = 0.0;
  BW_RETURN_IF_ERROR(ReadDouble(in, &sum_w));
  BW_RETURN_IF_ERROR(ReadDouble(in, &ytwy));
  linalg::Matrix xtwx(p, p);
  for (int64_t r = 0; r < p; ++r) {
    for (int64_t c = 0; c < p; ++c) {
      BW_RETURN_IF_ERROR(ReadDouble(in, &xtwx(r, c)));
    }
  }
  linalg::Vector xtwy(p, 0.0);
  for (int64_t j = 0; j < p; ++j) {
    BW_RETURN_IF_ERROR(ReadDouble(in, &xtwy[j]));
  }
  return regression::RegressionSuffStats::FromComponents(
      std::move(xtwx), std::move(xtwy), ytwy, n, sum_w);
}

}  // namespace

Status SaveCubeCheckpoint(const CubeBuildCheckpoint& ckpt,
                          const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) {
      return Status::IoError("cannot write checkpoint " + tmp + ": " +
                             std::strerror(errno));
    }
    out << kMagic << '\n';
    out << "fingerprint " << ckpt.fingerprint << '\n';
    out << "regions_processed " << ckpt.regions_processed << '\n';
    out << "picks " << ckpt.picks.size() << '\n';
    for (const PickCheckpoint& pk : ckpt.picks) {
      out << "pick ";
      WriteDouble(out, pk.error);
      out << ' ' << pk.region << ' ' << pk.fallback_region << ' '
          << pk.fallback_examples << '\n';
      WriteStats(out, pk.stats);
      WriteStats(out, pk.fallback_stats);
    }
    out << "end\n";
    out.flush();
    if (!out) return Status::IoError("checkpoint write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("checkpoint rename failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Result<CubeBuildCheckpoint> LoadCubeCheckpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read checkpoint " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty checkpoint " + path);
  }
  if (line != kMagic) {
    return Status::FailedPrecondition(path + ": not a " + std::string(kMagic) +
                                      " file");
  }
  CubeBuildCheckpoint ckpt;
  std::string tag;
  if (!(in >> tag >> ckpt.fingerprint) || tag != "fingerprint") {
    return Status::IoError("truncated checkpoint (fingerprint)");
  }
  if (!(in >> tag >> ckpt.regions_processed) || tag != "regions_processed" ||
      ckpt.regions_processed < 0) {
    return Status::IoError("truncated checkpoint (regions_processed)");
  }
  int64_t num_picks = 0;
  if (!(in >> tag >> num_picks) || tag != "picks" || num_picks < 0 ||
      num_picks > kMaxCount) {
    return Status::IoError("truncated checkpoint (pick count)");
  }
  ckpt.picks.resize(num_picks);
  for (PickCheckpoint& pk : ckpt.picks) {
    if (!(in >> tag) || tag != "pick") {
      return Status::IoError("truncated checkpoint (pick)");
    }
    BW_RETURN_IF_ERROR(ReadDouble(in, &pk.error));
    if (!(in >> pk.region >> pk.fallback_region >> pk.fallback_examples)) {
      return Status::IoError("truncated checkpoint (pick fields)");
    }
    BW_ASSIGN_OR_RETURN(pk.stats, ReadStats(in));
    BW_ASSIGN_OR_RETURN(pk.fallback_stats, ReadStats(in));
  }
  if (!(in >> tag) || tag != "end") {
    return Status::IoError("truncated checkpoint (missing end marker)");
  }
  return ckpt;
}

}  // namespace bellwether::robust
