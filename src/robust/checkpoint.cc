#include "robust/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "regression/suff_stats_io.h"

namespace bellwether::robust {

namespace {

// v2: sufficient statistics carry the packed upper triangle directly
// (regression/suff_stats_io.h) instead of the full p x p matrix — half the
// wire size, and no unpack/re-pack hop on either side. v1 checkpoints are
// simply stale (kFailedPrecondition on load) and the build restarts from
// scratch, which checkpointing is designed to survive anyway.
constexpr const char* kMagic = "bellwether-cube-checkpoint-v2";
// Sanity bound on serialized counts; a corrupt length field must not turn
// into a multi-gigabyte allocation.
constexpr int64_t kMaxCount = int64_t{1} << 26;

using regression::ReadWireDouble;
using regression::WriteWireDouble;

}  // namespace

Status SaveCubeCheckpoint(const CubeBuildCheckpoint& ckpt,
                          const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) {
      return Status::IoError("cannot write checkpoint " + tmp + ": " +
                             std::strerror(errno));
    }
    out << kMagic << '\n';
    out << "fingerprint " << ckpt.fingerprint << '\n';
    out << "regions_processed " << ckpt.regions_processed << '\n';
    out << "picks " << ckpt.picks.size() << '\n';
    for (const PickCheckpoint& pk : ckpt.picks) {
      out << "pick ";
      WriteWireDouble(out, pk.error);
      out << ' ' << pk.region << ' ' << pk.fallback_region << ' '
          << pk.fallback_examples << '\n';
      regression::WriteSuffStats(out, pk.stats);
      regression::WriteSuffStats(out, pk.fallback_stats);
    }
    out << "end\n";
    out.flush();
    if (!out) return Status::IoError("checkpoint write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("checkpoint rename failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Result<CubeBuildCheckpoint> LoadCubeCheckpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read checkpoint " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty checkpoint " + path);
  }
  if (line != kMagic) {
    return Status::FailedPrecondition(path + ": not a " + std::string(kMagic) +
                                      " file");
  }
  CubeBuildCheckpoint ckpt;
  std::string tag;
  if (!(in >> tag >> ckpt.fingerprint) || tag != "fingerprint") {
    return Status::IoError("truncated checkpoint (fingerprint)");
  }
  if (!(in >> tag >> ckpt.regions_processed) || tag != "regions_processed" ||
      ckpt.regions_processed < 0) {
    return Status::IoError("truncated checkpoint (regions_processed)");
  }
  int64_t num_picks = 0;
  if (!(in >> tag >> num_picks) || tag != "picks" || num_picks < 0 ||
      num_picks > kMaxCount) {
    return Status::IoError("truncated checkpoint (pick count)");
  }
  ckpt.picks.resize(num_picks);
  for (PickCheckpoint& pk : ckpt.picks) {
    if (!(in >> tag) || tag != "pick") {
      return Status::IoError("truncated checkpoint (pick)");
    }
    BW_RETURN_IF_ERROR(ReadWireDouble(in, &pk.error));
    if (!(in >> pk.region >> pk.fallback_region >> pk.fallback_examples)) {
      return Status::IoError("truncated checkpoint (pick fields)");
    }
    BW_ASSIGN_OR_RETURN(pk.stats, regression::ReadSuffStats(in));
    BW_ASSIGN_OR_RETURN(pk.fallback_stats, regression::ReadSuffStats(in));
  }
  if (!(in >> tag) || tag != "end") {
    return Status::IoError("truncated checkpoint (missing end marker)");
  }
  return ckpt;
}

}  // namespace bellwether::robust
