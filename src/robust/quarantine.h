#ifndef BELLWETHER_ROBUST_QUARANTINE_H_
#define BELLWETHER_ROBUST_QUARANTINE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bellwether::robust {

/// How a pipeline stage treats a malformed input row (bad CSV field, NaN/Inf
/// measure, schema violation, injected corruption).
enum class RowErrorPolicy {
  /// Abort the whole operation with a Status naming the offending row.
  kStrict,
  /// Count, log, and skip the row; the operation completes on the clean
  /// remainder. The default for the hardened generation paths — one bad
  /// warehouse row must not poison every region's training set.
  kPermissive,
};

const char* RowErrorPolicyName(RowErrorPolicy policy);

/// Quarantine bookkeeping of one pass: how many rows were set aside and a
/// bounded sample of their error messages (for logs and post-mortems; the
/// full per-row detail would be unbounded on a corrupt file).
struct QuarantineStats {
  int64_t rows_seen = 0;
  int64_t rows_quarantined = 0;
  /// First kMaxSampleErrors row-level error messages, row context included.
  std::vector<std::string> sample_errors;

  static constexpr size_t kMaxSampleErrors = 8;

  /// Records one quarantined row.
  void Quarantine(std::string message) {
    ++rows_quarantined;
    if (sample_errors.size() < kMaxSampleErrors) {
      sample_errors.push_back(std::move(message));
    }
  }

  void Merge(const QuarantineStats& other) {
    rows_seen += other.rows_seen;
    rows_quarantined += other.rows_quarantined;
    for (const auto& e : other.sample_errors) {
      if (sample_errors.size() >= kMaxSampleErrors) break;
      sample_errors.push_back(e);
    }
  }
};

}  // namespace bellwether::robust

#endif  // BELLWETHER_ROBUST_QUARANTINE_H_
