#ifndef BELLWETHER_ROBUST_CHECKPOINT_H_
#define BELLWETHER_ROBUST_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "regression/linear_model.h"

namespace bellwether::robust {

/// FNV-1a accumulator for build fingerprints: a checkpoint is only resumed
/// when the fingerprint of the current build matches the one stored with it,
/// so stale checkpoints (different subset space, config, or source) are
/// ignored instead of corrupting a build.
class FingerprintBuilder {
 public:
  FingerprintBuilder& Add(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFF;
      h_ *= 0x100000001B3ULL;
    }
    return *this;
  }
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = 0xCBF29CE484222325ULL;
};

/// Scan-time state of one cube subset's best-region pick, exactly as the
/// single-scan builder tracks it (min-error candidate plus the
/// most-examples fallback candidate).
struct PickCheckpoint {
  double error = 0.0;  // +inf when no region has produced a usable error yet
  int64_t region = -1;
  regression::RegressionSuffStats stats;
  int64_t fallback_region = -1;
  int64_t fallback_examples = -1;
  regression::RegressionSuffStats fallback_stats;
};

/// Durable mid-scan state of a cube build: after `regions_processed` region
/// training sets, the per-significant-subset picks. A build resumed from
/// this state produces output bit-identical to an uninterrupted one (values
/// round-trip exactly via %.17g).
struct CubeBuildCheckpoint {
  uint64_t fingerprint = 0;
  int64_t regions_processed = 0;
  std::vector<PickCheckpoint> picks;
};

/// Writes the checkpoint atomically (tmp file + rename), so a crash during
/// the save never leaves a truncated checkpoint behind.
Status SaveCubeCheckpoint(const CubeBuildCheckpoint& ckpt,
                          const std::string& path);

/// Loads a checkpoint. Truncated or malformed files yield kIoError; a
/// version-mismatched header yields kFailedPrecondition. Callers must also
/// verify the fingerprint before resuming.
Result<CubeBuildCheckpoint> LoadCubeCheckpoint(const std::string& path);

}  // namespace bellwether::robust

#endif  // BELLWETHER_ROBUST_CHECKPOINT_H_
