#include "robust/quarantine.h"

namespace bellwether::robust {

const char* RowErrorPolicyName(RowErrorPolicy policy) {
  switch (policy) {
    case RowErrorPolicy::kStrict:
      return "strict";
    case RowErrorPolicy::kPermissive:
      return "permissive";
  }
  return "unknown";
}

}  // namespace bellwether::robust
