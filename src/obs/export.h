#ifndef BELLWETHER_OBS_EXPORT_H_
#define BELLWETHER_OBS_EXPORT_H_

#include <string>

#include "common/status.h"

namespace bellwether::obs {

/// "out/metrics.json" -> "out/metrics.trace.json" (a missing ".json"
/// suffix just appends ".trace.json").
std::string DeriveTracePath(const std::string& metrics_path);

/// Writes the default registry's JSON to `metrics_path` and the default
/// trace's Chrome trace JSON to `trace_path` (derived from `metrics_path`
/// when empty). Ensures the canonical metric set is registered first, so
/// the JSON always carries the standard scan/prune counters even when a
/// code path did not run.
Status DumpDefaultTelemetry(const std::string& metrics_path,
                            const std::string& trace_path = "");

/// Writes `content` to `path`, truncating.
Status WriteTextFile(const std::string& path, const std::string& content);

/// Reads `path` in full (benchdiff loads run reports with this).
Result<std::string> ReadTextFile(const std::string& path);

}  // namespace bellwether::obs

#endif  // BELLWETHER_OBS_EXPORT_H_
