#include "obs/metrics.h"

#include <algorithm>

#include "common/check.h"
#include "obs/json.h"

namespace bellwether::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  BW_CHECK(!bounds_.empty());
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    BW_CHECK(bounds_[i] < bounds_[i + 1]);
  }
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.help = std::string(help);
    e.counter = std::make_unique<Counter>();
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  BW_CHECK(it->second.counter != nullptr);  // name registered as another kind
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.help = std::string(help);
    e.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  BW_CHECK(it->second.gauge != nullptr);
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> upper_bounds,
                                         std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.help = std::string(help);
    e.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  BW_CHECK(it->second.histogram != nullptr);
  return it->second.histogram.get();
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, e] : entries_) {
    if (!e.help.empty()) {
      out += "# HELP " + name + " " + e.help + "\n";
    }
    if (e.counter != nullptr) {
      out += "# TYPE " + name + " counter\n";
      out += name + " " + std::to_string(e.counter->Value()) + "\n";
    } else if (e.gauge != nullptr) {
      out += "# TYPE " + name + " gauge\n";
      out += name + " " + JsonNumber(e.gauge->Value()) + "\n";
    } else {
      out += "# TYPE " + name + " histogram\n";
      const auto counts = e.histogram->BucketCounts();
      const auto& bounds = e.histogram->bucket_bounds();
      int64_t cum = 0;
      for (size_t i = 0; i < bounds.size(); ++i) {
        cum += counts[i];
        out += name + "_bucket{le=\"" + JsonNumber(bounds[i]) + "\"} " +
               std::to_string(cum) + "\n";
      }
      cum += counts.back();
      out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cum) + "\n";
      out += name + "_sum " + JsonNumber(e.histogram->Sum()) + "\n";
      out += name + "_count " + std::to_string(e.histogram->TotalCount()) +
             "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string counters = "{";
  std::string gauges = "{";
  std::string histograms = "{";
  bool first_c = true, first_g = true, first_h = true;
  for (const auto& [name, e] : entries_) {
    if (e.counter != nullptr) {
      if (!first_c) counters += ",";
      first_c = false;
      counters += "\"" + JsonEscape(name) +
                  "\":" + std::to_string(e.counter->Value());
    } else if (e.gauge != nullptr) {
      if (!first_g) gauges += ",";
      first_g = false;
      gauges += "\"" + JsonEscape(name) + "\":" + JsonNumber(e.gauge->Value());
    } else {
      if (!first_h) histograms += ",";
      first_h = false;
      const auto counts = e.histogram->BucketCounts();
      const auto& bounds = e.histogram->bucket_bounds();
      histograms += "\"" + JsonEscape(name) + "\":{\"count\":" +
                    std::to_string(e.histogram->TotalCount()) +
                    ",\"sum\":" + JsonNumber(e.histogram->Sum()) +
                    ",\"buckets\":[";
      int64_t cum = 0;
      for (size_t i = 0; i < bounds.size(); ++i) {
        cum += counts[i];
        if (i > 0) histograms += ",";
        histograms += "{\"le\":" + JsonNumber(bounds[i]) +
                      ",\"count\":" + std::to_string(cum) + "}";
      }
      cum += counts.back();
      histograms +=
          ",{\"le\":null,\"count\":" + std::to_string(cum) + "}]}";
    }
  }
  counters += "}";
  gauges += "}";
  histograms += "}";
  return "{\"counters\":" + counters + ",\"gauges\":" + gauges +
         ",\"histograms\":" + histograms + "}";
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, e] : entries_) {
    if (e.counter != nullptr) {
      out.counters.emplace(name, e.counter->Value());
    } else if (e.gauge != nullptr) {
      out.gauges.emplace(name, e.gauge->Value());
    } else {
      MetricsSnapshot::HistogramState h;
      h.bounds = e.histogram->bucket_bounds();
      h.bucket_counts = e.histogram->BucketCounts();
      h.total_count = e.histogram->TotalCount();
      h.sum = e.histogram->Sum();
      out.histograms.emplace(name, std::move(h));
    }
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    if (e.counter != nullptr) e.counter->Reset();
    if (e.gauge != nullptr) e.gauge->Reset();
    if (e.histogram != nullptr) e.histogram->Reset();
  }
}

std::vector<std::string> MetricsRegistry::MetricNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) out.push_back(name);
  return out;
}

MetricsRegistry& DefaultMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

const std::vector<double>& LatencyBucketsSeconds() {
  static const std::vector<double>* buckets = new std::vector<double>{
      1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3,
      64e-3, 256e-3, 1.0, 4.0, 16.0};
  return *buckets;
}

void RegisterStandardMetrics(MetricsRegistry* registry) {
  registry->GetCounter(kMSearchRegionsEnumerated,
                       "region training sets visited by the basic search");
  registry->GetCounter(kMSearchRegionsScored,
                       "regions whose model produced a usable error score");
  registry->GetCounter(kMSearchRegionsPrunedCost,
                       "regions pruned or rejected by the cost budget");
  registry->GetCounter(kMSearchRegionsPrunedCoverage,
                       "regions pruned or rejected by the coverage threshold");
  registry->GetCounter(kMSearchFitFailures,
                       "region model fits / error estimations that failed");
  registry->GetCounter(kMSearchRowsScanned,
                       "training rows visited by the basic search");
  registry->GetHistogram(kMSearchRegionFitSeconds, LatencyBucketsSeconds(),
                         "per-region score/fit wall time");
  registry->GetCounter(kMDatagenFactRowsScanned,
                       "fact-table rows scanned by training data generation");
  registry->GetCounter(kMDatagenRegionSetsEmitted,
                       "region training sets materialized");
  registry->GetCounter(kMDatagenTrainingRowsEmitted,
                       "training rows materialized across all region sets");
  registry->GetGauge(kMDatagenPeakResidentBytes,
                     "peak resident training-set bytes held by a "
                     "TrainingDataSink during generation");
  registry->GetCounter(kMTreeNaiveScans,
                       "full passes over the training data by the naive "
                       "tree builder");
  registry->GetCounter(kMTreeRfScans,
                       "sequential scans by the RainForest tree builder "
                       "(one per level, Lemma 1)");
  registry->GetCounter(kMTreeNodesCreated, "tree nodes created");
  registry->GetGauge(kMTreeSuffStatsPeak,
                     "peak count of <MinError,Size> sufficient statistics "
                     "held by one RF level scan");
  registry->GetHistogram(kMTreeLevelScanSeconds, LatencyBucketsSeconds(),
                         "per-level RF scan wall time");
  registry->GetCounter(kMCubeNaiveScans,
                       "full passes over the training data by the naive "
                       "cube builder");
  registry->GetCounter(kMCubeSingleScanScans,
                       "sequential scans by the single-scan cube builder "
                       "(exactly one, Lemma 2)");
  registry->GetCounter(kMCubeOptimizedScans,
                       "sequential scans by the optimized cube builder");
  registry->GetCounter(kMCubeSignificantSubsets,
                       "significant item subsets found (|S| >= K)");
  registry->GetCounter(kMCubeCellsMaterialized, "cube cells materialized");
  registry->GetCounter(kMExecTasksSubmitted,
                       "tasks submitted to exec thread pools");
  registry->GetGauge(kMExecQueueDepth,
                     "peak depth of the exec thread-pool task queue");
  registry->GetGauge(kMExecWorkerBusySeconds,
                     "cumulative wall time exec workers spent running tasks");
  registry->GetCounter(kMStorageScans,
                       "sequential scans issued against training sources");
  registry->GetCounter(kMStorageRegionReads,
                       "region training-set records read");
  registry->GetCounter(kMStorageRowsScanned,
                       "training rows delivered by storage reads and scans");
  registry->GetCounter(kMStorageBytesRead, "bytes read from training sources");
  registry->GetCounter(kMArenaAcquires,
                       "RegionTrainingSet shells handed out by RegionSetArena");
  registry->GetCounter(kMArenaReuses,
                       "arena acquires satisfied from the free list");
  registry->GetCounter(kMArenaReleases,
                       "RegionTrainingSet shells returned to RegionSetArena");
  registry->GetCounter(kMFaultInjections,
                       "faults fired by the fault-injection registry");
  registry->GetCounter(kMStorageRetries,
                       "transient scan/read failures retried by "
                       "RetryingTrainingDataSource");
  registry->GetCounter(kMStorageRetryExhausted,
                       "operations that failed after exhausting all retries");
  registry->GetCounter(kMCsvRowsQuarantined,
                       "malformed CSV rows skipped in permissive mode");
  registry->GetCounter(kMDatagenRowsQuarantined,
                       "fact rows quarantined during training data generation");
  registry->GetCounter(kMRegressionRidgeRefits,
                       "ill-conditioned fits recovered by heavy ridge refit");
  registry->GetCounter(kMRegressionMeanFallbacks,
                       "fits degraded to the intercept-only mean model");
  registry->GetCounter(kMCubeCheckpointsSaved,
                       "cube build checkpoints written");
  registry->GetCounter(kMCubeCheckpointResumes,
                       "cube builds resumed from a checkpoint");
  registry->GetCounter(kMStateDeltaBatches,
                       "delta batches folded into an open bellwether state");
  registry->GetCounter(kMStateDeltaRows,
                       "fact rows ingested through ApplyDelta");
  registry->GetCounter(kMStateCellsRederived,
                       "dirty cube cells re-derived by state Finalize");
  registry->GetCounter(kMStateCellsReused,
                       "clean cube cells reused by state Finalize");
  registry->GetCounter(kMStateSaves, "bellwether states saved to disk");
  registry->GetCounter(kMStateOpens, "bellwether states opened from disk");
}

}  // namespace bellwether::obs
