#ifndef BELLWETHER_OBS_JSON_H_
#define BELLWETHER_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"

namespace bellwether::obs {

/// A parsed JSON document node. Deliberately tiny: the observability layer
/// only needs enough JSON to write metric/trace exports and to verify in
/// tests that what it wrote round-trips through a conforming parser.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : v_(nullptr) {}
  explicit JsonValue(bool b) : v_(b) {}
  explicit JsonValue(double d) : v_(d) {}
  explicit JsonValue(std::string s) : v_(std::move(s)) {}
  explicit JsonValue(Array a) : v_(std::move(a)) {}
  explicit JsonValue(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool boolean() const { return std::get<bool>(v_); }
  double number() const { return std::get<double>(v_); }
  const std::string& str() const { return std::get<std::string>(v_); }
  const Array& array() const { return std::get<Array>(v_); }
  const Object& object() const { return std::get<Object>(v_); }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const {
    if (!is_object()) return nullptr;
    auto it = object().find(key);
    return it == object().end() ? nullptr : &it->second;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parses a complete JSON document (trailing garbage is an error).
Result<JsonValue> ParseJson(std::string_view text);

/// Serializes a JsonValue back to compact JSON text.
std::string WriteJson(const JsonValue& value);

/// Escapes a string for embedding inside a JSON string literal (no quotes).
std::string JsonEscape(std::string_view s);

/// Formats a double the way the exports embed numbers: integral values
/// print without a fractional part, non-finite values as null.
std::string JsonNumber(double v);

}  // namespace bellwether::obs

#endif  // BELLWETHER_OBS_JSON_H_
