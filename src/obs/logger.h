#ifndef BELLWETHER_OBS_LOGGER_H_
#define BELLWETHER_OBS_LOGGER_H_

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>

namespace bellwether::obs {

/// Severity levels, most to least severe. kOff disables all output and is
/// the default, so instrumented binaries stay byte-identical unless the
/// user opts in via BELLWETHER_LOG_LEVEL.
enum class LogLevel : int32_t {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
};

/// Parses "off" | "error" | "warn" | "info" | "debug" (case-insensitive)
/// or a numeric level 0-4; anything else yields kOff.
LogLevel ParseLogLevel(std::string_view text);

const char* LogLevelName(LogLevel level);

/// Process-wide leveled logger writing one structured line per message to
/// stderr:
/// `ts=<seconds> tid=<thread> level=<level> component=<component> msg="..."`
/// followed by any fields attached via LogMessage::Field. `ts` is a
/// monotonic (steady_clock) timestamp and `tid` is the small sequential
/// thread id shared with trace spans (obs::CurrentThreadId), so parallel
/// log lines are attributable and can be correlated with spans.
class Logger {
 public:
  /// Singleton; the first call reads BELLWETHER_LOG_LEVEL from the
  /// environment (default off).
  static Logger& Get();

  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  bool ShouldLog(LogLevel severity) const {
    return severity != LogLevel::kOff && severity <= level();
  }

  /// Emits one pre-formatted line (callers normally go through BW_LOG).
  void Write(LogLevel severity, std::string_view component,
             std::string_view message);

  /// Redirects output (tests); nullptr restores stderr.
  void set_sink(std::FILE* sink) { sink_ = sink; }

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kOff};
  std::FILE* sink_ = nullptr;
};

/// One in-flight log statement: accumulates message text via operator<<
/// and structured key=value fields via Field(); emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel severity, std::string_view component)
      : severity_(severity), component_(component) {}
  ~LogMessage() {
    Logger::Get().Write(severity_, component_,
                        fields_.empty() ? msg_.str()
                                        : msg_.str() + fields_);
  }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    msg_ << v;
    return *this;
  }

  template <typename T>
  LogMessage& Field(std::string_view key, const T& v) {
    std::ostringstream os;
    os << " " << key << "=" << v;
    fields_ += os.str();
    return *this;
  }

 private:
  LogLevel severity_;
  std::string component_;
  std::ostringstream msg_;
  std::string fields_;
};

}  // namespace bellwether::obs

/// Usage: BW_LOG(obs::LogLevel::kInfo, "core.search") << "scored " << n;
/// The statement is free when the level is disabled (the stream expression
/// is not evaluated).
#define BW_LOG(severity, component)                                \
  if (!::bellwether::obs::Logger::Get().ShouldLog(severity)) {     \
  } else                                                           \
    ::bellwether::obs::LogMessage(severity, component)

#endif  // BELLWETHER_OBS_LOGGER_H_
