#ifndef BELLWETHER_OBS_PROFILER_H_
#define BELLWETHER_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace bellwether::obs {

// ---------------------------------------------------------------------------
// Profile labels. A label is a small interned id for the name of the
// innermost live trace span on a thread; the sampling profiler tags every
// stack sample with it and the heap tracker attributes every allocation to
// it, so both slice per builder phase. Label 0 is reserved for "no span".
// The interning table is bounded (kMaxProfileLabels); names past the bound
// collapse into one overflow label so the signal handler and operator new
// can index fixed arrays without allocation.
// ---------------------------------------------------------------------------

inline constexpr uint32_t kMaxProfileLabels = 512;
inline constexpr uint32_t kNoProfileLabel = 0;

/// Interns `name`, returning its stable label id (or the overflow id when
/// the table is full). Thread-safe; never called from a signal handler.
uint32_t InternProfileLabel(std::string_view name);

/// Name of an interned label. Id 0 -> "(no span)"; unknown -> "(unknown)".
std::string ProfileLabelName(uint32_t id);

/// True while either the sampling profiler or the heap tracker is armed.
/// TraceSpan consults this before paying for label interning, so both
/// facilities are zero-cost (one relaxed load) when disabled.
bool ProfileLabelCaptureEnabled();

/// Pushes `id` onto the calling thread's label stack. Returns false when
/// the fixed-depth stack is full (the caller must then skip the matching
/// PopProfileLabel). Signal handlers see the push atomically.
bool PushProfileLabel(uint32_t id);
void PopProfileLabel();

/// Innermost label currently live on the calling thread (0 = none).
uint32_t CurrentProfileLabel();

namespace internal {
/// Arms/disarms one bit of the label-capture mask (bit 1 = sampling
/// profiler, bit 2 = heap tracker). ProfileLabelCaptureEnabled() is true
/// while any bit is set.
void SetCaptureFlag(uint32_t bit, bool on);
}  // namespace internal

// ---------------------------------------------------------------------------
// Symbolized, folded profile.
// ---------------------------------------------------------------------------

/// A folded CPU profile: collapsed call stacks ("root;caller;...;leaf" with
/// ';'-separated frames, innermost last) mapped to sample counts — the
/// flamegraph.pl input format. The first frame of every stack recorded by
/// the Profiler is the enclosing trace-span label, so slicing per phase is
/// a prefix match on the root frame.
class Profile {
 public:
  /// Self/total sample attribution for one frame. `self` counts samples
  /// whose innermost frame this is; `total` counts samples the frame
  /// appears anywhere in (each stack counted once even under recursion).
  struct FrameStat {
    std::string frame;
    int64_t self = 0;
    int64_t total = 0;
  };

  Profile() = default;

  void AddStack(std::string collapsed_stack, int64_t samples);

  /// Folds `other` into this profile: stack counts add, metadata merges
  /// (sample counts sum; a zero period adopts the other's).
  void Merge(const Profile& other);

  const std::map<std::string, int64_t>& stacks() const { return stacks_; }
  int64_t total_samples() const { return total_samples_; }
  int64_t dropped_samples() const { return dropped_samples_; }
  int64_t period_us() const { return period_us_; }
  void set_period_us(int64_t us) { period_us_ = us; }
  void add_dropped_samples(int64_t n) { dropped_samples_ += n; }
  bool empty() const { return stacks_.empty(); }

  /// Per-frame self/total table over every stack, sorted by self samples
  /// descending (ties broken by frame name for a stable order). When
  /// `root_frame` is non-empty only stacks whose first frame equals it
  /// contribute, and the root frame itself is excluded from the table.
  std::vector<FrameStat> SelfTimeTable(std::string_view root_frame = "") const;

  /// Sample count per root frame (= per phase label), sorted by name.
  std::map<std::string, int64_t> SamplesByRootFrame() const;

  /// flamegraph.pl-compatible collapsed-stack text: one "stack count" line
  /// per entry, sorted by stack, trailing newline. Lossless for the stack
  /// map; period/dropped metadata is carried in '#'-prefixed header lines
  /// that flamegraph.pl ignores.
  std::string ToCollapsed() const;

  /// Parses ToCollapsed() output (unknown '#' headers are skipped).
  static Result<Profile> FromCollapsed(std::string_view text);

 private:
  std::map<std::string, int64_t> stacks_;
  int64_t total_samples_ = 0;
  int64_t dropped_samples_ = 0;
  int64_t period_us_ = 0;
};

// ---------------------------------------------------------------------------
// Sampling CPU profiler.
// ---------------------------------------------------------------------------

struct ProfilerOptions {
  /// CPU-time interval between SIGPROF samples (setitimer ITIMER_PROF, so
  /// the process as a whole is sampled once per `period_us` of CPU time and
  /// the kernel delivers the signal to a currently-running thread).
  int64_t period_us = 1000;
  /// Deepest frame-pointer walk per sample; deeper stacks are truncated.
  int32_t max_stack_depth = 48;
  /// Raw samples buffered per registered thread between Start and Stop;
  /// once full further samples on that thread are counted as dropped.
  int32_t thread_buffer_capacity = 1 << 16;
};

/// Signal-based sampling CPU profiler. Off by default and zero-cost while
/// off: the only always-on state is one relaxed atomic flag and the
/// per-thread registration bookkeeping. While running, a POSIX interval
/// timer (ITIMER_PROF) delivers SIGPROF to the process; the async-signal-
/// safe handler walks the frame-pointer chain from the interrupted context
/// (validated against the thread's stack bounds, so builds that omit frame
/// pointers degrade to leaf-only samples instead of crashing), tags the
/// sample with the innermost trace-span label, and appends it to a
/// lock-free per-thread buffer. Stop() disarms the timer, drains every
/// buffer, symbolizes unique pcs via dladdr (executables link with
/// ENABLE_EXPORTS so named functions resolve), and folds the samples into
/// a Profile.
///
/// Sampling only observes: it never blocks builder threads, allocates on
/// the sampled path, or changes control flow (SA_RESTART keeps syscalls
/// from surfacing EINTR), so builder outputs stay bit-identical with the
/// sampler armed — tests/profiler_test.cc locks that in.
class Profiler {
 public:
  /// The process-wide profiler instance (there can be only one: SIGPROF
  /// and the interval timer are process-global).
  static Profiler& Default();

  /// Arms the signal handler and interval timer. Registers the calling
  /// thread if it was not already. Fails when already running.
  Status Start(const ProfilerOptions& options = {});

  /// Disarms sampling, drains and symbolizes every registered thread's
  /// buffer, and returns the folded profile. Fails when not running.
  Result<Profile> Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// Registers the calling thread for sampling: records its stack bounds
  /// and allocates its sample buffer when the profiler is running (threads
  /// registered while idle get buffers on the next Start). Idempotent.
  /// Worker pools call this on pool entry; unregistered threads that take
  /// a SIGPROF are counted as dropped samples.
  static void RegisterCurrentThread();

  /// Flushes the calling thread's pending samples into the profiler and
  /// releases its buffer. Worker pools call this on pool exit so samples
  /// survive the workers. No-op when the thread never registered.
  static void UnregisterCurrentThread();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

 private:
  Profiler() = default;
  std::atomic<bool> running_{false};
};

}  // namespace bellwether::obs

#endif  // BELLWETHER_OBS_PROFILER_H_
