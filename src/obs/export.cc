#include "obs/export.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bellwether::obs {

std::string DeriveTracePath(const std::string& metrics_path) {
  const std::string suffix = ".json";
  if (metrics_path.size() > suffix.size() &&
      metrics_path.compare(metrics_path.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
    return metrics_path.substr(0, metrics_path.size() - suffix.size()) +
           ".trace.json";
  }
  return metrics_path + ".trace.json";
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok) return Status::IoError("short write to " + path);
  return Status::OK();
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError("read error on " + path);
  return out;
}

Status DumpDefaultTelemetry(const std::string& metrics_path,
                            const std::string& trace_path) {
  RegisterStandardMetrics(&DefaultMetrics());
  BW_RETURN_IF_ERROR(
      WriteTextFile(metrics_path, DefaultMetrics().ToJson()));
  const std::string tp =
      trace_path.empty() ? DeriveTracePath(metrics_path) : trace_path;
  return WriteTextFile(tp, DefaultTrace().ToChromeTraceJson());
}

}  // namespace bellwether::obs
