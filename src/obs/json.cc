#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bellwether::obs {

namespace {

// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    BW_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json: " + message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (depth_ > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      BW_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeLiteral("true")) return JsonValue(true);
    if (ConsumeLiteral("false")) return JsonValue(false);
    if (ConsumeLiteral("null")) return JsonValue();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    ++depth_;
    Consume('{');
    JsonValue::Object out;
    SkipWhitespace();
    if (Consume('}')) {
      --depth_;
      return JsonValue(std::move(out));
    }
    while (true) {
      SkipWhitespace();
      BW_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      BW_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      out.emplace(std::move(key), std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in object");
    }
    --depth_;
    return JsonValue(std::move(out));
  }

  Result<JsonValue> ParseArray() {
    ++depth_;
    Consume('[');
    JsonValue::Array out;
    SkipWhitespace();
    if (Consume(']')) {
      --depth_;
      return JsonValue(std::move(out));
    }
    while (true) {
      BW_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      out.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array");
    }
    --depth_;
    return JsonValue(std::move(out));
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          uint32_t cp = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<uint32_t>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // by the exports; a lone surrogate encodes as-is).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("bad number");
    return JsonValue(v);
  }

  static constexpr int kMaxDepth = 64;
  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

void WriteValue(const JsonValue& v, std::string* out) {
  if (v.is_null()) {
    out->append("null");
  } else if (v.is_bool()) {
    out->append(v.boolean() ? "true" : "false");
  } else if (v.is_number()) {
    out->append(JsonNumber(v.number()));
  } else if (v.is_string()) {
    out->push_back('"');
    out->append(JsonEscape(v.str()));
    out->push_back('"');
  } else if (v.is_array()) {
    out->push_back('[');
    bool first = true;
    for (const auto& e : v.array()) {
      if (!first) out->push_back(',');
      first = false;
      WriteValue(e, out);
    }
    out->push_back(']');
  } else {
    out->push_back('{');
    bool first = true;
    for (const auto& [k, e] : v.object()) {
      if (!first) out->push_back(',');
      first = false;
      out->push_back('"');
      out->append(JsonEscape(k));
      out->append("\":");
      WriteValue(e, out);
    }
    out->push_back('}');
  }
}

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).ParseDocument();
}

std::string WriteJson(const JsonValue& value) {
  std::string out;
  WriteValue(value, &out);
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\b': out.append("\\b"); break;
      case '\f': out.append("\\f"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace bellwether::obs
