#include "obs/heap_track.h"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include "obs/profiler.h"

// The interposition replaces the global allocation operators, which is only
// safe when this build's allocator is the plain libc one: AddressSanitizer
// and ThreadSanitizer install their own allocator and poisoning logic, so
// there the tracker compiles down to a permanent no-op.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define BW_HEAP_INTERPOSE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define BW_HEAP_INTERPOSE 0
#else
#define BW_HEAP_INTERPOSE 1
#endif
#else
#define BW_HEAP_INTERPOSE 1
#endif

namespace bellwether::obs {

namespace {

// All state visible from the allocation path is constant-initialized and
// trivially destructible, so interposed operators are safe at any point of
// the process lifetime (static init, thread start, teardown).
std::atomic<bool> g_heap_enabled{false};

struct alignas(64) LabelSlot {
  std::atomic<int64_t> bytes{0};
  std::atomic<int64_t> calls{0};
  std::atomic<int64_t> frees{0};
};
LabelSlot g_slots[kMaxProfileLabels];

inline uint32_t CurrentSlot() {
  const uint32_t id = CurrentProfileLabel();
  return id < kMaxProfileLabels ? id : kMaxProfileLabels - 1;
}

inline void CountAlloc(size_t size) {
  if (!g_heap_enabled.load(std::memory_order_relaxed)) return;
  LabelSlot& slot = g_slots[CurrentSlot()];
  slot.bytes.fetch_add(static_cast<int64_t>(size),
                       std::memory_order_relaxed);
  slot.calls.fetch_add(1, std::memory_order_relaxed);
}

inline void CountFree() {
  if (!g_heap_enabled.load(std::memory_order_relaxed)) return;
  g_slots[CurrentSlot()].frees.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

void HeapTracker::Enable() {
  for (LabelSlot& slot : g_slots) {
    slot.bytes.store(0, std::memory_order_relaxed);
    slot.calls.store(0, std::memory_order_relaxed);
    slot.frees.store(0, std::memory_order_relaxed);
  }
  g_heap_enabled.store(true, std::memory_order_relaxed);
  internal::SetCaptureFlag(2, true);
}

void HeapTracker::Disable() {
  g_heap_enabled.store(false, std::memory_order_relaxed);
  internal::SetCaptureFlag(2, false);
}

bool HeapTracker::enabled() {
  return g_heap_enabled.load(std::memory_order_relaxed);
}

bool HeapTracker::interposed() { return BW_HEAP_INTERPOSE != 0; }

std::map<std::string, HeapTracker::LabelStats> HeapTracker::Snapshot() {
  std::map<std::string, LabelStats> out;
  for (uint32_t id = 0; id < kMaxProfileLabels; ++id) {
    LabelStats stats;
    stats.alloc_bytes = g_slots[id].bytes.load(std::memory_order_relaxed);
    stats.alloc_calls = g_slots[id].calls.load(std::memory_order_relaxed);
    stats.free_calls = g_slots[id].frees.load(std::memory_order_relaxed);
    if (stats.alloc_calls == 0 && stats.free_calls == 0) continue;
    out[ProfileLabelName(id)] = stats;
  }
  return out;
}

}  // namespace bellwether::obs

#if BW_HEAP_INTERPOSE

namespace {

void* RawAlloc(size_t size, size_t align) {
  if (size == 0) size = 1;  // operator new must return a unique pointer
  if (align <= alignof(std::max_align_t)) return std::malloc(size);
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size) != 0) return nullptr;
  return p;
}

// Throwing-new contract: retry through the installed new_handler until the
// allocation succeeds or no handler is left, then throw.
void* TrackedNewOrThrow(size_t size, size_t align) {
  for (;;) {
    void* p = RawAlloc(size, align);
    if (p != nullptr) {
      bellwether::obs::CountAlloc(size);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* TrackedNewNoThrow(size_t size, size_t align) noexcept {
  void* p = RawAlloc(size, align);
  if (p != nullptr) bellwether::obs::CountAlloc(size);
  return p;
}

void TrackedDelete(void* p) noexcept {
  if (p == nullptr) return;
  bellwether::obs::CountFree();
  std::free(p);
}

}  // namespace

void* operator new(size_t size) { return TrackedNewOrThrow(size, 0); }
void* operator new[](size_t size) { return TrackedNewOrThrow(size, 0); }
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return TrackedNewNoThrow(size, 0);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return TrackedNewNoThrow(size, 0);
}
void* operator new(size_t size, std::align_val_t align) {
  return TrackedNewOrThrow(size, static_cast<size_t>(align));
}
void* operator new[](size_t size, std::align_val_t align) {
  return TrackedNewOrThrow(size, static_cast<size_t>(align));
}
void* operator new(size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return TrackedNewNoThrow(size, static_cast<size_t>(align));
}
void* operator new[](size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return TrackedNewNoThrow(size, static_cast<size_t>(align));
}

void operator delete(void* p) noexcept { TrackedDelete(p); }
void operator delete[](void* p) noexcept { TrackedDelete(p); }
void operator delete(void* p, size_t) noexcept { TrackedDelete(p); }
void operator delete[](void* p, size_t) noexcept { TrackedDelete(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  TrackedDelete(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  TrackedDelete(p);
}
void operator delete(void* p, std::align_val_t) noexcept { TrackedDelete(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  TrackedDelete(p);
}
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  TrackedDelete(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  TrackedDelete(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  TrackedDelete(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  TrackedDelete(p);
}

#endif  // BW_HEAP_INTERPOSE
