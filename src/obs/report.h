#ifndef BELLWETHER_OBS_REPORT_H_
#define BELLWETHER_OBS_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/heap_track.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace bellwether::obs {

/// Schema identity of the flight-recorder document. Bump the version on any
/// change to the key set or the meaning of a field; tools/benchdiff refuses
/// to compare documents whose schema identity differs.
inline constexpr std::string_view kRunReportSchema = "bellwether.run_report";
inline constexpr int64_t kRunReportSchemaVersion = 1;

/// Percentile estimate from fixed histogram buckets, Prometheus-style:
/// the target rank `quantile * total_count` is located in the cumulative
/// bucket counts and linearly interpolated inside the containing bucket
/// (lower edge 0 for the first bucket). Deterministic edge cases:
///   - empty histogram (total count 0) -> 0.0
///   - rank lands in the +Inf overflow bucket -> highest finite bound
///   - quantile is clamped to [0, 1]
/// `bucket_counts` are per-bucket (non-cumulative) and must have
/// `bounds.size() + 1` entries, the last being the +Inf overflow bucket.
double EstimateHistogramPercentile(const std::vector<double>& bounds,
                                   const std::vector<int64_t>& bucket_counts,
                                   double quantile);

/// Histogram summary embedded in a run report: total count, sum, and the
/// p50/p95/p99 percentile estimates of EstimateHistogramPercentile.
struct ReportHistogram {
  int64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  bool operator==(const ReportHistogram&) const = default;
};

/// One named wall-time phase. Same-name AddPhase calls merge: seconds
/// accumulate and `count` tracks the number of merged measurements.
struct ReportPhase {
  double wall_seconds = 0.0;
  int64_t count = 0;
  bool operator==(const ReportPhase&) const = default;
};

/// Allocation counters for one phase (trace-span label) from the heap
/// tracker: requested bytes, operator-new calls, operator-delete calls.
struct ReportAllocPhase {
  int64_t bytes = 0;
  int64_t calls = 0;
  int64_t frees = 0;
  bool operator==(const ReportAllocPhase&) const = default;
};

/// Optional hot-path attribution section of a run report, filled when a
/// bench ran with --profile-out (or a builder armed the profiler): the
/// top-N self-time frames of the sampling profiler and the per-phase
/// allocation counters of the heap tracker. Excluded from LogicalJson()
/// — sample counts are timing, not logical identity — and omitted from
/// ToJson() entirely when empty, so reports written with profiling
/// disabled are unchanged. Additive-optional, so the schema version
/// stays put and older readers simply ignore the key.
struct ReportProfile {
  int64_t period_us = 0;
  int64_t total_samples = 0;
  int64_t dropped_samples = 0;
  /// Frame -> self samples, the top-N rows of Profile::SelfTimeTable().
  std::map<std::string, int64_t> self_samples;
  /// Phase label -> allocation counters.
  std::map<std::string, ReportAllocPhase> alloc;
  bool empty() const {
    return total_samples == 0 && self_samples.empty() && alloc.empty();
  }
  bool operator==(const ReportProfile&) const = default;
};

/// Builds a report profile section: the top `top_n` self-time frames of
/// `profile` plus the per-phase counters of a HeapTracker snapshot.
ReportProfile SummarizeProfile(
    const Profile& profile,
    const std::map<std::string, HeapTracker::LabelStats>& alloc,
    int top_n = 20);

/// Flight recorder for one builder or bench run: aggregates configuration,
/// logical telemetry, per-phase wall times, a metrics snapshot, robustness
/// events, and environment metadata into one schema-versioned JSON document
/// with stable (sorted) key ordering.
///
/// The document deliberately separates LOGICAL fields — config, counts,
/// values, text — from timing/environment fields. The logical sections are
/// bit-identical across thread counts for a deterministic build (the
/// parallel-determinism contract); LogicalJson() serializes exactly those,
/// so tests can diff runs at different num_threads byte-for-byte. Wall
/// times, metrics snapshots, peak RSS, and environment metadata live only
/// in the full ToJson() document.
class RunReport {
 public:
  RunReport() = default;
  explicit RunReport(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // ---- logical sections (deterministic across thread counts) ----

  /// Configuration entries that identify the run. Do NOT record thread
  /// counts or other machine-local execution knobs here — those belong to
  /// the environment section; the config fingerprint must match between a
  /// serial and a parallel run of the same logical work.
  void SetConfig(std::string_view key, std::string_view value);
  void SetConfig(std::string_view key, double value);
  void SetConfig(std::string_view key, int64_t value);

  /// Integer telemetry: scan counts, nodes/cells created, robustness event
  /// counts (faults hit, retries, degradation picks, checkpoint resumes).
  void SetCount(std::string_view key, int64_t value);
  void AddCount(std::string_view key, int64_t delta);
  int64_t GetCount(std::string_view key, int64_t fallback = 0) const;

  /// Floating-point results (errors, speedups) and free-text results
  /// (bellwether labels, armed fault specs).
  void SetValue(std::string_view key, double value);
  double GetValue(std::string_view key, double fallback = 0.0) const;
  void SetText(std::string_view key, std::string_view value);

  /// FNV-1a 64-bit hash over the sorted config section, hex-encoded.
  /// Insertion order does not matter; any key or value change does.
  std::string ConfigFingerprint() const;

  // ---- timing section (excluded from the logical identity) ----

  void AddPhase(std::string_view phase, double wall_seconds);

  /// Rolls every completed span of `trace` up by name into phases keyed
  /// "span/<name>": durations sum across spans (and across threads, so a
  /// parallel phase may exceed wall time), `count` is the span count.
  void CapturePhasesFromTrace(const Trace& trace = DefaultTrace());

  /// Attaches the hot-path attribution section (see ReportProfile).
  void set_profile(ReportProfile profile) { profile_ = std::move(profile); }
  const ReportProfile& profile() const { return profile_; }

  // ---- snapshots (excluded from the logical identity) ----

  /// Snapshots every registered metric; histograms are summarized with
  /// p50/p95/p99 percentile estimates.
  void CaptureMetrics(const MetricsRegistry& registry = DefaultMetrics());

  /// Records hardware_concurrency, build flavor (release/debug +
  /// sanitizer), the git sha (BELLWETHER_GIT_SHA or GITHUB_SHA environment
  /// variable, else "unknown"), and the process peak RSS in bytes.
  void CaptureEnvironment();

  // ---- serialization ----

  /// The full schema-versioned document, compact JSON, keys sorted.
  std::string ToJson() const;

  /// Only the logical sections (schema, name, config + fingerprint, counts,
  /// values, text). Byte-identical across thread counts for deterministic
  /// builds; wall-time, metrics, and environment fields are excluded.
  std::string LogicalJson() const;

  /// Parses a document produced by ToJson(). Unknown keys are ignored (a
  /// newer writer stays readable); re-emitting an unmodified parse of a
  /// same-version document is bit-identical.
  static Result<RunReport> FromJson(std::string_view text);

  // ---- accessors (benchdiff, tests) ----
  const std::map<std::string, std::string>& config() const { return config_; }
  const std::map<std::string, int64_t>& counts() const { return counts_; }
  const std::map<std::string, double>& values() const { return values_; }
  const std::map<std::string, std::string>& text() const { return text_; }
  const std::map<std::string, ReportPhase>& phases() const { return phases_; }
  const std::map<std::string, std::string>& environment() const {
    return environment_;
  }
  const std::map<std::string, int64_t>& metric_counters() const {
    return metric_counters_;
  }
  const std::map<std::string, double>& metric_gauges() const {
    return metric_gauges_;
  }
  const std::map<std::string, ReportHistogram>& metric_histograms() const {
    return metric_histograms_;
  }
  double peak_rss_bytes() const { return peak_rss_bytes_; }

 private:
  std::string name_;
  std::map<std::string, std::string> config_;
  std::map<std::string, int64_t> counts_;
  std::map<std::string, double> values_;
  std::map<std::string, std::string> text_;
  std::map<std::string, ReportPhase> phases_;
  std::map<std::string, std::string> environment_;
  std::map<std::string, int64_t> metric_counters_;
  std::map<std::string, double> metric_gauges_;
  std::map<std::string, ReportHistogram> metric_histograms_;
  ReportProfile profile_;
  double peak_rss_bytes_ = 0.0;
};

// ---------------------------------------------------------------------------
// benchdiff: noise-aware comparison of two run reports (tools/benchdiff).
// ---------------------------------------------------------------------------

struct BenchDiffOptions {
  /// Relative slowdown that counts as a regression: new > old * (1 +
  /// threshold) fails. The same margin, inverted, reports an improvement.
  double threshold = 0.15;
  /// Noise floor: a phase is compared only when either run spent at least
  /// this many wall seconds in it — micro-phases jitter too much to gate on.
  double min_seconds = 0.005;
  /// When true, differing logical counts/values fail the diff instead of
  /// only being reported.
  bool fail_on_count_drift = false;
  /// Relative change in a phase's allocation-call count (profile section)
  /// that is flagged as drift. Compared only when both reports carry
  /// allocation counters for the phase, and only above an absolute floor
  /// of kAllocDriftFloorCalls calls so tiny phases don't jitter.
  double alloc_drift_threshold = 0.10;
  /// When true, an allocation-count *increase* beyond the threshold fails
  /// the diff. Decreases are reported but never fail — an intentional
  /// alloc-count improvement re-baselines cleanly on the next artifact
  /// upload instead of blocking the PR that delivered it.
  bool fail_on_alloc_drift = false;
};

inline constexpr int64_t kAllocDriftFloorCalls = 64;

enum class BenchDiffKind {
  kRegression,      // phase slowed beyond the threshold
  kImprovement,     // phase sped up beyond the threshold
  kCountDrift,      // logical count or value changed between runs
  kPhaseOnlyInOne,  // phase present in exactly one report
  kAllocDrift,      // per-phase allocation-call count drifted
};

struct BenchDiffEntry {
  BenchDiffKind kind = BenchDiffKind::kRegression;
  std::string key;
  double old_value = 0.0;
  double new_value = 0.0;
  double ratio = 0.0;  // new / old for phase entries, 0 when undefined
};

struct BenchDiffResult {
  std::vector<BenchDiffEntry> entries;
  bool schema_mismatch = false;
  bool name_mismatch = false;
  bool config_changed = false;  // fingerprints differ (reported, not fatal)
  bool failed = false;          // regression (or drift under the option)

  /// Human-readable multi-line summary of every entry and verdict.
  std::string Summary() const;

  /// Machine-readable form (benchdiff --json): compact JSON with the
  /// verdict flags and one comparison object per entry
  /// ({"kind","key","old","new","ratio"}), keys sorted.
  std::string ToJson() const;
};

/// Compares `current` against `baseline` phase by phase with the relative
/// threshold and noise floor of `options`, and diffs the logical
/// counts/values. Never compares documents of mismatched schema identity
/// (schema_mismatch is set and failed = true).
BenchDiffResult CompareRunReports(const RunReport& baseline,
                                  const RunReport& current,
                                  const BenchDiffOptions& options = {});

}  // namespace bellwether::obs

#endif  // BELLWETHER_OBS_REPORT_H_
