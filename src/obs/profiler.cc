#include "obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <elf.h>
#include <errno.h>
#include <pthread.h>
#include <signal.h>
#include <sys/time.h>
#include <ucontext.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

namespace bellwether::obs {

namespace {

// ---------------------------------------------------------------------------
// Label interning and the per-thread label stack.
//
// Everything the SIGPROF handler and operator new touch is either
// thread-local POD or a lock-free atomic: the interning table (mutex, map)
// is only ever used from normal context when a trace span opens.
// ---------------------------------------------------------------------------

constexpr uint32_t kOverflowLabel = kMaxProfileLabels - 1;
constexpr uint32_t kMaxLabelDepth = 64;

// Bit 0: sampling profiler armed; bit 1: heap tracker armed.
std::atomic<uint32_t> g_capture_flags{0};

struct LabelStack {
  std::atomic<uint32_t> depth{0};
  uint32_t ids[kMaxLabelDepth];
};
thread_local LabelStack t_label_stack;

struct LabelTable {
  std::mutex mu;
  std::map<std::string, uint32_t, std::less<>> ids;
  std::vector<std::string> names;
};

LabelTable& Labels() {
  static LabelTable* table = [] {
    auto* t = new LabelTable();
    t->names.push_back("(no span)");  // id 0
    return t;
  }();
  return *table;
}

// ---------------------------------------------------------------------------
// Sampling state. The handler only ever sees plain statics and its own
// thread's record; the registry (vector of records, pending samples) is
// mutex-guarded and touched from normal context only.
// ---------------------------------------------------------------------------

constexpr uint32_t kMaxStackDepthHard = 64;

struct RawSample {
  uint32_t depth = 0;
  uint32_t label = 0;
  uintptr_t pcs[kMaxStackDepthHard];
};

struct ThreadRecord {
  std::atomic<RawSample*> buffer{nullptr};
  std::atomic<uint32_t> head{0};
  std::atomic<int64_t> dropped{0};
  uint32_t capacity = 0;
  uintptr_t stack_lo = 0;
  uintptr_t stack_hi = 0;
};

std::atomic<bool> g_sampling{false};
std::atomic<uint32_t> g_max_depth{48};
std::atomic<int64_t> g_unregistered_dropped{0};

thread_local ThreadRecord* t_record = nullptr;

struct ProfilerState {
  std::mutex mu;
  std::vector<ThreadRecord*> records;
  std::vector<RawSample> pending;  // flushed by unregistering threads
  ProfilerOptions options;
  struct sigaction old_action;
  bool old_action_valid = false;
};

ProfilerState& State() {
  static ProfilerState* state = new ProfilerState();
  return *state;
}

// The frame-pointer walk reads raw stack words, which may land in ASan
// redzones or look like races to TSan even though the handler only touches
// its own thread's stack; keep the sanitizers out of the handler.
#if defined(__clang__)
#define BW_NO_SANITIZE \
  __attribute__((no_sanitize("address", "thread", "memory", "undefined")))
#elif defined(__GNUC__)
#define BW_NO_SANITIZE                                       \
  __attribute__((no_sanitize_address, no_sanitize_thread, \
                 no_sanitize_undefined))
#else
#define BW_NO_SANITIZE
#endif

BW_NO_SANITIZE
void SigprofHandler(int /*signo*/, siginfo_t* /*info*/, void* uc_void) {
  if (!g_sampling.load(std::memory_order_relaxed)) return;
  const int saved_errno = errno;
  ThreadRecord* rec = t_record;
  if (rec == nullptr) {
    g_unregistered_dropped.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  RawSample* buffer = rec->buffer.load(std::memory_order_acquire);
  const uint32_t head = rec->head.load(std::memory_order_relaxed);
  if (buffer == nullptr || head >= rec->capacity) {
    rec->dropped.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  RawSample& sample = buffer[head];

  uintptr_t pc = 0, fp = 0, sp = 0;
  auto* uc = static_cast<ucontext_t*>(uc_void);
#if defined(__x86_64__)
  pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  sp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
  sp = static_cast<uintptr_t>(uc->uc_mcontext.sp);
#else
  (void)uc;
#endif

  uint32_t depth = 0;
  const uint32_t max_depth =
      std::min(g_max_depth.load(std::memory_order_relaxed),
               kMaxStackDepthHard);
  if (pc != 0 && depth < max_depth) sample.pcs[depth++] = pc;
  // Frame-pointer walk, validated against the thread's stack bounds so a
  // build that omits frame pointers (or a register holding arbitrary data)
  // terminates the walk instead of faulting. Frames must be pointer-aligned
  // and strictly ascend toward the stack base.
  const uintptr_t lo = sp != 0 ? sp : rec->stack_lo;
  const uintptr_t hi = rec->stack_hi;
  uintptr_t frame = fp;
  while (depth < max_depth && frame >= lo && hi > frame &&
         hi - frame >= 2 * sizeof(uintptr_t) &&
         (frame & (sizeof(uintptr_t) - 1)) == 0) {
    const uintptr_t* slots = reinterpret_cast<const uintptr_t*>(frame);
    const uintptr_t ret = slots[1];
    const uintptr_t next = slots[0];
    if (ret == 0) break;
    sample.pcs[depth++] = ret;
    if (next <= frame) break;
    frame = next;
  }
  sample.depth = depth;
  const uint32_t label_depth =
      t_label_stack.depth.load(std::memory_order_relaxed);
  sample.label =
      label_depth == 0 ? kNoProfileLabel
                       : t_label_stack.ids[std::min(label_depth,
                                                    kMaxLabelDepth) - 1];
  rec->head.store(head + 1, std::memory_order_release);
  errno = saved_errno;
}

void ThreadStackBounds(uintptr_t* lo, uintptr_t* hi) {
  *lo = 0;
  *hi = 0;
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) != 0) return;
  void* addr = nullptr;
  size_t size = 0;
  if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
    *lo = reinterpret_cast<uintptr_t>(addr);
    *hi = *lo + size;
  }
  pthread_attr_destroy(&attr);
}

// Appends the record's published samples to `out` and resets its head.
// Callers hold the state mutex; the handler may still append concurrently,
// which is safe (we only read slots below the acquired head) but any sample
// it publishes after the head load is dropped by the head reset.
void DrainRecord(ThreadRecord* rec, std::vector<RawSample>* out) {
  RawSample* buffer = rec->buffer.load(std::memory_order_acquire);
  if (buffer == nullptr) return;
  const uint32_t n = rec->head.load(std::memory_order_acquire);
  out->insert(out->end(), buffer, buffer + n);
  rec->head.store(0, std::memory_order_relaxed);
}

std::string Demangle(const char* mangled) {
  int status = 0;
  char* demangled = abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
  std::string name =
      (status == 0 && demangled != nullptr) ? demangled : mangled;
  std::free(demangled);
  // ';' separates frames in the collapsed format; demangled C++ names
  // never contain it, but be defensive about hand-written symbols.
  std::replace(name.begin(), name.end(), ';', ':');
  return name;
}

// dladdr only consults .dynsym, so internal-linkage functions — anonymous
// namespaces, file statics, outlined lambda clones — come back unnamed even
// though the module's .symtab knows them. Load that table per module, once,
// at symbolization time (Stop holds the state mutex; nothing here runs in
// the signal handler).
struct ModuleSymtab {
  bool is_pie = false;  // ET_DYN: symbol values are base-relative.
  // Sorted by address; parallel name vector keyed by the same index.
  std::vector<std::pair<uintptr_t, uintptr_t>> ranges;  // {addr, size}
  std::vector<std::string> names;
};

ModuleSymtab LoadModuleSymtab(const char* path) {
  ModuleSymtab out;
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return out;
  std::vector<char> bytes;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  std::fclose(f);
  if (bytes.size() < sizeof(Elf64_Ehdr)) return out;
  const auto* ehdr = reinterpret_cast<const Elf64_Ehdr*>(bytes.data());
  if (std::memcmp(ehdr->e_ident, ELFMAG, SELFMAG) != 0 ||
      ehdr->e_ident[EI_CLASS] != ELFCLASS64) {
    return out;
  }
  out.is_pie = ehdr->e_type == ET_DYN;
  const size_t shoff = ehdr->e_shoff;
  if (shoff == 0 ||
      shoff + static_cast<size_t>(ehdr->e_shnum) * sizeof(Elf64_Shdr) >
          bytes.size()) {
    return out;
  }
  const auto* shdrs = reinterpret_cast<const Elf64_Shdr*>(&bytes[shoff]);
  std::vector<std::pair<uintptr_t, uintptr_t>> ranges;
  std::vector<std::string> names;
  for (int i = 0; i < ehdr->e_shnum; ++i) {
    if (shdrs[i].sh_type != SHT_SYMTAB && shdrs[i].sh_type != SHT_DYNSYM) {
      continue;
    }
    if (shdrs[i].sh_link >= ehdr->e_shnum) continue;
    const Elf64_Shdr& strs = shdrs[shdrs[i].sh_link];
    if (shdrs[i].sh_offset + shdrs[i].sh_size > bytes.size() ||
        strs.sh_offset + strs.sh_size > bytes.size()) {
      continue;
    }
    const auto* syms =
        reinterpret_cast<const Elf64_Sym*>(&bytes[shdrs[i].sh_offset]);
    const size_t count = shdrs[i].sh_size / sizeof(Elf64_Sym);
    const char* strtab = &bytes[strs.sh_offset];
    for (size_t s = 0; s < count; ++s) {
      if (ELF64_ST_TYPE(syms[s].st_info) != STT_FUNC) continue;
      if (syms[s].st_value == 0 || syms[s].st_name >= strs.sh_size) continue;
      const char* nm = strtab + syms[s].st_name;
      if (*nm == '\0') continue;
      ranges.emplace_back(syms[s].st_value, syms[s].st_size);
      names.emplace_back(nm);
    }
  }
  // Sort both arrays by address via an index permutation.
  std::vector<size_t> order(ranges.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ranges[a].first < ranges[b].first;
  });
  out.ranges.reserve(order.size());
  out.names.reserve(order.size());
  for (size_t i : order) {
    out.ranges.push_back(ranges[i]);
    out.names.push_back(std::move(names[i]));
  }
  return out;
}

// Returns the mangled name covering `pc`, or nullptr. `base` is the module
// load base from dladdr (dli_fbase).
const char* LookupStaticSymbol(const char* path, uintptr_t pc,
                               uintptr_t base) {
  static std::map<std::string, ModuleSymtab>* cache =
      new std::map<std::string, ModuleSymtab>();
  auto it = cache->find(path);
  if (it == cache->end()) {
    it = cache->emplace(path, LoadModuleSymtab(path)).first;
  }
  const ModuleSymtab& tab = it->second;
  if (tab.ranges.empty()) return nullptr;
  const uintptr_t rel = tab.is_pie ? pc - base : pc;
  auto hi = std::upper_bound(
      tab.ranges.begin(), tab.ranges.end(), rel,
      [](uintptr_t v, const std::pair<uintptr_t, uintptr_t>& r) {
        return v < r.first;
      });
  if (hi == tab.ranges.begin()) return nullptr;
  const size_t idx = static_cast<size_t>(hi - tab.ranges.begin()) - 1;
  const auto& [addr, size] = tab.ranges[idx];
  // Zero-sized symbols (assembly stubs) get a generous slack window.
  const uintptr_t limit = size != 0 ? size : 4096;
  if (rel - addr >= limit) return nullptr;
  return tab.names[idx].c_str();
}

std::string BaseName(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

std::string DemanglePc(uintptr_t pc) {
  Dl_info info;
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0) {
    if (info.dli_sname != nullptr) return Demangle(info.dli_sname);
    if (info.dli_fname != nullptr) {
      const char* nm = LookupStaticSymbol(
          info.dli_fname, pc, reinterpret_cast<uintptr_t>(info.dli_fbase));
      if (nm != nullptr) return Demangle(nm);
      // Module known, symbol not (stripped, or the vdso which has no
      // on-disk file). Fold all such pcs into one frame per module rather
      // than scattering raw addresses through the profile.
      return "[" + BaseName(info.dli_fname) + "]";
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%zx", static_cast<size_t>(pc));
  return buf;
}

std::string SanitizeLabel(std::string name) {
  std::replace(name.begin(), name.end(), ';', ':');
  return name;
}

}  // namespace

// ---------------------------------------------------------------------------
// Labels.
// ---------------------------------------------------------------------------

uint32_t InternProfileLabel(std::string_view name) {
  LabelTable& table = Labels();
  std::lock_guard<std::mutex> lock(table.mu);
  auto it = table.ids.find(name);
  if (it != table.ids.end()) return it->second;
  if (table.names.size() >= kOverflowLabel) return kOverflowLabel;
  const uint32_t id = static_cast<uint32_t>(table.names.size());
  table.names.emplace_back(name);
  table.ids.emplace(std::string(name), id);
  return id;
}

std::string ProfileLabelName(uint32_t id) {
  if (id == kOverflowLabel) return "(other)";
  LabelTable& table = Labels();
  std::lock_guard<std::mutex> lock(table.mu);
  if (id >= table.names.size()) return "(unknown)";
  return table.names[id];
}

bool ProfileLabelCaptureEnabled() {
  return g_capture_flags.load(std::memory_order_relaxed) != 0;
}

bool PushProfileLabel(uint32_t id) {
  const uint32_t depth = t_label_stack.depth.load(std::memory_order_relaxed);
  if (depth >= kMaxLabelDepth) return false;
  t_label_stack.ids[depth] = id;
  t_label_stack.depth.store(depth + 1, std::memory_order_release);
  return true;
}

void PopProfileLabel() {
  const uint32_t depth = t_label_stack.depth.load(std::memory_order_relaxed);
  if (depth == 0) return;
  t_label_stack.depth.store(depth - 1, std::memory_order_release);
}

uint32_t CurrentProfileLabel() {
  const uint32_t depth = t_label_stack.depth.load(std::memory_order_relaxed);
  if (depth == 0) return kNoProfileLabel;
  return t_label_stack.ids[std::min(depth, kMaxLabelDepth) - 1];
}

namespace internal {

void SetCaptureFlag(uint32_t bit, bool on) {
  if (on) {
    g_capture_flags.fetch_or(bit, std::memory_order_relaxed);
  } else {
    g_capture_flags.fetch_and(~bit, std::memory_order_relaxed);
  }
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Profile.
// ---------------------------------------------------------------------------

void Profile::AddStack(std::string collapsed_stack, int64_t samples) {
  if (samples <= 0) return;
  stacks_[std::move(collapsed_stack)] += samples;
  total_samples_ += samples;
}

void Profile::Merge(const Profile& other) {
  for (const auto& [stack, count] : other.stacks_) {
    stacks_[stack] += count;
  }
  total_samples_ += other.total_samples_;
  dropped_samples_ += other.dropped_samples_;
  if (period_us_ == 0) period_us_ = other.period_us_;
}

namespace {

// Splits a collapsed stack into its ';'-separated frames.
std::vector<std::string_view> SplitFrames(std::string_view stack) {
  std::vector<std::string_view> frames;
  size_t start = 0;
  while (start <= stack.size()) {
    const size_t sep = stack.find(';', start);
    if (sep == std::string_view::npos) {
      frames.push_back(stack.substr(start));
      break;
    }
    frames.push_back(stack.substr(start, sep - start));
    start = sep + 1;
  }
  return frames;
}

}  // namespace

std::vector<Profile::FrameStat> Profile::SelfTimeTable(
    std::string_view root_frame) const {
  std::map<std::string_view, FrameStat> by_frame;
  for (const auto& [stack, count] : stacks_) {
    std::vector<std::string_view> frames = SplitFrames(stack);
    if (frames.empty()) continue;
    if (!root_frame.empty()) {
      if (frames.front() != root_frame) continue;
      frames.erase(frames.begin());
      if (frames.empty()) continue;
    }
    FrameStat& leaf = by_frame[frames.back()];
    leaf.self += count;
    // Total time: count each stack once per frame even under recursion.
    std::vector<std::string_view> seen(frames);
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    for (std::string_view f : seen) by_frame[f].total += count;
  }
  std::vector<FrameStat> table;
  table.reserve(by_frame.size());
  for (auto& [frame, stat] : by_frame) {
    stat.frame = std::string(frame);
    table.push_back(std::move(stat));
  }
  std::sort(table.begin(), table.end(),
            [](const FrameStat& a, const FrameStat& b) {
              if (a.self != b.self) return a.self > b.self;
              if (a.total != b.total) return a.total > b.total;
              return a.frame < b.frame;
            });
  return table;
}

std::map<std::string, int64_t> Profile::SamplesByRootFrame() const {
  std::map<std::string, int64_t> out;
  for (const auto& [stack, count] : stacks_) {
    const size_t sep = stack.find(';');
    out[stack.substr(0, sep)] += count;
  }
  return out;
}

std::string Profile::ToCollapsed() const {
  std::string out;
  char line[64];
  std::snprintf(line, sizeof(line), "# period_us %lld\n",
                static_cast<long long>(period_us_));
  out += line;
  std::snprintf(line, sizeof(line), "# dropped_samples %lld\n",
                static_cast<long long>(dropped_samples_));
  out += line;
  for (const auto& [stack, count] : stacks_) {
    out += stack;
    std::snprintf(line, sizeof(line), " %lld\n",
                  static_cast<long long>(count));
    out += line;
  }
  return out;
}

Result<Profile> Profile::FromCollapsed(std::string_view text) {
  Profile out;
  size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line.front() == '#') {
      // "# key value" metadata headers; unknown keys are skipped.
      std::string header(line.substr(1));
      char key[32];
      long long value = 0;
      if (std::sscanf(header.c_str(), "%31s %lld", key, &value) == 2) {
        if (std::strcmp(key, "period_us") == 0) out.period_us_ = value;
        if (std::strcmp(key, "dropped_samples") == 0) {
          out.dropped_samples_ = value;
        }
      }
      continue;
    }
    const size_t sep = line.find_last_of(' ');
    if (sep == std::string_view::npos || sep == 0 ||
        sep + 1 >= line.size()) {
      return Status::InvalidArgument(
          "collapsed profile: line " + std::to_string(line_no) +
          " is not \"stack count\"");
    }
    char* parse_end = nullptr;
    const std::string count_text(line.substr(sep + 1));
    const long long count = std::strtoll(count_text.c_str(), &parse_end, 10);
    if (parse_end == nullptr || *parse_end != '\0' || count < 0) {
      return Status::InvalidArgument(
          "collapsed profile: bad sample count on line " +
          std::to_string(line_no));
    }
    out.AddStack(std::string(line.substr(0, sep)), count);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Profiler.
// ---------------------------------------------------------------------------

Profiler& Profiler::Default() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

void Profiler::RegisterCurrentThread() {
  if (t_record != nullptr) return;
  auto* rec = new ThreadRecord();
  ThreadStackBounds(&rec->stack_lo, &rec->stack_hi);
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (Default().running()) {
    rec->capacity =
        static_cast<uint32_t>(state.options.thread_buffer_capacity);
    rec->buffer.store(new RawSample[rec->capacity],
                      std::memory_order_release);
  }
  state.records.push_back(rec);
  t_record = rec;
}

void Profiler::UnregisterCurrentThread() {
  ThreadRecord* rec = t_record;
  if (rec == nullptr) return;
  t_record = nullptr;
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  DrainRecord(rec, &state.pending);
  g_unregistered_dropped.fetch_add(
      rec->dropped.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  // Safe to free: the handler only touches this record from its owning
  // thread, and that thread (ours) is past any handler by now.
  delete[] rec->buffer.exchange(nullptr, std::memory_order_acq_rel);
  state.records.erase(
      std::remove(state.records.begin(), state.records.end(), rec),
      state.records.end());
  delete rec;
}

Status Profiler::Start(const ProfilerOptions& options) {
  if (options.period_us <= 0 || options.max_stack_depth <= 0 ||
      options.thread_buffer_capacity <= 0) {
    return Status::InvalidArgument("profiler: options must be positive");
  }
  RegisterCurrentThread();
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (running()) {
    return Status::FailedPrecondition("profiler: already running");
  }
  state.options = options;
  g_max_depth.store(
      std::min<uint32_t>(static_cast<uint32_t>(options.max_stack_depth),
                         kMaxStackDepthHard),
      std::memory_order_relaxed);
  g_unregistered_dropped.store(0, std::memory_order_relaxed);
  state.pending.clear();
  for (ThreadRecord* rec : state.records) {
    if (rec->buffer.load(std::memory_order_relaxed) == nullptr) {
      rec->capacity =
          static_cast<uint32_t>(options.thread_buffer_capacity);
      rec->buffer.store(new RawSample[rec->capacity],
                        std::memory_order_release);
    }
    rec->head.store(0, std::memory_order_relaxed);
    rec->dropped.store(0, std::memory_order_relaxed);
  }

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = &SigprofHandler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (sigaction(SIGPROF, &action, &state.old_action) != 0) {
    return Status::Internal("profiler: sigaction(SIGPROF) failed");
  }
  state.old_action_valid = true;

  running_.store(true, std::memory_order_relaxed);
  internal::SetCaptureFlag(1, true);
  g_sampling.store(true, std::memory_order_release);

  struct itimerval timer;
  timer.it_interval.tv_sec = options.period_us / 1000000;
  timer.it_interval.tv_usec = options.period_us % 1000000;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_sampling.store(false, std::memory_order_release);
    running_.store(false, std::memory_order_relaxed);
    internal::SetCaptureFlag(1, false);
    sigaction(SIGPROF, &state.old_action, nullptr);
    state.old_action_valid = false;
    return Status::Internal("profiler: setitimer(ITIMER_PROF) failed");
  }
  return Status::OK();
}

Result<Profile> Profiler::Stop() {
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!running()) {
    return Status::FailedPrecondition("profiler: not running");
  }
  g_sampling.store(false, std::memory_order_release);
  struct itimerval timer;
  std::memset(&timer, 0, sizeof(timer));
  setitimer(ITIMER_PROF, &timer, nullptr);
  if (state.old_action_valid) {
    sigaction(SIGPROF, &state.old_action, nullptr);
    state.old_action_valid = false;
  }
  running_.store(false, std::memory_order_relaxed);
  internal::SetCaptureFlag(1, false);

  std::vector<RawSample> samples = std::move(state.pending);
  state.pending.clear();
  int64_t dropped = g_unregistered_dropped.load(std::memory_order_relaxed);
  for (ThreadRecord* rec : state.records) {
    DrainRecord(rec, &samples);
    dropped += rec->dropped.load(std::memory_order_relaxed);
    rec->dropped.store(0, std::memory_order_relaxed);
  }

  Profile profile;
  profile.set_period_us(state.options.period_us);
  profile.add_dropped_samples(dropped);
  // Symbolize each unique pc once. Return addresses (every frame but the
  // leaf) point at the instruction after the call, so they resolve at
  // pc - 1 to land inside the calling function.
  std::map<uintptr_t, std::string> symbol_cache;
  auto symbolize = [&symbol_cache](uintptr_t pc) -> const std::string& {
    auto it = symbol_cache.find(pc);
    if (it == symbol_cache.end()) {
      it = symbol_cache.emplace(pc, DemanglePc(pc)).first;
    }
    return it->second;
  };
  for (const RawSample& sample : samples) {
    std::string stack = SanitizeLabel(ProfileLabelName(sample.label));
    for (uint32_t i = sample.depth; i > 0; --i) {
      const uintptr_t pc = sample.pcs[i - 1];
      stack += ';';
      stack += symbolize(i == 1 ? pc : pc - 1);
    }
    profile.AddStack(std::move(stack), 1);
  }
  return profile;
}

}  // namespace bellwether::obs
