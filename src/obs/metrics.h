#ifndef BELLWETHER_OBS_METRICS_H_
#define BELLWETHER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bellwether::obs {

/// Monotonically increasing integer metric. All operations are lock-free.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-written floating-point metric (may go up or down).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Set(v) only when v exceeds the current value (peak tracking).
  void SetMax(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. An observation v lands in the first bucket whose
/// upper bound satisfies v <= bound; values above every bound land in the
/// implicit +Inf overflow bucket. Thread-safe and lock-free.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);

  int64_t TotalCount() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Finite upper bounds, excluding the implicit +Inf bucket.
  const std::vector<double>& bucket_bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size = bucket_bounds().size() + 1,
  /// the last entry being the +Inf overflow bucket.
  std::vector<int64_t> BucketCounts() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every registered metric, keyed by name in sorted
/// order (std::map), so consumers can serialize without holding the registry
/// lock and two snapshots of the same state compare equal.
struct MetricsSnapshot {
  struct HistogramState {
    std::vector<double> bounds;          // finite upper bounds
    std::vector<int64_t> bucket_counts;  // non-cumulative, bounds.size() + 1
    int64_t total_count = 0;
    double sum = 0.0;
  };
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramState> histograms;
};

/// Thread-safe registry of named metrics. Lookup registers on first use and
/// returns a stable pointer; subsequent lookups of the same name return the
/// same metric, so hot paths should cache the pointer.
///
/// Iteration order everywhere (Prometheus text, JSON, MetricNames,
/// Snapshot) is sorted by metric name, so exports diff cleanly between
/// runs regardless of registration order.
///
/// Metric names follow the Prometheus convention:
/// `bellwether_<area>_<what>_<unit-or-total>` (see docs/OBSERVABILITY.md).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  /// Registers with the given bucket bounds on first use; later calls with
  /// different bounds return the existing histogram unchanged.
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> upper_bounds,
                          std::string_view help = "");

  /// Prometheus text exposition format (counters as `name value`, histograms
  /// as cumulative `name_bucket{le="..."}` series plus `_sum`/`_count`).
  std::string ToPrometheusText() const;

  /// JSON export:
  ///   {"counters": {name: value, ...},
  ///    "gauges": {name: value, ...},
  ///    "histograms": {name: {"count": n, "sum": s,
  ///                          "buckets": [{"le": b, "count": c}, ...]}}}
  /// Histogram bucket counts in the JSON are cumulative, `le` ascending,
  /// ending with the +Inf bucket (le = null).
  std::string ToJson() const;

  /// Copies every registered metric's current value (sorted by name).
  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric, keeping registrations (bench harnesses
  /// call this between phases).
  void ResetAll();

  /// Names of all registered metrics, sorted.
  std::vector<std::string> MetricNames() const;

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

/// The process-wide registry the built-in instrumentation reports into.
MetricsRegistry& DefaultMetrics();

/// Default bucket bounds (seconds) for model-fit / scan latency histograms:
/// exponential from 1us to ~10s.
const std::vector<double>& LatencyBucketsSeconds();

// ---------------------------------------------------------------------------
// Canonical metric names recorded by the built-in instrumentation. Kept in
// one place so benches, tests, and docs agree on spelling.
// ---------------------------------------------------------------------------

// Basic search (core/basic_search.cc) and feasible-region enumeration.
inline constexpr std::string_view kMSearchRegionsEnumerated =
    "bellwether_search_regions_enumerated_total";
inline constexpr std::string_view kMSearchRegionsScored =
    "bellwether_search_regions_scored_total";
inline constexpr std::string_view kMSearchRegionsPrunedCost =
    "bellwether_search_regions_pruned_by_cost_total";
inline constexpr std::string_view kMSearchRegionsPrunedCoverage =
    "bellwether_search_regions_pruned_by_coverage_total";
inline constexpr std::string_view kMSearchFitFailures =
    "bellwether_search_model_fit_failures_total";
inline constexpr std::string_view kMSearchRowsScanned =
    "bellwether_search_rows_scanned_total";
inline constexpr std::string_view kMSearchRegionFitSeconds =
    "bellwether_search_region_fit_seconds";

// Training-data generation (core/training_data_gen.cc).
inline constexpr std::string_view kMDatagenFactRowsScanned =
    "bellwether_datagen_fact_rows_scanned_total";
inline constexpr std::string_view kMDatagenRegionSetsEmitted =
    "bellwether_datagen_region_sets_emitted_total";
inline constexpr std::string_view kMDatagenTrainingRowsEmitted =
    "bellwether_datagen_training_rows_emitted_total";
/// Peak resident training-set bytes held by a TrainingDataSink during
/// generation (gauge, SetMax-updated per append). Under a BudgetedSink this
/// is bounded by memory_budget_bytes + the largest single region set.
inline constexpr std::string_view kMDatagenPeakResidentBytes =
    "bellwether_datagen_peak_resident_bytes";

// Tree builders (core/bellwether_tree.cc).
inline constexpr std::string_view kMTreeNaiveScans =
    "bellwether_tree_naive_scans_total";
inline constexpr std::string_view kMTreeRfScans =
    "bellwether_tree_rf_scans_total";
inline constexpr std::string_view kMTreeNodesCreated =
    "bellwether_tree_nodes_created_total";
inline constexpr std::string_view kMTreeSuffStatsPeak =
    "bellwether_tree_suff_stats_peak";
inline constexpr std::string_view kMTreeLevelScanSeconds =
    "bellwether_tree_level_scan_seconds";

// Cube builders (core/bellwether_cube.cc).
inline constexpr std::string_view kMCubeNaiveScans =
    "bellwether_cube_naive_scans_total";
inline constexpr std::string_view kMCubeSingleScanScans =
    "bellwether_cube_single_scan_scans_total";
inline constexpr std::string_view kMCubeOptimizedScans =
    "bellwether_cube_optimized_scans_total";
inline constexpr std::string_view kMCubeSignificantSubsets =
    "bellwether_cube_significant_subsets_total";
inline constexpr std::string_view kMCubeCellsMaterialized =
    "bellwether_cube_cells_materialized_total";

// Parallel execution layer (exec/thread_pool.cc, exec/parallel.h).
inline constexpr std::string_view kMExecTasksSubmitted =
    "bellwether_exec_tasks_submitted_total";
inline constexpr std::string_view kMExecQueueDepth =
    "bellwether_exec_queue_depth";
inline constexpr std::string_view kMExecWorkerBusySeconds =
    "bellwether_exec_worker_busy_seconds_total";

// Storage layer (storage/training_data.cc, storage/arena.cc).
inline constexpr std::string_view kMStorageScans =
    "bellwether_storage_sequential_scans_total";
/// RegionSetArena traffic: shells handed out, shells handed out with
/// recycled buffers (a reuse avoids the four vector allocations of a cold
/// RegionTrainingSet), and shells returned to the pool.
inline constexpr std::string_view kMArenaAcquires =
    "bellwether_storage_arena_acquires_total";
inline constexpr std::string_view kMArenaReuses =
    "bellwether_storage_arena_reuses_total";
inline constexpr std::string_view kMArenaReleases =
    "bellwether_storage_arena_releases_total";
inline constexpr std::string_view kMStorageRegionReads =
    "bellwether_storage_region_reads_total";
inline constexpr std::string_view kMStorageRowsScanned =
    "bellwether_storage_rows_scanned_total";
inline constexpr std::string_view kMStorageBytesRead =
    "bellwether_storage_bytes_read_total";

// Robustness layer (robust/, storage/retrying_source.cc, table/csv.cc,
// core/training_data_gen.cc, regression fallbacks, cube checkpointing).
inline constexpr std::string_view kMFaultInjections =
    "bellwether_fault_injections_total";
inline constexpr std::string_view kMStorageRetries =
    "bellwether_storage_retries_total";
inline constexpr std::string_view kMStorageRetryExhausted =
    "bellwether_storage_retry_exhausted_total";
inline constexpr std::string_view kMCsvRowsQuarantined =
    "bellwether_csv_rows_quarantined_total";
inline constexpr std::string_view kMDatagenRowsQuarantined =
    "bellwether_datagen_rows_quarantined_total";
inline constexpr std::string_view kMRegressionRidgeRefits =
    "bellwether_regression_ridge_refits_total";
inline constexpr std::string_view kMRegressionMeanFallbacks =
    "bellwether_regression_mean_fallbacks_total";
inline constexpr std::string_view kMCubeCheckpointsSaved =
    "bellwether_cube_checkpoints_saved_total";
inline constexpr std::string_view kMCubeCheckpointResumes =
    "bellwether_cube_checkpoint_resumes_total";
inline constexpr std::string_view kMStateDeltaBatches =
    "bellwether_state_delta_batches_total";
inline constexpr std::string_view kMStateDeltaRows =
    "bellwether_state_delta_rows_total";
inline constexpr std::string_view kMStateCellsRederived =
    "bellwether_state_cells_rederived_total";
inline constexpr std::string_view kMStateCellsReused =
    "bellwether_state_cells_reused_total";
inline constexpr std::string_view kMStateSaves =
    "bellwether_state_saves_total";
inline constexpr std::string_view kMStateOpens =
    "bellwether_state_opens_total";

/// Registers every canonical metric above in `registry` (zero-valued when
/// not yet touched), so exports always contain the full set regardless of
/// which code paths ran. Benches call this before dumping.
void RegisterStandardMetrics(MetricsRegistry* registry);

}  // namespace bellwether::obs

#endif  // BELLWETHER_OBS_METRICS_H_
