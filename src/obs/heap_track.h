#ifndef BELLWETHER_OBS_HEAP_TRACK_H_
#define BELLWETHER_OBS_HEAP_TRACK_H_

#include <cstdint>
#include <map>
#include <string>

namespace bellwether::obs {

/// Scoped allocation tracker. When enabled, the global operator new/delete
/// interposition in heap_track.cc attributes every allocation on every
/// thread to the innermost live trace-span label (see profiler.h), counting
/// requested bytes, allocation calls, and deallocation calls per label.
///
/// Safety and cost rules:
///   - Off by default and zero-cost while off: the interposed operators
///     pay one relaxed atomic load over the stock malloc path.
///   - The counting path never allocates, locks, or fails — enabling the
///     tracker cannot perturb allocation outcomes, and builder outputs
///     stay bit-identical (counters are observation only).
///   - Counters are fixed-size arrays of atomics indexed by label id, so
///     the operators stay safe during static init/teardown.
///   - Under AddressSanitizer/ThreadSanitizer the interposition is compiled
///     out entirely (the sanitizer owns the allocator); interposed() says
///     whether this build counts, and Snapshot() is empty when it does not.
class HeapTracker {
 public:
  struct LabelStats {
    int64_t alloc_bytes = 0;  // sum of requested sizes
    int64_t alloc_calls = 0;
    int64_t free_calls = 0;
    bool operator==(const LabelStats&) const = default;
  };

  /// Zeroes all counters and starts attributing allocations.
  static void Enable();
  static void Disable();
  static bool enabled();

  /// True when this build interposes operator new/delete (i.e. not a
  /// sanitizer build); when false the tracker is a no-op.
  static bool interposed();

  /// Per-label counters accumulated since Enable(), keyed by label name
  /// (label 0 reports as "(no span)"). Labels with all-zero counters are
  /// omitted. Safe to call while tracking is live; values are a
  /// monotonic-read snapshot, not an atomic cut.
  static std::map<std::string, LabelStats> Snapshot();
};

}  // namespace bellwether::obs

#endif  // BELLWETHER_OBS_HEAP_TRACK_H_
