#include "obs/logger.h"

#include <chrono>
#include <cstdlib>

#include "obs/trace.h"

namespace bellwether::obs {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? a[i] + 32 : a[i];
    if (ca != b[i]) return false;
  }
  return true;
}

}  // namespace

LogLevel ParseLogLevel(std::string_view text) {
  if (EqualsIgnoreCase(text, "error") || text == "1") return LogLevel::kError;
  if (EqualsIgnoreCase(text, "warn") || EqualsIgnoreCase(text, "warning") ||
      text == "2") {
    return LogLevel::kWarn;
  }
  if (EqualsIgnoreCase(text, "info") || text == "3") return LogLevel::kInfo;
  if (EqualsIgnoreCase(text, "debug") || text == "4") return LogLevel::kDebug;
  return LogLevel::kOff;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    default: return "off";
  }
}

Logger::Logger() {
  const char* env = std::getenv("BELLWETHER_LOG_LEVEL");
  if (env != nullptr) set_level(ParseLogLevel(env));
}

Logger& Logger::Get() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::Write(LogLevel severity, std::string_view component,
                   std::string_view message) {
  if (!ShouldLog(severity)) return;
  const double ts =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  std::FILE* out = sink_ != nullptr ? sink_ : stderr;
  std::fprintf(out, "ts=%.6f tid=%u level=%s component=%.*s msg=\"%.*s\"\n",
               ts, CurrentThreadId(), LogLevelName(severity),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace bellwether::obs
