#include "obs/report.h"

#include <sys/resource.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <thread>

#include "obs/json.h"

namespace bellwether::obs {

namespace {

// Build flavor baked in at compile time so a report records which binary
// produced it (release vs debug, and which sanitizer, if any).
const char* BuildFlavor() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

const char* SanitizerFlavor() {
#if defined(__SANITIZE_ADDRESS__)
  return "address";
#elif defined(__SANITIZE_THREAD__)
  return "thread";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  return "address";
#elif __has_feature(thread_sanitizer)
  return "thread";
#else
  return "none";
#endif
#else
  return "none";
#endif
}

std::string GitSha() {
  for (const char* var : {"BELLWETHER_GIT_SHA", "GITHUB_SHA"}) {
    const char* sha = std::getenv(var);
    if (sha != nullptr && sha[0] != '\0') return sha;
  }
  return "unknown";
}

double PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) * 1024.0;  // Linux reports KiB
}

JsonValue::Object StringMapJson(const std::map<std::string, std::string>& m) {
  JsonValue::Object out;
  for (const auto& [k, v] : m) out.emplace(k, JsonValue(v));
  return out;
}

JsonValue::Object CountMapJson(const std::map<std::string, int64_t>& m) {
  JsonValue::Object out;
  for (const auto& [k, v] : m) {
    out.emplace(k, JsonValue(static_cast<double>(v)));
  }
  return out;
}

JsonValue::Object ValueMapJson(const std::map<std::string, double>& m) {
  JsonValue::Object out;
  for (const auto& [k, v] : m) out.emplace(k, JsonValue(v));
  return out;
}

void ParseStringMap(const JsonValue* node,
                    std::map<std::string, std::string>* out) {
  if (node == nullptr || !node->is_object()) return;
  for (const auto& [k, v] : node->object()) {
    if (v.is_string()) (*out)[k] = v.str();
  }
}

void ParseCountMap(const JsonValue* node, std::map<std::string, int64_t>* out) {
  if (node == nullptr || !node->is_object()) return;
  for (const auto& [k, v] : node->object()) {
    if (v.is_number()) (*out)[k] = static_cast<int64_t>(std::llround(v.number()));
  }
}

void ParseValueMap(const JsonValue* node, std::map<std::string, double>* out) {
  if (node == nullptr || !node->is_object()) return;
  for (const auto& [k, v] : node->object()) {
    if (v.is_number()) (*out)[k] = v.number();
  }
}

double NumberOr(const JsonValue* node, const char* key, double fallback) {
  const JsonValue* v = node->Find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

}  // namespace

ReportProfile SummarizeProfile(
    const Profile& profile,
    const std::map<std::string, HeapTracker::LabelStats>& alloc,
    int top_n) {
  ReportProfile out;
  out.period_us = profile.period_us();
  out.total_samples = profile.total_samples();
  out.dropped_samples = profile.dropped_samples();
  const std::vector<Profile::FrameStat> table = profile.SelfTimeTable();
  const size_t n = std::min<size_t>(table.size(),
                                    top_n > 0 ? static_cast<size_t>(top_n)
                                              : table.size());
  for (size_t i = 0; i < n; ++i) {
    out.self_samples[table[i].frame] = table[i].self;
  }
  for (const auto& [label, stats] : alloc) {
    ReportAllocPhase phase;
    phase.bytes = stats.alloc_bytes;
    phase.calls = stats.alloc_calls;
    phase.frees = stats.free_calls;
    out.alloc[label] = phase;
  }
  return out;
}

double EstimateHistogramPercentile(const std::vector<double>& bounds,
                                   const std::vector<int64_t>& bucket_counts,
                                   double quantile) {
  if (bounds.empty() || bucket_counts.size() != bounds.size() + 1) return 0.0;
  int64_t total = 0;
  for (int64_t c : bucket_counts) total += c;
  if (total <= 0) return 0.0;
  const double q = std::clamp(quantile, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  double cum = 0.0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    const double c = static_cast<double>(bucket_counts[i]);
    if (c <= 0.0) continue;
    cum += c;
    if (cum >= rank) {
      if (i == bounds.size()) return bounds.back();  // +Inf overflow bucket
      const double lower = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
      const double upper = bounds[i];
      const double frac = (rank - (cum - c)) / c;
      return lower + (upper - lower) * frac;
    }
  }
  return bounds.back();
}

void RunReport::SetConfig(std::string_view key, std::string_view value) {
  config_[std::string(key)] = std::string(value);
}

void RunReport::SetConfig(std::string_view key, double value) {
  config_[std::string(key)] = JsonNumber(value);
}

void RunReport::SetConfig(std::string_view key, int64_t value) {
  config_[std::string(key)] = JsonNumber(static_cast<double>(value));
}

void RunReport::SetCount(std::string_view key, int64_t value) {
  counts_[std::string(key)] = value;
}

void RunReport::AddCount(std::string_view key, int64_t delta) {
  counts_[std::string(key)] += delta;
}

int64_t RunReport::GetCount(std::string_view key, int64_t fallback) const {
  auto it = counts_.find(std::string(key));
  return it == counts_.end() ? fallback : it->second;
}

void RunReport::SetValue(std::string_view key, double value) {
  values_[std::string(key)] = value;
}

double RunReport::GetValue(std::string_view key, double fallback) const {
  auto it = values_.find(std::string(key));
  return it == values_.end() ? fallback : it->second;
}

void RunReport::SetText(std::string_view key, std::string_view value) {
  text_[std::string(key)] = std::string(value);
}

std::string RunReport::ConfigFingerprint() const {
  // FNV-1a 64 over "key=value\n" pairs; std::map iteration is sorted, so
  // the fingerprint is independent of insertion order.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ull;
    }
  };
  for (const auto& [k, v] : config_) {
    mix(k);
    mix("=");
    mix(v);
    mix("\n");
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

void RunReport::AddPhase(std::string_view phase, double wall_seconds) {
  ReportPhase& p = phases_[std::string(phase)];
  p.wall_seconds += wall_seconds;
  ++p.count;
}

void RunReport::CapturePhasesFromTrace(const Trace& trace) {
  for (const TraceEvent& e : trace.Snapshot()) {
    AddPhase("span/" + e.name, static_cast<double>(e.duration_us) * 1e-6);
  }
}

void RunReport::CaptureMetrics(const MetricsRegistry& registry) {
  const MetricsSnapshot snapshot = registry.Snapshot();
  metric_counters_ = snapshot.counters;
  metric_gauges_ = snapshot.gauges;
  metric_histograms_.clear();
  for (const auto& [name, h] : snapshot.histograms) {
    ReportHistogram out;
    out.count = h.total_count;
    out.sum = h.sum;
    out.p50 = EstimateHistogramPercentile(h.bounds, h.bucket_counts, 0.50);
    out.p95 = EstimateHistogramPercentile(h.bounds, h.bucket_counts, 0.95);
    out.p99 = EstimateHistogramPercentile(h.bounds, h.bucket_counts, 0.99);
    metric_histograms_.emplace(name, out);
  }
}

void RunReport::CaptureEnvironment() {
  environment_["build"] = BuildFlavor();
  environment_["sanitizer"] = SanitizerFlavor();
  environment_["git_sha"] = GitSha();
  environment_["hardware_concurrency"] = JsonNumber(
      static_cast<double>(std::thread::hardware_concurrency()));
  peak_rss_bytes_ = PeakRssBytes();
}

std::string RunReport::ToJson() const {
  JsonValue::Object root;
  root.emplace("schema", JsonValue(std::string(kRunReportSchema)));
  root.emplace("schema_version",
               JsonValue(static_cast<double>(kRunReportSchemaVersion)));
  root.emplace("name", JsonValue(name_));
  root.emplace("config", JsonValue(StringMapJson(config_)));
  root.emplace("config_fingerprint", JsonValue(ConfigFingerprint()));
  root.emplace("counts", JsonValue(CountMapJson(counts_)));
  root.emplace("values", JsonValue(ValueMapJson(values_)));
  root.emplace("text", JsonValue(StringMapJson(text_)));

  JsonValue::Object phases;
  for (const auto& [name, p] : phases_) {
    JsonValue::Object entry;
    entry.emplace("count", JsonValue(static_cast<double>(p.count)));
    entry.emplace("wall_seconds", JsonValue(p.wall_seconds));
    phases.emplace(name, JsonValue(std::move(entry)));
  }
  root.emplace("phases", JsonValue(std::move(phases)));

  JsonValue::Object metrics;
  metrics.emplace("counters", JsonValue(CountMapJson(metric_counters_)));
  metrics.emplace("gauges", JsonValue(ValueMapJson(metric_gauges_)));
  JsonValue::Object histograms;
  for (const auto& [name, h] : metric_histograms_) {
    JsonValue::Object entry;
    entry.emplace("count", JsonValue(static_cast<double>(h.count)));
    entry.emplace("sum", JsonValue(h.sum));
    entry.emplace("p50", JsonValue(h.p50));
    entry.emplace("p95", JsonValue(h.p95));
    entry.emplace("p99", JsonValue(h.p99));
    histograms.emplace(name, JsonValue(std::move(entry)));
  }
  metrics.emplace("histograms", JsonValue(std::move(histograms)));
  root.emplace("metrics", JsonValue(std::move(metrics)));

  // Optional hot-path attribution; omitted when profiling was off so such
  // reports keep their historical shape (and additive-optional for older
  // readers, which ignore unknown keys — no schema_version bump).
  if (!profile_.empty()) {
    JsonValue::Object profile;
    profile.emplace("period_us",
                    JsonValue(static_cast<double>(profile_.period_us)));
    profile.emplace("total_samples",
                    JsonValue(static_cast<double>(profile_.total_samples)));
    profile.emplace(
        "dropped_samples",
        JsonValue(static_cast<double>(profile_.dropped_samples)));
    profile.emplace("self_samples",
                    JsonValue(CountMapJson(profile_.self_samples)));
    JsonValue::Object alloc;
    for (const auto& [label, a] : profile_.alloc) {
      JsonValue::Object entry;
      entry.emplace("bytes", JsonValue(static_cast<double>(a.bytes)));
      entry.emplace("calls", JsonValue(static_cast<double>(a.calls)));
      entry.emplace("frees", JsonValue(static_cast<double>(a.frees)));
      alloc.emplace(label, JsonValue(std::move(entry)));
    }
    profile.emplace("alloc", JsonValue(std::move(alloc)));
    root.emplace("profile", JsonValue(std::move(profile)));
  }

  root.emplace("environment", JsonValue(StringMapJson(environment_)));
  root.emplace("peak_rss_bytes", JsonValue(peak_rss_bytes_));
  return WriteJson(JsonValue(std::move(root)));
}

std::string RunReport::LogicalJson() const {
  JsonValue::Object root;
  root.emplace("schema", JsonValue(std::string(kRunReportSchema)));
  root.emplace("schema_version",
               JsonValue(static_cast<double>(kRunReportSchemaVersion)));
  root.emplace("name", JsonValue(name_));
  root.emplace("config", JsonValue(StringMapJson(config_)));
  root.emplace("config_fingerprint", JsonValue(ConfigFingerprint()));
  root.emplace("counts", JsonValue(CountMapJson(counts_)));
  root.emplace("values", JsonValue(ValueMapJson(values_)));
  root.emplace("text", JsonValue(StringMapJson(text_)));
  return WriteJson(JsonValue(std::move(root)));
}

Result<RunReport> RunReport::FromJson(std::string_view json) {
  BW_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(json));
  if (!doc.is_object()) {
    return Status::InvalidArgument("run report: document is not an object");
  }
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->str() != kRunReportSchema) {
    return Status::InvalidArgument("run report: missing or foreign schema");
  }
  const JsonValue* version = doc.Find("schema_version");
  if (version == nullptr || !version->is_number() ||
      static_cast<int64_t>(version->number()) != kRunReportSchemaVersion) {
    return Status::InvalidArgument("run report: unsupported schema_version");
  }
  RunReport out;
  const JsonValue* name = doc.Find("name");
  if (name != nullptr && name->is_string()) out.name_ = name->str();
  ParseStringMap(doc.Find("config"), &out.config_);
  ParseCountMap(doc.Find("counts"), &out.counts_);
  ParseValueMap(doc.Find("values"), &out.values_);
  ParseStringMap(doc.Find("text"), &out.text_);
  if (const JsonValue* phases = doc.Find("phases");
      phases != nullptr && phases->is_object()) {
    for (const auto& [key, p] : phases->object()) {
      if (!p.is_object()) continue;
      ReportPhase phase;
      phase.count = static_cast<int64_t>(NumberOr(&p, "count", 0.0));
      phase.wall_seconds = NumberOr(&p, "wall_seconds", 0.0);
      out.phases_.emplace(key, phase);
    }
  }
  if (const JsonValue* metrics = doc.Find("metrics");
      metrics != nullptr && metrics->is_object()) {
    ParseCountMap(metrics->Find("counters"), &out.metric_counters_);
    ParseValueMap(metrics->Find("gauges"), &out.metric_gauges_);
    if (const JsonValue* hists = metrics->Find("histograms");
        hists != nullptr && hists->is_object()) {
      for (const auto& [key, h] : hists->object()) {
        if (!h.is_object()) continue;
        ReportHistogram hist;
        hist.count = static_cast<int64_t>(NumberOr(&h, "count", 0.0));
        hist.sum = NumberOr(&h, "sum", 0.0);
        hist.p50 = NumberOr(&h, "p50", 0.0);
        hist.p95 = NumberOr(&h, "p95", 0.0);
        hist.p99 = NumberOr(&h, "p99", 0.0);
        out.metric_histograms_.emplace(key, hist);
      }
    }
  }
  if (const JsonValue* profile = doc.Find("profile");
      profile != nullptr && profile->is_object()) {
    out.profile_.period_us =
        static_cast<int64_t>(NumberOr(profile, "period_us", 0.0));
    out.profile_.total_samples =
        static_cast<int64_t>(NumberOr(profile, "total_samples", 0.0));
    out.profile_.dropped_samples =
        static_cast<int64_t>(NumberOr(profile, "dropped_samples", 0.0));
    ParseCountMap(profile->Find("self_samples"), &out.profile_.self_samples);
    if (const JsonValue* alloc = profile->Find("alloc");
        alloc != nullptr && alloc->is_object()) {
      for (const auto& [label, a] : alloc->object()) {
        if (!a.is_object()) continue;
        ReportAllocPhase phase;
        phase.bytes = static_cast<int64_t>(NumberOr(&a, "bytes", 0.0));
        phase.calls = static_cast<int64_t>(NumberOr(&a, "calls", 0.0));
        phase.frees = static_cast<int64_t>(NumberOr(&a, "frees", 0.0));
        out.profile_.alloc.emplace(label, phase);
      }
    }
  }
  ParseStringMap(doc.Find("environment"), &out.environment_);
  if (const JsonValue* rss = doc.Find("peak_rss_bytes");
      rss != nullptr && rss->is_number()) {
    out.peak_rss_bytes_ = rss->number();
  }
  return out;
}

// ---------------------------------------------------------------------------
// benchdiff
// ---------------------------------------------------------------------------

namespace {

const char* KindName(BenchDiffKind kind) {
  switch (kind) {
    case BenchDiffKind::kRegression: return "REGRESSION";
    case BenchDiffKind::kImprovement: return "improvement";
    case BenchDiffKind::kCountDrift: return "count-drift";
    case BenchDiffKind::kPhaseOnlyInOne: return "phase-only-in-one";
    case BenchDiffKind::kAllocDrift: return "alloc-drift";
  }
  return "?";
}

}  // namespace

std::string BenchDiffResult::Summary() const {
  std::string out;
  char line[256];
  if (schema_mismatch) out += "schema mismatch: reports are not comparable\n";
  if (name_mismatch) out += "warning: report names differ\n";
  if (config_changed) {
    out += "warning: config fingerprints differ (thresholds still applied)\n";
  }
  for (const BenchDiffEntry& e : entries) {
    if (e.kind == BenchDiffKind::kRegression ||
        e.kind == BenchDiffKind::kImprovement) {
      std::snprintf(line, sizeof(line),
                    "%-18s %-40s %12.6fs -> %12.6fs (%+.1f%%)\n",
                    KindName(e.kind), e.key.c_str(), e.old_value, e.new_value,
                    (e.ratio - 1.0) * 100.0);
    } else if (e.kind == BenchDiffKind::kAllocDrift) {
      std::snprintf(line, sizeof(line),
                    "%-18s %-40s %.0f -> %.0f allocs (%+.1f%%)\n",
                    KindName(e.kind), e.key.c_str(), e.old_value, e.new_value,
                    (e.ratio - 1.0) * 100.0);
    } else {
      std::snprintf(line, sizeof(line), "%-18s %-40s %g -> %g\n",
                    KindName(e.kind), e.key.c_str(), e.old_value, e.new_value);
    }
    out += line;
  }
  out += failed ? "verdict: FAIL\n" : "verdict: OK\n";
  return out;
}

std::string BenchDiffResult::ToJson() const {
  JsonValue::Object root;
  root.emplace("schema_mismatch", JsonValue(schema_mismatch));
  root.emplace("name_mismatch", JsonValue(name_mismatch));
  root.emplace("config_changed", JsonValue(config_changed));
  root.emplace("failed", JsonValue(failed));
  JsonValue::Array items;
  items.reserve(entries.size());
  for (const BenchDiffEntry& e : entries) {
    JsonValue::Object entry;
    entry.emplace("kind", JsonValue(std::string(KindName(e.kind))));
    entry.emplace("key", JsonValue(e.key));
    entry.emplace("old", JsonValue(e.old_value));
    entry.emplace("new", JsonValue(e.new_value));
    entry.emplace("ratio", JsonValue(e.ratio));
    items.push_back(JsonValue(std::move(entry)));
  }
  root.emplace("entries", JsonValue(std::move(items)));
  return WriteJson(JsonValue(std::move(root)));
}

BenchDiffResult CompareRunReports(const RunReport& baseline,
                                  const RunReport& current,
                                  const BenchDiffOptions& options) {
  BenchDiffResult result;
  result.name_mismatch = baseline.name() != current.name();
  result.config_changed =
      baseline.ConfigFingerprint() != current.ConfigFingerprint();

  // Phases: relative wall-time comparison above the noise floor.
  for (const auto& [key, old_phase] : baseline.phases()) {
    auto it = current.phases().find(key);
    if (it == current.phases().end()) {
      result.entries.push_back({BenchDiffKind::kPhaseOnlyInOne, key,
                                old_phase.wall_seconds, 0.0, 0.0});
      continue;
    }
    const double old_s = old_phase.wall_seconds;
    const double new_s = it->second.wall_seconds;
    if (old_s < options.min_seconds && new_s < options.min_seconds) continue;
    // A phase that was free and now costs real time has no finite ratio;
    // treat it as an unbounded slowdown.
    const double ratio = old_s > 0.0
                             ? new_s / old_s
                             : std::numeric_limits<double>::infinity();
    if (ratio > 1.0 + options.threshold) {
      result.entries.push_back(
          {BenchDiffKind::kRegression, key, old_s, new_s, ratio});
      result.failed = true;
    } else if (ratio < 1.0 / (1.0 + options.threshold)) {
      result.entries.push_back(
          {BenchDiffKind::kImprovement, key, old_s, new_s, ratio});
    }
  }
  for (const auto& [key, new_phase] : current.phases()) {
    if (baseline.phases().find(key) == baseline.phases().end()) {
      result.entries.push_back({BenchDiffKind::kPhaseOnlyInOne, key, 0.0,
                                new_phase.wall_seconds, 0.0});
    }
  }

  // Allocation drift: when both runs carried per-phase heap-tracker
  // counters, a phase whose allocation-call count moved by more than the
  // alloc threshold is flagged — malloc churn creeping into a hot loop is
  // a perf smell even before it shows up in wall time. Tiny phases (below
  // the absolute call floor in both runs) are never flagged.
  for (const auto& [phase, old_alloc] : baseline.profile().alloc) {
    auto it = current.profile().alloc.find(phase);
    if (it == current.profile().alloc.end()) continue;
    const int64_t old_calls = old_alloc.calls;
    const int64_t new_calls = it->second.calls;
    if (old_calls < kAllocDriftFloorCalls &&
        new_calls < kAllocDriftFloorCalls) {
      continue;
    }
    const double ratio =
        old_calls > 0 ? static_cast<double>(new_calls) /
                            static_cast<double>(old_calls)
                      : std::numeric_limits<double>::infinity();
    if (ratio > 1.0 + options.alloc_drift_threshold ||
        ratio < 1.0 / (1.0 + options.alloc_drift_threshold)) {
      result.entries.push_back({BenchDiffKind::kAllocDrift, phase,
                                static_cast<double>(old_calls),
                                static_cast<double>(new_calls), ratio});
      // One-sided gate: only an *increase* fails. A drop is an intentional
      // improvement (arena reuse, batching) that should re-baseline on the
      // next artifact upload, not block the PR that delivered it; it is
      // still reported above so the improvement is visible in the diff.
      if (options.fail_on_alloc_drift &&
          ratio > 1.0 + options.alloc_drift_threshold) {
        result.failed = true;
      }
    }
  }

  // Logical drift: identical config should produce identical counts/values.
  for (const auto& [key, old_count] : baseline.counts()) {
    const int64_t new_count = current.GetCount(key, old_count);
    if (new_count != old_count) {
      result.entries.push_back({BenchDiffKind::kCountDrift, key,
                                static_cast<double>(old_count),
                                static_cast<double>(new_count), 0.0});
      if (options.fail_on_count_drift) result.failed = true;
    }
  }
  for (const auto& [key, old_value] : baseline.values()) {
    const double new_value = current.GetValue(key, old_value);
    if (new_value != old_value) {
      result.entries.push_back(
          {BenchDiffKind::kCountDrift, key, old_value, new_value, 0.0});
      if (options.fail_on_count_drift) result.failed = true;
    }
  }
  return result;
}

}  // namespace bellwether::obs
