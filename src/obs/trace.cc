#include "obs/trace.h"

#include <algorithm>
#include <map>

#include "obs/json.h"
#include "obs/profiler.h"

namespace bellwether::obs {

namespace {

std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint32_t> g_next_thread_id{1};

// Ids of the spans currently open on this thread, outermost first.
std::vector<uint64_t>& ThisThreadSpanStack() {
  thread_local std::vector<uint64_t> stack;
  return stack;
}

// Process-wide thread-id -> display-name registry, like the ids themselves.
struct ThreadNameTable {
  std::mutex mu;
  std::map<uint32_t, std::string> names;
};

ThreadNameTable& ThreadNames() {
  static ThreadNameTable* table = new ThreadNameTable();
  return *table;
}

}  // namespace

uint32_t CurrentThreadId() {
  thread_local const uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void SetCurrentThreadName(std::string_view name) {
  ThreadNameTable& table = ThreadNames();
  std::lock_guard<std::mutex> lock(table.mu);
  table.names[CurrentThreadId()] = std::string(name);
}

std::string ThreadName(uint32_t thread_id) {
  ThreadNameTable& table = ThreadNames();
  std::lock_guard<std::mutex> lock(table.mu);
  auto it = table.names.find(thread_id);
  return it == table.names.end() ? std::string() : it->second;
}

Trace::Trace() : epoch_(std::chrono::steady_clock::now()) {}

void Trace::set_capacity(size_t max_events) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = max_events;
}

int64_t Trace::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Trace::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Trace::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void Trace::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

std::string Trace::ToChromeTraceJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              if (a.depth != b.depth) return a.depth < b.depth;
              return a.span_id < b.span_id;  // total order: output diffs clean
            });
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // "M" thread_name metadata events label every named thread in the
  // viewer; tids without a registered name keep their bare number.
  {
    ThreadNameTable& table = ThreadNames();
    std::lock_guard<std::mutex> lock(table.mu);
    for (const auto& [tid, name] : table.names) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
             std::to_string(tid) + ",\"args\":{\"name\":\"" +
             JsonEscape(name) + "\"}}";
    }
  }
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(e.name) + "\",\"cat\":\"" +
           JsonEscape(e.category) + "\",\"ph\":\"X\",\"ts\":" +
           std::to_string(e.start_us) + ",\"dur\":" +
           std::to_string(e.duration_us) + ",\"pid\":1,\"tid\":" +
           std::to_string(e.thread_id) + ",\"args\":{\"span_id\":" +
           std::to_string(e.span_id) + ",\"parent_span_id\":" +
           std::to_string(e.parent_span_id) + ",\"depth\":" +
           std::to_string(e.depth) + "}}";
  }
  out += "]}";
  return out;
}

Trace& DefaultTrace() {
  static Trace* trace = new Trace();
  return *trace;
}

TraceSpan::TraceSpan(std::string_view name, std::string_view category,
                     Trace* trace) {
  // Tag CPU samples and allocations with this span while the profiler or
  // heap tracker is armed — one relaxed load when they are not. The label
  // is pushed even when the trace buffer is disabled, so profiles keep
  // their phase attribution either way.
  if (ProfileLabelCaptureEnabled()) {
    label_pushed_ = PushProfileLabel(InternProfileLabel(name));
  }
  trace_ = trace != nullptr ? trace : &DefaultTrace();
  if (!trace_->enabled()) {
    trace_ = nullptr;
    return;
  }
  event_.name = std::string(name);
  event_.category = std::string(category);
  event_.start_us = trace_->NowMicros();
  event_.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  event_.thread_id = CurrentThreadId();
  auto& stack = ThisThreadSpanStack();
  event_.parent_span_id = stack.empty() ? 0 : stack.back();
  event_.depth = static_cast<int32_t>(stack.size());
  stack.push_back(event_.span_id);
}

TraceSpan::~TraceSpan() { End(); }

void TraceSpan::End() {
  if (label_pushed_) {
    PopProfileLabel();
    label_pushed_ = false;
  }
  if (trace_ == nullptr) return;
  auto& stack = ThisThreadSpanStack();
  // Spans close in LIFO order per thread; tolerate out-of-order teardown.
  if (!stack.empty() && stack.back() == event_.span_id) {
    stack.pop_back();
  } else {
    auto it = std::find(stack.begin(), stack.end(), event_.span_id);
    if (it != stack.end()) stack.erase(it);
  }
  event_.duration_us = trace_->NowMicros() - event_.start_us;
  trace_->Record(std::move(event_));
  trace_ = nullptr;
}

}  // namespace bellwether::obs
