#ifndef BELLWETHER_OBS_TRACE_H_
#define BELLWETHER_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bellwether::obs {

/// One completed span. Spans are recorded when they close, so a child's
/// event always precedes its parent's in the buffer; consumers that need
/// top-down order should sort by start_us.
struct TraceEvent {
  std::string name;
  std::string category;
  int64_t start_us = 0;     // microseconds since the trace epoch
  int64_t duration_us = 0;  // wall time between construction and destruction
  uint64_t span_id = 0;     // unique per span, process-wide
  uint64_t parent_span_id = 0;  // 0 = no enclosing span on this thread
  int32_t depth = 0;            // nesting depth on the recording thread
  uint32_t thread_id = 0;       // small sequential id per recording thread
};

/// Bounded in-memory buffer of completed spans. Recording is cheap (one
/// mutex-guarded push per span close); once `capacity` events are buffered
/// further spans are counted but dropped.
class Trace {
 public:
  Trace();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  void set_capacity(size_t max_events);

  /// Microseconds since this trace's epoch (construction or last Clear).
  int64_t NowMicros() const;

  void Record(TraceEvent event);

  std::vector<TraceEvent> Snapshot() const;
  int64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void Clear();

  /// Chrome trace_event JSON ("X" complete events), loadable in
  /// chrome://tracing and Perfetto. Events are emitted sorted by start time.
  std::string ToChromeTraceJson() const;

 private:
  std::atomic<bool> enabled_{true};
  std::atomic<int64_t> dropped_{0};
  mutable std::mutex mu_;
  size_t capacity_ = 1 << 18;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> events_;
};

/// The process-wide trace buffer the built-in instrumentation records into.
Trace& DefaultTrace();

/// Small sequential id of the calling thread (1, 2, ... in first-use order).
/// The same id tags every trace span and log line the thread records, so
/// parallel-exec output is attributable across both streams.
uint32_t CurrentThreadId();

/// Names the calling thread for trace output ("main", "exec-worker-3").
/// ToChromeTraceJson emits the names as Chrome-trace "M" thread_name
/// metadata events, so pool threads are labeled in the trace viewer
/// instead of showing bare tids. Renaming overwrites; names are
/// process-wide like the thread ids themselves.
void SetCurrentThreadName(std::string_view name);

/// Registered name of a thread id; empty when the thread was never named.
std::string ThreadName(uint32_t thread_id);

/// RAII scoped span: records wall time from construction to destruction
/// into a Trace. Spans nest: each thread keeps a span stack, and a span
/// opened while another is live on the same thread records it as parent.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name,
                     std::string_view category = "bellwether",
                     Trace* trace = nullptr);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Closes the span now instead of at scope exit; later calls (and the
  /// destructor) become no-ops. Lets one function delimit phases without
  /// extra brace scopes.
  void End();

  uint64_t span_id() const { return event_.span_id; }

 private:
  Trace* trace_;  // nullptr when tracing was disabled at construction
  TraceEvent event_;
  // True when this span pushed its name onto the thread's profile-label
  // stack (only while the profiler or heap tracker is armed), so CPU
  // samples and allocations attribute to the innermost span. See
  // profiler.h.
  bool label_pushed_ = false;
};

}  // namespace bellwether::obs

#endif  // BELLWETHER_OBS_TRACE_H_
