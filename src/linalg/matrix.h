#ifndef BELLWETHER_LINALG_MATRIX_H_
#define BELLWETHER_LINALG_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace bellwether::linalg {

/// Column vector of doubles.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles. Sized for regression normal equations
/// (p x p with small p), not for large-scale numerical work.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from nested initializer data; all rows must have equal
  /// length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of order n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    BW_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    BW_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// Element-wise addition. Precondition: same shape.
  Matrix& operator+=(const Matrix& other);

  /// Scales every element by s.
  Matrix& operator*=(double s);

  /// Matrix transpose.
  Matrix Transposed() const;

  /// Matrix-matrix product; shapes must be conformable.
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product; v.size() must equal cols().
  Vector MultiplyVector(const Vector& v) const;

  /// Frobenius-norm distance to another same-shaped matrix.
  double DistanceTo(const Matrix& other) const;

  /// Human-readable dump for debugging/tests.
  std::string ToString() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

bool operator==(const Matrix& a, const Matrix& b);

/// Dot product over raw arrays (multi-accumulator, autovectorizable). The
/// serving hot path (LinearModel::Predict) and the suff-stats kernels share
/// this one implementation.
double Dot(const double* a, const double* b, size_t n);

/// Dot product. Precondition: equal sizes.
double Dot(const Vector& a, const Vector& b);

/// Adds w * x * x' into `accum` (symmetric rank-1 update); `accum` must be
/// square with order x.size().
void AddScaledOuterProduct(const Vector& x, double w, Matrix* accum);

/// Adds w * x * y into `accum` (scaled vector accumulate); sizes must match.
void AddScaledVector(const Vector& x, double w, Vector* accum);

/// Solves A x = b for symmetric positive definite A via Cholesky
/// factorization. If A is singular or indefinite, retries with a small ridge
/// (A + lambda I) escalating up to `max_ridge`; returns NumericError if the
/// system is still unsolvable. This mirrors the pseudo-inverse fallback
/// statistics packages apply to collinear regression designs.
Result<Vector> SolveSpd(const Matrix& a, const Vector& b,
                        double max_ridge = 1e-4);

/// Solves A x = b for a general square A by partial-pivot LU.
Result<Vector> SolveLu(const Matrix& a, const Vector& b);

/// Inverse of a symmetric positive definite matrix (with the same ridge
/// fallback as SolveSpd).
Result<Matrix> InvertSpd(const Matrix& a, double max_ridge = 1e-4);

}  // namespace bellwether::linalg

#endif  // BELLWETHER_LINALG_MATRIX_H_
