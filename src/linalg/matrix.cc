#include "linalg/matrix.h"

#include <cmath>
#include <cstdio>

namespace bellwether::linalg {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    BW_CHECK(rows[r].size() == m.cols());
    for (size_t c = 0; c < m.cols(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  BW_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  BW_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Vector Matrix::MultiplyVector(const Vector& v) const {
  BW_CHECK(cols_ == v.size());
  Vector out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

double Matrix::DistanceTo(const Matrix& other) const {
  BW_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double acc = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - other.data_[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

std::string Matrix::ToString() const {
  std::string out;
  char buf[64];
  for (size_t r = 0; r < rows_; ++r) {
    out += "[";
    for (size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "%s%.6g", c ? ", " : "", (*this)(r, c));
      out += buf;
    }
    out += "]\n";
  }
  return out;
}

bool operator==(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() && a.data() == b.data();
}

double Dot(const double* a, const double* b, size_t n) {
  const double* __restrict pa = a;
  const double* __restrict pb = b;
  // Four independent accumulators break the add-latency dependency chain and
  // let the autovectorizer use full-width FMA lanes.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += pa[i] * pb[i];
    s1 += pa[i + 1] * pb[i + 1];
    s2 += pa[i + 2] * pb[i + 2];
    s3 += pa[i + 3] * pb[i + 3];
  }
  double acc = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) acc += pa[i] * pb[i];
  return acc;
}

double Dot(const Vector& a, const Vector& b) {
  BW_CHECK(a.size() == b.size());
  return Dot(a.data(), b.data(), a.size());
}

void AddScaledOuterProduct(const Vector& x, double w, Matrix* accum) {
  BW_CHECK(accum != nullptr && accum->rows() == x.size() &&
           accum->cols() == x.size());
  for (size_t r = 0; r < x.size(); ++r) {
    const double wr = w * x[r];
    if (wr == 0.0) continue;
    for (size_t c = 0; c < x.size(); ++c) {
      (*accum)(r, c) += wr * x[c];
    }
  }
}

void AddScaledVector(const Vector& x, double w, Vector* accum) {
  BW_CHECK(accum != nullptr && accum->size() == x.size());
  for (size_t i = 0; i < x.size(); ++i) (*accum)[i] += w * x[i];
}

namespace {

// In-place Cholesky of a copy of `a`; returns false if a non-positive pivot
// is encountered.
bool CholeskyFactor(Matrix* a) {
  const size_t n = a->rows();
  for (size_t j = 0; j < n; ++j) {
    double d = (*a)(j, j);
    for (size_t k = 0; k < j; ++k) d -= (*a)(j, k) * (*a)(j, k);
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    const double dj = std::sqrt(d);
    (*a)(j, j) = dj;
    for (size_t i = j + 1; i < n; ++i) {
      double s = (*a)(i, j);
      for (size_t k = 0; k < j; ++k) s -= (*a)(i, k) * (*a)(j, k);
      (*a)(i, j) = s / dj;
    }
  }
  return true;
}

// Solves L L' x = b given the lower-triangular factor L stored in `l`.
Vector CholeskySolve(const Matrix& l, const Vector& b) {
  const size_t n = l.rows();
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

}  // namespace

Result<Vector> SolveSpd(const Matrix& a, const Vector& b, double max_ridge) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveSpd requires a square matrix");
  }
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("SolveSpd shape mismatch");
  }
  if (a.rows() == 0) return Vector{};
  const size_t n = a.rows();
  // Jacobi equilibration: solve (D^-1/2 A D^-1/2) y = D^-1/2 b and map the
  // solution back with x = D^-1/2 y. Normal-equation matrices of regression
  // designs mix wildly different feature scales (an intercept next to a
  // dollar amount); equilibration makes the factorization's success
  // deterministic instead of knife-edge and keeps the ridge meaningful.
  Vector d(n, 1.0);
  for (size_t i = 0; i < n; ++i) {
    const double diag = a(i, i);
    d[i] = diag > 0.0 && std::isfinite(diag) ? 1.0 / std::sqrt(diag) : 1.0;
  }
  Matrix scaled(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) scaled(r, c) = a(r, c) * d[r] * d[c];
  }
  Vector rhs(n);
  for (size_t i = 0; i < n; ++i) rhs[i] = b[i] * d[i];

  double ridge = 0.0;
  for (int attempt = 0; attempt < 10; ++attempt) {
    Matrix l = scaled;
    if (ridge > 0.0) {
      for (size_t i = 0; i < n; ++i) l(i, i) += ridge;
    }
    if (CholeskyFactor(&l)) {
      Vector y = CholeskySolve(l, rhs);
      for (size_t i = 0; i < n; ++i) y[i] *= d[i];
      return y;
    }
    // The equilibrated matrix has a unit diagonal, so the ridge is already
    // relative to the problem scale.
    ridge = (ridge == 0.0) ? 1e-10 : ridge * 10.0;
    if (ridge > max_ridge) break;
  }
  return Status::NumericError(
      "SolveSpd: matrix not positive definite even with ridge");
}

Result<Vector> SolveLu(const Matrix& a, const Vector& b) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    return Status::InvalidArgument("SolveLu shape mismatch");
  }
  const size_t n = a.rows();
  Matrix lu = a;
  Vector x = b;
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    double best = std::fabs(lu(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(lu(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      return Status::NumericError("SolveLu: singular matrix");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(lu(col, c), lu(pivot, c));
      std::swap(x[col], x[pivot]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      const double f = lu(r, col) / lu(col, col);
      lu(r, col) = f;
      for (size_t c = col + 1; c < n; ++c) lu(r, c) -= f * lu(col, c);
      x[r] -= f * x[col];
    }
  }
  // Back substitution.
  for (size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (size_t c = ii + 1; c < n; ++c) s -= lu(ii, c) * x[c];
    x[ii] = s / lu(ii, ii);
  }
  return x;
}

Result<Matrix> InvertSpd(const Matrix& a, double max_ridge) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("InvertSpd requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix inv(n, n);
  for (size_t c = 0; c < n; ++c) {
    Vector e(n, 0.0);
    e[c] = 1.0;
    BW_ASSIGN_OR_RETURN(Vector col, SolveSpd(a, e, max_ridge));
    for (size_t r = 0; r < n; ++r) inv(r, c) = col[r];
  }
  return inv;
}

}  // namespace bellwether::linalg
