#ifndef BELLWETHER_TABLE_CSV_H_
#define BELLWETHER_TABLE_CSV_H_

#include <string>

#include "common/status.h"
#include "robust/quarantine.h"
#include "table/table.h"

namespace bellwether::table {

/// Writes `t` as CSV with a header row. Strings containing commas, quotes, or
/// newlines are quoted; nulls are written as empty fields.
Status WriteCsv(const Table& t, const std::string& path);

struct CsvReadOptions {
  /// kStrict: the first malformed row fails the whole read (no partial
  /// table is ever returned). kPermissive: malformed rows are counted,
  /// logged, and skipped; the read completes on the clean remainder.
  robust::RowErrorPolicy row_policy = robust::RowErrorPolicy::kStrict;
  /// Optional quarantine accounting for the read (counts + sampled errors).
  robust::QuarantineStats* stats = nullptr;
};

/// Reads a CSV written by WriteCsv (header required) into a table with the
/// given schema. Field count per row must match the schema; empty fields
/// become nulls. Errors carry path:line plus column context, and a failed
/// read never returns a partially-filled Table.
Result<Table> ReadCsv(const std::string& path, const Schema& schema,
                      const CsvReadOptions& options);

/// Strict-mode ReadCsv (historical signature).
Result<Table> ReadCsv(const std::string& path, const Schema& schema);

}  // namespace bellwether::table

#endif  // BELLWETHER_TABLE_CSV_H_
