#ifndef BELLWETHER_TABLE_CSV_H_
#define BELLWETHER_TABLE_CSV_H_

#include <string>

#include "common/status.h"
#include "table/table.h"

namespace bellwether::table {

/// Writes `t` as CSV with a header row. Strings containing commas, quotes, or
/// newlines are quoted; nulls are written as empty fields.
Status WriteCsv(const Table& t, const std::string& path);

/// Reads a CSV written by WriteCsv (header required) into a table with the
/// given schema. Field count per row must match the schema; empty fields
/// become nulls.
Result<Table> ReadCsv(const std::string& path, const Schema& schema);

}  // namespace bellwether::table

#endif  // BELLWETHER_TABLE_CSV_H_
