#include "table/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>

#include "common/check.h"

namespace bellwether::table {

namespace {

// Total order over boxed values for sorting/grouping: null < numerics (by
// value) < strings. int64 and double compare numerically.
int CompareValues(const Value& a, const Value& b) {
  const int rank_a = a.is_null() ? 0 : (a.is_string() ? 2 : 1);
  const int rank_b = b.is_null() ? 0 : (b.is_string() ? 2 : 1);
  if (rank_a != rank_b) return rank_a < rank_b ? -1 : 1;
  if (rank_a == 0) return 0;
  if (rank_a == 2) {
    return a.str() < b.str() ? -1 : (a.str() == b.str() ? 0 : 1);
  }
  const double da = a.AsDouble();
  const double db = b.AsDouble();
  return da < db ? -1 : (da == db ? 0 : 1);
}

// String key for hash grouping: type-tagged rendering of each value.
std::string GroupKey(const Table& t, size_t row,
                     const std::vector<size_t>& cols) {
  std::string key;
  for (size_t c : cols) {
    const Value v = t.ValueAt(row, c);
    if (v.is_null()) {
      key += "\x01N";
    } else if (v.is_string()) {
      key += "\x01S" + v.str();
    } else if (v.is_int64()) {
      key += "\x01I" + std::to_string(v.int64());
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "\x01R%.17g", v.dbl());
      key += buf;
    }
  }
  return key;
}

Result<std::vector<size_t>> ResolveColumns(
    const Table& input, const std::vector<std::string>& columns) {
  std::vector<size_t> idx;
  idx.reserve(columns.size());
  for (const auto& name : columns) {
    auto i = input.schema().FindField(name);
    if (!i.has_value()) {
      return Status::NotFound("column not found: " + name);
    }
    idx.push_back(*i);
  }
  return idx;
}

// Accumulator for one AggSpec within one group.
struct AggState {
  double sum = 0.0;
  int64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::set<std::string> distinct;

  void Accumulate(AggFn fn, const Value& v) {
    if (v.is_null()) return;
    if (fn == AggFn::kCountDistinct) {
      distinct.insert(v.ToString() + (v.is_string() ? "\x01s" : "\x01n"));
      return;
    }
    ++count;
    if (fn == AggFn::kCount) return;
    const double d = v.AsDouble();
    sum += d;
    min = std::min(min, d);
    max = std::max(max, d);
  }

  Value Finish(AggFn fn) const {
    switch (fn) {
      case AggFn::kCount:
        return Value(count);
      case AggFn::kCountDistinct:
        return Value(static_cast<int64_t>(distinct.size()));
      case AggFn::kSum:
        return count > 0 ? Value(sum) : Value::Null();
      case AggFn::kMin:
        return count > 0 ? Value(min) : Value::Null();
      case AggFn::kMax:
        return count > 0 ? Value(max) : Value::Null();
      case AggFn::kAvg:
        return count > 0 ? Value(sum / static_cast<double>(count))
                         : Value::Null();
    }
    return Value::Null();
  }
};

DataType AggOutputType(AggFn fn) {
  return (fn == AggFn::kCount || fn == AggFn::kCountDistinct)
             ? DataType::kInt64
             : DataType::kDouble;
}

}  // namespace

const char* AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
      return "sum";
    case AggFn::kCount:
      return "count";
    case AggFn::kCountDistinct:
      return "count_distinct";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
    case AggFn::kAvg:
      return "avg";
  }
  return "unknown";
}

Table Select(const Table& input, const RowPredicate& pred) {
  std::vector<size_t> keep;
  for (size_t r = 0; r < input.num_rows(); ++r) {
    if (pred(input, r)) keep.push_back(r);
  }
  return input.TakeRows(keep);
}

Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns) {
  BW_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                      ResolveColumns(input, columns));
  Schema schema;
  for (size_t i : idx) schema.AddField(input.schema().field(i));
  Table out(schema);
  std::vector<Value> row(idx.size());
  for (size_t r = 0; r < input.num_rows(); ++r) {
    for (size_t k = 0; k < idx.size(); ++k) row[k] = input.ValueAt(r, idx[k]);
    out.AppendRow(row);
  }
  return out;
}

Result<Table> ProjectDistinct(const Table& input,
                              const std::vector<std::string>& columns) {
  BW_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                      ResolveColumns(input, columns));
  Schema schema;
  for (size_t i : idx) schema.AddField(input.schema().field(i));
  Table out(schema);
  std::set<std::string> seen;
  std::vector<Value> row(idx.size());
  for (size_t r = 0; r < input.num_rows(); ++r) {
    const std::string key = GroupKey(input, r, idx);
    if (!seen.insert(key).second) continue;
    for (size_t k = 0; k < idx.size(); ++k) row[k] = input.ValueAt(r, idx[k]);
    out.AppendRow(row);
  }
  return out;
}

Result<Table> KeyForeignKeyJoin(const Table& fact, const std::string& fact_fk,
                                const Table& reference,
                                const std::string& ref_key) {
  auto fk_idx = fact.schema().FindField(fact_fk);
  if (!fk_idx.has_value()) {
    return Status::NotFound("join: fact FK column not found: " + fact_fk);
  }
  auto key_idx = reference.schema().FindField(ref_key);
  if (!key_idx.has_value()) {
    return Status::NotFound("join: reference key column not found: " +
                            ref_key);
  }

  // Build the hash index over the reference primary key.
  std::unordered_map<std::string, size_t> index;
  index.reserve(reference.num_rows() * 2);
  for (size_t r = 0; r < reference.num_rows(); ++r) {
    const Value v = reference.ValueAt(r, *key_idx);
    if (v.is_null()) continue;
    const std::string key = GroupKey(reference, r, {*key_idx});
    if (!index.emplace(key, r).second) {
      return Status::InvalidArgument(
          "join: duplicate primary key in reference table: " + v.ToString());
    }
  }

  // Output schema: fact columns, then non-key reference columns (renamed with
  // the reference key's prefix if a name collides).
  Schema schema;
  for (const auto& f : fact.schema().fields()) schema.AddField(f);
  std::vector<size_t> ref_cols;
  for (size_t c = 0; c < reference.schema().num_fields(); ++c) {
    if (c == *key_idx) continue;
    Field f = reference.schema().field(c);
    if (schema.FindField(f.name).has_value()) {
      f.name = ref_key + "." + f.name;
    }
    schema.AddField(f);
    ref_cols.push_back(c);
  }

  Table out(schema);
  std::vector<Value> row;
  row.reserve(schema.num_fields());
  for (size_t r = 0; r < fact.num_rows(); ++r) {
    const Value fk = fact.ValueAt(r, *fk_idx);
    if (fk.is_null()) continue;
    auto it = index.find(GroupKey(fact, r, {*fk_idx}));
    if (it == index.end()) continue;
    row.clear();
    for (size_t c = 0; c < fact.num_columns(); ++c) {
      row.push_back(fact.ValueAt(r, c));
    }
    for (size_t c : ref_cols) {
      row.push_back(reference.ValueAt(it->second, c));
    }
    out.AppendRow(row);
  }
  return out;
}

Result<Table> GroupByAggregate(const Table& input,
                               const std::vector<std::string>& group_by,
                               const std::vector<AggSpec>& specs) {
  BW_ASSIGN_OR_RETURN(std::vector<size_t> group_idx,
                      ResolveColumns(input, group_by));
  std::vector<size_t> agg_idx;
  agg_idx.reserve(specs.size());
  for (const auto& s : specs) {
    auto i = input.schema().FindField(s.column);
    if (!i.has_value()) {
      return Status::NotFound("aggregate column not found: " + s.column);
    }
    agg_idx.push_back(*i);
  }

  Schema schema;
  for (size_t i : group_idx) schema.AddField(input.schema().field(i));
  for (const auto& s : specs) {
    schema.AddField(Field{s.output_name, AggOutputType(s.fn)});
  }

  // Ordered map keeps output deterministic.
  struct Group {
    std::vector<Value> keys;
    std::vector<AggState> states;
  };
  std::map<std::string, Group> groups;
  for (size_t r = 0; r < input.num_rows(); ++r) {
    const std::string key = GroupKey(input, r, group_idx);
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) {
      it->second.states.resize(specs.size());
      it->second.keys.reserve(group_idx.size());
      for (size_t c : group_idx) {
        it->second.keys.push_back(input.ValueAt(r, c));
      }
    }
    for (size_t k = 0; k < specs.size(); ++k) {
      it->second.states[k].Accumulate(specs[k].fn,
                                      input.ValueAt(r, agg_idx[k]));
    }
  }
  // Scalar aggregation of an empty input still produces one row.
  if (group_by.empty() && groups.empty()) {
    groups.try_emplace("").first->second.states.resize(specs.size());
  }

  Table out(schema);
  std::vector<Value> row;
  for (const auto& [key, g] : groups) {
    (void)key;
    row = g.keys;
    for (size_t k = 0; k < specs.size(); ++k) {
      row.push_back(g.states[k].Finish(specs[k].fn));
    }
    out.AppendRow(row);
    row.clear();
  }
  return out;
}

Result<Table> SortBy(const Table& input,
                     const std::vector<std::string>& columns) {
  BW_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                      ResolveColumns(input, columns));
  std::vector<size_t> order(input.num_rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t c : idx) {
      const int cmp = CompareValues(input.ValueAt(a, c), input.ValueAt(b, c));
      if (cmp != 0) return cmp < 0;
    }
    return false;
  });
  return input.TakeRows(order);
}

bool TablesEqualUnordered(const Table& a, const Table& b, double tol) {
  if (!(a.schema() == b.schema()) || a.num_rows() != b.num_rows()) {
    return false;
  }
  std::vector<std::string> all_cols;
  for (const auto& f : a.schema().fields()) all_cols.push_back(f.name);
  auto sa = SortBy(a, all_cols);
  auto sb = SortBy(b, all_cols);
  BW_CHECK(sa.ok() && sb.ok());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      const Value va = sa->ValueAt(r, c);
      const Value vb = sb->ValueAt(r, c);
      if (va.is_null() != vb.is_null()) return false;
      if (va.is_null()) continue;
      if (va.is_string() || vb.is_string()) {
        if (!(va == vb)) return false;
      } else if (std::fabs(va.AsDouble() - vb.AsDouble()) > tol) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace bellwether::table
