#ifndef BELLWETHER_TABLE_TABLE_H_
#define BELLWETHER_TABLE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/schema.h"
#include "table/value.h"

namespace bellwether::table {

/// A single typed column with a null mask. Storage is one of the typed
/// vectors according to type().
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return nulls_.size(); }

  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void AppendNull();
  /// Appends `v`, which must match type() or be null.
  void AppendValue(const Value& v);

  bool IsNull(size_t row) const { return nulls_[row]; }
  /// Typed accessors; precondition: matching type and non-null row.
  int64_t Int64At(size_t row) const { return ints_[row]; }
  double DoubleAt(size_t row) const { return doubles_[row]; }
  const std::string& StringAt(size_t row) const { return strings_[row]; }

  /// Numeric value widened to double; precondition: numeric, non-null.
  double NumericAt(size_t row) const;

  /// Boxed value (null-aware).
  Value ValueAt(size_t row) const;

  /// Raw typed storage for fast scans.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }

 private:
  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<bool> nulls_;
};

/// A columnar, append-only table. This is the in-memory relation used for
/// fact tables, dimension/reference tables, and generated training sets.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& mutable_column(size_t i) { return columns_[i]; }
  /// Column by field name; aborts on unknown name.
  const Column& ColumnByName(const std::string& name) const;

  /// Appends a row of boxed values; row.size() must equal num_columns() and
  /// each value must match its column type or be null.
  void AppendRow(const std::vector<Value>& row);

  /// Value at (row, col), null-aware.
  Value ValueAt(size_t row, size_t col) const {
    return columns_[col].ValueAt(row);
  }

  /// Extracts one row as boxed values.
  std::vector<Value> RowAt(size_t row) const;

  /// Returns a table with the same schema containing the listed rows.
  Table TakeRows(const std::vector<size_t>& row_indices) const;

  /// Renders up to `max_rows` rows as an aligned text table (debugging).
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace bellwether::table

#endif  // BELLWETHER_TABLE_TABLE_H_
