#include "table/schema.h"

#include "common/check.h"

namespace bellwether::table {

Schema::Schema(std::vector<Field> fields) {
  for (auto& f : fields) AddField(std::move(f));
}

std::optional<size_t> Schema::FindField(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

size_t Schema::FieldIndexOrDie(const std::string& name) const {
  auto idx = FindField(name);
  BW_CHECK(idx.has_value());
  return *idx;
}

size_t Schema::AddField(Field field) {
  BW_CHECK(index_.find(field.name) == index_.end());
  const size_t idx = fields_.size();
  index_.emplace(field.name, idx);
  fields_.push_back(std::move(field));
  return idx;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeToString(fields_[i].type);
  }
  return out;
}

}  // namespace bellwether::table
