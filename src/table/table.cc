#include "table/table.h"

#include <algorithm>

#include "common/check.h"

namespace bellwether::table {

void Column::AppendInt64(int64_t v) {
  BW_DCHECK(type_ == DataType::kInt64);
  ints_.push_back(v);
  nulls_.push_back(false);
}

void Column::AppendDouble(double v) {
  BW_DCHECK(type_ == DataType::kDouble);
  doubles_.push_back(v);
  nulls_.push_back(false);
}

void Column::AppendString(std::string v) {
  BW_DCHECK(type_ == DataType::kString);
  strings_.push_back(std::move(v));
  nulls_.push_back(false);
}

void Column::AppendNull() {
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
  }
  nulls_.push_back(true);
}

void Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      BW_CHECK(v.is_int64());
      AppendInt64(v.int64());
      break;
    case DataType::kDouble:
      // Allow widening int64 -> double for convenience.
      AppendDouble(v.is_int64() ? static_cast<double>(v.int64()) : v.dbl());
      break;
    case DataType::kString:
      BW_CHECK(v.is_string());
      AppendString(v.str());
      break;
  }
}

double Column::NumericAt(size_t row) const {
  BW_DCHECK(!IsNull(row));
  switch (type_) {
    case DataType::kInt64:
      return static_cast<double>(ints_[row]);
    case DataType::kDouble:
      return doubles_[row];
    case DataType::kString:
      BW_CHECK(false);
  }
  return 0.0;
}

Value Column::ValueAt(size_t row) const {
  if (nulls_[row]) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value(ints_[row]);
    case DataType::kDouble:
      return Value(doubles_[row]);
    case DataType::kString:
      return Value(strings_[row]);
  }
  return Value::Null();
}

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    columns_.emplace_back(schema_.field(i).type);
  }
}

const Column& Table::ColumnByName(const std::string& name) const {
  return columns_[schema_.FieldIndexOrDie(name)];
}

void Table::AppendRow(const std::vector<Value>& row) {
  BW_CHECK(row.size() == columns_.size());
  for (size_t i = 0; i < row.size(); ++i) columns_[i].AppendValue(row[i]);
  ++num_rows_;
}

std::vector<Value> Table::RowAt(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col.ValueAt(row));
  return out;
}

Table Table::TakeRows(const std::vector<size_t>& row_indices) const {
  Table out(schema_);
  for (size_t r : row_indices) {
    BW_DCHECK(r < num_rows_);
    out.AppendRow(RowAt(r));
  }
  return out;
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = schema_.ToString();
  out += "\n";
  const size_t n = std::min(max_rows, num_rows_);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c) out += " | ";
      out += columns_[c].ValueAt(r).ToString();
    }
    out += "\n";
  }
  if (n < num_rows_) {
    out += "... (" + std::to_string(num_rows_ - n) + " more rows)\n";
  }
  return out;
}

}  // namespace bellwether::table
