#ifndef BELLWETHER_TABLE_OPS_H_
#define BELLWETHER_TABLE_OPS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace bellwether::table {

/// Implements the extended relational algebra of the paper's Table 1:
/// selection (sigma), group-by aggregation (alpha), duplicate-free projection
/// (pi), and key-foreign-key natural join.

/// Row predicate for Select.
using RowPredicate = std::function<bool(const Table&, size_t row)>;

/// sigma_pred: rows of `input` satisfying `pred`, in input order.
Table Select(const Table& input, const RowPredicate& pred);

/// pi_columns: projection onto the named columns with duplicate elimination
/// (set semantics, as required for the pi_FK rewrite of feature queries).
Result<Table> ProjectDistinct(const Table& input,
                              const std::vector<std::string>& columns);

/// Projection without duplicate elimination.
Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns);

/// Key-foreign-key natural join: for each row of `fact`, looks up the row of
/// `reference` whose `ref_key` equals the fact row's `fact_fk`. `reference`
/// must have unique keys (primary key). Fact rows with no match or a null FK
/// are dropped (inner join). Output schema: fact columns then the non-key
/// reference columns.
Result<Table> KeyForeignKeyJoin(const Table& fact, const std::string& fact_fk,
                                const Table& reference,
                                const std::string& ref_key);

/// Aggregate functions of the paper (all distributive or algebraic).
enum class AggFn {
  kSum,
  kCount,          // counts non-null values of the argument column
  kCountDistinct,  // distinct non-null values (used by the coverage query)
  kMin,
  kMax,
  kAvg,
};

const char* AggFnToString(AggFn fn);

/// One aggregate output: fn applied to `column`, emitted as `output_name`.
/// kCount/kCountDistinct emit int64; the others emit double.
struct AggSpec {
  AggFn fn;
  std::string column;
  std::string output_name;
};

/// alpha_{group_by, specs}: hash group-by aggregation. With empty group_by,
/// aggregates the whole table into one row (even when the input is empty,
/// matching SQL aggregate semantics: COUNT()=0, SUM()=null, ...).
Result<Table> GroupByAggregate(const Table& input,
                               const std::vector<std::string>& group_by,
                               const std::vector<AggSpec>& specs);

/// Sorts rows by the given columns ascending (nulls first). Stable.
Result<Table> SortBy(const Table& input,
                     const std::vector<std::string>& columns);

/// True if the tables have equal schemas and identical row multisets
/// (compared after sorting by all columns). Doubles compare with tolerance.
bool TablesEqualUnordered(const Table& a, const Table& b, double tol = 1e-9);

}  // namespace bellwether::table

#endif  // BELLWETHER_TABLE_OPS_H_
