#include "table/csv.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "obs/logger.h"
#include "obs/metrics.h"
#include "robust/fault_injection.h"

namespace bellwether::table {

namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

// Splits one CSV record honoring quotes.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quote in CSV");
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace

Status WriteCsv(const Table& t, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for write: " + path + ": " +
                           std::strerror(errno));
  }
  for (size_t c = 0; c < t.schema().num_fields(); ++c) {
    if (c) out << ',';
    out << t.schema().field(c).name;
  }
  out << '\n';
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      if (c) out << ',';
      const Value v = t.ValueAt(r, c);
      if (v.is_null()) continue;
      const std::string s = v.ToString();
      out << (NeedsQuoting(s) ? QuoteField(s) : s);
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

namespace {

// Parses the fields of one record into `row`. Errors name the offending
// column so a bad value in a wide fact table is findable.
Status ParseRowFields(const Schema& schema,
                      const std::vector<std::string>& fields,
                      std::vector<Value>* row) {
  for (size_t c = 0; c < fields.size(); ++c) {
    const std::string& f = fields[c];
    if (f.empty()) {
      (*row)[c] = Value::Null();
      continue;
    }
    const std::string col_ctx =
        "column '" + schema.field(c).name + "' (#" + std::to_string(c) + ")";
    switch (schema.field(c).type) {
      case DataType::kInt64: {
        errno = 0;
        char* end = nullptr;
        const long long v = std::strtoll(f.c_str(), &end, 10);
        if (errno != 0 || end == f.c_str() || *end != '\0') {
          return Status::InvalidArgument(col_ctx + ": bad int64 '" + f + "'");
        }
        (*row)[c] = Value(static_cast<int64_t>(v));
        break;
      }
      case DataType::kDouble: {
        errno = 0;
        char* end = nullptr;
        const double v = std::strtod(f.c_str(), &end);
        if (errno != 0 || end == f.c_str() || *end != '\0') {
          return Status::InvalidArgument(col_ctx + ": bad double '" + f + "'");
        }
        (*row)[c] = Value(v);
        break;
      }
      case DataType::kString:
        (*row)[c] = Value(f);
        break;
    }
  }
  return Status::OK();
}

// Parses one full record (split + field conversion + injected corruption).
Status ParseRecord(const Schema& schema, const std::string& line,
                   std::vector<Value>* row) {
  if (robust::ShouldCorrupt(robust::kFaultCsvRow)) {
    return Status::InvalidArgument("injected corrupt row");
  }
  BW_ASSIGN_OR_RETURN(std::vector<std::string> fields, ParseCsvLine(line));
  if (fields.size() != schema.num_fields()) {
    return Status::InvalidArgument(
        "expected " + std::to_string(schema.num_fields()) + " fields, got " +
        std::to_string(fields.size()));
  }
  return ParseRowFields(schema, fields, row);
}

}  // namespace

Result<Table> ReadCsv(const std::string& path, const Schema& schema,
                      const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for read: " + path + ": " +
                           std::strerror(errno));
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty CSV (missing header): " + path);
  }
  // The table is built locally and only returned on success, so a failed
  // strict read can never hand back partially-filled state.
  Table out(schema);
  std::vector<Value> row(schema.num_fields());
  robust::QuarantineStats local_stats;
  robust::QuarantineStats* stats =
      options.stats != nullptr ? options.stats : &local_stats;
  static obs::Counter* quarantined =
      obs::DefaultMetrics().GetCounter(obs::kMCsvRowsQuarantined);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    ++stats->rows_seen;
    const Status st = ParseRecord(schema, line, &row);
    if (!st.ok()) {
      const std::string context =
          path + ":" + std::to_string(line_no) + ": " + st.message();
      if (options.row_policy == robust::RowErrorPolicy::kStrict) {
        return Status(st.code(), context);
      }
      stats->Quarantine(context);
      quarantined->Increment();
      BW_LOG(obs::LogLevel::kWarn, "table.csv")
          << "quarantined row: " << context;
      continue;
    }
    out.AppendRow(row);
  }
  return out;
}

Result<Table> ReadCsv(const std::string& path, const Schema& schema) {
  return ReadCsv(path, schema, CsvReadOptions{});
}

}  // namespace bellwether::table
