#ifndef BELLWETHER_TABLE_VALUE_H_
#define BELLWETHER_TABLE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace bellwether::table {

/// Column data types supported by the relational layer.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

/// Returns "int64", "double", or "string".
const char* DataTypeToString(DataType type);

/// A dynamically typed cell value. Null is represented by monostate.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(const char* v) : v_(std::string(v)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  /// Precondition: the corresponding is_*() holds.
  int64_t int64() const { return std::get<int64_t>(v_); }
  double dbl() const { return std::get<double>(v_); }
  const std::string& str() const { return std::get<std::string>(v_); }

  /// Numeric view: int64 widened to double; precondition: numeric non-null.
  double AsDouble() const;

  /// Renders the value for CSV / debug output; null renders as "".
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.v_ == b.v_;
  }

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

}  // namespace bellwether::table

#endif  // BELLWETHER_TABLE_VALUE_H_
