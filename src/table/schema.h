#ifndef BELLWETHER_TABLE_SCHEMA_H_
#define BELLWETHER_TABLE_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "table/value.h"

namespace bellwether::table {

/// A named, typed column descriptor.
struct Field {
  std::string name;
  DataType type;

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// An ordered list of fields with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or nullopt.
  std::optional<size_t> FindField(const std::string& name) const;

  /// Index of the field named `name`; aborts if absent (programmer error).
  size_t FieldIndexOrDie(const std::string& name) const;

  /// Appends a field; returns the index of the new field. Duplicate names are
  /// a programmer error.
  size_t AddField(Field field);

  /// "name:type, name:type, ..." for diagnostics.
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace bellwether::table

#endif  // BELLWETHER_TABLE_SCHEMA_H_
