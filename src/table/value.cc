#include "table/value.h"

#include "common/check.h"
#include "common/string_util.h"

namespace bellwether::table {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

double Value::AsDouble() const {
  if (is_int64()) return static_cast<double>(int64());
  BW_CHECK(is_double());
  return dbl();
}

std::string Value::ToString() const {
  if (is_null()) return "";
  if (is_int64()) return std::to_string(int64());
  if (is_double()) return FormatDouble(dbl());
  return str();
}

}  // namespace bellwether::table
