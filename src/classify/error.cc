#include "classify/error.h"

#include <cmath>

#include "common/check.h"

namespace bellwether::classify {

Result<regression::ErrorStats> CrossValidateNb(const LabeledDataset& data,
                                               int32_t num_classes,
                                               int32_t folds, Rng* rng) {
  BW_CHECK(rng != nullptr);
  if (folds < 2) return Status::InvalidArgument("need >= 2 folds");
  const size_t n = data.num_examples();
  if (n < 2) return Status::FailedPrecondition("need >= 2 examples");
  const int32_t k = std::min<int32_t>(folds, static_cast<int32_t>(n));
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng->Shuffle(&order);

  std::vector<double> fold_errors;
  for (int32_t f = 0; f < k; ++f) {
    NbSuffStats stats(data.num_features, num_classes);
    LabeledDataset test;
    test.num_features = data.num_features;
    std::vector<double> row(data.num_features);
    for (size_t i = 0; i < n; ++i) {
      const size_t idx = order[i];
      row.assign(data.row(idx), data.row(idx) + data.num_features);
      if (static_cast<int32_t>(i % k) == f) {
        test.Add(row, data.y[idx]);
      } else {
        stats.Add(row.data(), data.y[idx]);
      }
    }
    auto model = stats.Fit();
    if (!model.ok() || test.num_examples() == 0) continue;
    fold_errors.push_back(MisclassificationRate(*model, test));
  }
  if (fold_errors.empty()) {
    return Status::NumericError("no usable cross-validation fold");
  }
  double mean = 0.0;
  for (double e : fold_errors) mean += e;
  mean /= static_cast<double>(fold_errors.size());
  double var = 0.0;
  for (double e : fold_errors) var += (e - mean) * (e - mean);
  regression::ErrorStats out;
  out.rmse = mean;
  out.stddev = fold_errors.size() > 1
                   ? std::sqrt(var /
                               static_cast<double>(fold_errors.size() - 1))
                   : 0.0;
  out.num_folds = static_cast<int32_t>(fold_errors.size());
  return out;
}

Result<regression::ErrorStats> TrainingErrorNb(const LabeledDataset& data,
                                               int32_t num_classes) {
  NbSuffStats stats(data.num_features, num_classes);
  for (size_t i = 0; i < data.num_examples(); ++i) {
    stats.Add(data.row(i), data.y[i]);
  }
  BW_ASSIGN_OR_RETURN(GaussianNbModel model, stats.Fit());
  regression::ErrorStats out;
  out.rmse = MisclassificationRate(model, data);
  out.num_folds = 1;
  return out;
}

}  // namespace bellwether::classify
