#ifndef BELLWETHER_CLASSIFY_GAUSSIAN_NB_H_
#define BELLWETHER_CLASSIFY_GAUSSIAN_NB_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace bellwether::classify {

/// A fitted Gaussian naive Bayes classifier: per class, a prior and
/// per-feature normal densities. The bellwether framework's classification
/// counterpart of the WLS linear model — its sufficient statistics are
/// algebraic (per-class counts / sums / sums of squares), so cube-style
/// bottom-up aggregation applies to it exactly as Theorem 1 applies to
/// regression (cf. the decomposable-scoring discussion of §6.4).
class GaussianNbModel {
 public:
  GaussianNbModel() = default;
  GaussianNbModel(std::vector<double> log_priors, std::vector<double> means,
                  std::vector<double> variances, size_t num_features);

  int32_t num_classes() const {
    return static_cast<int32_t>(log_priors_.size());
  }
  size_t num_features() const { return num_features_; }

  /// Most probable class of a feature row (num_features() values).
  int32_t Predict(const double* x) const;
  int32_t Predict(const std::vector<double>& x) const {
    return Predict(x.data());
  }

  /// Per-class log joint density log p(y) + sum_j log p(x_j | y).
  std::vector<double> LogScores(const double* x) const;

 private:
  std::vector<double> log_priors_;  // per class
  std::vector<double> means_;       // class-major, num_classes * num_features
  std::vector<double> variances_;   // same layout, variance-floored
  size_t num_features_ = 0;
};

/// Algebraic sufficient statistics of a Gaussian NB model: per (class,
/// feature) count/sum/sum-of-squares. Fixed size; merging is element-wise
/// addition, so per-subset statistics roll up through cube lattices.
class NbSuffStats {
 public:
  NbSuffStats() = default;
  NbSuffStats(size_t num_features, int32_t num_classes);

  size_t num_features() const { return num_features_; }
  int32_t num_classes() const { return num_classes_; }
  int64_t num_examples() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Accumulates one example with class label y in [0, num_classes).
  void Add(const double* x, int32_t y);

  /// Element-wise merge; arities must match (or *this may be default-empty).
  void Merge(const NbSuffStats& other);

  void Reset();

  /// Fits the model; fails when no class has an example. Variances are
  /// floored at a small fraction of the feature's global variance to keep
  /// densities proper on near-constant features.
  Result<GaussianNbModel> Fit() const;

 private:
  size_t num_features_ = 0;
  int32_t num_classes_ = 0;
  int64_t n_ = 0;
  std::vector<int64_t> class_count_;  // per class
  std::vector<double> sum_;           // class-major
  std::vector<double> sum_sq_;        // class-major
};

/// A labeled classification dataset (dense features, int class labels).
struct LabeledDataset {
  size_t num_features = 0;
  std::vector<double> x;   // row-major
  std::vector<int32_t> y;  // class labels

  size_t num_examples() const { return y.size(); }
  const double* row(size_t i) const { return x.data() + i * num_features; }
  void Add(const std::vector<double>& row_in, int32_t label);
};

/// Fraction of misclassified examples.
double MisclassificationRate(const GaussianNbModel& model,
                             const LabeledDataset& data);

}  // namespace bellwether::classify

#endif  // BELLWETHER_CLASSIFY_GAUSSIAN_NB_H_
