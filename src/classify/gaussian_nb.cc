#include "classify/gaussian_nb.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace bellwether::classify {

namespace {
constexpr double kLogTwoPi = 1.8378770664093453;
}  // namespace

GaussianNbModel::GaussianNbModel(std::vector<double> log_priors,
                                 std::vector<double> means,
                                 std::vector<double> variances,
                                 size_t num_features)
    : log_priors_(std::move(log_priors)),
      means_(std::move(means)),
      variances_(std::move(variances)),
      num_features_(num_features) {
  BW_CHECK(means_.size() == log_priors_.size() * num_features_);
  BW_CHECK(variances_.size() == means_.size());
}

std::vector<double> GaussianNbModel::LogScores(const double* x) const {
  std::vector<double> scores(log_priors_.size());
  for (size_t c = 0; c < log_priors_.size(); ++c) {
    double s = log_priors_[c];
    if (s == -std::numeric_limits<double>::infinity()) {
      scores[c] = s;
      continue;
    }
    const double* mean = means_.data() + c * num_features_;
    const double* var = variances_.data() + c * num_features_;
    for (size_t j = 0; j < num_features_; ++j) {
      const double d = x[j] - mean[j];
      s -= 0.5 * (kLogTwoPi + std::log(var[j]) + d * d / var[j]);
    }
    scores[c] = s;
  }
  return scores;
}

int32_t GaussianNbModel::Predict(const double* x) const {
  const std::vector<double> scores = LogScores(x);
  int32_t best = 0;
  for (size_t c = 1; c < scores.size(); ++c) {
    if (scores[c] > scores[best]) best = static_cast<int32_t>(c);
  }
  return best;
}

NbSuffStats::NbSuffStats(size_t num_features, int32_t num_classes)
    : num_features_(num_features),
      num_classes_(num_classes),
      class_count_(num_classes, 0),
      sum_(num_classes * num_features, 0.0),
      sum_sq_(num_classes * num_features, 0.0) {
  BW_CHECK(num_classes >= 2);
}

void NbSuffStats::Add(const double* x, int32_t y) {
  BW_DCHECK(y >= 0 && y < num_classes_);
  ++n_;
  ++class_count_[y];
  double* s = sum_.data() + y * num_features_;
  double* q = sum_sq_.data() + y * num_features_;
  for (size_t j = 0; j < num_features_; ++j) {
    s[j] += x[j];
    q[j] += x[j] * x[j];
  }
}

void NbSuffStats::Merge(const NbSuffStats& other) {
  if (other.empty()) return;
  if (empty() && num_classes_ == 0) {
    *this = other;
    return;
  }
  BW_CHECK(num_features_ == other.num_features_ &&
           num_classes_ == other.num_classes_);
  n_ += other.n_;
  for (int32_t c = 0; c < num_classes_; ++c) {
    class_count_[c] += other.class_count_[c];
  }
  for (size_t k = 0; k < sum_.size(); ++k) {
    sum_[k] += other.sum_[k];
    sum_sq_[k] += other.sum_sq_[k];
  }
}

void NbSuffStats::Reset() {
  n_ = 0;
  std::fill(class_count_.begin(), class_count_.end(), 0);
  std::fill(sum_.begin(), sum_.end(), 0.0);
  std::fill(sum_sq_.begin(), sum_sq_.end(), 0.0);
}

Result<GaussianNbModel> NbSuffStats::Fit() const {
  if (n_ == 0) {
    return Status::FailedPrecondition("cannot fit NB on 0 examples");
  }
  // Global per-feature variance, the basis of the variance floor.
  std::vector<double> global_var(num_features_, 0.0);
  for (size_t j = 0; j < num_features_; ++j) {
    double total = 0.0, total_sq = 0.0;
    for (int32_t c = 0; c < num_classes_; ++c) {
      total += sum_[c * num_features_ + j];
      total_sq += sum_sq_[c * num_features_ + j];
    }
    const double mean = total / static_cast<double>(n_);
    global_var[j] =
        std::max(total_sq / static_cast<double>(n_) - mean * mean, 0.0);
  }
  std::vector<double> log_priors(num_classes_);
  std::vector<double> means(num_classes_ * num_features_, 0.0);
  std::vector<double> variances(num_classes_ * num_features_, 1.0);
  for (int32_t c = 0; c < num_classes_; ++c) {
    if (class_count_[c] == 0) {
      log_priors[c] = -std::numeric_limits<double>::infinity();
      continue;
    }
    log_priors[c] = std::log(static_cast<double>(class_count_[c]) /
                             static_cast<double>(n_));
    const double inv = 1.0 / static_cast<double>(class_count_[c]);
    for (size_t j = 0; j < num_features_; ++j) {
      const double mean = sum_[c * num_features_ + j] * inv;
      double var = sum_sq_[c * num_features_ + j] * inv - mean * mean;
      // Floor at 1e-9 of the global variance (plus an absolute epsilon) to
      // keep the density proper on (near-)constant features.
      var = std::max(var, 1e-9 * global_var[j] + 1e-12);
      means[c * num_features_ + j] = mean;
      variances[c * num_features_ + j] = var;
    }
  }
  return GaussianNbModel(std::move(log_priors), std::move(means),
                         std::move(variances), num_features_);
}

void LabeledDataset::Add(const std::vector<double>& row_in, int32_t label) {
  BW_DCHECK(row_in.size() == num_features);
  x.insert(x.end(), row_in.begin(), row_in.end());
  y.push_back(label);
}

double MisclassificationRate(const GaussianNbModel& model,
                             const LabeledDataset& data) {
  if (data.num_examples() == 0) return 0.0;
  int64_t wrong = 0;
  for (size_t i = 0; i < data.num_examples(); ++i) {
    if (model.Predict(data.row(i)) != data.y[i]) ++wrong;
  }
  return static_cast<double>(wrong) /
         static_cast<double>(data.num_examples());
}

}  // namespace bellwether::classify
