#ifndef BELLWETHER_CLASSIFY_ERROR_H_
#define BELLWETHER_CLASSIFY_ERROR_H_

#include <cstdint>

#include "classify/gaussian_nb.h"
#include "common/random.h"
#include "common/status.h"
#include "regression/error.h"

namespace bellwether::classify {

/// k-fold cross-validated misclassification rate of a Gaussian NB model
/// (the classification error measure of §2). Deterministic given *rng.
/// Returns fold-level spread in the ErrorStats for confidence bounds, with
/// `rmse` holding the mean misclassification rate.
Result<regression::ErrorStats> CrossValidateNb(const LabeledDataset& data,
                                               int32_t num_classes,
                                               int32_t folds, Rng* rng);

/// Training-set misclassification rate (fit on data, test on data).
Result<regression::ErrorStats> TrainingErrorNb(const LabeledDataset& data,
                                               int32_t num_classes);

}  // namespace bellwether::classify

#endif  // BELLWETHER_CLASSIFY_ERROR_H_
