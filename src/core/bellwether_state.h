#ifndef BELLWETHER_CORE_BELLWETHER_STATE_H_
#define BELLWETHER_CORE_BELLWETHER_STATE_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "core/basic_search.h"
#include "core/bellwether_cube.h"
#include "core/cube_build_internal.h"
#include "olap/dirty.h"
#include "storage/training_data.h"
#include "storage/training_data_sink.h"

namespace bellwether::core {

/// Mutable algebraic core of the bellwether cube: the per-(region, subset)
/// regression sufficient statistics of Theorem 1, held as a persistent
/// object instead of scan-local temporaries. Cube construction decomposes
/// into three phases over it:
///
///   Init        capture the subset lattice, significant subsets, and item
///               mask (immutable for the state's lifetime)
///   Ingest      fold fact rows in — either one historical scan
///               (IngestScan, the one-shot mode BuildBellwetherCubeSingleScan
///               is expressed in) or incremental row batches (ApplyDelta)
///   Finalize    derive models / errors / min-error picks into a
///               BellwetherCube (or a BasicSearchResult via FinalizeSearch)
///
/// Because the sufficient statistic is algebraic (g of Theorem 1), folding a
/// delta batch row-by-row onto the retained accumulators reproduces, bit for
/// bit, the accumulator a from-scratch scan of the concatenated stream would
/// produce — so an ApplyDelta-maintained cube is bit-identical to a rebuild,
/// at any thread count. ApplyDelta tracks the cube cells its rows touched in
/// a dirty set; Finalize re-derives only dirty cells and reuses the cached
/// remainder.
///
/// Incremental states persist via model_io (SaveBellwetherState /
/// LoadBellwetherState, format "bellwether-state-v3"): packed-triangle
/// suff-stats and retained rows on the wire, per-cell errors recomputed on
/// load. A reopened state re-derives every cell on its first Finalize, so
/// kill/reopen/re-apply converges to the same artifacts.
///
/// Not thread-safe: one logical owner drives the phase sequence (ApplyDelta
/// parallelizes internally and merges in submission order). An ApplyDelta
/// error other than an injected transactional entry fault leaves the state
/// poisoned — reopen the last saved state and re-apply the batch.
class BellwetherState {
 public:
  struct Options {
    CubeBuildConfig config;
    /// Incremental mode retains per-region rows and sufficient statistics
    /// so ApplyDelta / Finalize / FinalizeSearch can maintain artifacts
    /// over time. One-shot mode (BuildBellwetherCubeSingleScan) streams a
    /// source once via IngestScan and finalizes against it.
    bool incremental = true;
    /// Name of the flight-recorder report attached to finalized cubes.
    std::string report_name = "cube_state";
  };

  /// Phase 1: derives the immutable build skeleton (subset sizes,
  /// significant subsets, per-item containing lists, state fingerprint).
  /// `item_mask` is copied; nullptr means all items.
  static Result<std::unique_ptr<BellwetherState>> Init(
      std::shared_ptr<const ItemSubsetSpace> subsets, Options options,
      const std::vector<uint8_t>* item_mask = nullptr);

  BellwetherState(const BellwetherState&) = delete;
  BellwetherState& operator=(const BellwetherState&) = delete;

  /// Phase 2, one-shot mode: the historical single scan, including its
  /// checkpoint/resume machinery and the in-submission-order parallel merge
  /// (bit-identical across thread counts). `source` must stay alive until
  /// Finalize() (the CV post-pass reads rows back from it).
  Status IngestScan(storage::TrainingDataSource* source);

  /// Phase 2, incremental mode: folds a batch of new fact rows into the
  /// retained per-(region, subset) accumulators and appends the rows to the
  /// per-region row store. Sets must be strictly ascending by distinct
  /// RegionId within the batch (the same region may recur across batches;
  /// its retained rows concatenate in ingest order, so they are not
  /// guaranteed ascending by item). Cells whose statistics changed are
  /// marked dirty. Per-region work runs on a pool and is merged in
  /// submission order, so the resulting state is bit-identical for any
  /// thread count. When config.checkpoint_path is set, the state is saved
  /// after each successful batch (batch-boundary durability).
  Status ApplyDelta(std::vector<storage::RegionTrainingSet> batch);

  /// Phase 3: derives the cube. One-shot mode finalizes the scanned picks
  /// exactly as the historical builder did. Incremental mode re-derives the
  /// cells of dirty subsets (all of them on the first Finalize after Init or
  /// Open) and reuses cached cells for the rest — cell contents, cube
  /// artifact bytes, and the report's logical sections are bit-identical to
  /// a from-scratch rebuild of the same rows. Callable repeatedly in
  /// incremental mode as deltas continue to arrive.
  Result<BellwetherCube> Finalize();

  /// Derives a basic bellwether search result over the retained per-region
  /// rows (incremental mode only), equivalent to RunBasicBellwetherSearch
  /// over a source holding the same rows in ascending-region order.
  /// Per-region scores are cached and invalidated by new delta rows for the
  /// region or a change of scoring options.
  Result<BasicSearchResult> FinalizeSearch(const BasicSearchOptions& options);

  /// Persists an incremental state (model_io, "bellwether-state-v3");
  /// atomic tmp + rename.
  Status Save(const std::string& path) const;

  /// Reopens a saved incremental state against the recreated subset space.
  /// The stored fingerprint must match the one recomputed from the space,
  /// config, and mask (kFailedPrecondition otherwise — stale or foreign
  /// states never silently corrupt a build).
  static Result<std::unique_ptr<BellwetherState>> Open(
      const std::string& path, std::shared_ptr<const ItemSubsetSpace> subsets);

  /// Wire-format body (everything but the magic line); used by model_io.
  Status SerializeTo(std::ostream& out) const;
  static Result<std::unique_ptr<BellwetherState>> DeserializeFrom(
      std::istream& in, std::shared_ptr<const ItemSubsetSpace> subsets);

  /// Identity of this state: subset space shape, pick-relevant config, and
  /// item mask. Persisted and verified on Open.
  uint64_t fingerprint() const { return fingerprint_; }
  const Options& options() const { return options_; }
  int64_t num_significant_subsets() const {
    return static_cast<int64_t>(significant_.size());
  }
  int64_t num_regions() const { return static_cast<int64_t>(slots_.size()); }
  int64_t delta_batches() const { return delta_batches_; }
  /// Cube cells currently awaiting re-derivation.
  int64_t dirty_cells() const { return dirty_.count(); }

  /// Runtime knobs not covered by the fingerprint, settable after Open.
  void set_checkpoint_path(std::string path) {
    options_.config.checkpoint_path = std::move(path);
  }
  void set_exec(const exec::BellwetherExecOptions& exec) {
    options_.config.exec = exec;
  }

 private:
  /// Everything retained for one region: dense per-significant-subset
  /// packed suff-stats (default-constructed, arity 0, until first touched),
  /// their training errors, the concatenated delta rows (for CV and search
  /// scoring), and the cached search score.
  struct RegionSlot {
    std::vector<regression::RegressionSuffStats> stats;
    std::vector<double> errors;
    storage::RegionTrainingSet rows;
    RegionScore score;
    bool score_valid = false;
  };

  BellwetherState() = default;

  RegionSlot& SlotFor(olap::RegionId region, int32_t num_features);
  Status ValidateDeltaBatch(
      const std::vector<storage::RegionTrainingSet>& batch) const;
  internal::RegionRowsVisitor SlotRowsVisitor() const;
  Result<BellwetherCube> FinalizeOneShot();

  // ---- Immutable after Init ----
  std::shared_ptr<const ItemSubsetSpace> subsets_;
  Options options_;
  bool has_mask_ = false;
  std::vector<uint8_t> item_mask_;
  std::vector<int32_t> sizes_;            // per SubsetId
  std::vector<SubsetId> significant_;     // ascending
  std::vector<int64_t> sig_index_;        // SubsetId -> index into significant_
  std::vector<std::vector<int32_t>> containing_;  // item -> sig indices, asc
  uint64_t fingerprint_ = 0;
  Stopwatch build_watch_;

  // ---- Mutable algebraic state ----
  std::map<olap::RegionId, RegionSlot> slots_;  // ascending region order
  int32_t num_features_ = 0;  // 0 until the first non-empty set arrives
  olap::DirtySet dirty_;      // over SubsetId space
  std::vector<CubeCell> cell_cache_;  // per significant index
  bool finalized_once_ = false;
  int64_t delta_batches_ = 0;
  double delta_seconds_ = 0.0;
  uint64_t search_options_key_ = 0;

  // ---- One-shot scan state ----
  std::vector<internal::Pick> picks_;
  storage::TrainingDataSource* scan_source_ = nullptr;
  bool scanned_ = false;
  CubeBuildTelemetry telemetry_;
};

/// TrainingDataSink adapter over an incremental BellwetherState: producers
/// (e.g. streaming training-data generation) append region sets in the
/// usual ascending order and the sink folds them into the state as delta
/// batches of `sets_per_batch` regions. Finish() flushes the remainder and
/// returns an *empty* source — the rows live in the state, which is the
/// point: build once, then keep it fresh.
class StateDeltaSink final : public storage::TrainingDataSink {
 public:
  explicit StateDeltaSink(BellwetherState* state, size_t sets_per_batch = 64);

  Status Append(storage::RegionTrainingSet&& set) override;
  Result<std::unique_ptr<storage::TrainingDataSource>> Finish() override;

 private:
  Status Flush();

  BellwetherState* state_;
  size_t sets_per_batch_;
  std::vector<storage::RegionTrainingSet> buffer_;
  size_t buffered_bytes_ = 0;
};

}  // namespace bellwether::core

#endif  // BELLWETHER_CORE_BELLWETHER_STATE_H_
