#include "core/training_data_gen.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "exec/parallel.h"
#include "obs/logger.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"
#include "storage/arena.h"
#include "table/ops.h"

namespace bellwether::core {

namespace {

using olap::FkSetAgg;
using olap::NumericAgg;
using olap::RegionId;
using olap::RegionItemCube;
using storage::RegionTrainingSet;
using table::AggFn;
using table::DataType;
using table::Table;

Status ValidateSpec(const BellwetherSpec& spec) {
  if (spec.space == nullptr) return Status::InvalidArgument("spec.space");
  if (spec.fact == nullptr) return Status::InvalidArgument("spec.fact");
  if (spec.item_table == nullptr) {
    return Status::InvalidArgument("spec.item_table");
  }
  if (spec.cost == nullptr) return Status::InvalidArgument("spec.cost");
  if (spec.dimension_columns.size() != spec.space->num_dims()) {
    return Status::InvalidArgument(
        "dimension_columns arity must match the region space");
  }
  for (const auto& c : spec.dimension_columns) {
    if (!spec.fact->schema().FindField(c).has_value()) {
      return Status::NotFound("fact dimension column missing: " + c);
    }
  }
  if (!spec.fact->schema().FindField(spec.item_id_column).has_value()) {
    return Status::NotFound("fact item id column missing: " +
                            spec.item_id_column);
  }
  if (!spec.fact->schema().FindField(spec.target_column).has_value()) {
    return Status::NotFound("target column missing: " + spec.target_column);
  }
  if (!spec.item_table->schema()
           .FindField(spec.item_table_id_column)
           .has_value()) {
    return Status::NotFound("item table id column missing: " +
                            spec.item_table_id_column);
  }
  for (const auto& c : spec.item_feature_columns) {
    auto idx = spec.item_table->schema().FindField(c);
    if (!idx.has_value()) {
      return Status::NotFound("item feature column missing: " + c);
    }
    if (spec.item_table->schema().field(*idx).type == DataType::kString) {
      return Status::InvalidArgument(
          "item feature column must be numeric: " + c);
    }
  }
  for (const auto& q : spec.regional_features) {
    if (q.kind == FeatureQuery::Kind::kFactMeasure) {
      if (!spec.fact->schema().FindField(q.measure_column).has_value()) {
        return Status::NotFound("fact measure column missing: " +
                                q.measure_column);
      }
    } else {
      auto it = spec.references.find(q.reference);
      if (it == spec.references.end()) {
        return Status::NotFound("unknown reference table: " + q.reference);
      }
      if (!it->second.table->schema()
               .FindField(q.measure_column)
               .has_value()) {
        return Status::NotFound("reference measure column missing: " +
                                q.measure_column);
      }
      if (!spec.fact->schema().FindField(q.fk_column).has_value()) {
        return Status::NotFound("fact FK column missing: " + q.fk_column);
      }
    }
    if (q.kind == FeatureQuery::Kind::kFkDistinctMeasure &&
        q.fn == AggFn::kAvg) {
      // AVG over a key set is fine; nothing to reject. (kept for clarity)
    }
  }
  return Status::OK();
}

// Hash index over a reference table's primary key -> row.
Result<std::unordered_map<int64_t, size_t>> BuildKeyIndex(
    const Table& ref, const std::string& key_column) {
  auto idx = ref.schema().FindField(key_column);
  if (!idx.has_value()) {
    return Status::NotFound("reference key column missing: " + key_column);
  }
  const auto& col = ref.column(*idx);
  if (col.type() != DataType::kInt64) {
    return Status::InvalidArgument("reference keys must be int64: " +
                                   key_column);
  }
  std::unordered_map<int64_t, size_t> out;
  out.reserve(ref.num_rows() * 2);
  for (size_t r = 0; r < ref.num_rows(); ++r) {
    if (col.IsNull(r)) continue;
    if (!out.emplace(col.Int64At(r), r).second) {
      return Status::InvalidArgument("duplicate reference key");
    }
  }
  return out;
}

// Aggregates a set of reference measure values with fn.
double AggregateValues(AggFn fn, const std::vector<double>& vals) {
  if (fn == AggFn::kCount || fn == AggFn::kCountDistinct) {
    return static_cast<double>(vals.size());
  }
  if (vals.empty()) return 0.0;
  NumericAgg agg;
  for (double v : vals) agg.Add(v);
  auto r = agg.Finish(fn);
  return r.value_or(0.0);
}

// Columnar views over fact columns, decoded ONCE before the fill loop.
// The scan previously paid a virtual-shaped type switch (Column::NumericAt /
// Int64At) plus a std::vector<bool> bit probe per cell access per row; the
// views batch that down to a byte-mask load and a raw array load. Double
// columns are aliased zero-copy (null slots hold a 0.0 placeholder, see
// Column::AppendNull); int64 columns read numerically are widened in one
// contiguous pass.
struct NumericColumnView {
  std::vector<uint8_t> nulls;  // 1 = null
  std::vector<double> widened;
  const double* vals = nullptr;

  explicit NumericColumnView(const table::Column& col) {
    const size_t n = col.size();
    nulls.resize(n);
    for (size_t r = 0; r < n; ++r) nulls[r] = col.IsNull(r) ? 1 : 0;
    if (col.type() == DataType::kDouble) {
      vals = col.doubles().data();
    } else {
      BW_CHECK(col.type() == DataType::kInt64);
      widened.resize(n);
      const int64_t* src = col.ints().data();
      for (size_t r = 0; r < n; ++r) {
        widened[r] = static_cast<double>(src[r]);
      }
      vals = widened.data();
    }
  }
  bool IsNull(size_t r) const { return nulls[r] != 0; }
  double At(size_t r) const { return vals[r]; }
};

struct Int64ColumnView {
  std::vector<uint8_t> nulls;  // 1 = null
  const int64_t* vals = nullptr;

  explicit Int64ColumnView(const table::Column& col) {
    BW_CHECK(col.type() == DataType::kInt64);
    const size_t n = col.size();
    nulls.resize(n);
    for (size_t r = 0; r < n; ++r) nulls[r] = col.IsNull(r) ? 1 : 0;
    vals = col.ints().data();
  }
  bool IsNull(size_t r) const { return nulls[r] != 0; }
  int64_t At(size_t r) const { return vals[r]; }
};

// The §4.2 single-OLAP-query pipeline, decomposed into named stages that
// each carry their own trace span. All state accumulated across stages
// lives here; after FindFeasible() it is immutable, so EmitRegionSets can
// assemble region sets on pool workers and stream them into the sink in
// submission (= ascending RegionId) order.
class TrainingDataGenerator {
 public:
  explicit TrainingDataGenerator(const BellwetherSpec& spec)
      : spec_(spec),
        space_(*spec.space),
        fact_(*spec.fact),
        item_table_(*spec.item_table) {}

  Result<TrainingDataProfile> Run(storage::TrainingDataSink* sink) {
    BW_RETURN_IF_ERROR(ValidateSpec(spec_));
    profile_.feature_names = FeatureNames(spec_);
    BW_RETURN_IF_ERROR(BuildItemIndex());
    BW_RETURN_IF_ERROR(PrepareFeatures());
    BW_RETURN_IF_ERROR(ScanFactTable());
    RollupCubes();
    BW_RETURN_IF_ERROR(FinishTargets());
    ComputeCoverageAndCosts();
    FindFeasible();
    BW_RETURN_IF_ERROR(EmitRegionSets(sink));
    return std::move(profile_);
  }

 private:
  struct NumericFeature {
    size_t query_index;
    size_t value_col;                                  // column in fact
    const std::unordered_map<int64_t, size_t>* ref_index;  // null for fact
    const table::Column* ref_measure;                  // null for fact
    size_t fk_col;                                     // for reference kinds
    RegionItemCube<NumericAgg> cube;
  };
  struct FkFeature {
    size_t query_index;
    size_t fk_col;
    const std::unordered_map<int64_t, size_t>* ref_index;
    const table::Column* ref_measure;
    RegionItemCube<FkSetAgg> cube;
  };

  // ---- Stage: item dictionary and item-table features ----
  Status BuildItemIndex() {
    obs::TraceSpan span("BuildItemIndex", "datagen");
    const size_t item_id_col =
        item_table_.schema().FieldIndexOrDie(spec_.item_table_id_column);
    std::vector<size_t> item_feat_cols;
    for (const auto& c : spec_.item_feature_columns) {
      item_feat_cols.push_back(item_table_.schema().FieldIndexOrDie(c));
    }
    for (size_t r = 0; r < item_table_.num_rows(); ++r) {
      const auto& idc = item_table_.column(item_id_col);
      if (idc.IsNull(r)) continue;
      const int32_t dense = profile_.items.GetOrAdd(idc.Int64At(r));
      if (dense != static_cast<int32_t>(item_feats_.size())) {
        return Status::InvalidArgument("duplicate item id in item table");
      }
      std::vector<double> f(item_feat_cols.size(), 0.0);
      for (size_t k = 0; k < item_feat_cols.size(); ++k) {
        const auto& col = item_table_.column(item_feat_cols[k]);
        f[k] = col.IsNull(r) ? 0.0 : col.NumericAt(r);
      }
      item_feats_.push_back(std::move(f));
    }
    num_items_ = profile_.items.size();
    if (num_items_ == 0) {
      return Status::FailedPrecondition("item table has no items");
    }
    return Status::OK();
  }

  // ---- Stage: resolve fact columns, key indexes, per-feature cubes ----
  Status PrepareFeatures() {
    obs::TraceSpan span("PrepareFeatures", "datagen");
    fact_item_col_ = fact_.schema().FieldIndexOrDie(spec_.item_id_column);
    for (const auto& c : spec_.dimension_columns) {
      dim_cols_.push_back(fact_.schema().FieldIndexOrDie(c));
    }
    target_col_ = fact_.schema().FieldIndexOrDie(spec_.target_column);

    // Key indexes, one per distinct reference used.
    for (const auto& q : spec_.regional_features) {
      if (q.kind == FeatureQuery::Kind::kFactMeasure) continue;
      if (key_indexes_.count(q.reference)) continue;
      const auto& ref = spec_.references.at(q.reference);
      BW_ASSIGN_OR_RETURN(auto index,
                          BuildKeyIndex(*ref.table, ref.key_column));
      key_indexes_.emplace(q.reference, std::move(index));
    }

    for (size_t qi = 0; qi < spec_.regional_features.size(); ++qi) {
      const auto& q = spec_.regional_features[qi];
      if (q.kind == FeatureQuery::Kind::kFactMeasure) {
        numeric_features_.push_back(
            {qi, fact_.schema().FieldIndexOrDie(q.measure_column), nullptr,
             nullptr, 0, RegionItemCube<NumericAgg>(&space_, num_items_)});
      } else {
        const auto& ref = spec_.references.at(q.reference);
        const table::Column* measure =
            &ref.table->ColumnByName(q.measure_column);
        const size_t fk = fact_.schema().FieldIndexOrDie(q.fk_column);
        if (q.kind == FeatureQuery::Kind::kReferenceMeasure) {
          numeric_features_.push_back(
              {qi, 0, &key_indexes_.at(q.reference), measure, fk,
               RegionItemCube<NumericAgg>(&space_, num_items_)});
        } else {
          fk_features_.push_back({qi, fk, &key_indexes_.at(q.reference),
                                  measure,
                                  RegionItemCube<FkSetAgg>(&space_,
                                                           num_items_)});
        }
      }
    }
    count_cube_.emplace(&space_, num_items_);
    target_agg_.assign(num_items_, NumericAgg{});
    return Status::OK();
  }

  // ---- Stage: single pass over the fact table, with row quarantine ----
  Status ScanFactTable() {
    obs::TraceSpan span("FactTableScan", "datagen");
    obs::DefaultMetrics()
        .GetCounter(obs::kMDatagenFactRowsScanned)
        ->Increment(static_cast<int64_t>(fact_.num_rows()));
    obs::Counter* quarantined_counter =
        obs::DefaultMetrics().GetCounter(obs::kMDatagenRowsQuarantined);

    // Decode every column the fill loop touches into a columnar batch view
    // up front (one pass per column) instead of paying the per-row type
    // switch inside the hot loop.
    const NumericColumnView target_view(fact_.column(target_col_));
    const Int64ColumnView item_view(fact_.column(fact_item_col_));
    std::vector<Int64ColumnView> dim_views;
    dim_views.reserve(dim_cols_.size());
    for (size_t c : dim_cols_) dim_views.emplace_back(fact_.column(c));
    // Parallel to numeric_features_: the measure view for fact-measure
    // features, the FK view for reference-measure features.
    std::vector<std::optional<NumericColumnView>> measure_views(
        numeric_features_.size());
    std::vector<std::optional<Int64ColumnView>> nf_fk_views(
        numeric_features_.size());
    for (size_t k = 0; k < numeric_features_.size(); ++k) {
      if (numeric_features_[k].ref_index == nullptr) {
        measure_views[k].emplace(
            fact_.column(numeric_features_[k].value_col));
      } else {
        nf_fk_views[k].emplace(fact_.column(numeric_features_[k].fk_col));
      }
    }
    std::vector<Int64ColumnView> ff_fk_views;
    ff_fk_views.reserve(fk_features_.size());
    for (const auto& ff : fk_features_) {
      ff_fk_views.emplace_back(fact_.column(ff.fk_col));
    }

    olap::PointCoords point(space_.num_dims());
    for (size_t r = 0; r < fact_.num_rows(); ++r) {
      ++profile_.row_quarantine.rows_seen;
      // Row validation happens before any accumulation, so a quarantined
      // row contributes to no aggregate. On clean data no check fires and
      // the generated training data is bit-identical to the unhardened
      // path. Fault injection stays per-row, in row order.
      Status row_st = Status::OK();
      if (robust::ShouldCorrupt(robust::kFaultDatagenRow)) {
        row_st = Status::InvalidArgument("injected corrupt row");
      } else if (!target_view.IsNull(r) &&
                 !std::isfinite(target_view.At(r))) {
        row_st = Status::InvalidArgument("non-finite target value");
      } else {
        for (size_t k = 0; k < numeric_features_.size(); ++k) {
          if (numeric_features_[k].ref_index != nullptr) continue;
          const NumericColumnView& mv = *measure_views[k];
          if (!mv.IsNull(r) && !std::isfinite(mv.At(r))) {
            row_st = Status::InvalidArgument(
                "non-finite measure in column '" +
                fact_.schema().field(numeric_features_[k].value_col).name +
                "'");
            break;
          }
        }
      }
      if (!row_st.ok()) {
        const std::string context =
            "fact row " + std::to_string(r) + ": " + row_st.message();
        if (spec_.row_policy == robust::RowErrorPolicy::kStrict) {
          return Status(row_st.code(), context);
        }
        profile_.row_quarantine.Quarantine(context);
        quarantined_counter->Increment();
        BW_LOG(obs::LogLevel::kWarn, "datagen") << "quarantined " << context;
        continue;
      }
      if (item_view.IsNull(r)) continue;
      const int32_t item = profile_.items.Find(item_view.At(r));
      if (item < 0) continue;  // transaction of an item outside I
      bool coords_ok = true;
      for (size_t d = 0; d < dim_views.size(); ++d) {
        if (dim_views[d].IsNull(r)) {
          coords_ok = false;
          break;
        }
        point[d] = static_cast<int32_t>(dim_views[d].At(r));
      }
      if (!coords_ok) continue;
      // Target accumulates over the whole space.
      if (!target_view.IsNull(r)) {
        target_agg_[item].Add(target_view.At(r));
      }
      // The base-cell region id is the same for every cube; encode once per
      // row instead of once per cube per row.
      const RegionId base = space_.Encode(space_.BaseCellOf(point));
      count_cube_->Cell(base, item).Add(1.0);
      for (size_t k = 0; k < numeric_features_.size(); ++k) {
        auto& nf = numeric_features_[k];
        if (nf.ref_index == nullptr) {
          const NumericColumnView& mv = *measure_views[k];
          if (!mv.IsNull(r)) {
            nf.cube.Cell(base, item).Add(mv.At(r));
          }
        } else {
          const Int64ColumnView& fkv = *nf_fk_views[k];
          if (fkv.IsNull(r)) continue;
          auto it = nf.ref_index->find(fkv.At(r));
          if (it == nf.ref_index->end() ||
              nf.ref_measure->IsNull(it->second)) {
            continue;
          }
          nf.cube.Cell(base, item).Add(nf.ref_measure->NumericAt(it->second));
        }
      }
      for (size_t k = 0; k < fk_features_.size(); ++k) {
        const Int64ColumnView& fkv = ff_fk_views[k];
        if (fkv.IsNull(r)) continue;
        const int64_t fk = fkv.At(r);
        if (fk_features_[k].ref_index->count(fk) == 0) continue;
        fk_features_[k].cube.Cell(base, item).Add(fk);
      }
    }
    return Status::OK();
  }

  // ---- Stage: CUBE rollups ----
  void RollupCubes() {
    obs::TraceSpan span("CubeRollup", "datagen");
    count_cube_->Rollup();
    for (auto& nf : numeric_features_) nf.cube.Rollup();
    for (auto& ff : fk_features_) ff.cube.Rollup();
  }

  // ---- Stage: per-item targets ----
  Status FinishTargets() {
    obs::TraceSpan span("FinishTargets", "datagen");
    profile_.targets.assign(num_items_,
                            std::numeric_limits<double>::quiet_NaN());
    for (int32_t i = 0; i < num_items_; ++i) {
      auto v = target_agg_[i].Finish(spec_.target_fn);
      if (v.has_value()) {
        profile_.targets[i] = *v;
        ++num_valid_items_;
      }
    }
    if (num_valid_items_ == 0) {
      return Status::FailedPrecondition("no item has a target value");
    }
    return Status::OK();
  }

  // ---- Stage: coverage and costs ----
  void ComputeCoverageAndCosts() {
    obs::TraceSpan span("CoverageAndCosts", "datagen");
    profile_.region_costs = spec_.cost->region_costs();
    profile_.region_coverage.assign(space_.NumRegions(), 0.0);
    for (RegionId reg = 0; reg < space_.NumRegions(); ++reg) {
      int64_t covered = 0;
      for (int32_t i = 0; i < num_items_; ++i) {
        if (std::isnan(profile_.targets[i])) continue;
        if (count_cube_->Cell(reg, i).count > 0) ++covered;
      }
      profile_.region_coverage[reg] = static_cast<double>(covered) /
                                      static_cast<double>(num_valid_items_);
    }
  }

  // ---- Stage: feasible regions (iceberg) ----
  void FindFeasible() {
    obs::TraceSpan span("FindFeasibleRegions", "datagen");
    profile_.feasible = olap::FindFeasibleRegionsPruned(
        space_, profile_.region_costs, profile_.region_coverage,
        spec_.budget, spec_.min_coverage);
    obs::DefaultMetrics()
        .GetCounter(obs::kMSearchRegionsPrunedCost)
        ->Increment(profile_.feasible.pruned_by_cost);
    obs::DefaultMetrics()
        .GetCounter(obs::kMSearchRegionsPrunedCoverage)
        ->Increment(profile_.feasible.pruned_by_coverage);
  }

  // Assembles one region's training set from the rolled-up cubes. Reads
  // only state frozen before emission starts, so it is safe to run on pool
  // workers.
  RegionTrainingSet BuildRegionSet(RegionId reg) const {
    const int32_t p = static_cast<int32_t>(profile_.feature_names.size());
    // Shells come from the arena (the spill sinks recycle them after the
    // write), so steady-state emission does no buffer allocation at all.
    RegionTrainingSet set = storage::RegionSetArena::Default().Acquire();
    set.region = reg;
    set.num_features = p;
    // Exact reserves: count the region's rows first so a cold shell sizes
    // each buffer exactly once instead of growing geometrically.
    size_t rows = 0;
    for (int32_t i = 0; i < num_items_; ++i) {
      if (std::isnan(profile_.targets[i])) continue;
      if (count_cube_->Cell(reg, i).count > 0) ++rows;
    }
    set.items.reserve(rows);
    set.targets.reserve(rows);
    if (spec_.weight_by_support) set.weights.reserve(rows);
    set.features.reserve(rows * static_cast<size_t>(p));
    std::vector<double> fk_vals;  // per-call scratch
    for (int32_t i = 0; i < num_items_; ++i) {
      if (std::isnan(profile_.targets[i])) continue;
      if (count_cube_->Cell(reg, i).count == 0) continue;  // i not in I_r
      set.items.push_back(i);
      set.targets.push_back(profile_.targets[i]);
      if (spec_.weight_by_support) {
        set.weights.push_back(
            static_cast<double>(count_cube_->Cell(reg, i).count));
      }
      set.features.push_back(1.0);  // intercept
      for (double f : item_feats_[i]) set.features.push_back(f);
      // Regional features, in query order.
      size_t nf_i = 0, ff_i = 0;
      for (size_t qi = 0; qi < spec_.regional_features.size(); ++qi) {
        const auto& q = spec_.regional_features[qi];
        if (q.kind == FeatureQuery::Kind::kFkDistinctMeasure) {
          const auto& ff = fk_features_[ff_i++];
          const auto& cell = ff.cube.Cell(reg, i);
          fk_vals.clear();
          for (int64_t fk : cell.keys) {
            auto it = ff.ref_index->find(fk);
            BW_DCHECK(it != ff.ref_index->end());
            if (!ff.ref_measure->IsNull(it->second)) {
              fk_vals.push_back(ff.ref_measure->NumericAt(it->second));
            }
          }
          set.features.push_back(AggregateValues(q.fn, fk_vals));
        } else {
          const auto& nf = numeric_features_[nf_i++];
          const auto v = nf.cube.Cell(reg, i).Finish(q.fn);
          set.features.push_back(v.value_or(0.0));
        }
      }
    }
    return set;
  }

  // ---- Stage: stream every feasible region's set into the sink ----
  Status EmitRegionSets(storage::TrainingDataSink* sink) {
    obs::TraceSpan span("EmitRegionSets", "datagen");
    const int32_t num_threads =
        exec::ResolveNumThreads(spec_.exec.num_threads);
    std::unique_ptr<exec::ThreadPool> pool;
    if (num_threads > 1) pool = std::make_unique<exec::ThreadPool>(num_threads);
    int64_t rows_emitted = 0;
    {
      // Sets are appended to the sink strictly in submission order — the
      // ascending RegionId order of feasible.regions — so the emitted
      // stream is bit-identical to the serial loop at any thread count.
      exec::MergeInSubmissionOrder<RegionTrainingSet> reducer(
          pool.get(), /*max_outstanding=*/4 * static_cast<size_t>(num_threads),
          "datagen.emit_batch",
          [&](size_t, RegionTrainingSet set) -> Status {
            rows_emitted += static_cast<int64_t>(set.num_examples());
            return sink->Append(std::move(set));
          });
      for (RegionId reg : profile_.feasible.regions) {
        BW_RETURN_IF_ERROR(
            reducer.Submit([this, reg] { return BuildRegionSet(reg); }));
      }
      BW_RETURN_IF_ERROR(reducer.Finish());
    }
    obs::DefaultMetrics()
        .GetCounter(obs::kMDatagenRegionSetsEmitted)
        ->Increment(static_cast<int64_t>(profile_.feasible.regions.size()));
    obs::DefaultMetrics()
        .GetCounter(obs::kMDatagenTrainingRowsEmitted)
        ->Increment(rows_emitted);
    BW_LOG(obs::LogLevel::kInfo, "datagen")
        .Field("fact_rows", fact_.num_rows())
        .Field("feasible_regions", profile_.feasible.regions.size())
        .Field("pruned_by_cost", profile_.feasible.pruned_by_cost)
        .Field("pruned_by_coverage", profile_.feasible.pruned_by_coverage)
        .Field("training_rows", rows_emitted)
        << "training data generated";
    return Status::OK();
  }

  const BellwetherSpec& spec_;
  const olap::RegionSpace& space_;
  const Table& fact_;
  const Table& item_table_;

  TrainingDataProfile profile_;
  std::vector<std::vector<double>> item_feats_;  // dense index -> features
  int32_t num_items_ = 0;
  int64_t num_valid_items_ = 0;

  size_t fact_item_col_ = 0;
  std::vector<size_t> dim_cols_;
  size_t target_col_ = 0;

  std::unordered_map<std::string, std::unordered_map<int64_t, size_t>>
      key_indexes_;
  std::vector<NumericFeature> numeric_features_;
  std::vector<FkFeature> fk_features_;
  std::optional<RegionItemCube<NumericAgg>> count_cube_;
  std::vector<NumericAgg> target_agg_;
};

}  // namespace

std::vector<std::string> FeatureNames(const BellwetherSpec& spec) {
  std::vector<std::string> names;
  names.reserve(1 + spec.item_feature_columns.size() +
                spec.regional_features.size());
  names.push_back("(intercept)");
  for (const auto& c : spec.item_feature_columns) names.push_back(c);
  for (const auto& q : spec.regional_features) names.push_back(q.name);
  return names;
}

int64_t TrainingDataProfile::FindSet(olap::RegionId region) const {
  // Sets are emitted 1:1 with feasible.regions, which FindFeasibleRegions
  // produces in ascending RegionId order (the invariant every sink enforces
  // at Finish time).
  const auto& regs = feasible.regions;
  const auto it = std::lower_bound(regs.begin(), regs.end(), region);
  if (it == regs.end() || *it != region) return -1;
  return static_cast<int64_t>(it - regs.begin());
}

const std::vector<storage::RegionTrainingSet>*
GeneratedTrainingData::memory_sets() const {
  const auto* mem =
      dynamic_cast<const storage::MemoryTrainingData*>(source.get());
  return mem == nullptr ? nullptr : &mem->sets();
}

Result<TrainingDataProfile> GenerateTrainingData(
    const BellwetherSpec& spec, storage::TrainingDataSink* sink) {
  obs::TraceSpan span("GenerateTrainingData", "datagen");
  if (sink == nullptr) {
    return Status::InvalidArgument("GenerateTrainingData: sink is null");
  }
  TrainingDataGenerator generator(spec);
  return generator.Run(sink);
}

Result<GeneratedTrainingData> GenerateTrainingDataInMemory(
    const BellwetherSpec& spec) {
  storage::MemorySink sink;
  BW_ASSIGN_OR_RETURN(TrainingDataProfile profile,
                      GenerateTrainingData(spec, &sink));
  BW_ASSIGN_OR_RETURN(auto source, sink.Finish());
  GeneratedTrainingData out;
  out.profile = std::move(profile);
  out.source = std::move(source);
  return out;
}

namespace {

// Shared tail of the naive per-region and per-cell-set generators: given the
// region-restricted fact rows, evaluate the original-form feature queries
// with plain relational operators and assemble the training set.
Result<RegionTrainingSet> BuildFromFilteredFact(const BellwetherSpec& spec,
                                                const Table& filtered,
                                                RegionId region) {
  const Table& fact = *spec.fact;
  const Table& item_table = *spec.item_table;

  // Item dictionary in item-table order (matches GenerateTrainingData).
  olap::ItemDictionary items;
  const size_t item_id_col =
      item_table.schema().FieldIndexOrDie(spec.item_table_id_column);
  for (size_t r = 0; r < item_table.num_rows(); ++r) {
    if (item_table.column(item_id_col).IsNull(r)) continue;
    items.GetOrAdd(item_table.column(item_id_col).Int64At(r));
  }

  // Targets: aggregate the whole fact table per item.
  BW_ASSIGN_OR_RETURN(
      Table targets_tbl,
      table::GroupByAggregate(fact, {spec.item_id_column},
                              {{spec.target_fn, spec.target_column, "__y"}}));
  std::unordered_map<int64_t, double> target_of;
  for (size_t r = 0; r < targets_tbl.num_rows(); ++r) {
    const auto id = targets_tbl.ValueAt(r, 0);
    const auto y = targets_tbl.ValueAt(r, 1);
    if (id.is_null() || y.is_null()) continue;
    target_of[id.int64()] = y.AsDouble();
  }

  // Per-feature per-item values via the original query forms.
  std::vector<std::unordered_map<int64_t, double>> feature_of(
      spec.regional_features.size());
  for (size_t qi = 0; qi < spec.regional_features.size(); ++qi) {
    const auto& q = spec.regional_features[qi];
    Table result;
    if (q.kind == FeatureQuery::Kind::kFactMeasure) {
      BW_ASSIGN_OR_RETURN(
          result, table::GroupByAggregate(filtered, {spec.item_id_column},
                                          {{q.fn, q.measure_column, "__f"}}));
    } else {
      const auto it = spec.references.find(q.reference);
      if (it == spec.references.end()) {
        return Status::NotFound("unknown reference table: " + q.reference);
      }
      Table join_input = filtered;
      if (q.kind == FeatureQuery::Kind::kFkDistinctMeasure) {
        BW_ASSIGN_OR_RETURN(join_input,
                            table::ProjectDistinct(
                                filtered, {spec.item_id_column, q.fk_column}));
      }
      BW_ASSIGN_OR_RETURN(
          Table joined,
          table::KeyForeignKeyJoin(join_input, q.fk_column,
                                   *it->second.table, it->second.key_column));
      // The joined measure column may have been renamed on collision.
      std::string measure = q.measure_column;
      if (!joined.schema().FindField(measure).has_value()) {
        measure = it->second.key_column + "." + q.measure_column;
      }
      BW_ASSIGN_OR_RETURN(
          result, table::GroupByAggregate(joined, {spec.item_id_column},
                                          {{q.fn, measure, "__f"}}));
    }
    for (size_t r = 0; r < result.num_rows(); ++r) {
      const auto id = result.ValueAt(r, 0);
      const auto v = result.ValueAt(r, 1);
      if (id.is_null()) continue;
      feature_of[qi][id.int64()] = v.is_null() ? 0.0 : v.AsDouble();
    }
  }

  // Items with data in the region, with their row counts (the WLS support
  // weights when spec.weight_by_support).
  BW_ASSIGN_OR_RETURN(
      Table region_items,
      table::GroupByAggregate(filtered, {spec.item_id_column},
                              {{table::AggFn::kCount, spec.item_id_column,
                                "__n"}}));
  std::unordered_map<int64_t, int64_t> in_region;
  for (size_t r = 0; r < region_items.num_rows(); ++r) {
    if (!region_items.ValueAt(r, 0).is_null()) {
      in_region[region_items.ValueAt(r, 0).int64()] =
          region_items.ValueAt(r, 1).int64();
    }
  }

  // Item features.
  std::vector<size_t> item_feat_cols;
  for (const auto& c : spec.item_feature_columns) {
    item_feat_cols.push_back(item_table.schema().FieldIndexOrDie(c));
  }

  RegionTrainingSet set;
  set.region = region;
  set.num_features = static_cast<int32_t>(1 + item_feat_cols.size() +
                                          spec.regional_features.size());
  for (size_t r = 0; r < item_table.num_rows(); ++r) {
    if (item_table.column(item_id_col).IsNull(r)) continue;
    const int64_t id = item_table.column(item_id_col).Int64At(r);
    const auto reg_it = in_region.find(id);
    if (reg_it == in_region.end()) continue;
    auto t = target_of.find(id);
    if (t == target_of.end()) continue;
    set.items.push_back(items.Find(id));
    set.targets.push_back(t->second);
    if (spec.weight_by_support) {
      set.weights.push_back(static_cast<double>(reg_it->second));
    }
    set.features.push_back(1.0);
    for (size_t c : item_feat_cols) {
      const auto& col = item_table.column(c);
      set.features.push_back(col.IsNull(r) ? 0.0 : col.NumericAt(r));
    }
    for (size_t qi = 0; qi < spec.regional_features.size(); ++qi) {
      auto f = feature_of[qi].find(id);
      set.features.push_back(f == feature_of[qi].end() ? 0.0 : f->second);
    }
  }
  return set;
}

}  // namespace

Result<RegionTrainingSet> GenerateRegionTrainingSetNaive(
    const BellwetherSpec& spec, olap::RegionId region) {
  BW_RETURN_IF_ERROR(ValidateSpec(spec));
  std::vector<size_t> dim_cols;
  for (const auto& c : spec.dimension_columns) {
    dim_cols.push_back(spec.fact->schema().FieldIndexOrDie(c));
  }
  const olap::RegionSpace& space = *spec.space;
  olap::PointCoords point(space.num_dims());
  const Table filtered = table::Select(
      *spec.fact, [&](const Table& t, size_t row) {
        for (size_t d = 0; d < dim_cols.size(); ++d) {
          const auto& col = t.column(dim_cols[d]);
          if (col.IsNull(row)) return false;
          point[d] = static_cast<int32_t>(col.Int64At(row));
        }
        return space.RegionContainsPoint(region, point);
      });
  return BuildFromFilteredFact(spec, filtered, region);
}

Result<RegionTrainingSet> GenerateCellSetTrainingSet(
    const BellwetherSpec& spec, const std::vector<int64_t>& finest_cells) {
  BW_RETURN_IF_ERROR(ValidateSpec(spec));
  std::unordered_set<int64_t> cells(finest_cells.begin(), finest_cells.end());
  std::vector<size_t> dim_cols;
  for (const auto& c : spec.dimension_columns) {
    dim_cols.push_back(spec.fact->schema().FieldIndexOrDie(c));
  }
  const olap::RegionSpace& space = *spec.space;
  olap::PointCoords point(space.num_dims());
  const Table filtered = table::Select(
      *spec.fact, [&](const Table& t, size_t row) {
        for (size_t d = 0; d < dim_cols.size(); ++d) {
          const auto& col = t.column(dim_cols[d]);
          if (col.IsNull(row)) return false;
          point[d] = static_cast<int32_t>(col.Int64At(row));
        }
        return cells.count(space.FinestCellOf(point)) > 0;
      });
  return BuildFromFilteredFact(spec, filtered, olap::kInvalidRegion);
}

}  // namespace bellwether::core
