#ifndef BELLWETHER_CORE_SEARCH_INTERNAL_H_
#define BELLWETHER_CORE_SEARCH_INTERNAL_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/basic_search.h"
#include "storage/training_data.h"

/// Shared internals of the basic bellwether search, used both by
/// RunBasicBellwetherSearch (one sequential scan over a source) and by
/// BellwetherState::FinalizeSearch (scoring over retained in-memory rows
/// with per-region score caching). Keeping scoring, refitting, and report
/// construction in one place is what makes the two paths produce identical
/// results over identical rows. Not part of the public API.
namespace bellwether::core::internal {

/// Scores one region's training set; sets `score->usable`. Deterministic
/// given (rows, options): the RNG is seeded by RegionSeed(seed, region), so
/// the score does not depend on evaluation order.
void ScoreRegion(const storage::RegionTrainingSet& set,
                 const BasicSearchOptions& options,
                 const std::vector<uint8_t>* item_mask, RegionScore* score);

/// Refits the winning model from its training set through the graceful-
/// degradation chain and records the degradation tier in the result
/// telemetry. A healthy fit is bit-identical to the historical
/// FitLeastSquares path.
Status RefitModelFromSet(const storage::RegionTrainingSet& set,
                         const std::vector<uint8_t>* item_mask,
                         BasicSearchResult* result);

/// Fills the flight-recorder document on a finished search result. The
/// config section deliberately omits options.exec.num_threads: logical
/// sections (and the fingerprint) must match between serial and parallel
/// runs of the same search.
void FillSearchReport(std::string_view name, const BasicSearchOptions& options,
                      BasicSearchResult* result);

}  // namespace bellwether::core::internal

#endif  // BELLWETHER_CORE_SEARCH_INTERNAL_H_
