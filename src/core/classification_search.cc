#include "core/classification_search.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/random.h"
#include "core/eval_util.h"

namespace bellwether::core {

namespace {

// Labeled dataset of one region training set (masked items skipped).
classify::LabeledDataset ToLabeled(
    const storage::RegionTrainingSet& set,
    const std::function<int32_t(double)>& labeler,
    const std::vector<uint8_t>* item_mask) {
  classify::LabeledDataset data;
  data.num_features = set.num_features;
  std::vector<double> row(set.num_features);
  for (size_t i = 0; i < set.num_examples(); ++i) {
    const int32_t item = set.items[i];
    if (item_mask != nullptr &&
        (static_cast<size_t>(item) >= item_mask->size() ||
         (*item_mask)[item] == 0)) {
      continue;
    }
    row.assign(set.row(i), set.row(i) + set.num_features);
    data.Add(row, labeler(set.targets[i]));
  }
  return data;
}

}  // namespace

double ClassificationSearchResult::AverageError() const {
  double sum = 0.0;
  int64_t n = 0;
  for (const auto& s : scores) {
    if (!s.usable) continue;
    sum += s.error.rmse;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

Result<ClassificationSearchResult> RunClassificationBellwetherSearch(
    storage::TrainingDataSource* source, const ClassificationOptions& options,
    const std::vector<uint8_t>* item_mask) {
  if (!options.labeler) {
    return Status::InvalidArgument("classification search needs a labeler");
  }
  if (options.num_classes < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }
  ClassificationSearchResult result;
  size_t index = 0;
  BW_RETURN_IF_ERROR(source->Scan([&](const storage::RegionTrainingSet& set)
                                      -> Status {
    ClassificationRegionScore score;
    score.region = set.region;
    const classify::LabeledDataset data =
        ToLabeled(set, options.labeler, item_mask);
    score.num_examples = data.num_examples();
    if (data.num_examples() >=
        static_cast<size_t>(std::max(options.min_examples, 2))) {
      Rng rng(RegionSeed(options.seed, set.region));
      auto err = options.cv_folds > 1
                     ? classify::CrossValidateNb(data, options.num_classes,
                                                 options.cv_folds, &rng)
                     : classify::TrainingErrorNb(data, options.num_classes);
      if (err.ok()) {
        score.error = *err;
        score.usable = true;
      }
    }
    result.scores.push_back(score);
    ++index;
    return Status::OK();
  }));

  double best = std::numeric_limits<double>::infinity();
  size_t best_index = 0;
  for (size_t i = 0; i < result.scores.size(); ++i) {
    const auto& s = result.scores[i];
    if (s.usable && s.error.rmse < best) {
      best = s.error.rmse;
      result.bellwether = s.region;
      result.error = s.error;
      best_index = i;
    }
  }
  if (result.found()) {
    BW_ASSIGN_OR_RETURN(storage::RegionTrainingSet set,
                        source->Read(best_index));
    const classify::LabeledDataset data =
        ToLabeled(set, options.labeler, item_mask);
    classify::NbSuffStats stats(data.num_features, options.num_classes);
    for (size_t i = 0; i < data.num_examples(); ++i) {
      stats.Add(data.row(i), data.y[i]);
    }
    BW_ASSIGN_OR_RETURN(result.model, stats.Fit());
  }
  return result;
}

std::function<int32_t(double)> ThresholdLabeler(double threshold) {
  return [threshold](double target) { return target > threshold ? 1 : 0; };
}

double MedianTarget(const std::vector<double>& targets) {
  std::vector<double> finite;
  for (double t : targets) {
    if (std::isfinite(t)) finite.push_back(t);
  }
  if (finite.empty()) return 0.0;
  std::sort(finite.begin(), finite.end());
  const size_t n = finite.size();
  return n % 2 == 1 ? finite[n / 2]
                    : 0.5 * (finite[n / 2 - 1] + finite[n / 2]);
}

}  // namespace bellwether::core
