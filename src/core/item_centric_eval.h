#ifndef BELLWETHER_CORE_ITEM_CENTRIC_EVAL_H_
#define BELLWETHER_CORE_ITEM_CENTRIC_EVAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/basic_search.h"
#include "core/bellwether_cube.h"
#include "core/bellwether_tree.h"
#include "storage/training_data.h"
#include "table/table.h"

namespace bellwether::core {

/// Inputs of the item-centric comparison of §7 (Figs. 8, 9(c), 10): the
/// materialized training sets of the feasible regions, per-item targets, and
/// the item-table structures the tree/cube partition on.
struct ItemCentricInput {
  const std::vector<storage::RegionTrainingSet>* sets = nullptr;
  /// Target per dense item; NaN items are excluded from the evaluation.
  const std::vector<double>* targets = nullptr;
  const table::Table* item_table = nullptr;
  /// Item hierarchies for the cube method; null skips the cube.
  std::shared_ptr<const ItemSubsetSpace> subsets;
};

struct ItemCentricOptions {
  /// Item folds of the outer cross-validation ("10-fold cross-validation
  /// prediction errors", §7.1).
  int32_t folds = 10;
  uint64_t seed = 17;
  TreeBuildConfig tree;
  CubeBuildConfig cube;
  BasicSearchOptions basic;
  /// Confidence level of the cube's prediction rule.
  double cube_confidence = 0.95;
  bool run_tree = true;
  bool run_cube = true;
};

/// Prediction quality of one method over the held-out items.
struct MethodResult {
  double rmse = 0.0;
  int64_t predicted = 0;  // held-out items the method could predict
  int64_t missed = 0;     // items with no data in the chosen region
};

struct ItemCentricResult {
  MethodResult basic;
  MethodResult tree;
  MethodResult cube;
};

/// Runs the outer item-level cross-validation: for each fold, builds the
/// basic bellwether model, the bellwether tree (RainForest builder) and the
/// bellwether cube (optimized builder) on the training items, then predicts
/// the target of every held-out item and accumulates squared errors.
Result<ItemCentricResult> EvaluateItemCentric(const ItemCentricInput& input,
                                              const ItemCentricOptions& opts);

/// Region training sets whose region cost is within the budget; used by the
/// budget sweeps of Figs. 8 and 9(c).
std::vector<storage::RegionTrainingSet> FilterSetsByBudget(
    const std::vector<storage::RegionTrainingSet>& sets,
    const std::vector<double>& region_costs, double budget);

}  // namespace bellwether::core

#endif  // BELLWETHER_CORE_ITEM_CENTRIC_EVAL_H_
