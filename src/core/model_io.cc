#include "core/model_io.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "core/bellwether_state.h"

namespace bellwether::core {

namespace {

constexpr const char* kLinearMagic = "bellwether-linear-v1";
constexpr const char* kTreeMagic = "bellwether-tree-v2";
constexpr const char* kCubeMagic = "bellwether-cube-v2";
constexpr const char* kStateMagic = "bellwether-state-v3";

// Sanity bound on serialized counts (vector lengths, node/cell counts): a
// corrupt or hostile length field must fail cleanly, not turn into a
// multi-gigabyte allocation.
constexpr int64_t kMaxCount = int64_t{1} << 26;

// Doubles round-trip exactly through %.17g. "inf"/"-inf"/"nan" occur in
// legitimate files (degraded cube cells carry error = +inf), and istream's
// operator>> rejects them (LWG 2381), so reads go through strtod.
void WriteDouble(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

Status ReadDouble(std::istream& in, double* v) {
  std::string tok;
  if (!(in >> tok)) return Status::IoError("truncated value (double)");
  errno = 0;
  char* end = nullptr;
  *v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0') {
    return Status::IoError("bad double: '" + tok + "'");
  }
  return Status::OK();
}

void WriteVector(std::ostream& out, const std::vector<double>& v) {
  out << v.size();
  for (double x : v) {
    out << ' ';
    WriteDouble(out, x);
  }
  out << '\n';
}

Result<std::vector<double>> ReadVector(std::istream& in) {
  int64_t n = 0;
  if (!(in >> n)) return Status::IoError("expected vector length");
  if (n < 0 || n > kMaxCount) {
    return Status::IoError("implausible vector length");
  }
  std::vector<double> v(n);
  for (int64_t i = 0; i < n; ++i) {
    BW_RETURN_IF_ERROR(ReadDouble(in, &v[i]));
  }
  return v;
}

Result<regression::FitDegradation> ReadDegradation(std::istream& in) {
  int d = 0;
  if (!(in >> d)) return Status::IoError("truncated degradation tag");
  if (d < 0 || d > static_cast<int>(regression::FitDegradation::kMeanFallback)) {
    return Status::IoError("unknown degradation tag");
  }
  return static_cast<regression::FitDegradation>(d);
}

Result<std::ofstream> OpenForWrite(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot write " + path + ": " +
                           std::strerror(errno));
  }
  return out;
}

// Distinguishes "a bellwether artifact of the wrong kind or version"
// (kFailedPrecondition — the caller picked the wrong loader or the file
// predates the current format) from "not one of our files at all"
// (kInvalidArgument).
Status CheckMagic(std::istream& in, const char* magic,
                  const std::string& path) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError(path + ": empty file, expected " +
                           std::string(magic));
  }
  if (line == magic) return Status::OK();
  if (line.rfind("bellwether-", 0) == 0) {
    return Status::FailedPrecondition(path + ": format '" + line +
                                      "' does not match expected '" + magic +
                                      "'");
  }
  return Status::InvalidArgument(path + ": not a " + magic + " file");
}

}  // namespace

Status SaveLinearModel(const regression::LinearModel& model,
                       olap::RegionId region, const std::string& path) {
  BW_ASSIGN_OR_RETURN(std::ofstream out, OpenForWrite(path));
  out << kLinearMagic << '\n' << region << '\n';
  WriteVector(out, model.beta());
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<LoadedLinearModel> LoadLinearModel(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read " + path);
  BW_RETURN_IF_ERROR(CheckMagic(in, kLinearMagic, path));
  LoadedLinearModel out;
  int64_t region = 0;
  if (!(in >> region)) return Status::IoError("missing region id");
  out.region = region;
  BW_ASSIGN_OR_RETURN(std::vector<double> beta, ReadVector(in));
  out.model = regression::LinearModel(std::move(beta));
  return out;
}

Status SaveBellwetherTree(const BellwetherTree& tree,
                          const std::string& path) {
  BW_ASSIGN_OR_RETURN(std::ofstream out, OpenForWrite(path));
  out << kTreeMagic << '\n';
  // Split-column names, for validation at load time.
  const ItemSplitFeatures& feats = tree.features();
  out << feats.num_columns() << '\n';
  for (size_t c = 0; c < feats.num_columns(); ++c) {
    out << feats.ColumnName(c) << '\n';
  }
  out << tree.nodes().size() << '\n';
  for (const TreeNode& n : tree.nodes()) {
    out << n.depth << ' ' << n.num_items << ' ' << (n.has_model ? 1 : 0)
        << ' ' << n.region << ' ' << static_cast<int>(n.degradation) << ' ';
    WriteDouble(out, n.error);
    out << ' ';
    WriteDouble(out, n.goodness);
    out << '\n';
    WriteVector(out, n.model.beta());
    // Split: column is_numeric threshold num_partitions, then children.
    out << n.split.column << ' ' << (n.split.is_numeric ? 1 : 0) << ' ';
    WriteDouble(out, n.split.threshold);
    out << ' ' << n.split.num_partitions << '\n';
    out << n.children.size();
    for (int32_t c : n.children) out << ' ' << c;
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<BellwetherTree> LoadBellwetherTree(const std::string& path,
                                          const table::Table& item_table) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read " + path);
  BW_RETURN_IF_ERROR(CheckMagic(in, kTreeMagic, path));
  int64_t num_columns = 0;
  if (!(in >> num_columns) || num_columns < 0 || num_columns > kMaxCount) {
    return Status::IoError("missing or implausible column count");
  }
  in.ignore();
  std::vector<std::string> columns(num_columns);
  for (auto& c : columns) {
    if (!std::getline(in, c)) return Status::IoError("missing column name");
  }
  BW_ASSIGN_OR_RETURN(std::shared_ptr<ItemSplitFeatures> feats,
                      ItemSplitFeatures::Create(item_table, columns));
  int64_t num_nodes = 0;
  if (!(in >> num_nodes) || num_nodes < 0 || num_nodes > kMaxCount) {
    return Status::IoError("missing or implausible node count");
  }
  std::vector<TreeNode> nodes(num_nodes);
  for (TreeNode& n : nodes) {
    int has_model = 0, is_numeric = 0;
    int64_t region = 0;
    if (!(in >> n.depth >> n.num_items >> has_model >> region)) {
      return Status::IoError("truncated node header");
    }
    BW_ASSIGN_OR_RETURN(n.degradation, ReadDegradation(in));
    BW_RETURN_IF_ERROR(ReadDouble(in, &n.error));
    BW_RETURN_IF_ERROR(ReadDouble(in, &n.goodness));
    n.has_model = has_model != 0;
    n.region = region;
    BW_ASSIGN_OR_RETURN(std::vector<double> beta, ReadVector(in));
    n.model = regression::LinearModel(std::move(beta));
    if (!(in >> n.split.column >> is_numeric)) {
      return Status::IoError("truncated split");
    }
    BW_RETURN_IF_ERROR(ReadDouble(in, &n.split.threshold));
    if (!(in >> n.split.num_partitions)) {
      return Status::IoError("truncated split");
    }
    n.split.is_numeric = is_numeric != 0;
    int64_t num_children = 0;
    if (!(in >> num_children) || num_children < 0 ||
        num_children > kMaxCount) {
      return Status::IoError("missing or implausible children count");
    }
    n.children.resize(num_children);
    for (auto& c : n.children) {
      if (!(in >> c)) return Status::IoError("truncated children");
      if (c < 0 || c >= num_nodes) {
        return Status::InvalidArgument("child index out of range");
      }
    }
  }
  if (nodes.empty()) return Status::InvalidArgument("empty tree");
  return BellwetherTree(std::move(feats), std::move(nodes));
}

Status SaveBellwetherCube(const BellwetherCube& cube,
                          const std::string& path) {
  BW_ASSIGN_OR_RETURN(std::ofstream out, OpenForWrite(path));
  out << kCubeMagic << '\n';
  out << cube.subsets().NumSubsets() << ' ' << cube.cells().size() << '\n';
  for (const CubeCell& cell : cube.cells()) {
    out << cell.subset << ' ' << cell.subset_size << ' '
        << (cell.has_model ? 1 : 0) << ' ' << cell.region << ' '
        << static_cast<int>(cell.degradation) << ' '
        << (cell.fallback_pick ? 1 : 0) << ' ';
    WriteDouble(out, cell.error);
    out << ' ' << (cell.has_cv ? 1 : 0) << ' ';
    WriteDouble(out, cell.cv.rmse);
    out << ' ';
    WriteDouble(out, cell.cv.stddev);
    out << ' ' << cell.cv.num_folds << '\n';
    WriteVector(out, cell.model.beta());
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<BellwetherCube> LoadBellwetherCube(
    const std::string& path,
    std::shared_ptr<const ItemSubsetSpace> subsets) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read " + path);
  BW_RETURN_IF_ERROR(CheckMagic(in, kCubeMagic, path));
  int64_t num_subsets = 0;
  int64_t num_cells = 0;
  if (!(in >> num_subsets >> num_cells)) {
    return Status::IoError("missing cube header");
  }
  if (num_cells < 0 || num_cells > kMaxCount) {
    return Status::IoError("implausible cube cell count");
  }
  if (num_subsets != subsets->NumSubsets()) {
    return Status::InvalidArgument(
        "cube was saved against a different subset space");
  }
  std::vector<int64_t> cell_of(num_subsets, -1);
  std::vector<CubeCell> cells(num_cells);
  for (int64_t k = 0; k < num_cells; ++k) {
    CubeCell& cell = cells[k];
    int has_model = 0, has_cv = 0, fallback_pick = 0;
    int64_t subset = 0, region = 0;
    if (!(in >> subset >> cell.subset_size >> has_model >> region)) {
      return Status::IoError("truncated cube cell");
    }
    BW_ASSIGN_OR_RETURN(cell.degradation, ReadDegradation(in));
    if (!(in >> fallback_pick)) {
      return Status::IoError("truncated cube cell");
    }
    BW_RETURN_IF_ERROR(ReadDouble(in, &cell.error));
    if (!(in >> has_cv)) return Status::IoError("truncated cube cell");
    BW_RETURN_IF_ERROR(ReadDouble(in, &cell.cv.rmse));
    BW_RETURN_IF_ERROR(ReadDouble(in, &cell.cv.stddev));
    if (!(in >> cell.cv.num_folds)) {
      return Status::IoError("truncated cube cell");
    }
    if (subset < 0 || subset >= num_subsets) {
      return Status::InvalidArgument("cell subset out of range");
    }
    cell.subset = subset;
    cell.region = region;
    cell.has_model = has_model != 0;
    cell.has_cv = has_cv != 0;
    cell.fallback_pick = fallback_pick != 0;
    BW_ASSIGN_OR_RETURN(std::vector<double> beta, ReadVector(in));
    cell.model = regression::LinearModel(std::move(beta));
    cell_of[subset] = k;
  }
  return BellwetherCube(std::move(subsets), std::move(cell_of),
                        std::move(cells));
}

Status SaveBellwetherState(const BellwetherState& state,
                           const std::string& path) {
  // Saves happen repeatedly over an open state's lifetime (batch-boundary
  // durability), so the write is atomic: a crash mid-save leaves the
  // previous good file in place.
  const std::string tmp = path + ".tmp";
  {
    BW_ASSIGN_OR_RETURN(std::ofstream out, OpenForWrite(tmp));
    out << kStateMagic << '\n';
    BW_RETURN_IF_ERROR(state.SerializeTo(out));
    out.flush();
    if (!out) return Status::IoError("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename " + tmp + " to " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<std::unique_ptr<BellwetherState>> LoadBellwetherState(
    const std::string& path, std::shared_ptr<const ItemSubsetSpace> subsets) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read " + path);
  BW_RETURN_IF_ERROR(CheckMagic(in, kStateMagic, path));
  return BellwetherState::DeserializeFrom(in, std::move(subsets));
}

}  // namespace bellwether::core
