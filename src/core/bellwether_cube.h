#ifndef BELLWETHER_CORE_BELLWETHER_CUBE_H_
#define BELLWETHER_CORE_BELLWETHER_CUBE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/eval_util.h"
#include "exec/thread_pool.h"
#include "obs/report.h"
#include "olap/region.h"
#include "regression/error.h"
#include "regression/linear_model.h"
#include "storage/training_data.h"
#include "table/table.h"

namespace bellwether::core {

/// Identifier of a cube subset of items (a combination of item-hierarchy
/// nodes, paper §6.1). Encoded by an all-hierarchical RegionSpace over the
/// item hierarchies.
using SubsetId = olap::RegionId;

/// One item hierarchy: a categorical item-table column whose values are the
/// leaf labels of a tree (e.g. Category: All -> Hardware -> Desktop).
struct ItemHierarchy {
  std::string column;
  olap::HierarchicalDimension dim;
};

/// The lattice of cube subsets induced by the item hierarchies, with the
/// leaf coordinates of every item.
class ItemSubsetSpace {
 public:
  /// Items are the rows of `item_table` (dense index = row). Every value of
  /// a hierarchy column must be a leaf label of that hierarchy.
  static Result<std::shared_ptr<ItemSubsetSpace>> Create(
      const table::Table& item_table, std::vector<ItemHierarchy> hierarchies);

  const olap::RegionSpace& space() const { return *space_; }
  size_t num_hierarchies() const { return hierarchies_.size(); }
  const ItemHierarchy& hierarchy(size_t h) const { return hierarchies_[h]; }
  int32_t num_items() const { return static_cast<int32_t>(coords_.size()); }
  int64_t NumSubsets() const { return space_->NumRegions(); }

  /// Leaf coordinates of an item (one leaf NodeId per hierarchy).
  const olap::PointCoords& ItemCoords(int32_t item) const {
    return coords_[item];
  }

  bool SubsetContainsItem(SubsetId subset, int32_t item) const {
    return space_->RegionContainsPoint(subset, coords_[item]);
  }

  /// Invokes fn for every cube subset containing the item (the cross
  /// product of per-hierarchy ancestor chains).
  void ForEachContainingSubset(int32_t item,
                               const std::function<void(SubsetId)>& fn) const {
    space_->ForEachContainingRegion(coords_[item], fn);
  }

  /// The base subset of an item (its leaf combination).
  SubsetId BaseSubsetOf(int32_t item) const {
    return space_->Encode(space_->BaseCellOf(coords_[item]));
  }

  std::string SubsetLabel(SubsetId subset) const {
    return space_->RegionLabel(subset);
  }

  /// Per-hierarchy node depth of a subset's coordinates.
  std::vector<int32_t> SubsetDepths(SubsetId subset) const;

 private:
  ItemSubsetSpace() = default;
  std::vector<ItemHierarchy> hierarchies_;
  std::unique_ptr<olap::RegionSpace> space_;
  std::vector<olap::PointCoords> coords_;
};

/// One cell of a bellwether cube: a significant cube subset with its
/// bellwether region and model.
struct CubeCell {
  SubsetId subset = olap::kInvalidRegion;
  int32_t subset_size = 0;  // |S|, number of items
  bool has_model = false;
  olap::RegionId region = olap::kInvalidRegion;
  double error = 0.0;  // training-set RMSE (construction-time measure, §6.4)
  regression::LinearModel model;
  /// Degradation tier that produced `model` (kNone for a healthy fit).
  regression::FitDegradation degradation = regression::FitDegradation::kNone;
  /// True when no region produced a finite error for the subset and the
  /// region was chosen by the most-examples fallback instead of min-error.
  bool fallback_pick = false;
  /// Cross-validated error of the bellwether model, for the confidence-bound
  /// prediction rule (filled when CubeBuildConfig::compute_cv_stats).
  regression::ErrorStats cv;
  bool has_cv = false;
};

/// Construction parameters.
struct CubeBuildConfig {
  /// Size threshold K: only subsets with at least this many items get a
  /// cell ("significant subsets", §6.2).
  int32_t min_subset_size = 30;
  int32_t min_examples_per_model = 5;
  /// Post-pass: compute k-fold CV error stats of each cell's model.
  bool compute_cv_stats = true;
  int32_t cv_folds = 10;
  uint64_t seed = 17;
  /// Checkpoint/resume of long builds (single-scan builder only). When
  /// non-empty, the builder writes its per-subset pick state to this path
  /// every `checkpoint_every` regions, and on startup resumes from a
  /// checkpoint whose build fingerprint matches — producing output
  /// bit-identical to an uninterrupted build.
  std::string checkpoint_path;
  int32_t checkpoint_every = 1;
  /// Parallel region scoring (single-scan builder only; the naive and
  /// optimized builders are reference implementations and stay serial).
  /// Per-region <MinError, Size> accumulators are computed on workers and
  /// merged in scan order, so the cube — and every checkpoint written along
  /// the way — is bit-identical to the serial build for every thread count.
  /// Checkpoint fingerprints do not cover the thread count, so a build may
  /// resume a checkpoint written with a different one.
  exec::BellwetherExecOptions exec;
};

/// A prediction made through the cube.
struct CubePrediction {
  double value = 0.0;
  SubsetId subset = olap::kInvalidRegion;
  olap::RegionId region = olap::kInvalidRegion;
  double upper_confidence_bound = 0.0;
};

/// A row of the rollup/drilldown cross-tabulation (§6.2).
struct CrossTabRow {
  std::string subset_label;
  std::string region_label;
  double error = 0.0;
  int32_t subset_size = 0;
};

/// Build-time telemetry of a cube construction, mirrored into the process
/// MetricsRegistry. `data_passes` counts logical passes over the entire
/// training data: the single-scan and optimized builders perform exactly
/// one (Lemma 2 / Theorem 1), the naive builder one per significant subset.
struct CubeBuildTelemetry {
  int64_t data_passes = 0;
  int64_t significant_subsets = 0;
  int64_t cells_materialized = 0;
  int64_t ridge_refits = 0;       // cell fits recovered by the ridge tier
  int64_t mean_fallbacks = 0;     // cell fits degraded to the mean model
  int64_t fallback_picks = 0;     // cells placed by the most-examples fallback
  int64_t checkpoints_saved = 0;  // checkpoint writes during the scan
  int64_t resumed_regions = 0;    // regions skipped thanks to a checkpoint
  double build_seconds = 0.0;
};

/// The bellwether cube: {<S, r_S>} for every significant cube subset S.
class BellwetherCube {
 public:
  BellwetherCube(std::shared_ptr<const ItemSubsetSpace> subsets,
                 std::vector<int64_t> cell_of, std::vector<CubeCell> cells)
      : subsets_(std::move(subsets)),
        cell_of_(std::move(cell_of)),
        cells_(std::move(cells)) {}

  const ItemSubsetSpace& subsets() const { return *subsets_; }
  const std::vector<CubeCell>& cells() const { return cells_; }
  std::vector<CubeCell>& mutable_cells() { return cells_; }

  /// Cell of a subset, or nullptr when the subset is not significant.
  const CubeCell* FindCell(SubsetId subset) const {
    if (subset < 0 || static_cast<size_t>(subset) >= cell_of_.size() ||
        cell_of_[subset] < 0) {
      return nullptr;
    }
    return &cells_[cell_of_[subset]];
  }

  /// Predicts the target of an item: among the cells of the cube subsets
  /// containing the item, pick the model with the lowest upper `confidence`
  /// bound of error (§6.2), fetch the item's features from its bellwether
  /// region, apply the model. Cells whose region lacks data for the item are
  /// skipped in bound order.
  Result<CubePrediction> PredictItem(int32_t item,
                                     const RegionFeatureLookup& lookup,
                                     double confidence = 0.95) const;

  /// Cross-tab rows of all significant subsets at the given per-hierarchy
  /// depths (rollup/drilldown view).
  std::vector<CrossTabRow> CrossTab(
      const std::vector<int32_t>& level_depths,
      const olap::RegionSpace* region_space) const;

  const CubeBuildTelemetry& build_telemetry() const { return telemetry_; }
  void set_build_telemetry(const CubeBuildTelemetry& t) { telemetry_ = t; }

  /// Flight-recorder document of the build (config fingerprint, logical
  /// subset/cell counts, robustness events, build wall time as a phase).
  /// Logical sections are bit-identical across thread counts.
  const obs::RunReport& build_report() const { return build_report_; }
  void set_build_report(obs::RunReport r) { build_report_ = std::move(r); }

 private:
  std::shared_ptr<const ItemSubsetSpace> subsets_;
  std::vector<int64_t> cell_of_;  // SubsetId -> index into cells_, or -1
  std::vector<CubeCell> cells_;
  CubeBuildTelemetry telemetry_;
  obs::RunReport build_report_;
};

/// Naive algorithm (§6.2): one basic bellwether search per significant
/// subset, each issuing per-region reads against the source.
Result<BellwetherCube> BuildBellwetherCubeNaive(
    storage::TrainingDataSource* source,
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const CubeBuildConfig& config,
    const std::vector<uint8_t>* item_mask = nullptr);

/// Single-scan algorithm (§6.3, Fig. 7): one sequential scan; per region,
/// builds a model for each significant subset independently. Identical
/// output to the naive algorithm (Lemma 2).
Result<BellwetherCube> BuildBellwetherCubeSingleScan(
    storage::TrainingDataSource* source,
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const CubeBuildConfig& config,
    const std::vector<uint8_t>* item_mask = nullptr);

/// Optimized algorithm (§6.4, Theorem 1): one sequential scan; per region,
/// accumulates the regression sufficient statistics only at the *base*
/// subsets and rolls them up through the item-hierarchy lattice (the
/// algebraic-aggregate data-cube computation). Identical output again.
Result<BellwetherCube> BuildBellwetherCubeOptimized(
    storage::TrainingDataSource* source,
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const CubeBuildConfig& config,
    const std::vector<uint8_t>* item_mask = nullptr);

}  // namespace bellwether::core

#endif  // BELLWETHER_CORE_BELLWETHER_CUBE_H_
