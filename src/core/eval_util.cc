#include "core/eval_util.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace bellwether::core {

double TrainingErrorOfStats(const regression::RegressionSuffStats& stats,
                            int32_t min_examples) {
  if (stats.num_examples() < std::max<int64_t>(min_examples, 2)) {
    return std::numeric_limits<double>::infinity();
  }
  auto rmse = stats.TrainingRmse();
  return rmse.ok() ? *rmse : std::numeric_limits<double>::infinity();
}

regression::Dataset ToDataset(const storage::RegionTrainingSet& set,
                              const std::vector<uint8_t>* item_mask) {
  regression::Dataset data(set.num_features);
  data.Reserve(set.num_examples());
  std::vector<double> row(set.num_features);
  for (size_t i = 0; i < set.num_examples(); ++i) {
    const int32_t item = set.items[i];
    if (item_mask != nullptr &&
        (static_cast<size_t>(item) >= item_mask->size() ||
         (*item_mask)[item] == 0)) {
      continue;
    }
    row.assign(set.row(i), set.row(i) + set.num_features);
    if (set.weighted()) {
      data.AddWeighted(row, set.targets[i], set.weight(i));
    } else {
      data.Add(row, set.targets[i]);
    }
  }
  return data;
}

int64_t FindItemRow(const storage::RegionTrainingSet& set, int32_t item) {
  auto it = std::lower_bound(set.items.begin(), set.items.end(), item);
  if (it == set.items.end() || *it != item) return -1;
  return it - set.items.begin();
}

RegionFeatureLookup::RegionFeatureLookup(
    const std::vector<storage::RegionTrainingSet>* sets)
    : sets_(sets) {
  region_index_.reserve(sets->size());
  for (size_t i = 0; i < sets->size(); ++i) {
    region_index_.emplace_back((*sets)[i].region, i);
  }
  std::sort(region_index_.begin(), region_index_.end());
}

const double* RegionFeatureLookup::Find(int64_t region, int32_t item) const {
  auto it = std::lower_bound(region_index_.begin(), region_index_.end(),
                             std::make_pair(region, size_t{0}));
  if (it == region_index_.end() || it->first != region) return nullptr;
  const auto& set = (*sets_)[it->second];
  const int64_t row = FindItemRow(set, item);
  if (row < 0) return nullptr;
  return set.row(static_cast<size_t>(row));
}

double RegionFeatureLookup::TargetOf(int64_t region, int32_t item) const {
  auto it = std::lower_bound(region_index_.begin(), region_index_.end(),
                             std::make_pair(region, size_t{0}));
  if (it == region_index_.end() || it->first != region) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const auto& set = (*sets_)[it->second];
  const int64_t row = FindItemRow(set, item);
  if (row < 0) return std::numeric_limits<double>::quiet_NaN();
  return set.targets[static_cast<size_t>(row)];
}

uint64_t RegionSeed(uint64_t base_seed, int64_t region) {
  // splitmix-style mix of the two inputs.
  uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(region) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace bellwether::core
