#ifndef BELLWETHER_CORE_MODEL_IO_H_
#define BELLWETHER_CORE_MODEL_IO_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/bellwether_cube.h"
#include "core/bellwether_tree.h"
#include "regression/linear_model.h"

namespace bellwether::core {

/// Serialization of fitted bellwether artifacts, so analysis (expensive,
/// over the historical warehouse) and prediction (cheap, per new item) can
/// run in separate processes. The format is a line-oriented text format:
/// human-inspectable, versioned, and stable across platforms.

/// ---- Linear (bellwether) models ----

/// Writes a fitted linear model with its bellwether region id.
Status SaveLinearModel(const regression::LinearModel& model,
                       olap::RegionId region, const std::string& path);

struct LoadedLinearModel {
  regression::LinearModel model;
  olap::RegionId region = olap::kInvalidRegion;
};

Result<LoadedLinearModel> LoadLinearModel(const std::string& path);

/// ---- Bellwether trees ----

/// Writes the full tree: structure, splits, per-node bellwether payloads,
/// and the split-feature dictionary (so routing works after loading against
/// the same item table).
Status SaveBellwetherTree(const BellwetherTree& tree,
                          const std::string& path);

/// Loads a tree saved by SaveBellwetherTree. Routing requires the same item
/// table the tree was built against; pass it to rebuild the split-feature
/// view.
Result<BellwetherTree> LoadBellwetherTree(
    const std::string& path, const table::Table& item_table);

/// ---- Bellwether cubes ----

/// Writes every cell of the cube (subset, region, error, model, CV stats).
Status SaveBellwetherCube(const BellwetherCube& cube,
                          const std::string& path);

/// Loads a cube saved by SaveBellwetherCube. The subset space must be
/// recreated from the same item table and hierarchies.
Result<BellwetherCube> LoadBellwetherCube(
    const std::string& path,
    std::shared_ptr<const ItemSubsetSpace> subsets);

/// ---- Bellwether state (incremental maintenance) ----

class BellwetherState;

/// Writes an open incremental BellwetherState (packed-triangle sufficient
/// statistics plus retained per-region rows) atomically — tmp file, then
/// rename — so a crash mid-save never clobbers the previous good state.
Status SaveBellwetherState(const BellwetherState& state,
                           const std::string& path);

/// Reopens a state saved by SaveBellwetherState against the recreated
/// subset space. The stored fingerprint must match the one recomputed from
/// the space, config, and mask (kFailedPrecondition otherwise).
Result<std::unique_ptr<BellwetherState>> LoadBellwetherState(
    const std::string& path, std::shared_ptr<const ItemSubsetSpace> subsets);

}  // namespace bellwether::core

#endif  // BELLWETHER_CORE_MODEL_IO_H_
