#ifndef BELLWETHER_CORE_BELLWETHER_TREE_H_
#define BELLWETHER_CORE_BELLWETHER_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/eval_util.h"
#include "exec/thread_pool.h"
#include "obs/report.h"
#include "olap/region.h"
#include "regression/linear_model.h"
#include "storage/training_data.h"
#include "table/table.h"

namespace bellwether::core {

/// Per-item view of the item-table columns a tree can split on. Dense item
/// index i corresponds to row i of the item table.
class ItemSplitFeatures {
 public:
  /// `split_columns` may be numeric (int64/double) or categorical (string).
  static Result<std::shared_ptr<ItemSplitFeatures>> Create(
      const table::Table& item_table,
      const std::vector<std::string>& split_columns);

  size_t num_columns() const { return numeric_.size(); }
  int32_t num_items() const { return num_items_; }
  bool IsNumeric(size_t col) const { return is_numeric_[col]; }
  const std::string& ColumnName(size_t col) const { return names_[col]; }

  /// Numeric value of item (precondition: numeric column).
  double NumericValue(size_t col, int32_t item) const {
    return numeric_[col][item];
  }
  /// Category index of item (precondition: categorical column); -1 = null.
  int32_t CategoryOf(size_t col, int32_t item) const {
    return category_[col][item];
  }
  int32_t NumCategories(size_t col) const {
    return static_cast<int32_t>(categories_[col].size());
  }
  const std::string& CategoryLabel(size_t col, int32_t cat) const {
    return categories_[col][cat];
  }

 private:
  ItemSplitFeatures() = default;
  int32_t num_items_ = 0;
  std::vector<std::string> names_;
  std::vector<bool> is_numeric_;
  std::vector<std::vector<double>> numeric_;     // per column (numeric)
  std::vector<std::vector<int32_t>> category_;   // per column (categorical)
  std::vector<std::vector<std::string>> categories_;
};

/// A splitting criterion (paper §5.1): <A_k> for categorical A_k, or
/// <A_k, b> for numeric A_k with threshold b.
struct SplitCriterion {
  int32_t column = -1;       // index into the builder's split columns
  bool is_numeric = false;
  double threshold = 0.0;    // numeric only: partition 0 is value < b
  int32_t num_partitions = 0;

  /// Partition index of an item, or -1 (null categorical value).
  int32_t PartitionOf(const ItemSplitFeatures& feats, int32_t item) const {
    if (is_numeric) {
      return feats.NumericValue(column, item) < threshold ? 0 : 1;
    }
    return feats.CategoryOf(column, item);
  }
};

/// A node of a bellwether tree. Every node (not only leaves) carries the
/// bellwether region and model of its item subset; internal nodes use it for
/// goodness computation, and prediction falls back to it when routing cannot
/// continue (e.g. an unseen category).
struct TreeNode {
  int32_t depth = 0;
  int32_t num_items = 0;
  // Bellwether payload for the node's item subset.
  bool has_model = false;
  olap::RegionId region = olap::kInvalidRegion;
  double error = 0.0;  // training-set RMSE used during construction
  regression::LinearModel model;
  /// Degradation tier that produced `model` (kNone for a healthy fit).
  regression::FitDegradation degradation = regression::FitDegradation::kNone;
  // Split (empty children = leaf).
  SplitCriterion split;
  double goodness = 0.0;
  std::vector<int32_t> children;  // node indices; parallel to partitions

  bool is_leaf() const { return children.empty(); }
};

/// Build-time telemetry of a tree construction, mirrored into the process
/// MetricsRegistry. `data_passes` counts logical passes over the entire
/// training data: the RainForest builder performs exactly one per tree
/// level (Lemma 1), while the naive builder performs one per (node,
/// candidate criterion) plus one per node.
struct TreeBuildTelemetry {
  int64_t data_passes = 0;
  int64_t region_reads = 0;          // random Read() calls (naive builder)
  int64_t nodes_created = 0;
  int64_t levels = 0;
  int64_t candidates_evaluated = 0;  // (node, criterion) pairs scored
  int64_t suff_stats_peak = 0;  // most sufficient statistics live at once
  int64_t ridge_refits = 0;     // node fits recovered by the ridge tier
  int64_t mean_fallbacks = 0;   // node fits degraded to the mean model
  double build_seconds = 0.0;
};

/// The bellwether tree (paper §5): routes an item by its item-table features
/// to a leaf, whose bellwether region/model predicts the item's target.
class BellwetherTree {
 public:
  BellwetherTree(std::shared_ptr<const ItemSplitFeatures> features,
                 std::vector<TreeNode> nodes)
      : features_(std::move(features)), nodes_(std::move(nodes)) {}

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  /// Mutable access for post-construction pruning.
  std::vector<TreeNode>& mutable_nodes() { return nodes_; }
  const TreeNode& root() const { return nodes_[0]; }
  const ItemSplitFeatures& features() const { return *features_; }

  /// Number of levels (root-only tree = 1).
  int32_t NumLevels() const;
  int32_t NumLeaves() const;

  /// Routes an item down the tree; returns the index of the deepest node
  /// with a usable model on the path (normally a leaf).
  int32_t RouteItem(int32_t item) const;

  /// Predicts the target of `item`: routes to a node, fetches the item's
  /// regional features from that node's bellwether region, applies the
  /// model. Fails when the item has no data in the region.
  Result<double> PredictItem(int32_t item,
                             const RegionFeatureLookup& lookup) const;

  /// Multi-line rendering for debugging / the examples. When `space` is
  /// given, bellwether regions print as labels (e.g. "[1-8, MD]") instead
  /// of raw region ids.
  std::string ToString(const olap::RegionSpace* space = nullptr) const;

  const TreeBuildTelemetry& build_telemetry() const { return telemetry_; }
  void set_build_telemetry(const TreeBuildTelemetry& t) { telemetry_ = t; }

  /// Flight-recorder document of the build (config fingerprint, logical
  /// pass/node counts, build wall time as a phase). Logical sections are
  /// bit-identical across thread counts.
  const obs::RunReport& build_report() const { return build_report_; }
  void set_build_report(obs::RunReport r) { build_report_ = std::move(r); }

 private:
  std::shared_ptr<const ItemSplitFeatures> features_;
  std::vector<TreeNode> nodes_;
  TreeBuildTelemetry telemetry_;
  obs::RunReport build_report_;
};

/// Construction parameters shared by the naive and RainForest builders.
struct TreeBuildConfig {
  std::vector<std::string> split_columns;
  /// Termination: do not split nodes with fewer items than this.
  int32_t min_items = 30;
  /// Maximum tree depth (paper's experiments use 7).
  int32_t max_depth = 7;
  /// Cap on numeric thresholds per column per node (paper: "points at a
  /// small number (e.g., 50) of the percentiles").
  int32_t max_numeric_split_points = 50;
  /// A (region, subset) model needs at least this many examples.
  int32_t min_examples_per_model = 5;
  /// Do not apply a split whose goodness is not strictly positive.
  bool require_positive_goodness = true;
  /// Parallel per-level statistics collection (RainForest builder only; the
  /// naive builder is the reference implementation and stays serial). Each
  /// region's sufficient statistics are computed on a worker and folded into
  /// the level state in scan order, so the tree is bit-identical to the
  /// serial build for every thread count.
  exec::BellwetherExecOptions exec;
};

/// Builds the tree with the naive algorithm of Fig. 4: one pass over the
/// entire training data per (node, splitting criterion), issued as random
/// region reads against the source. When `item_mask` is non-null, only
/// masked items participate.
Result<BellwetherTree> BuildBellwetherTreeNaive(
    storage::TrainingDataSource* source, const table::Table& item_table,
    const TreeBuildConfig& config,
    const std::vector<uint8_t>* item_mask = nullptr);

/// Builds the tree with the RainForest-style algorithm of Fig. 4: one
/// sequential scan of the entire training data per tree level, collecting
/// the sufficient statistic {<MinError[v,c,p], Size[v,c,p]>}. Produces a
/// tree identical to the naive builder's (Lemma 1).
Result<BellwetherTree> BuildBellwetherTreeRainForest(
    storage::TrainingDataSource* source, const table::Table& item_table,
    const TreeBuildConfig& config,
    const std::vector<uint8_t>* item_mask = nullptr);

/// Post-construction pruning: repeatedly converts an internal node to a leaf
/// when the split's error reduction does not exceed `complexity_alpha` per
/// pruned node (cost-complexity style; alpha = 0 removes only splits with
/// non-positive realized goodness). Returns the number of nodes removed.
int32_t PruneBellwetherTree(BellwetherTree* tree, double complexity_alpha);

}  // namespace bellwether::core

#endif  // BELLWETHER_CORE_BELLWETHER_TREE_H_
