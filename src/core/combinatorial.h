#ifndef BELLWETHER_CORE_COMBINATORIAL_H_
#define BELLWETHER_CORE_COMBINATORIAL_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/spec.h"
#include "regression/error.h"
#include "regression/linear_model.h"

namespace bellwether::core {

/// Combinatorial bellwether analysis (paper §3.4, first extension): a
/// candidate is a *combination* of regions c ⊆ R rather than a single
/// region. The search space is 2^R, so we search it greedily: start from the
/// empty combination and repeatedly add the affordable region that most
/// reduces the (cross-validated) error of the model trained on the union of
/// the combination's data, stopping when no addition improves the error or
/// fits the budget.
///
/// Semantics of a combination: features are aggregated over the union of
/// the finest-grained cells covered by the chosen regions (overlapping
/// regions are deduplicated at the cell level), and its cost is the sum of
/// the distinct cells' costs — so overlapping data is never paid for or
/// counted twice.
struct CombinatorialResult {
  /// Chosen regions, in the order the greedy search added them.
  std::vector<olap::RegionId> regions;
  /// Finest cells covered by the union.
  std::vector<int64_t> cells;
  double cost = 0.0;
  regression::ErrorStats error;
  regression::LinearModel model;

  bool found() const { return !regions.empty(); }
};

struct CombinatorialOptions {
  double budget = 0.0;
  /// Candidate pool: regions whose own cost is within this fraction of the
  /// budget (1.0 = any affordable region). Smaller pools speed up the greedy
  /// search at some quality cost.
  double candidate_cost_fraction = 1.0;
  /// Stop after this many greedy additions.
  int32_t max_regions = 4;
  /// Minimal relative error improvement to accept an addition.
  double min_relative_gain = 0.01;
  int32_t cv_folds = 10;
  int32_t min_examples = 10;
  uint64_t seed = 17;
};

/// Runs the greedy combinatorial search. Evaluation of each candidate union
/// re-runs the feature queries over the covered cells (the naive evaluation
/// path), so this is an expensive, quality-oriented search — the paper
/// flags exactly this tension ("requires further techniques to efficiently
/// search through the space").
Result<CombinatorialResult> RunCombinatorialSearch(
    const BellwetherSpec& spec, const CombinatorialOptions& options);

}  // namespace bellwether::core

#endif  // BELLWETHER_CORE_COMBINATORIAL_H_
