#ifndef BELLWETHER_CORE_EVAL_UTIL_H_
#define BELLWETHER_CORE_EVAL_UTIL_H_

#include <cstdint>
#include <vector>

#include "regression/dataset.h"
#include "regression/linear_model.h"
#include "storage/training_data.h"

namespace bellwether::core {

/// Training-set RMSE of a (region, subset) model from its sufficient
/// statistic, or +infinity when the model is ineligible (fewer than
/// `min_examples` examples) or numerically unfit. The deterministic error
/// measure both tree builders and all three cube builders optimize, so the
/// equivalence lemmas hold exactly.
double TrainingErrorOfStats(const regression::RegressionSuffStats& stats,
                            int32_t min_examples);

/// Builds a regression dataset from a region training set. When `item_mask`
/// is non-null, only rows whose item index has a non-zero mask entry are
/// included (used by item-centric cross-validation and by the tree/cube
/// algorithms to restrict a region's data to an item subset).
regression::Dataset ToDataset(const storage::RegionTrainingSet& set,
                              const std::vector<uint8_t>* item_mask = nullptr);

/// Row index of `item` within `set.items` (which is ascending), or -1.
int64_t FindItemRow(const storage::RegionTrainingSet& set, int32_t item);

/// Deterministic per-region RNG seed so error estimates do not depend on the
/// order in which regions are evaluated.
uint64_t RegionSeed(uint64_t base_seed, int64_t region);

/// Random access to the regional feature vector phi_{i,r} of an item, over
/// materialized region training sets. Used at prediction time: after a
/// bellwether region is chosen for a new item, its regional features are
/// fetched from that region's data.
class RegionFeatureLookup {
 public:
  /// `sets` must outlive the lookup.
  explicit RegionFeatureLookup(
      const std::vector<storage::RegionTrainingSet>* sets);

  /// Feature row of `item` in `region`, or nullptr when the item has no data
  /// there (or the region is not materialized).
  const double* Find(int64_t region, int32_t item) const;

  /// Target of `item` in `region`'s set, or NaN.
  double TargetOf(int64_t region, int32_t item) const;

 private:
  const std::vector<storage::RegionTrainingSet>* sets_;
  std::vector<std::pair<int64_t, size_t>> region_index_;  // sorted by region
};

}  // namespace bellwether::core

#endif  // BELLWETHER_CORE_EVAL_UTIL_H_
