#include "core/multi_instance.h"

#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>

#include "common/check.h"
#include "core/eval_util.h"
#include "olap/cube.h"

namespace bellwether::core {

namespace {

using olap::FkSetAgg;
using olap::NumericAgg;
using table::AggFn;
using table::Table;

// Key of one instance: (dense item index, finest cell id).
using InstanceKey = std::pair<int32_t, int64_t>;

Result<std::unordered_map<int64_t, size_t>> BuildKeyIndex(
    const Table& ref, const std::string& key_column) {
  auto idx = ref.schema().FindField(key_column);
  if (!idx.has_value()) {
    return Status::NotFound("reference key column missing: " + key_column);
  }
  const auto& col = ref.column(*idx);
  std::unordered_map<int64_t, size_t> out;
  for (size_t r = 0; r < ref.num_rows(); ++r) {
    if (col.IsNull(r)) continue;
    if (!out.emplace(col.Int64At(r), r).second) {
      return Status::InvalidArgument("duplicate reference key");
    }
  }
  return out;
}

}  // namespace

Result<BagTrainingSet> GenerateBagTrainingSet(const BellwetherSpec& spec,
                                              olap::RegionId region) {
  if (spec.space == nullptr || spec.fact == nullptr ||
      spec.item_table == nullptr) {
    return Status::InvalidArgument("incomplete spec");
  }
  const olap::RegionSpace& space = *spec.space;
  const Table& fact = *spec.fact;
  const Table& item_table = *spec.item_table;

  // Item dictionary + numeric item features + targets over the whole fact.
  olap::ItemDictionary items;
  const size_t item_id_col =
      item_table.schema().FieldIndexOrDie(spec.item_table_id_column);
  std::vector<std::vector<double>> item_feats;
  std::vector<size_t> feat_cols;
  for (const auto& c : spec.item_feature_columns) {
    auto idx = item_table.schema().FindField(c);
    if (!idx.has_value()) return Status::NotFound("item feature: " + c);
    feat_cols.push_back(*idx);
  }
  for (size_t r = 0; r < item_table.num_rows(); ++r) {
    if (item_table.column(item_id_col).IsNull(r)) continue;
    items.GetOrAdd(item_table.column(item_id_col).Int64At(r));
    std::vector<double> f;
    for (size_t c : feat_cols) {
      f.push_back(item_table.column(c).IsNull(r)
                      ? 0.0
                      : item_table.column(c).NumericAt(r));
    }
    item_feats.push_back(std::move(f));
  }

  // Resolve fact columns.
  const size_t fact_item_col =
      fact.schema().FieldIndexOrDie(spec.item_id_column);
  std::vector<size_t> dim_cols;
  for (const auto& c : spec.dimension_columns) {
    auto idx = fact.schema().FindField(c);
    if (!idx.has_value()) return Status::NotFound("dimension column: " + c);
    dim_cols.push_back(*idx);
  }
  const size_t target_col = fact.schema().FieldIndexOrDie(spec.target_column);

  // Reference key indexes.
  std::unordered_map<std::string, std::unordered_map<int64_t, size_t>>
      key_indexes;
  for (const auto& q : spec.regional_features) {
    if (q.kind == FeatureQuery::Kind::kFactMeasure) continue;
    if (key_indexes.count(q.reference)) continue;
    auto it = spec.references.find(q.reference);
    if (it == spec.references.end()) {
      return Status::NotFound("reference: " + q.reference);
    }
    BW_ASSIGN_OR_RETURN(auto index,
                        BuildKeyIndex(*it->second.table,
                                      it->second.key_column));
    key_indexes.emplace(q.reference, std::move(index));
  }

  // One pass over the fact table: route rows inside the region to their
  // finest cell and accumulate per-(item, cell) aggregates per feature.
  const size_t num_queries = spec.regional_features.size();
  std::map<InstanceKey, std::vector<NumericAgg>> numeric;
  std::map<InstanceKey, std::vector<FkSetAgg>> fk_sets;
  std::vector<NumericAgg> target_agg(items.size());
  olap::PointCoords point(space.num_dims());
  for (size_t r = 0; r < fact.num_rows(); ++r) {
    if (fact.column(fact_item_col).IsNull(r)) continue;
    const int32_t item = items.Find(fact.column(fact_item_col).Int64At(r));
    if (item < 0) continue;
    bool ok = true;
    for (size_t d = 0; d < dim_cols.size(); ++d) {
      if (fact.column(dim_cols[d]).IsNull(r)) {
        ok = false;
        break;
      }
      point[d] = static_cast<int32_t>(fact.column(dim_cols[d]).Int64At(r));
    }
    if (!ok) continue;
    if (!fact.column(target_col).IsNull(r)) {
      target_agg[item].Add(fact.column(target_col).NumericAt(r));
    }
    if (!space.RegionContainsPoint(region, point)) continue;
    const InstanceKey key{item, space.FinestCellOf(point)};
    auto& nagg = numeric[key];
    if (nagg.empty()) nagg.resize(num_queries);
    auto fk_it = fk_sets.end();
    for (size_t qi = 0; qi < num_queries; ++qi) {
      const auto& q = spec.regional_features[qi];
      switch (q.kind) {
        case FeatureQuery::Kind::kFactMeasure: {
          const auto& col = fact.ColumnByName(q.measure_column);
          if (!col.IsNull(r)) nagg[qi].Add(col.NumericAt(r));
          break;
        }
        case FeatureQuery::Kind::kReferenceMeasure: {
          const auto& fkc = fact.ColumnByName(q.fk_column);
          if (fkc.IsNull(r)) break;
          const auto& index = key_indexes.at(q.reference);
          auto hit = index.find(fkc.Int64At(r));
          if (hit == index.end()) break;
          const auto& measure =
              spec.references.at(q.reference).table->ColumnByName(
                  q.measure_column);
          if (!measure.IsNull(hit->second)) {
            nagg[qi].Add(measure.NumericAt(hit->second));
          }
          break;
        }
        case FeatureQuery::Kind::kFkDistinctMeasure: {
          const auto& fkc = fact.ColumnByName(q.fk_column);
          if (fkc.IsNull(r)) break;
          if (key_indexes.at(q.reference).count(fkc.Int64At(r)) == 0) break;
          if (fk_it == fk_sets.end()) {
            fk_it = fk_sets.try_emplace(key).first;
            if (fk_it->second.empty()) fk_it->second.resize(num_queries);
          }
          fk_it->second[qi].Add(fkc.Int64At(r));
          break;
        }
      }
    }
  }

  // Assemble the bags (items in dictionary order; cells ascending — the
  // std::map iteration order).
  BagTrainingSet out;
  out.region = region;
  out.num_features = static_cast<int32_t>(1 + feat_cols.size() + num_queries);
  std::map<int32_t, InstanceBag> bag_of;
  for (const auto& [key, nagg] : numeric) {
    const auto [item, cell] = key;
    auto [it, inserted] = bag_of.try_emplace(item);
    InstanceBag& bag = it->second;
    if (inserted) {
      bag.item = item;
      bag.num_features = out.num_features;
    }
    bag.instances.push_back(1.0);  // intercept
    for (double f : item_feats[item]) bag.instances.push_back(f);
    for (size_t qi = 0; qi < num_queries; ++qi) {
      const auto& q = spec.regional_features[qi];
      if (q.kind == FeatureQuery::Kind::kFkDistinctMeasure) {
        auto fs = fk_sets.find(key);
        double v = 0.0;
        if (fs != fk_sets.end() && !fs->second[qi].keys.empty()) {
          if (q.fn == AggFn::kCount || q.fn == AggFn::kCountDistinct) {
            v = static_cast<double>(fs->second[qi].keys.size());
          } else {
            NumericAgg agg;
            const auto& measure =
                spec.references.at(q.reference).table->ColumnByName(
                    q.measure_column);
            const auto& index = key_indexes.at(q.reference);
            for (int64_t fk : fs->second[qi].keys) {
              auto hit = index.find(fk);
              if (hit != index.end() && !measure.IsNull(hit->second)) {
                agg.Add(measure.NumericAt(hit->second));
              }
            }
            v = agg.Finish(q.fn).value_or(0.0);
          }
        }
        bag.instances.push_back(v);
      } else {
        bag.instances.push_back(nagg[qi].Finish(q.fn).value_or(0.0));
      }
    }
  }
  for (auto& [item, bag] : bag_of) {
    const auto target = target_agg[item].Finish(spec.target_fn);
    if (!target.has_value()) continue;
    out.bags.push_back(std::move(bag));
    out.targets.push_back(*target);
  }
  return out;
}

std::vector<double> MeanEmbeddingModel::Embed(const InstanceBag& bag) {
  std::vector<double> mean(bag.num_features, 0.0);
  const size_t n = bag.num_instances();
  if (n == 0) return mean;
  for (size_t k = 0; k < n; ++k) {
    const double* x = bag.instance(k);
    for (int32_t j = 0; j < bag.num_features; ++j) mean[j] += x[j];
  }
  for (double& v : mean) v /= static_cast<double>(n);
  return mean;
}

Result<MeanEmbeddingModel> MeanEmbeddingModel::Fit(
    const BagTrainingSet& data) {
  if (data.bags.empty()) {
    return Status::FailedPrecondition("no bags to fit on");
  }
  regression::Dataset embedded(data.num_features);
  for (size_t i = 0; i < data.bags.size(); ++i) {
    embedded.Add(Embed(data.bags[i]), data.targets[i]);
  }
  BW_ASSIGN_OR_RETURN(regression::LinearModel model,
                      regression::FitLeastSquares(embedded));
  return MeanEmbeddingModel(std::move(model));
}

Result<double> MeanEmbeddingModel::Predict(const InstanceBag& bag) const {
  if (bag.num_instances() == 0) {
    return Status::FailedPrecondition("cannot predict from an empty bag");
  }
  return model_.Predict(Embed(bag));
}

Result<regression::ErrorStats> CrossValidateBags(const BagTrainingSet& data,
                                                 int32_t folds, Rng* rng) {
  regression::Dataset embedded(data.num_features);
  for (size_t i = 0; i < data.bags.size(); ++i) {
    embedded.Add(MeanEmbeddingModel::Embed(data.bags[i]), data.targets[i]);
  }
  return regression::CrossValidationError(embedded, folds, rng);
}

Result<MiSearchResult> RunMultiInstanceSearch(const BellwetherSpec& spec,
                                              const MiSearchOptions& options) {
  const olap::RegionSpace& space = *spec.space;
  const int64_t num_items = spec.item_table->num_rows();
  MiSearchResult result;
  double best = std::numeric_limits<double>::infinity();
  BagTrainingSet best_set;
  for (olap::RegionId r = 0; r < space.NumRegions(); ++r) {
    if (spec.cost->RegionCost(r) > spec.budget) continue;
    BW_ASSIGN_OR_RETURN(BagTrainingSet set, GenerateBagTrainingSet(spec, r));
    const double coverage = num_items > 0
                                ? static_cast<double>(set.bags.size()) /
                                      static_cast<double>(num_items)
                                : 0.0;
    if (coverage < spec.min_coverage) continue;
    if (static_cast<int32_t>(set.bags.size()) < options.min_bags) continue;
    Rng rng(RegionSeed(options.seed, r));
    auto err = CrossValidateBags(set, options.cv_folds, &rng);
    if (!err.ok()) continue;
    result.scores.emplace_back(r, err->rmse);
    if (err->rmse < best) {
      best = err->rmse;
      result.bellwether = r;
      result.error = *err;
      best_set = std::move(set);
    }
  }
  if (result.found()) {
    BW_ASSIGN_OR_RETURN(result.model, MeanEmbeddingModel::Fit(best_set));
  }
  return result;
}

}  // namespace bellwether::core
