#include "core/bellwether_tree.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "exec/parallel.h"
#include "obs/logger.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bellwether::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using regression::RegressionSuffStats;
using storage::RegionTrainingSet;

// Error(.) both builders optimize: TrainingErrorOfStats from eval_util,
// deterministic so that Lemma 1 holds exactly (cross-validated errors would
// depend on fold RNG consumption order).
double ErrorOfStats(const RegressionSuffStats& stats, int32_t min_examples) {
  return TrainingErrorOfStats(stats, min_examples);
}

// Best (minimum-error) region for an item subset, tracked across a scan.
struct BellwetherPick {
  double error = kInf;
  olap::RegionId region = olap::kInvalidRegion;
  RegressionSuffStats stats;  // statistics of the winning region

  bool found() const { return region != olap::kInvalidRegion; }

  void Offer(double err, olap::RegionId r, const RegressionSuffStats& s) {
    if (err < error) {
      error = err;
      region = r;
      stats = s;
    }
  }
};

// Candidate splitting criteria of a node, a deterministic function of the
// node's item subset (so both builders produce identical candidates).
std::vector<SplitCriterion> GenerateCandidates(
    const ItemSplitFeatures& feats, const std::vector<int32_t>& items,
    const TreeBuildConfig& config) {
  std::vector<SplitCriterion> out;
  for (size_t col = 0; col < feats.num_columns(); ++col) {
    if (feats.IsNumeric(col)) {
      std::set<double> distinct;
      for (int32_t i : items) distinct.insert(feats.NumericValue(col, i));
      if (distinct.size() < 2) continue;
      std::vector<double> sorted(distinct.begin(), distinct.end());
      std::vector<double> thresholds;
      thresholds.reserve(sorted.size() - 1);
      for (size_t k = 0; k + 1 < sorted.size(); ++k) {
        thresholds.push_back((sorted[k] + sorted[k + 1]) / 2.0);
      }
      if (static_cast<int32_t>(thresholds.size()) >
          config.max_numeric_split_points) {
        // Keep thresholds at evenly spaced percentiles (paper §5.1).
        std::vector<double> picked;
        const size_t m = thresholds.size();
        const int32_t cap = config.max_numeric_split_points;
        for (int32_t k = 0; k < cap; ++k) {
          const size_t idx = static_cast<size_t>(
              (static_cast<double>(k) + 0.5) * static_cast<double>(m) / cap);
          picked.push_back(thresholds[std::min(idx, m - 1)]);
        }
        picked.erase(std::unique(picked.begin(), picked.end()), picked.end());
        thresholds = std::move(picked);
      }
      for (double b : thresholds) {
        SplitCriterion c;
        c.column = static_cast<int32_t>(col);
        c.is_numeric = true;
        c.threshold = b;
        c.num_partitions = 2;
        out.push_back(c);
      }
    } else {
      // One criterion per categorical column; useless when the subset holds
      // fewer than two distinct categories.
      std::set<int32_t> seen;
      for (int32_t i : items) {
        const int32_t cat = feats.CategoryOf(col, i);
        if (cat >= 0) seen.insert(cat);
        if (seen.size() >= 2) break;
      }
      if (seen.size() < 2) continue;
      SplitCriterion c;
      c.column = static_cast<int32_t>(col);
      c.is_numeric = false;
      c.num_partitions = feats.NumCategories(col);
      out.push_back(c);
    }
  }
  return out;
}

// Goodness(c) = |S| Error(h_r|S) - sum_p |S_p| Error(h_rp|S_p), with -inf
// when some non-empty partition has no trainable model in any region.
double ComputeGoodness(double node_error, int64_t node_size,
                       const std::vector<double>& partition_min_error,
                       const std::vector<int64_t>& partition_sizes) {
  double split_term = 0.0;
  for (size_t p = 0; p < partition_sizes.size(); ++p) {
    if (partition_sizes[p] == 0) continue;
    if (partition_min_error[p] == kInf) return -kInf;
    split_term +=
        static_cast<double>(partition_sizes[p]) * partition_min_error[p];
  }
  return static_cast<double>(node_size) * node_error - split_term;
}

// Work item during construction.
struct PendingNode {
  int32_t node_index;
  std::vector<int32_t> items;
};

// Shared post-scan logic: finalize a node's payload and decide the split.
// Returns the chosen candidate index or -1 (leaf).
int32_t FinalizeNode(const ItemSplitFeatures& feats,
                     const TreeBuildConfig& config, const PendingNode& work,
                     const BellwetherPick& self,
                     const std::vector<SplitCriterion>& candidates,
                     const std::vector<std::vector<double>>& min_error,
                     TreeNode* node, TreeBuildTelemetry* telemetry) {
  node->num_items = static_cast<int32_t>(work.items.size());
  if (self.found() && self.error < kInf) {
    // Graceful degradation: a healthy fit is bit-identical to the plain
    // Fit() path; an ill-conditioned node yields a flagged degraded model
    // instead of a model-less node.
    auto fit = self.stats.FitWithFallback();
    if (fit.ok()) {
      node->has_model = true;
      node->region = self.region;
      node->error = self.error;
      node->model = std::move(fit.value().model);
      node->degradation = fit.value().degradation;
      if (node->degradation == regression::FitDegradation::kRidge) {
        ++telemetry->ridge_refits;
      } else if (node->degradation ==
                 regression::FitDegradation::kMeanFallback) {
        ++telemetry->mean_fallbacks;
      }
    }
  }
  if (!node->has_model) return -1;
  if (candidates.empty()) return -1;

  double best_goodness = -kInf;
  int32_t best = -1;
  std::vector<int64_t> sizes;
  for (size_t c = 0; c < candidates.size(); ++c) {
    sizes.assign(candidates[c].num_partitions, 0);
    for (int32_t i : work.items) {
      const int32_t p = candidates[c].PartitionOf(feats, i);
      if (p >= 0) ++sizes[p];
    }
    const double g = ComputeGoodness(node->error, node->num_items,
                                     min_error[c], sizes);
    if (g > best_goodness) {
      best_goodness = g;
      best = static_cast<int32_t>(c);
    }
  }
  if (best < 0) return -1;
  if (config.require_positive_goodness && !(best_goodness > 0.0)) return -1;
  node->split = candidates[best];
  node->goodness = best_goodness;
  return best;
}

}  // namespace

Result<std::shared_ptr<ItemSplitFeatures>> ItemSplitFeatures::Create(
    const table::Table& item_table,
    const std::vector<std::string>& split_columns) {
  auto out = std::shared_ptr<ItemSplitFeatures>(new ItemSplitFeatures());
  out->num_items_ = static_cast<int32_t>(item_table.num_rows());
  for (const auto& name : split_columns) {
    auto idx = item_table.schema().FindField(name);
    if (!idx.has_value()) {
      return Status::NotFound("split column not found: " + name);
    }
    const auto& col = item_table.column(*idx);
    out->names_.push_back(name);
    const bool numeric = col.type() != table::DataType::kString;
    out->is_numeric_.push_back(numeric);
    out->numeric_.emplace_back();
    out->category_.emplace_back();
    out->categories_.emplace_back();
    if (numeric) {
      auto& vals = out->numeric_.back();
      vals.resize(item_table.num_rows(), 0.0);
      for (size_t r = 0; r < item_table.num_rows(); ++r) {
        vals[r] = col.IsNull(r) ? 0.0 : col.NumericAt(r);
      }
    } else {
      auto& cats = out->categories_.back();
      auto& of = out->category_.back();
      of.resize(item_table.num_rows(), -1);
      for (size_t r = 0; r < item_table.num_rows(); ++r) {
        if (col.IsNull(r)) continue;
        const std::string& s = col.StringAt(r);
        auto it = std::find(cats.begin(), cats.end(), s);
        if (it == cats.end()) {
          of[r] = static_cast<int32_t>(cats.size());
          cats.push_back(s);
        } else {
          of[r] = static_cast<int32_t>(it - cats.begin());
        }
      }
    }
  }
  return out;
}

int32_t BellwetherTree::NumLevels() const {
  // Count only nodes reachable from the root: pruning detaches subtrees
  // without compacting the node vector.
  int32_t levels = 0;
  std::vector<int32_t> stack{0};
  while (!stack.empty()) {
    const TreeNode& n = nodes_[stack.back()];
    stack.pop_back();
    levels = std::max(levels, n.depth + 1);
    for (int32_t c : n.children) stack.push_back(c);
  }
  return levels;
}

int32_t BellwetherTree::NumLeaves() const {
  int32_t leaves = 0;
  std::vector<int32_t> stack{0};
  while (!stack.empty()) {
    const TreeNode& n = nodes_[stack.back()];
    stack.pop_back();
    if (n.is_leaf()) {
      ++leaves;
    } else {
      for (int32_t c : n.children) stack.push_back(c);
    }
  }
  return leaves;
}

int32_t BellwetherTree::RouteItem(int32_t item) const {
  int32_t cur = 0;
  int32_t best_with_model = nodes_[0].has_model ? 0 : -1;
  while (!nodes_[cur].is_leaf()) {
    const int32_t p = nodes_[cur].split.PartitionOf(*features_, item);
    if (p < 0 || p >= static_cast<int32_t>(nodes_[cur].children.size())) {
      break;
    }
    cur = nodes_[cur].children[p];
    if (nodes_[cur].has_model) best_with_model = cur;
  }
  // Fall back to the deepest ancestor carrying a model (covers empty-child
  // partitions and model-less leaves).
  if (!nodes_[cur].has_model) return best_with_model;
  return cur;
}

Result<double> BellwetherTree::PredictItem(
    int32_t item, const RegionFeatureLookup& lookup) const {
  const int32_t node = RouteItem(item);
  if (node < 0) {
    return Status::FailedPrecondition("no node on the path has a model");
  }
  const TreeNode& n = nodes_[node];
  const double* x = lookup.Find(n.region, item);
  if (x == nullptr) {
    return Status::NotFound("item has no data in the bellwether region");
  }
  return n.model.Predict(x);
}

std::string BellwetherTree::ToString(const olap::RegionSpace* space) const {
  std::string out;
  // DFS with indentation.
  struct Frame {
    int32_t node;
    int32_t indent;
    std::string edge;
  };
  std::vector<Frame> stack{{0, 0, ""}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const TreeNode& n = nodes_[f.node];
    out.append(2 * f.indent, ' ');
    if (!f.edge.empty()) out += f.edge + " -> ";
    if (n.has_model) {
      out += "region=" + (space != nullptr ? space->RegionLabel(n.region)
                                           : std::to_string(n.region)) +
             " err=" + std::to_string(n.error) +
             " items=" + std::to_string(n.num_items);
    } else {
      out += "(no model) items=" + std::to_string(n.num_items);
    }
    if (!n.is_leaf()) {
      out += " split on " + features_->ColumnName(n.split.column);
      if (n.split.is_numeric) {
        out += " < " + std::to_string(n.split.threshold);
      }
    }
    out += "\n";
    if (!n.is_leaf()) {
      for (size_t p = n.children.size(); p-- > 0;) {
        std::string edge;
        if (n.split.is_numeric) {
          edge = p == 0 ? "yes" : "no";
        } else {
          edge = features_->CategoryLabel(n.split.column,
                                          static_cast<int32_t>(p));
        }
        stack.push_back(
            {n.children[p], f.indent + 1, edge});
      }
    }
  }
  return out;
}

namespace {

std::vector<int32_t> RootItems(const ItemSplitFeatures& feats,
                               const std::vector<uint8_t>* item_mask) {
  std::vector<int32_t> items;
  for (int32_t i = 0; i < feats.num_items(); ++i) {
    if (item_mask != nullptr && (static_cast<size_t>(i) >= item_mask->size() ||
                                 (*item_mask)[i] == 0)) {
      continue;
    }
    items.push_back(i);
  }
  return items;
}

// Registry counters mirrored alongside the per-build TreeBuildTelemetry;
// resolved once and cached (registry pointers are stable).
struct TreeMetrics {
  obs::Counter* naive_passes;
  obs::Counter* rf_passes;
  obs::Counter* nodes_created;
  obs::Gauge* suff_stats_peak;
  obs::Histogram* level_scan_seconds;
};

const TreeMetrics& Metrics() {
  static const TreeMetrics m{
      obs::DefaultMetrics().GetCounter(obs::kMTreeNaiveScans),
      obs::DefaultMetrics().GetCounter(obs::kMTreeRfScans),
      obs::DefaultMetrics().GetCounter(obs::kMTreeNodesCreated),
      obs::DefaultMetrics().GetGauge(obs::kMTreeSuffStatsPeak),
      obs::DefaultMetrics().GetHistogram(obs::kMTreeLevelScanSeconds,
                                         obs::LatencyBucketsSeconds())};
  return m;
}

// Builds the children of `node_index` once a split was chosen; appends the
// new PendingNodes to `next`.
void ExpandChildren(const ItemSplitFeatures& feats, PendingNode&& work,
                    std::vector<TreeNode>* nodes, int32_t node_index,
                    std::deque<PendingNode>* next) {
  // Copy: push_back below reallocates the node vector.
  const SplitCriterion c = (*nodes)[node_index].split;
  const int32_t depth = (*nodes)[node_index].depth;
  std::vector<std::vector<int32_t>> partitions(c.num_partitions);
  for (int32_t i : work.items) {
    const int32_t p = c.PartitionOf(feats, i);
    if (p >= 0) partitions[p].push_back(i);
  }
  for (auto& part : partitions) {
    TreeNode child;
    child.depth = depth + 1;
    child.num_items = static_cast<int32_t>(part.size());
    const int32_t child_index = static_cast<int32_t>(nodes->size());
    (*nodes)[node_index].children.push_back(child_index);
    nodes->push_back(std::move(child));
    next->push_back(PendingNode{child_index, std::move(part)});
  }
}

// Fills the flight-recorder document on a finished tree. The config section
// deliberately omits config.exec.num_threads: logical sections (and the
// fingerprint) must match between serial and parallel builds.
void FillTreeReport(std::string_view name, const TreeBuildConfig& config,
                    const TreeBuildTelemetry& t, BellwetherTree* tree) {
  obs::RunReport r{std::string(name)};
  std::string cols;
  for (const auto& c : config.split_columns) {
    if (!cols.empty()) cols += ",";
    cols += c;
  }
  r.SetConfig("tree.split_columns", cols);
  r.SetConfig("tree.min_items", static_cast<int64_t>(config.min_items));
  r.SetConfig("tree.max_depth", static_cast<int64_t>(config.max_depth));
  r.SetConfig("tree.max_numeric_split_points",
              static_cast<int64_t>(config.max_numeric_split_points));
  r.SetConfig("tree.min_examples_per_model",
              static_cast<int64_t>(config.min_examples_per_model));
  r.SetConfig("tree.require_positive_goodness",
              static_cast<int64_t>(config.require_positive_goodness ? 1 : 0));
  r.SetCount("tree.data_passes", t.data_passes);
  r.SetCount("tree.region_reads", t.region_reads);
  r.SetCount("tree.nodes_created", t.nodes_created);
  r.SetCount("tree.levels", t.levels);
  r.SetCount("tree.candidates_evaluated", t.candidates_evaluated);
  r.SetCount("tree.suff_stats_peak", t.suff_stats_peak);
  r.SetCount("tree.ridge_refits", t.ridge_refits);
  r.SetCount("tree.mean_fallbacks", t.mean_fallbacks);
  r.AddPhase("tree.build", t.build_seconds);
  tree->set_build_report(std::move(r));
}

}  // namespace

Result<BellwetherTree> BuildBellwetherTreeNaive(
    storage::TrainingDataSource* source, const table::Table& item_table,
    const TreeBuildConfig& config, const std::vector<uint8_t>* item_mask) {
  obs::TraceSpan span("BuildBellwetherTreeNaive", "tree");
  Stopwatch build_watch;
  TreeBuildTelemetry telemetry;
  BW_ASSIGN_OR_RETURN(
      std::shared_ptr<ItemSplitFeatures> feats,
      ItemSplitFeatures::Create(item_table, config.split_columns));
  const int32_t num_items = feats->num_items();

  std::vector<TreeNode> nodes;
  nodes.emplace_back();
  std::deque<PendingNode> queue;
  queue.push_back(PendingNode{0, RootItems(*feats, item_mask)});

  // Scratch: item -> partition (or -2 when the item is not in the node).
  std::vector<int32_t> membership(num_items, 0);

  const size_t num_sets = source->num_region_sets();
  while (!queue.empty()) {
    PendingNode work = std::move(queue.front());
    queue.pop_front();
    TreeNode& node = nodes[work.node_index];
    node.num_items = static_cast<int32_t>(work.items.size());

    std::fill(membership.begin(), membership.end(), -2);
    for (int32_t i : work.items) membership[i] = -1;

    // 1. The node's own bellwether: one pass over the entire training data.
    BellwetherPick self;
    int32_t p_features = 0;
    ++telemetry.data_passes;
    telemetry.suff_stats_peak = std::max<int64_t>(telemetry.suff_stats_peak, 1);
    for (size_t s = 0; s < num_sets; ++s) {
      BW_ASSIGN_OR_RETURN(RegionTrainingSet set, source->Read(s));
      ++telemetry.region_reads;
      p_features = set.num_features;
      RegressionSuffStats stats(set.num_features);
      for (size_t row = 0; row < set.num_examples(); ++row) {
        if (membership[set.items[row]] != -2) {
          stats.Add(set.row(row), set.targets[row], set.weight(row));
        }
      }
      self.Offer(ErrorOfStats(stats, config.min_examples_per_model),
                 set.region, stats);
    }

    // 2. Candidate evaluation: one pass per splitting criterion (the naive
    //    algorithm's l*m scans).
    std::vector<SplitCriterion> candidates;
    std::vector<std::vector<double>> min_error;
    const bool active =
        node.depth < config.max_depth &&
        node.num_items >= config.min_items && self.found();
    if (active) {
      candidates = GenerateCandidates(*feats, work.items, config);
      min_error.resize(candidates.size());
      for (size_t c = 0; c < candidates.size(); ++c) {
        const SplitCriterion& crit = candidates[c];
        for (int32_t i : work.items) {
          membership[i] = crit.PartitionOf(*feats, i);
        }
        min_error[c].assign(crit.num_partitions, kInf);
        std::vector<RegressionSuffStats> part_stats(
            crit.num_partitions, RegressionSuffStats(p_features));
        ++telemetry.data_passes;
        ++telemetry.candidates_evaluated;
        telemetry.suff_stats_peak = std::max<int64_t>(
            telemetry.suff_stats_peak, crit.num_partitions);
        for (size_t s = 0; s < num_sets; ++s) {
          BW_ASSIGN_OR_RETURN(RegionTrainingSet set, source->Read(s));
          ++telemetry.region_reads;
          for (auto& st : part_stats) st.Reset();
          for (size_t row = 0; row < set.num_examples(); ++row) {
            const int32_t m = membership[set.items[row]];
            if (m >= 0) part_stats[m].Add(set.row(row), set.targets[row], set.weight(row));
          }
          for (int32_t p = 0; p < crit.num_partitions; ++p) {
            min_error[c][p] = std::min(
                min_error[c][p],
                ErrorOfStats(part_stats[p], config.min_examples_per_model));
          }
        }
        // Restore plain membership for the next candidate.
        for (int32_t i : work.items) membership[i] = -1;
      }
    }

    const int32_t chosen = FinalizeNode(*feats, config, work, self,
                                        candidates, min_error, &node,
                                        &telemetry);
    if (chosen >= 0) {
      ExpandChildren(*feats, std::move(work), &nodes, work.node_index,
                     &queue);
    }
  }
  BellwetherTree tree(std::move(feats), std::move(nodes));
  telemetry.nodes_created = static_cast<int64_t>(tree.nodes().size());
  telemetry.levels = tree.NumLevels();
  telemetry.build_seconds = build_watch.ElapsedSeconds();
  Metrics().naive_passes->Increment(telemetry.data_passes);
  Metrics().nodes_created->Increment(telemetry.nodes_created);
  Metrics().suff_stats_peak->SetMax(
      static_cast<double>(telemetry.suff_stats_peak));
  BW_LOG(obs::LogLevel::kInfo, "tree")
      .Field("passes", telemetry.data_passes)
      .Field("nodes", telemetry.nodes_created)
      .Field("levels", telemetry.levels)
      .Field("seconds", telemetry.build_seconds)
      << "naive tree built";
  tree.set_build_telemetry(telemetry);
  FillTreeReport("tree_naive", config, telemetry, &tree);
  return tree;
}

Result<BellwetherTree> BuildBellwetherTreeRainForest(
    storage::TrainingDataSource* source, const table::Table& item_table,
    const TreeBuildConfig& config, const std::vector<uint8_t>* item_mask) {
  obs::TraceSpan span("BuildBellwetherTreeRainForest", "tree");
  Stopwatch build_watch;
  TreeBuildTelemetry telemetry;
  BW_ASSIGN_OR_RETURN(
      std::shared_ptr<ItemSplitFeatures> feats,
      ItemSplitFeatures::Create(item_table, config.split_columns));
  const int32_t num_items = feats->num_items();
  const int32_t num_threads = exec::ResolveNumThreads(config.exec.num_threads);

  std::vector<TreeNode> nodes;
  nodes.emplace_back();
  std::deque<PendingNode> level;
  level.push_back(PendingNode{0, RootItems(*feats, item_mask)});

  // Per level-position evaluation state.
  struct NodeEval {
    bool active = false;
    std::vector<SplitCriterion> candidates;
    RegressionSuffStats self_stats;                       // current region
    std::vector<std::vector<RegressionSuffStats>> part;   // [cand][partition]
    BellwetherPick self;
    std::vector<std::vector<double>> min_error;           // [cand][partition]
  };

  while (!level.empty()) {
    const size_t width = level.size();
    std::vector<NodeEval> evals(width);
    std::vector<int32_t> node_of_item(num_items, -1);
    for (size_t v = 0; v < width; ++v) {
      const PendingNode& work = level[v];
      TreeNode& node = nodes[work.node_index];
      node.num_items = static_cast<int32_t>(work.items.size());
      for (int32_t i : work.items) node_of_item[i] = static_cast<int32_t>(v);
      evals[v].active = node.depth < config.max_depth &&
                        node.num_items >= config.min_items;
      if (evals[v].active) {
        evals[v].candidates = GenerateCandidates(*feats, work.items, config);
        evals[v].min_error.resize(evals[v].candidates.size());
        for (size_t c = 0; c < evals[v].candidates.size(); ++c) {
          evals[v].min_error[c].assign(evals[v].candidates[c].num_partitions,
                                       kInf);
        }
      }
    }

    // One sequential scan of the entire training data for the whole level.
    obs::TraceSpan level_span("RainForestLevelScan", "tree");
    Stopwatch level_watch;
    ++telemetry.data_passes;
    int64_t level_stats = 0;
    for (const auto& e : evals) {
      level_stats += 1;  // self_stats
      for (const auto& c : e.candidates) level_stats += c.num_partitions;
      telemetry.candidates_evaluated +=
          static_cast<int64_t>(e.candidates.size());
    }
    telemetry.suff_stats_peak =
        std::max(telemetry.suff_stats_peak, level_stats);
    // The pool is created per level, *after* the level state the worker
    // tasks reference: if the scan aborts mid-level, the pool's destructor
    // (or the explicit Wait below) drains the queued tasks while `evals` and
    // `node_of_item` are still alive.
    std::unique_ptr<exec::ThreadPool> pool;
    if (num_threads > 1) pool = std::make_unique<exec::ThreadPool>(num_threads);
    Status scan_status;
    if (pool == nullptr) {
      bool stats_sized = false;
      scan_status = source->Scan([&](const RegionTrainingSet& set) -> Status {
        if (!stats_sized) {
          stats_sized = true;
          for (auto& e : evals) {
            e.self_stats = RegressionSuffStats(set.num_features);
            e.part.resize(e.candidates.size());
            for (size_t c = 0; c < e.candidates.size(); ++c) {
              e.part[c].assign(e.candidates[c].num_partitions,
                               RegressionSuffStats(set.num_features));
            }
          }
        } else {
          for (auto& e : evals) {
            e.self_stats.Reset();
            for (auto& ps : e.part) {
              for (auto& st : ps) st.Reset();
            }
          }
        }
        for (size_t row = 0; row < set.num_examples(); ++row) {
          const int32_t v = node_of_item[set.items[row]];
          if (v < 0) continue;
          NodeEval& e = evals[v];
          e.self_stats.Add(set.row(row), set.targets[row], set.weight(row));
          for (size_t c = 0; c < e.candidates.size(); ++c) {
            const int32_t p =
                e.candidates[c].PartitionOf(*feats, set.items[row]);
            if (p >= 0) e.part[c][p].Add(set.row(row), set.targets[row], set.weight(row));
          }
        }
        for (auto& e : evals) {
          e.self.Offer(
              ErrorOfStats(e.self_stats, config.min_examples_per_model),
              set.region, e.self_stats);
          for (size_t c = 0; c < e.candidates.size(); ++c) {
            for (size_t p = 0; p < e.part[c].size(); ++p) {
              e.min_error[c][p] = std::min(
                  e.min_error[c][p],
                  ErrorOfStats(e.part[c][p], config.min_examples_per_model));
            }
          }
        }
        return Status::OK();
      });
    } else {
      // Parallel path: each region's level statistics are computed on a
      // worker from a private copy of the training set (row order, and hence
      // every floating-point accumulation, matches the serial loop exactly),
      // then folded into the level state in scan order — the same
      // Offer()/min() sequence the serial loop performs, so the resulting
      // tree is bit-identical for every thread count.
      struct RegionLevelStats {
        olap::RegionId region = olap::kInvalidRegion;
        std::vector<RegressionSuffStats> self_stats;               // [v]
        std::vector<double> self_error;                            // [v]
        std::vector<std::vector<std::vector<double>>> part_error;  // [v][c][p]
      };
      exec::MergeInSubmissionOrder<RegionLevelStats> reducer(
          pool.get(),
          /*max_outstanding=*/2 * static_cast<size_t>(num_threads),
          "tree.level_scan", [&](size_t, RegionLevelStats r) -> Status {
            for (size_t v = 0; v < width; ++v) {
              NodeEval& e = evals[v];
              e.self.Offer(r.self_error[v], r.region, r.self_stats[v]);
              for (size_t c = 0; c < e.min_error.size(); ++c) {
                for (size_t p = 0; p < e.min_error[c].size(); ++p) {
                  e.min_error[c][p] =
                      std::min(e.min_error[c][p], r.part_error[v][c][p]);
                }
              }
            }
            return Status::OK();
          });
      scan_status = source->Scan([&](const RegionTrainingSet& set) -> Status {
        return reducer.Submit([&feats, &evals, &node_of_item, &config, width,
                               set = set]() {
          RegionLevelStats r;
          r.region = set.region;
          r.self_stats.assign(width, RegressionSuffStats(set.num_features));
          r.self_error.assign(width, 0.0);
          r.part_error.resize(width);
          std::vector<std::vector<std::vector<RegressionSuffStats>>> part(
              width);
          for (size_t v = 0; v < width; ++v) {
            const NodeEval& e = evals[v];
            part[v].resize(e.candidates.size());
            r.part_error[v].resize(e.candidates.size());
            for (size_t c = 0; c < e.candidates.size(); ++c) {
              part[v][c].assign(e.candidates[c].num_partitions,
                                RegressionSuffStats(set.num_features));
              r.part_error[v][c].assign(e.candidates[c].num_partitions, kInf);
            }
          }
          for (size_t row = 0; row < set.num_examples(); ++row) {
            const int32_t v = node_of_item[set.items[row]];
            if (v < 0) continue;
            const NodeEval& e = evals[v];
            r.self_stats[v].Add(set.row(row), set.targets[row],
                                set.weight(row));
            for (size_t c = 0; c < e.candidates.size(); ++c) {
              const int32_t p =
                  e.candidates[c].PartitionOf(*feats, set.items[row]);
              if (p >= 0) {
                part[v][c][p].Add(set.row(row), set.targets[row],
                                  set.weight(row));
              }
            }
          }
          for (size_t v = 0; v < width; ++v) {
            r.self_error[v] =
                ErrorOfStats(r.self_stats[v], config.min_examples_per_model);
            for (size_t c = 0; c < part[v].size(); ++c) {
              for (size_t p = 0; p < part[v][c].size(); ++p) {
                r.part_error[v][c][p] =
                    ErrorOfStats(part[v][c][p], config.min_examples_per_model);
              }
            }
          }
          return r;
        });
      });
      if (scan_status.ok()) scan_status = reducer.Finish();
    }
    if (!scan_status.ok()) {
      // Queued tasks reference this level's state; drain them before the
      // early return unwinds it.
      if (pool != nullptr) pool->Wait();
      return scan_status;
    }
    level_span.End();
    Metrics().level_scan_seconds->Observe(level_watch.ElapsedSeconds());

    // Finalize the level and build the next one.
    std::deque<PendingNode> next;
    for (size_t v = 0; v < width; ++v) {
      PendingNode work = std::move(level[v]);
      NodeEval& e = evals[v];
      const int32_t chosen =
          FinalizeNode(*feats, config, work, e.self, e.candidates,
                       e.min_error, &nodes[work.node_index], &telemetry);
      if (chosen >= 0) {
        ExpandChildren(*feats, std::move(work), &nodes, work.node_index,
                       &next);
      }
    }
    level = std::move(next);
  }
  BellwetherTree tree(std::move(feats), std::move(nodes));
  telemetry.nodes_created = static_cast<int64_t>(tree.nodes().size());
  telemetry.levels = tree.NumLevels();
  telemetry.build_seconds = build_watch.ElapsedSeconds();
  Metrics().rf_passes->Increment(telemetry.data_passes);
  Metrics().nodes_created->Increment(telemetry.nodes_created);
  Metrics().suff_stats_peak->SetMax(
      static_cast<double>(telemetry.suff_stats_peak));
  BW_LOG(obs::LogLevel::kInfo, "tree")
      .Field("passes", telemetry.data_passes)
      .Field("nodes", telemetry.nodes_created)
      .Field("levels", telemetry.levels)
      .Field("seconds", telemetry.build_seconds)
      << "rainforest tree built";
  tree.set_build_telemetry(telemetry);
  FillTreeReport("tree_rainforest", config, telemetry, &tree);
  return tree;
}

int32_t PruneBellwetherTree(BellwetherTree* tree, double complexity_alpha) {
  // Bottom-up cost-complexity pruning on the construction-time errors:
  // collapse a split when the subtree's weighted leaf error plus the
  // complexity charge per retained leaf is no better than the node's own
  // error. Children always have larger indices than their parent (BFS
  // construction), so a reverse pass is bottom-up.
  auto& nodes = tree->mutable_nodes();
  std::vector<double> subtree_cost(nodes.size(), 0.0);
  std::vector<int32_t> subtree_leaves(nodes.size(), 1);
  int32_t pruned = 0;
  for (size_t idx = nodes.size(); idx-- > 0;) {
    TreeNode& n = nodes[idx];
    if (n.is_leaf()) {
      subtree_cost[idx] = n.has_model ? n.num_items * n.error : 0.0;
      subtree_leaves[idx] = 1;
      continue;
    }
    double children_cost = 0.0;
    int32_t children_leaves = 0;
    for (int32_t c : n.children) {
      const TreeNode& child = nodes[c];
      if (child.num_items == 0) continue;
      if (!child.has_model && child.is_leaf()) {
        // These items fall back to this node's model at prediction time.
        children_cost += n.has_model ? child.num_items * n.error : 0.0;
        continue;
      }
      children_cost += subtree_cost[c];
      children_leaves += subtree_leaves[c];
    }
    const double own_cost = n.has_model ? n.num_items * n.error : 0.0;
    if (n.has_model &&
        own_cost <= children_cost + complexity_alpha * children_leaves) {
      n.children.clear();
      n.goodness = 0.0;
      ++pruned;
      subtree_cost[idx] = own_cost;
      subtree_leaves[idx] = 1;
    } else {
      subtree_cost[idx] = children_cost;
      subtree_leaves[idx] = std::max(children_leaves, 1);
    }
  }
  return pruned;
}

}  // namespace bellwether::core
