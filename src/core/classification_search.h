#ifndef BELLWETHER_CORE_CLASSIFICATION_SEARCH_H_
#define BELLWETHER_CORE_CLASSIFICATION_SEARCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "classify/error.h"
#include "classify/gaussian_nb.h"
#include "common/status.h"
#include "olap/region.h"
#include "storage/training_data.h"

namespace bellwether::core {

/// Classification bellwether analysis: the target generation query produces
/// a *class label* instead of a number (§2's classification models; e.g.
/// "will the item's first-year profit clear the break-even threshold?").
/// The labeler maps the numeric query-generated target of the standard
/// pipeline to a class in [0, num_classes) — the paper's key idea that
/// queries label the training data, applied to categorical outputs.
struct ClassificationOptions {
  std::function<int32_t(double target)> labeler;
  int32_t num_classes = 2;
  /// Misclassification-rate estimate: CV folds (<= 1 = training error).
  int32_t cv_folds = 10;
  int32_t min_examples = 10;
  uint64_t seed = 17;
};

struct ClassificationRegionScore {
  olap::RegionId region = olap::kInvalidRegion;
  regression::ErrorStats error;  // rmse = misclassification rate
  size_t num_examples = 0;
  bool usable = false;
};

struct ClassificationSearchResult {
  olap::RegionId bellwether = olap::kInvalidRegion;
  regression::ErrorStats error;
  classify::GaussianNbModel model;
  std::vector<ClassificationRegionScore> scores;

  bool found() const { return bellwether != olap::kInvalidRegion; }

  /// Mean misclassification rate over usable regions.
  double AverageError() const;
};

/// Scores each region training set by the cross-validated misclassification
/// rate of a Gaussian NB classifier on (features, labeler(target)) and
/// returns the minimum-error region with its refit model. One sequential
/// scan plus one read for the winner.
Result<ClassificationSearchResult> RunClassificationBellwetherSearch(
    storage::TrainingDataSource* source, const ClassificationOptions& options,
    const std::vector<uint8_t>* item_mask = nullptr);

/// Convenience labeler: 1 when the target exceeds `threshold`, else 0.
std::function<int32_t(double)> ThresholdLabeler(double threshold);

/// Median of the finite targets — a natural break-even threshold.
double MedianTarget(const std::vector<double>& targets);

}  // namespace bellwether::core

#endif  // BELLWETHER_CORE_CLASSIFICATION_SEARCH_H_
