#include "core/classification_cube.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace bellwether::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using classify::GaussianNbModel;
using classify::NbSuffStats;
using storage::RegionTrainingSet;

struct Pick {
  double error = kInf;
  olap::RegionId region = olap::kInvalidRegion;
  NbSuffStats stats;

  void Offer(double err, olap::RegionId r, const NbSuffStats& s) {
    if (err < error) {
      error = err;
      region = r;
      stats = s;
    }
  }
};

bool ItemMasked(const std::vector<uint8_t>* item_mask, int32_t item) {
  return item_mask != nullptr &&
         (static_cast<size_t>(item) >= item_mask->size() ||
          (*item_mask)[item] == 0);
}

std::vector<int32_t> SubsetSizes(const ItemSubsetSpace& subsets,
                                 const std::vector<uint8_t>* item_mask) {
  std::vector<int32_t> sizes(subsets.NumSubsets(), 0);
  for (int32_t i = 0; i < subsets.num_items(); ++i) {
    if (ItemMasked(item_mask, i)) continue;
    subsets.ForEachContainingSubset(i, [&](SubsetId s) { ++sizes[s]; });
  }
  return sizes;
}

Status ValidateConfig(const ClassificationCubeConfig& config) {
  if (!config.labeler) {
    return Status::InvalidArgument("classification cube needs a labeler");
  }
  if (config.num_classes < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }
  return Status::OK();
}

Result<ClassificationCube> Finalize(
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const std::vector<int32_t>& sizes,
    const std::vector<SubsetId>& significant, std::vector<Pick> picks) {
  std::vector<int64_t> cell_of(subsets->NumSubsets(), -1);
  std::vector<ClassificationCubeCell> cells;
  for (size_t k = 0; k < significant.size(); ++k) {
    ClassificationCubeCell cell;
    cell.subset = significant[k];
    cell.subset_size = sizes[significant[k]];
    if (picks[k].region != olap::kInvalidRegion && picks[k].error < kInf) {
      auto model = picks[k].stats.Fit();
      if (model.ok()) {
        cell.has_model = true;
        cell.region = picks[k].region;
        cell.error = picks[k].error;
        cell.model = std::move(model).value();
      }
    }
    cell_of[cell.subset] = static_cast<int64_t>(cells.size());
    cells.push_back(std::move(cell));
  }
  return ClassificationCube(std::move(subsets), std::move(cell_of),
                            std::move(cells));
}

}  // namespace

Result<int32_t> ClassificationCube::PredictItem(
    int32_t item, const RegionFeatureLookup& lookup) const {
  struct Candidate {
    double error;
    SubsetId subset;
    const ClassificationCubeCell* cell;
  };
  std::vector<Candidate> candidates;
  subsets_->ForEachContainingSubset(item, [&](SubsetId s) {
    const ClassificationCubeCell* cell = FindCell(s);
    if (cell != nullptr && cell->has_model) {
      candidates.push_back({cell->error, s, cell});
    }
  });
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.error != b.error) return a.error < b.error;
              return a.subset < b.subset;
            });
  for (const Candidate& c : candidates) {
    const double* x = lookup.Find(c.cell->region, item);
    if (x == nullptr) continue;
    return c.cell->model.Predict(x);
  }
  return Status::NotFound("no candidate region has data for the item");
}

Result<ClassificationCube> BuildClassificationCubeNaive(
    storage::TrainingDataSource* source,
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const ClassificationCubeConfig& config,
    const std::vector<uint8_t>* item_mask) {
  BW_RETURN_IF_ERROR(ValidateConfig(config));
  const std::vector<int32_t> sizes = SubsetSizes(*subsets, item_mask);
  std::vector<SubsetId> significant;
  for (size_t s = 0; s < sizes.size(); ++s) {
    if (sizes[s] >= std::max(config.min_subset_size, 1)) {
      significant.push_back(static_cast<SubsetId>(s));
    }
  }
  std::vector<Pick> picks(significant.size());
  const size_t num_sets = source->num_region_sets();

  std::vector<uint8_t> member(subsets->num_items(), 0);
  for (size_t k = 0; k < significant.size(); ++k) {
    const SubsetId sid = significant[k];
    for (int32_t i = 0; i < subsets->num_items(); ++i) {
      member[i] =
          !ItemMasked(item_mask, i) && subsets->SubsetContainsItem(sid, i);
    }
    for (size_t s = 0; s < num_sets; ++s) {
      BW_ASSIGN_OR_RETURN(RegionTrainingSet set, source->Read(s));
      NbSuffStats stats(set.num_features, config.num_classes);
      for (size_t row = 0; row < set.num_examples(); ++row) {
        if (member[set.items[row]]) {
          stats.Add(set.row(row), config.labeler(set.targets[row]));
        }
      }
      if (stats.num_examples() <
          std::max<int64_t>(config.min_examples_per_model, 2)) {
        continue;
      }
      auto model = stats.Fit();
      if (!model.ok()) continue;
      // Training-set misclassification rate over the same rows.
      int64_t wrong = 0;
      for (size_t row = 0; row < set.num_examples(); ++row) {
        if (!member[set.items[row]]) continue;
        if (model->Predict(set.row(row)) !=
            config.labeler(set.targets[row])) {
          ++wrong;
        }
      }
      picks[k].Offer(static_cast<double>(wrong) /
                         static_cast<double>(stats.num_examples()),
                     set.region, stats);
    }
  }
  return Finalize(std::move(subsets), sizes, significant, std::move(picks));
}

Result<ClassificationCube> BuildClassificationCubeOptimized(
    storage::TrainingDataSource* source,
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const ClassificationCubeConfig& config,
    const std::vector<uint8_t>* item_mask) {
  BW_RETURN_IF_ERROR(ValidateConfig(config));
  const std::vector<int32_t> sizes = SubsetSizes(*subsets, item_mask);
  std::vector<SubsetId> significant;
  std::vector<int64_t> sig_index(subsets->NumSubsets(), -1);
  for (size_t s = 0; s < sizes.size(); ++s) {
    if (sizes[s] >= std::max(config.min_subset_size, 1)) {
      sig_index[s] = static_cast<int64_t>(significant.size());
      significant.push_back(static_cast<SubsetId>(s));
    }
  }
  std::vector<Pick> picks(significant.size());

  // Per item: base subset and (significant) containing subsets.
  std::vector<SubsetId> base_of(subsets->num_items());
  std::vector<std::vector<int32_t>> containing(subsets->num_items());
  for (int32_t i = 0; i < subsets->num_items(); ++i) {
    base_of[i] = subsets->BaseSubsetOf(i);
    if (ItemMasked(item_mask, i)) continue;
    subsets->ForEachContainingSubset(i, [&](SubsetId s) {
      if (sig_index[s] >= 0) {
        containing[i].push_back(static_cast<int32_t>(sig_index[s]));
      }
    });
    std::sort(containing[i].begin(), containing[i].end());
  }

  const size_t num_subsets = static_cast<size_t>(subsets->NumSubsets());
  std::vector<NbSuffStats> lattice(num_subsets);
  std::vector<GaussianNbModel> models(significant.size());
  std::vector<uint8_t> model_ok(significant.size());
  std::vector<int64_t> wrong(significant.size());
  std::vector<int64_t> counted(significant.size());

  BW_RETURN_IF_ERROR(source->Scan([&](const RegionTrainingSet& set)
                                      -> Status {
    // Pass 1 over the rows: accumulate NB statistics at base subsets.
    for (auto& s : lattice) {
      if (!s.empty()) s.Reset();
    }
    for (size_t row = 0; row < set.num_examples(); ++row) {
      const int32_t item = set.items[row];
      if (ItemMasked(item_mask, item)) continue;
      NbSuffStats& s = lattice[base_of[item]];
      if (s.num_classes() == 0) {
        s = NbSuffStats(set.num_features, config.num_classes);
      }
      s.Add(set.row(row), config.labeler(set.targets[row]));
    }
    // Lattice rollup (element-wise merges; NB statistics are algebraic).
    {
      const olap::RegionSpace& space = subsets->space();
      const size_t nd = space.num_dims();
      std::vector<int32_t> cards(nd);
      std::vector<int64_t> strides(nd, 1);
      for (size_t d = 0; d < nd; ++d) {
        cards[d] = olap::DimensionCardinality(space.dim(d));
      }
      for (size_t d = nd - 1; d-- > 0;) {
        strides[d] = strides[d + 1] * cards[d + 1];
      }
      for (size_t d = 0; d < nd; ++d) {
        const auto& h =
            std::get<olap::HierarchicalDimension>(space.dim(d));
        for (olap::NodeId n : h.NodesBottomUp()) {
          if (n == h.root()) continue;
          const olap::NodeId parent = h.parent(n);
          const int64_t stride = strides[d];
          const int64_t block = stride * cards[d];
          for (int64_t hi = 0; hi < space.NumRegions(); hi += block) {
            for (int64_t lo = 0; lo < stride; ++lo) {
              NbSuffStats& src = lattice[hi + n * stride + lo];
              if (src.empty()) continue;
              lattice[hi + parent * stride + lo].Merge(src);
            }
          }
        }
      }
    }
    // Fit per significant subset.
    for (size_t k = 0; k < significant.size(); ++k) {
      wrong[k] = 0;
      counted[k] = 0;
      model_ok[k] = 0;
      const NbSuffStats& s = lattice[significant[k]];
      if (s.num_examples() <
          std::max<int64_t>(config.min_examples_per_model, 2)) {
        continue;
      }
      auto model = s.Fit();
      if (!model.ok()) continue;
      models[k] = std::move(model).value();
      model_ok[k] = 1;
    }
    // Pass 2 over the rows: scatter misclassifications to every containing
    // significant subset (error counts are additive over rows).
    for (size_t row = 0; row < set.num_examples(); ++row) {
      const int32_t item = set.items[row];
      if (ItemMasked(item_mask, item)) continue;
      const int32_t label = config.labeler(set.targets[row]);
      for (int32_t k : containing[item]) {
        if (!model_ok[k]) continue;
        ++counted[k];
        if (models[k].Predict(set.row(row)) != label) ++wrong[k];
      }
    }
    for (size_t k = 0; k < significant.size(); ++k) {
      if (!model_ok[k] || counted[k] == 0) continue;
      picks[k].Offer(static_cast<double>(wrong[k]) /
                         static_cast<double>(counted[k]),
                     set.region, lattice[significant[k]]);
    }
    return Status::OK();
  }));
  return Finalize(std::move(subsets), sizes, significant, std::move(picks));
}

}  // namespace bellwether::core
