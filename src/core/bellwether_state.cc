#include "core/bellwether_state.h"

#include <algorithm>
#include <istream>
#include <limits>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/eval_util.h"
#include "core/model_io.h"
#include "core/search_internal.h"
#include "exec/parallel.h"
#include "obs/logger.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "regression/suff_stats_io.h"
#include "robust/checkpoint.h"
#include "robust/fault_injection.h"
#include "storage/arena.h"

namespace bellwether::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Bound on serialized counts (mask entries, retained rows per region), in
// line with the other model_io sections: a corrupt count fails cleanly
// instead of turning into a gigantic allocation.
constexpr int64_t kMaxStateCount = int64_t{1} << 26;

using regression::RegressionSuffStats;
using storage::RegionTrainingSet;

// Registry counters for the incremental-maintenance path; resolved once and
// cached (registry pointers are stable).
struct StateMetrics {
  obs::Counter* delta_batches;
  obs::Counter* delta_rows;
  obs::Counter* rederived;
  obs::Counter* reused;
  obs::Counter* saves;
  obs::Counter* opens;
};

const StateMetrics& Metrics() {
  static const StateMetrics m{
      obs::DefaultMetrics().GetCounter(obs::kMStateDeltaBatches),
      obs::DefaultMetrics().GetCounter(obs::kMStateDeltaRows),
      obs::DefaultMetrics().GetCounter(obs::kMStateCellsRederived),
      obs::DefaultMetrics().GetCounter(obs::kMStateCellsReused),
      obs::DefaultMetrics().GetCounter(obs::kMStateSaves),
      obs::DefaultMetrics().GetCounter(obs::kMStateOpens)};
  return m;
}

// Appends src's rows to dst in ingest order. When exactly one side carries
// explicit weights, the other side's implicit 1.0 weights are materialized
// so RegionTrainingSet::weight(i) returns the same value either way — the
// accumulators already folded these rows with those exact weights.
void AppendRows(RegionTrainingSet* dst, const RegionTrainingSet& src) {
  const size_t old_n = dst->num_examples();
  const size_t add_n = src.num_examples();
  const bool need_weights = dst->weighted() || src.weighted();
  dst->items.insert(dst->items.end(), src.items.begin(), src.items.end());
  dst->features.insert(dst->features.end(), src.features.begin(),
                       src.features.end());
  dst->targets.insert(dst->targets.end(), src.targets.begin(),
                      src.targets.end());
  if (need_weights) {
    if (dst->weights.size() != old_n) dst->weights.assign(old_n, 1.0);
    if (src.weighted()) {
      dst->weights.insert(dst->weights.end(), src.weights.begin(),
                          src.weights.end());
    } else {
      dst->weights.insert(dst->weights.end(), add_n, 1.0);
    }
  }
}

}  // namespace

Result<std::unique_ptr<BellwetherState>> BellwetherState::Init(
    std::shared_ptr<const ItemSubsetSpace> subsets, Options options,
    const std::vector<uint8_t>* item_mask) {
  if (subsets == nullptr) {
    return Status::InvalidArgument("null item subset space");
  }
  auto state = std::unique_ptr<BellwetherState>(new BellwetherState());
  state->subsets_ = std::move(subsets);
  state->options_ = std::move(options);
  if (item_mask != nullptr) {
    state->has_mask_ = true;
    state->item_mask_ = *item_mask;
  }
  const ItemSubsetSpace& space = *state->subsets_;
  const CubeBuildConfig& config = state->options_.config;
  const std::vector<uint8_t>* mask =
      state->has_mask_ ? &state->item_mask_ : nullptr;
  state->sizes_ = internal::SubsetSizes(space, mask);
  state->significant_ =
      internal::SignificantSubsets(state->sizes_, config.min_subset_size);
  // Dense SubsetId -> significant index (or -1).
  state->sig_index_.assign(space.NumSubsets(), -1);
  for (size_t k = 0; k < state->significant_.size(); ++k) {
    state->sig_index_[state->significant_[k]] = static_cast<int64_t>(k);
  }
  // Per item: the significant subsets containing it, ascending.
  state->containing_.resize(space.num_items());
  for (int32_t i = 0; i < space.num_items(); ++i) {
    if (internal::ItemMasked(mask, i)) continue;
    space.ForEachContainingSubset(i, [&](SubsetId s) {
      if (state->sig_index_[s] >= 0) {
        state->containing_[i].push_back(
            static_cast<int32_t>(state->sig_index_[s]));
      }
    });
    std::sort(state->containing_[i].begin(), state->containing_[i].end());
  }
  state->dirty_.Resize(space.NumSubsets());
  state->cell_cache_.resize(state->significant_.size());
  // State identity: everything the derived skeleton depends on. Distinct
  // from the scan checkpoint fingerprint inside IngestScan, which also
  // covers the source shape (its historical formula, kept bit-compatible).
  robust::FingerprintBuilder fp;
  fp.Add(static_cast<uint64_t>(space.NumSubsets()))
      .Add(static_cast<uint64_t>(config.min_subset_size))
      .Add(static_cast<uint64_t>(config.min_examples_per_model))
      .Add(static_cast<uint64_t>(config.compute_cv_stats ? 1 : 0))
      .Add(static_cast<uint64_t>(config.cv_folds))
      .Add(config.seed);
  for (SubsetId sid : state->significant_) {
    fp.Add(static_cast<uint64_t>(sid));
  }
  fp.Add(static_cast<uint64_t>(state->has_mask_ ? 1 : 0));
  if (state->has_mask_) {
    fp.Add(static_cast<uint64_t>(state->item_mask_.size()));
    for (uint8_t m : state->item_mask_) {
      fp.Add(static_cast<uint64_t>(m != 0 ? 1 : 0));
    }
  }
  state->fingerprint_ = fp.value();
  return state;
}

Status BellwetherState::IngestScan(storage::TrainingDataSource* source) {
  if (options_.incremental) {
    return Status::FailedPrecondition(
        "IngestScan is the one-shot path; incremental states take ApplyDelta");
  }
  if (scanned_) {
    return Status::FailedPrecondition("IngestScan already performed");
  }
  const CubeBuildConfig& config = options_.config;
  picks_.assign(significant_.size(), internal::Pick{});

  // ---- Checkpoint/resume (docs/ROBUSTNESS.md) ----
  // The build fingerprint ties a checkpoint to this exact build: subset
  // space, significant-subset list, pick-relevant config, and source shape.
  uint64_t fingerprint = 0;
  int64_t resume_from = 0;
  const bool checkpointing = !config.checkpoint_path.empty();
  if (checkpointing) {
    robust::FingerprintBuilder fp;
    fp.Add(static_cast<uint64_t>(subsets_->NumSubsets()))
        .Add(static_cast<uint64_t>(source->num_region_sets()))
        .Add(static_cast<uint64_t>(config.min_subset_size))
        .Add(static_cast<uint64_t>(config.min_examples_per_model));
    for (SubsetId sid : significant_) fp.Add(static_cast<uint64_t>(sid));
    fingerprint = fp.value();
    auto ckpt = robust::LoadCubeCheckpoint(config.checkpoint_path);
    if (ckpt.ok() && ckpt.value().fingerprint == fingerprint &&
        ckpt.value().picks.size() == significant_.size()) {
      for (size_t k = 0; k < picks_.size(); ++k) {
        robust::PickCheckpoint& pk = ckpt.value().picks[k];
        picks_[k].error = pk.error;
        picks_[k].region = pk.region;
        picks_[k].stats = std::move(pk.stats);
        picks_[k].fallback_region = pk.fallback_region;
        picks_[k].fallback_examples = pk.fallback_examples;
        picks_[k].fallback_stats = std::move(pk.fallback_stats);
      }
      resume_from = ckpt.value().regions_processed;
      telemetry_.resumed_regions = resume_from;
      obs::DefaultMetrics()
          .GetCounter(obs::kMCubeCheckpointResumes)
          ->Increment();
      BW_LOG(obs::LogLevel::kInfo, "cube")
          << "resuming cube build from checkpoint at region " << resume_from;
    }
  }
  auto save_checkpoint = [&](int64_t regions_processed) -> Status {
    robust::CubeBuildCheckpoint ckpt;
    ckpt.fingerprint = fingerprint;
    ckpt.regions_processed = regions_processed;
    ckpt.picks.resize(picks_.size());
    for (size_t k = 0; k < picks_.size(); ++k) {
      robust::PickCheckpoint& pk = ckpt.picks[k];
      pk.error = picks_[k].error;
      pk.region = picks_[k].region;
      pk.stats = picks_[k].stats;
      pk.fallback_region = picks_[k].fallback_region;
      pk.fallback_examples = picks_[k].fallback_examples;
      pk.fallback_stats = picks_[k].fallback_stats;
    }
    BW_RETURN_IF_ERROR(
        robust::SaveCubeCheckpoint(ckpt, config.checkpoint_path));
    ++telemetry_.checkpoints_saved;
    obs::DefaultMetrics()
        .GetCounter(obs::kMCubeCheckpointsSaved)
        ->Increment();
    return Status::OK();
  };

  std::vector<RegressionSuffStats> stats;
  int64_t region_pos = 0;

  // Tail work of one *merged* region, shared by the serial and parallel
  // paths: count it, save a checkpoint on the configured cadence, and honor
  // the injected-crash fault. In the parallel build this runs in ascending
  // region order on the scan thread, so checkpoint contents and crash
  // arrival counts are bit-identical to the serial build.
  auto finish_region = [&]() -> Status {
    ++region_pos;
    if (checkpointing &&
        region_pos % std::max(config.checkpoint_every, 1) == 0) {
      BW_RETURN_IF_ERROR(save_checkpoint(region_pos));
    }
    // Crash injection sits after the checkpoint write, modeling a process
    // killed between completing a region and starting the next one.
    if (robust::ShouldCrash(robust::kFaultCubeScan)) {
      return Status::IoError(
          "injected crash during cube scan (simulated kill)");
    }
    return Status::OK();
  };

  const int32_t num_threads = exec::ResolveNumThreads(config.exec.num_threads);
  std::unique_ptr<exec::ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<exec::ThreadPool>(num_threads);
  Status scan_status;
  if (pool == nullptr) {
    scan_status = source->Scan([&](const RegionTrainingSet& set) -> Status {
      // Fast-forward past regions a resumed checkpoint already accounts for
      // (the physical scan still delivers them; their compute is skipped).
      if (region_pos < resume_from) {
        ++region_pos;
        return Status::OK();
      }
      if (stats.empty()) {
        stats.assign(significant_.size(),
                     RegressionSuffStats(set.num_features));
      } else {
        for (auto& s : stats) s.Reset();
      }
      // "Build a model h_r on r for S" for every significant subset S: each
      // row contributes to every containing subset's statistics directly.
      for (size_t row = 0; row < set.num_examples(); ++row) {
        for (int32_t k : containing_[set.items[row]]) {
          stats[k].Add(set.row(row), set.targets[row], set.weight(row));
        }
      }
      for (size_t k = 0; k < significant_.size(); ++k) {
        picks_[k].Offer(
            TrainingErrorOfStats(stats[k], config.min_examples_per_model),
            set.region, stats[k]);
      }
      return finish_region();
    });
  } else {
    // Parallel path: each region's per-subset <MinError, Size> accumulators
    // are computed on a worker from a private copy of the training set (row
    // order, and hence every floating-point accumulation, matches the serial
    // loop exactly), then offered to the shared picks in scan order — the
    // same Offer() sequence the serial loop performs, so cube cells,
    // checkpoints, and crash points are bit-identical for any thread count.
    struct RegionCubeStats {
      olap::RegionId region = olap::kInvalidRegion;
      std::vector<RegressionSuffStats> stats;  // per significant subset
      std::vector<double> error;
    };
    int64_t scan_pos = 0;
    exec::MergeInSubmissionOrder<RegionCubeStats> reducer(
        pool.get(), /*max_outstanding=*/2 * static_cast<size_t>(num_threads),
        "cube.scan_merge", [&](size_t, RegionCubeStats r) -> Status {
          for (size_t k = 0; k < significant_.size(); ++k) {
            picks_[k].Offer(r.error[k], r.region, r.stats[k]);
          }
          return finish_region();
        });
    scan_status = source->Scan([&](const RegionTrainingSet& set) -> Status {
      if (scan_pos < resume_from) {
        // The resume skip is a strict prefix of the scan, before anything
        // was submitted to the pool, so the merge-side region counter can
        // be advanced inline.
        ++scan_pos;
        ++region_pos;
        return Status::OK();
      }
      ++scan_pos;
      return reducer.Submit(
          [this, &config, set = set]() {
            RegionCubeStats r;
            r.region = set.region;
            r.stats.assign(significant_.size(),
                           RegressionSuffStats(set.num_features));
            for (size_t row = 0; row < set.num_examples(); ++row) {
              for (int32_t k : containing_[set.items[row]]) {
                r.stats[k].Add(set.row(row), set.targets[row],
                               set.weight(row));
              }
            }
            r.error.resize(significant_.size());
            for (size_t k = 0; k < significant_.size(); ++k) {
              r.error[k] = TrainingErrorOfStats(
                  r.stats[k], config.min_examples_per_model);
            }
            return r;
          });
    });
    if (scan_status.ok()) scan_status = reducer.Finish();
  }
  BW_RETURN_IF_ERROR(scan_status);
  if (checkpointing) {
    // Final state, in case the region count is not a multiple of the
    // checkpoint interval.
    BW_RETURN_IF_ERROR(save_checkpoint(region_pos));
  }
  telemetry_.data_passes = 1;
  scan_source_ = source;
  scanned_ = true;
  return Status::OK();
}

BellwetherState::RegionSlot& BellwetherState::SlotFor(olap::RegionId region,
                                                     int32_t num_features) {
  RegionSlot& slot = slots_[region];
  if (slot.rows.region == olap::kInvalidRegion) {
    slot.stats.resize(significant_.size());
    slot.errors.assign(significant_.size(), kInf);
    slot.rows.region = region;
    slot.rows.num_features = num_features;
  }
  return slot;
}

Status BellwetherState::ValidateDeltaBatch(
    const std::vector<RegionTrainingSet>& batch) const {
  olap::RegionId prev = olap::kInvalidRegion;
  int32_t arity = num_features_;
  const int32_t num_items = subsets_->num_items();
  for (const RegionTrainingSet& set : batch) {
    if (set.region < 0) {
      return Status::InvalidArgument("delta set with invalid region id");
    }
    if (set.region <= prev) {
      return Status::InvalidArgument(
          "delta batch regions must be strictly ascending and distinct");
    }
    prev = set.region;
    if (set.num_examples() == 0) continue;
    if (set.num_features <= 0) {
      return Status::InvalidArgument("delta set without feature columns");
    }
    if (arity == 0) arity = set.num_features;
    if (set.num_features != arity) {
      return Status::InvalidArgument(
          "delta set feature arity differs from the state's");
    }
    if (set.features.size() !=
        set.num_examples() * static_cast<size_t>(set.num_features)) {
      return Status::InvalidArgument("delta set features size mismatch");
    }
    if (set.targets.size() != set.num_examples()) {
      return Status::InvalidArgument("delta set targets size mismatch");
    }
    if (!set.weights.empty() && set.weights.size() != set.num_examples()) {
      return Status::InvalidArgument("delta set weights size mismatch");
    }
    for (int32_t item : set.items) {
      if (item < 0 || item >= num_items) {
        return Status::InvalidArgument("delta row item index out of range");
      }
    }
  }
  return Status::OK();
}

Status BellwetherState::ApplyDelta(std::vector<RegionTrainingSet> batch) {
  if (!options_.incremental) {
    return Status::FailedPrecondition(
        "ApplyDelta requires an incremental BellwetherState");
  }
  // Transactional entry fault: fires before anything is mutated, so a
  // caller can retry the whole batch.
  BW_RETURN_IF_ERROR(robust::MaybeInjectIo(robust::kFaultStateDelta));
  BW_RETURN_IF_ERROR(ValidateDeltaBatch(batch));
  obs::TraceSpan span("BellwetherState::ApplyDelta", "state");
  Stopwatch delta_watch;
  for (const RegionTrainingSet& set : batch) {
    if (set.num_examples() > 0 && num_features_ == 0) {
      num_features_ = set.num_features;
      break;
    }
  }
  const CubeBuildConfig& config = options_.config;

  // One task per region: copy the base accumulators of the touched subsets,
  // fold the new rows in row order (the exact floating-point sequence a
  // from-scratch scan of the concatenated rows performs), and compute the
  // new errors. Commits run in submission order — ascending region — on
  // this thread, so the state is bit-identical for any thread count.
  struct RegionDelta {
    RegionSlot* slot = nullptr;
    RegionTrainingSet set;
    std::vector<int32_t> touched;  // significant indices, ascending
    std::vector<RegressionSuffStats> stats;
    std::vector<double> errors;
  };
  const int32_t num_threads = exec::ResolveNumThreads(config.exec.num_threads);
  std::unique_ptr<exec::ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<exec::ThreadPool>(num_threads);
  int64_t rows_committed = 0;
  Status status;
  {
    exec::MergeInSubmissionOrder<RegionDelta> reducer(
        pool.get(), /*max_outstanding=*/2 * static_cast<size_t>(num_threads),
        "state.delta_merge", [&](size_t, RegionDelta d) -> Status {
          RegionSlot& slot = *d.slot;
          for (size_t t = 0; t < d.touched.size(); ++t) {
            const int32_t k = d.touched[t];
            slot.stats[k] = std::move(d.stats[t]);
            slot.errors[k] = d.errors[t];
            dirty_.Mark(significant_[k]);
          }
          rows_committed += static_cast<int64_t>(d.set.num_examples());
          AppendRows(&slot.rows, d.set);
          storage::RegionSetArena::Default().Release(std::move(d.set));
          slot.score_valid = false;
          // Crash injection after the region's commit, modeling a process
          // killed between regions of a batch: the in-memory state holds a
          // partial batch and must be reopened from its last save.
          if (robust::ShouldCrash(robust::kFaultStateDelta)) {
            return Status::IoError(
                "injected crash during delta apply (simulated kill)");
          }
          return Status::OK();
        });
    for (RegionTrainingSet& set : batch) {
      if (set.num_examples() == 0) continue;
      // Slot creation happens here on the submitting thread; map nodes are
      // stable, and batch regions are distinct, so in-flight tasks for
      // other regions never observe their slot mutating.
      RegionSlot* slot = &SlotFor(set.region, set.num_features);
      auto owned = std::make_shared<RegionTrainingSet>(std::move(set));
      status = reducer.Submit([this, &config, slot, owned]() {
        RegionDelta d;
        d.slot = slot;
        d.set = std::move(*owned);
        const size_t nsig = significant_.size();
        std::vector<uint8_t> seen(nsig, 0);
        for (size_t r = 0; r < d.set.num_examples(); ++r) {
          for (int32_t k : containing_[d.set.items[r]]) {
            if (!seen[k]) {
              seen[k] = 1;
              d.touched.push_back(k);
            }
          }
        }
        std::sort(d.touched.begin(), d.touched.end());
        std::vector<int32_t> local(nsig, -1);
        d.stats.reserve(d.touched.size());
        for (size_t t = 0; t < d.touched.size(); ++t) {
          local[d.touched[t]] = static_cast<int32_t>(t);
          RegressionSuffStats s = slot->stats[d.touched[t]];
          if (s.num_features() == 0) {
            s = RegressionSuffStats(d.set.num_features);
          }
          d.stats.push_back(std::move(s));
        }
        for (size_t r = 0; r < d.set.num_examples(); ++r) {
          for (int32_t k : containing_[d.set.items[r]]) {
            d.stats[local[k]].Add(d.set.row(r), d.set.targets[r],
                                  d.set.weight(r));
          }
        }
        d.errors.reserve(d.touched.size());
        for (const RegressionSuffStats& s : d.stats) {
          d.errors.push_back(
              TrainingErrorOfStats(s, config.min_examples_per_model));
        }
        return d;
      });
      if (!status.ok()) break;
    }
    if (status.ok()) status = reducer.Finish();
  }
  BW_RETURN_IF_ERROR(status);
  ++delta_batches_;
  delta_seconds_ += delta_watch.ElapsedSeconds();
  Metrics().delta_batches->Increment(1);
  Metrics().delta_rows->Increment(rows_committed);
  BW_LOG(obs::LogLevel::kInfo, "state")
      .Field("rows", rows_committed)
      .Field("dirty_cells", dirty_.count())
      .Field("batches", delta_batches_)
      << "delta batch applied";
  if (!config.checkpoint_path.empty()) {
    // Batch-boundary durability: a crash mid-batch reopens this save and
    // re-applies the whole batch, converging on the same state bit for bit.
    BW_RETURN_IF_ERROR(Save(config.checkpoint_path));
  }
  return Status::OK();
}

internal::RegionRowsVisitor BellwetherState::SlotRowsVisitor() const {
  return [this](olap::RegionId region,
                const std::function<Status(const RegionTrainingSet&)>& fn)
             -> Status {
    auto it = slots_.find(region);
    if (it == slots_.end()) return Status::OK();
    return fn(it->second.rows);
  };
}

Result<BellwetherCube> BellwetherState::FinalizeOneShot() {
  if (!scanned_) {
    return Status::FailedPrecondition(
        "one-shot Finalize requires a completed IngestScan");
  }
  const CubeBuildConfig& config = options_.config;
  const std::vector<uint8_t>* mask = has_mask_ ? &item_mask_ : nullptr;
  internal::RegionRowsVisitor rows;
  if (config.compute_cv_stats) {
    rows = internal::SourceRowsVisitor(scan_source_);
  }
  std::vector<CubeCell> cells;
  cells.reserve(significant_.size());
  for (size_t k = 0; k < significant_.size(); ++k) {
    const SubsetId sid = significant_[k];
    BW_ASSIGN_OR_RETURN(
        CubeCell cell,
        internal::BuildCubeCell(sid, sizes_[sid], picks_[k], config, mask,
                                *subsets_, rows));
    cells.push_back(std::move(cell));
  }
  return internal::AssembleCube(options_.report_name, subsets_, config,
                                std::move(cells), telemetry_, build_watch_);
}

Result<BellwetherCube> BellwetherState::Finalize() {
  if (!options_.incremental) return FinalizeOneShot();
  obs::TraceSpan span("BellwetherState::Finalize", "state");
  Stopwatch finalize_watch;
  const CubeBuildConfig& config = options_.config;
  const std::vector<uint8_t>* mask = has_mask_ ? &item_mask_ : nullptr;
  const size_t nsig = significant_.size();
  internal::RegionRowsVisitor rows;
  if (config.compute_cv_stats) rows = SlotRowsVisitor();
  int64_t rederived = 0;
  int64_t reused = 0;
  for (size_t k = 0; k < nsig; ++k) {
    const SubsetId sid = significant_[k];
    // A cell's inputs change exactly when a delta row touched its subset:
    // containing_ enumerates the significant subsets of each (unmasked)
    // item, and both the accumulators and the CV row filter select rows
    // through that same membership test.
    if (finalized_once_ && !dirty_.IsMarked(sid)) {
      ++reused;
      continue;
    }
    // Derive the pick by offering every region in ascending order — the
    // same Offer() sequence a from-scratch scan performs.
    internal::Pick pick;
    for (const auto& [region, slot] : slots_) {
      pick.Offer(slot.errors[k], region, slot.stats[k]);
    }
    BW_ASSIGN_OR_RETURN(
        CubeCell cell,
        internal::BuildCubeCell(sid, sizes_[sid], pick, config, mask,
                                *subsets_, rows));
    cell_cache_[k] = std::move(cell);
    ++rederived;
  }
  dirty_.Clear();
  finalized_once_ = true;
  Metrics().rederived->Increment(rederived);
  Metrics().reused->Increment(reused);
  BW_LOG(obs::LogLevel::kInfo, "state")
      .Field("rederived", rederived)
      .Field("reused", reused)
      << "state finalized";
  CubeBuildTelemetry telemetry;
  telemetry.data_passes = 1;
  std::vector<CubeCell> cells = cell_cache_;
  BW_ASSIGN_OR_RETURN(
      BellwetherCube cube,
      internal::AssembleCube(options_.report_name, subsets_, config,
                             std::move(cells), telemetry, finalize_watch));
  // Operational timing phases of the incremental path. Phases are excluded
  // from the report's logical fingerprint, so delta-maintained and rebuilt
  // cubes still compare byte-identical on their logical sections.
  obs::RunReport report = cube.build_report();
  report.AddPhase("state.apply_delta", delta_seconds_);
  report.AddPhase("state.finalize", finalize_watch.ElapsedSeconds());
  cube.set_build_report(std::move(report));
  return cube;
}

Result<BasicSearchResult> BellwetherState::FinalizeSearch(
    const BasicSearchOptions& options) {
  if (!options_.incremental) {
    return Status::FailedPrecondition(
        "FinalizeSearch requires an incremental BellwetherState");
  }
  obs::TraceSpan span("BellwetherState::FinalizeSearch", "state");
  // Cached per-region scores are keyed by the scoring options; a change
  // invalidates every cache entry (delta rows invalidate per region).
  robust::FingerprintBuilder fp;
  fp.Add(static_cast<uint64_t>(options.estimate))
      .Add(static_cast<uint64_t>(options.cv_folds))
      .Add(options.seed)
      .Add(static_cast<uint64_t>(options.min_examples));
  if (fp.value() != search_options_key_) {
    for (auto& [region, slot] : slots_) slot.score_valid = false;
    search_options_key_ = fp.value();
  }
  const std::vector<uint8_t>* mask = has_mask_ ? &item_mask_ : nullptr;
  BasicSearchResult result;
  SearchTelemetry& t = result.telemetry;
  Stopwatch scan_watch;
  result.scores.reserve(slots_.size());
  obs::Histogram* fit_seconds = obs::DefaultMetrics().GetHistogram(
      obs::kMSearchRegionFitSeconds, obs::LatencyBucketsSeconds());
  size_t ordinal = 0;
  for (auto& [region, slot] : slots_) {
    ++t.regions_enumerated;
    t.rows_scanned += static_cast<int64_t>(slot.rows.num_examples());
    if (!slot.score_valid) {
      Stopwatch fit_watch;
      internal::ScoreRegion(slot.rows, options, mask, &slot.score);
      fit_seconds->Observe(fit_watch.ElapsedSeconds());
      slot.score_valid = true;
    }
    RegionScore score = slot.score;
    score.source_index = ordinal++;
    result.scores.push_back(std::move(score));
  }
  for (const RegionScore& score : result.scores) {
    if (score.usable) {
      ++t.regions_scored;
    } else if (score.num_examples <
               static_cast<size_t>(
                   std::max<int32_t>(options.min_examples, 2))) {
      ++t.skipped_min_examples;
    } else {
      ++t.model_fit_failures;
    }
  }
  t.scan_seconds = scan_watch.ElapsedSeconds();
  obs::DefaultMetrics()
      .GetCounter(obs::kMSearchRegionsEnumerated)
      ->Increment(t.regions_enumerated);
  obs::DefaultMetrics()
      .GetCounter(obs::kMSearchRegionsScored)
      ->Increment(t.regions_scored);
  obs::DefaultMetrics()
      .GetCounter(obs::kMSearchFitFailures)
      ->Increment(t.model_fit_failures);
  obs::DefaultMetrics()
      .GetCounter(obs::kMSearchRowsScanned)
      ->Increment(t.rows_scanned);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < result.scores.size(); ++i) {
    const RegionScore& s = result.scores[i];
    if (s.usable && s.error.rmse < best) {
      best = s.error.rmse;
      result.bellwether = s.region;
      result.bellwether_index = i;
      result.error = s.error;
    }
  }
  if (result.found()) {
    const RegionSlot& slot = slots_.find(result.bellwether)->second;
    BW_RETURN_IF_ERROR(internal::RefitModelFromSet(slot.rows, mask, &result));
  }
  internal::FillSearchReport("basic_search", options, &result);
  return result;
}

Status BellwetherState::Save(const std::string& path) const {
  BW_RETURN_IF_ERROR(SaveBellwetherState(*this, path));
  Metrics().saves->Increment(1);
  return Status::OK();
}

Result<std::unique_ptr<BellwetherState>> BellwetherState::Open(
    const std::string& path, std::shared_ptr<const ItemSubsetSpace> subsets) {
  return LoadBellwetherState(path, std::move(subsets));
}

Status BellwetherState::SerializeTo(std::ostream& out) const {
  if (!options_.incremental) {
    return Status::FailedPrecondition(
        "only incremental states are persistable");
  }
  const CubeBuildConfig& c = options_.config;
  out << "fingerprint " << fingerprint_ << "\n";
  out << "config " << c.min_subset_size << ' ' << c.min_examples_per_model
      << ' ' << (c.compute_cv_stats ? 1 : 0) << ' ' << c.cv_folds << ' '
      << c.seed << "\n";
  out << "mask " << (has_mask_ ? 1 : 0);
  if (has_mask_) {
    out << ' ' << item_mask_.size();
    for (uint8_t m : item_mask_) out << ' ' << (m != 0 ? 1 : 0);
  }
  out << "\n";
  out << "num_features " << num_features_ << "\n";
  out << "delta_batches " << delta_batches_ << "\n";
  out << "regions " << slots_.size() << "\n";
  for (const auto& [region, slot] : slots_) {
    // Only touched accumulators hit the wire (arity 0 marks untouched); the
    // dense remainder is reconstructed on load. Errors are not persisted —
    // they are recomputed from the statistics, which is deterministic.
    std::vector<int32_t> touched;
    for (size_t k = 0; k < slot.stats.size(); ++k) {
      if (slot.stats[k].num_features() != 0) {
        touched.push_back(static_cast<int32_t>(k));
      }
    }
    out << "region " << region << ' ' << touched.size() << "\n";
    for (int32_t k : touched) {
      out << "slot " << k << "\n";
      regression::WriteSuffStats(out, slot.stats[k]);
    }
    const RegionTrainingSet& rows = slot.rows;
    out << "rows " << rows.num_examples() << ' ' << (rows.weighted() ? 1 : 0)
        << "\n";
    out << "items";
    for (int32_t item : rows.items) out << ' ' << item;
    out << "\n";
    out << "features";
    for (double v : rows.features) {
      out << ' ';
      regression::WriteWireDouble(out, v);
    }
    out << "\n";
    out << "targets";
    for (double v : rows.targets) {
      out << ' ';
      regression::WriteWireDouble(out, v);
    }
    out << "\n";
    if (rows.weighted()) {
      out << "weights";
      for (double v : rows.weights) {
        out << ' ';
        regression::WriteWireDouble(out, v);
      }
      out << "\n";
    }
  }
  out << "end\n";
  if (!out) return Status::IoError("state write failed");
  return Status::OK();
}

Result<std::unique_ptr<BellwetherState>> BellwetherState::DeserializeFrom(
    std::istream& in, std::shared_ptr<const ItemSubsetSpace> subsets) {
  std::string tag;
  uint64_t stored_fp = 0;
  if (!(in >> tag >> stored_fp) || tag != "fingerprint") {
    return Status::IoError("truncated state (fingerprint)");
  }
  Options options;  // incremental, report_name "cube_state"
  CubeBuildConfig& c = options.config;
  int cv = 0;
  if (!(in >> tag >> c.min_subset_size >> c.min_examples_per_model >> cv >>
        c.cv_folds >> c.seed) ||
      tag != "config") {
    return Status::IoError("truncated state (config)");
  }
  c.compute_cv_stats = cv != 0;
  int has_mask = 0;
  if (!(in >> tag >> has_mask) || tag != "mask") {
    return Status::IoError("truncated state (mask)");
  }
  std::vector<uint8_t> mask;
  if (has_mask != 0) {
    int64_t n = 0;
    if (!(in >> n) || n < 0 || n > kMaxStateCount) {
      return Status::IoError("implausible mask size in state");
    }
    mask.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      int v = 0;
      if (!(in >> v)) return Status::IoError("truncated state (mask bits)");
      mask[i] = v != 0 ? 1 : 0;
    }
  }
  int32_t num_features = 0;
  if (!(in >> tag >> num_features) || tag != "num_features" ||
      num_features < 0 || num_features > 4096) {
    return Status::IoError("bad state num_features");
  }
  int64_t delta_batches = 0;
  if (!(in >> tag >> delta_batches) || tag != "delta_batches" ||
      delta_batches < 0) {
    return Status::IoError("bad state delta_batches");
  }
  int64_t num_regions = 0;
  if (!(in >> tag >> num_regions) || tag != "regions" || num_regions < 0 ||
      num_regions > kMaxStateCount) {
    return Status::IoError("implausible region count in state");
  }
  BW_ASSIGN_OR_RETURN(
      std::unique_ptr<BellwetherState> state,
      Init(std::move(subsets), std::move(options),
           has_mask != 0 ? &mask : nullptr));
  if (state->fingerprint_ != stored_fp) {
    return Status::FailedPrecondition(
        "state fingerprint mismatch (stale or foreign state file)");
  }
  state->num_features_ = num_features;
  state->delta_batches_ = delta_batches;
  const int64_t nsig = static_cast<int64_t>(state->significant_.size());
  const int32_t num_items = state->subsets_->num_items();
  const int32_t min_examples = state->options_.config.min_examples_per_model;
  olap::RegionId prev_region = olap::kInvalidRegion;
  for (int64_t i = 0; i < num_regions; ++i) {
    olap::RegionId region = olap::kInvalidRegion;
    int64_t nonempty = 0;
    if (!(in >> tag >> region >> nonempty) || tag != "region") {
      return Status::IoError("truncated state (region header)");
    }
    if (region < 0 || region <= prev_region) {
      return Status::IoError("state regions out of order");
    }
    prev_region = region;
    if (nonempty < 0 || nonempty > nsig) {
      return Status::IoError("implausible slot count in state");
    }
    RegionSlot& slot = state->SlotFor(region, num_features);
    int64_t prev_k = -1;
    for (int64_t j = 0; j < nonempty; ++j) {
      int64_t k = -1;
      if (!(in >> tag >> k) || tag != "slot") {
        return Status::IoError("truncated state (slot header)");
      }
      if (k <= prev_k || k >= nsig) {
        return Status::IoError("state slot index out of range");
      }
      prev_k = k;
      BW_ASSIGN_OR_RETURN(RegressionSuffStats stats,
                          regression::ReadSuffStats(in));
      if (stats.num_features() != static_cast<size_t>(num_features)) {
        return Status::IoError("state slot stats arity mismatch");
      }
      slot.errors[k] = TrainingErrorOfStats(stats, min_examples);
      slot.stats[k] = std::move(stats);
    }
    int64_t n = 0;
    int weighted = 0;
    if (!(in >> tag >> n >> weighted) || tag != "rows" || n < 0 ||
        n > kMaxStateCount) {
      return Status::IoError("implausible row count in state");
    }
    RegionTrainingSet& rows = slot.rows;
    if (!(in >> tag) || tag != "items") {
      return Status::IoError("truncated state (items)");
    }
    rows.items.resize(static_cast<size_t>(n));
    for (int64_t r = 0; r < n; ++r) {
      if (!(in >> rows.items[r])) {
        return Status::IoError("truncated state (item)");
      }
      if (rows.items[r] < 0 || rows.items[r] >= num_items) {
        return Status::IoError("state row item index out of range");
      }
    }
    if (!(in >> tag) || tag != "features") {
      return Status::IoError("truncated state (features)");
    }
    rows.features.resize(static_cast<size_t>(n) *
                         static_cast<size_t>(num_features));
    for (double& v : rows.features) {
      BW_RETURN_IF_ERROR(regression::ReadWireDouble(in, &v));
    }
    if (!(in >> tag) || tag != "targets") {
      return Status::IoError("truncated state (targets)");
    }
    rows.targets.resize(static_cast<size_t>(n));
    for (double& v : rows.targets) {
      BW_RETURN_IF_ERROR(regression::ReadWireDouble(in, &v));
    }
    if (weighted != 0) {
      if (!(in >> tag) || tag != "weights") {
        return Status::IoError("truncated state (weights)");
      }
      rows.weights.resize(static_cast<size_t>(n));
      for (double& v : rows.weights) {
        BW_RETURN_IF_ERROR(regression::ReadWireDouble(in, &v));
      }
    }
  }
  if (!(in >> tag) || tag != "end") {
    return Status::IoError("truncated state (missing end)");
  }
  // A reopened state re-derives every cell on its first Finalize
  // (finalized_once_ is false), which is deterministic from the restored
  // statistics and rows — so kill/reopen converges bit for bit.
  Metrics().opens->Increment(1);
  return state;
}

StateDeltaSink::StateDeltaSink(BellwetherState* state, size_t sets_per_batch)
    : state_(state), sets_per_batch_(sets_per_batch < 1 ? 1 : sets_per_batch) {}

Status StateDeltaSink::Append(RegionTrainingSet&& set) {
  buffered_bytes_ += set.ByteSize();
  NoteAppend(set, buffered_bytes_);
  buffer_.push_back(std::move(set));
  if (buffer_.size() >= sets_per_batch_) return Flush();
  return Status::OK();
}

Status StateDeltaSink::Flush() {
  if (buffer_.empty()) return Status::OK();
  std::vector<RegionTrainingSet> batch;
  batch.swap(buffer_);
  buffered_bytes_ = 0;
  return state_->ApplyDelta(std::move(batch));
}

Result<std::unique_ptr<storage::TrainingDataSource>> StateDeltaSink::Finish() {
  BW_RETURN_IF_ERROR(CheckOrdering());
  BW_RETURN_IF_ERROR(Flush());
  std::unique_ptr<storage::TrainingDataSource> empty =
      std::make_unique<storage::MemoryTrainingData>(
          std::vector<RegionTrainingSet>{});
  return empty;
}

}  // namespace bellwether::core
