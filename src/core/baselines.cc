#include "core/baselines.h"

#include <cmath>

#include "core/eval_util.h"
#include "core/training_data_gen.h"

namespace bellwether::core {

Result<regression::ErrorStats> RandomSamplingError(const BellwetherSpec& spec,
                                                   double budget,
                                                   int32_t trials, Rng* rng) {
  if (trials < 1) return Status::InvalidArgument("trials must be >= 1");
  const auto& cell_costs = spec.cost->finest_cell_costs();
  std::vector<int64_t> all_cells(cell_costs.size());
  for (size_t i = 0; i < all_cells.size(); ++i) {
    all_cells[i] = static_cast<int64_t>(i);
  }

  std::vector<double> rmses;
  for (int32_t t = 0; t < trials; ++t) {
    // Greedy random fill of the budget.
    rng->Shuffle(&all_cells);
    std::vector<int64_t> picked;
    double cost = 0.0;
    for (int64_t cell : all_cells) {
      if (cost + cell_costs[cell] > budget) continue;
      cost += cell_costs[cell];
      picked.push_back(cell);
    }
    if (picked.empty()) continue;
    BW_ASSIGN_OR_RETURN(storage::RegionTrainingSet set,
                        GenerateCellSetTrainingSet(spec, picked));
    const regression::Dataset data = ToDataset(set);
    if (data.num_examples() < 2) continue;
    Rng fold_rng = rng->Fork();
    auto err = regression::EstimateError(data, spec.error_estimate,
                                         spec.cv_folds, &fold_rng);
    if (!err.ok()) continue;
    rmses.push_back(err->rmse);
  }
  if (rmses.empty()) {
    return Status::FailedPrecondition(
        "no random cell collection produced a usable model");
  }
  double mean = 0.0;
  for (double e : rmses) mean += e;
  mean /= static_cast<double>(rmses.size());
  double var = 0.0;
  for (double e : rmses) var += (e - mean) * (e - mean);
  regression::ErrorStats out;
  out.rmse = mean;
  out.stddev = rmses.size() > 1
                   ? std::sqrt(var / static_cast<double>(rmses.size() - 1))
                   : 0.0;
  out.num_folds = static_cast<int32_t>(rmses.size());
  return out;
}

}  // namespace bellwether::core
