#ifndef BELLWETHER_CORE_CUBE_BUILD_INTERNAL_H_
#define BELLWETHER_CORE_CUBE_BUILD_INTERNAL_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string_view>
#include <vector>

#include "common/stopwatch.h"
#include "core/bellwether_cube.h"
#include "olap/region.h"
#include "regression/linear_model.h"
#include "storage/training_data.h"

/// Shared internals of the cube builders. The three one-shot builders
/// (naive / single-scan / optimized) and the mutable BellwetherState all
/// produce cubes through the same two phases exposed here — derive a
/// CubeCell from a per-subset Pick, then assemble cells into a
/// BellwetherCube with its telemetry and flight-recorder report — so their
/// outputs stay bit-identical by construction. Not part of the public API.
namespace bellwether::core::internal {

inline constexpr double kCubeInf = std::numeric_limits<double>::infinity();

/// Best region tracked across regions for one subset. Besides the min-error
/// candidate, tracks a *fallback* candidate — the region with the most
/// examples for the subset (ties to the earliest region) — so a subset where
/// every region's error is infinite can still get a flagged degraded cell.
/// Both candidates depend only on the sequence of Offer() calls, which every
/// builder issues in ascending region order, so cube equivalence (Lemma 2 /
/// Theorem 1) is preserved.
struct Pick {
  double error = kCubeInf;
  olap::RegionId region = olap::kInvalidRegion;
  regression::RegressionSuffStats stats;
  olap::RegionId fallback_region = olap::kInvalidRegion;
  int64_t fallback_examples = -1;
  regression::RegressionSuffStats fallback_stats;

  void Offer(double err, olap::RegionId r,
             const regression::RegressionSuffStats& s) {
    if (err < error) {
      error = err;
      region = r;
      stats = s;
    }
    if (s.num_examples() > fallback_examples) {
      fallback_examples = s.num_examples();
      fallback_region = r;
      fallback_stats = s;
    }
  }
};

/// Sizes |S| of all cube subsets, counting masked items only.
std::vector<int32_t> SubsetSizes(const ItemSubsetSpace& subsets,
                                 const std::vector<uint8_t>* item_mask);

/// Significant subsets (|S| >= K), ascending SubsetId — the iceberg cube
/// query over the item table (§6.3).
std::vector<SubsetId> SignificantSubsets(const std::vector<int32_t>& sizes,
                                         int32_t min_size);

bool ItemMasked(const std::vector<uint8_t>* item_mask, int32_t item);

/// Access to a region's raw training rows for the CV post-pass, abstracted
/// over where the rows live (a TrainingDataSource for the one-shot builders,
/// retained in-memory rows for BellwetherState). Contract: a region with no
/// rows available returns OK *without* invoking the callback (the cell just
/// goes without CV stats); any other error propagates.
using RegionRowsVisitor = std::function<Status(
    olap::RegionId,
    const std::function<Status(const storage::RegionTrainingSet&)>&)>;

/// RegionRowsVisitor over a TrainingDataSource: one Read per visited region
/// (preserving the fig11 I/O accounting of the historical CV post-pass).
/// Calls source->RegionIds() at construction — callers gate construction on
/// config.compute_cv_stats.
RegionRowsVisitor SourceRowsVisitor(storage::TrainingDataSource* source);

/// Derives one cube cell from its subset's Pick: fit the min-error
/// candidate (graceful degradation), fall back to the most-examples
/// candidate when no region had finite error, then attach cross-validated
/// error statistics via `rows` (may be null when CV is off). Pure with
/// respect to build telemetry — AssembleCube re-derives the degradation
/// counters from the finished cells.
Result<CubeCell> BuildCubeCell(SubsetId sid, int32_t subset_size,
                               const Pick& pick, const CubeBuildConfig& config,
                               const std::vector<uint8_t>* item_mask,
                               const ItemSubsetSpace& subsets,
                               const RegionRowsVisitor& rows);

/// Assembles finished cells into the final cube: subset -> cell index,
/// telemetry completion (cell counts, degradation counters recounted from
/// the cells, wall time from `build_watch`), registry metrics, and the
/// flight-recorder report named after `builder_name`. The report's logical
/// sections depend only on config and cell contents, so equal cell vectors
/// produce byte-identical LogicalJson regardless of how the cells were
/// derived (one-shot scan vs. incremental delta maintenance).
Result<BellwetherCube> AssembleCube(
    std::string_view builder_name,
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const CubeBuildConfig& config, std::vector<CubeCell> cells,
    CubeBuildTelemetry telemetry, const Stopwatch& build_watch);

}  // namespace bellwether::core::internal

#endif  // BELLWETHER_CORE_CUBE_BUILD_INTERNAL_H_
