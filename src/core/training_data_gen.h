#ifndef BELLWETHER_CORE_TRAINING_DATA_GEN_H_
#define BELLWETHER_CORE_TRAINING_DATA_GEN_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/spec.h"
#include "olap/cube.h"
#include "olap/iceberg.h"
#include "storage/training_data.h"

namespace bellwether::core {

/// Everything derived from the historical database that the bellwether
/// algorithms consume: the item dictionary, per-item targets, per-region
/// cost/coverage, the feasible region set, and the training sets of all
/// feasible regions ("the entire training data", paper §5.2).
struct GeneratedTrainingData {
  olap::ItemDictionary items;
  /// Target value per dense item index; NaN when the item has no target
  /// (such items are excluded from every training set).
  std::vector<double> targets;
  /// Feature names of the design matrix (intercept, item features, regional
  /// features).
  std::vector<std::string> feature_names;
  /// Indexed by RegionId (over the whole region space).
  std::vector<double> region_costs;
  std::vector<double> region_coverage;
  olap::FeasibleRegions feasible;
  /// One training set per feasible region, ascending RegionId.
  std::vector<storage::RegionTrainingSet> sets;
  /// Fact rows quarantined during the scan (see BellwetherSpec::row_policy);
  /// zero on clean data.
  robust::QuarantineStats row_quarantine;

  /// Wraps `sets` in an in-memory TrainingDataSource (copies).
  std::unique_ptr<storage::TrainingDataSource> ToMemorySource() const;

  /// Index into `sets` of the given region, or -1.
  int64_t FindSet(olap::RegionId region) const;
};

/// Generates all training sets with one pass over the fact table plus one
/// cube rollup per feature query — the single-OLAP-query evaluation strategy
/// of §4.2 (rewrite to CUBE aggregates, then join the per-feature cubes and
/// apply the iceberg constraints).
Result<GeneratedTrainingData> GenerateTrainingData(const BellwetherSpec& spec);

/// Reference implementation of the *original* (un-rewritten) feature queries
/// of §4.1 for a single region: evaluates
///   alpha_f sigma_{ID=i, Z in r} F        (and the join / pi_FK variants)
/// with plain relational operators, region by region and item by item. Used
/// to validate the cube path (the §4.2 rewrite equivalence) and as the
/// "iterate through all candidate regions, issue a query per region"
/// strawman. The returned set contains exactly the items of I_r that have a
/// target.
Result<storage::RegionTrainingSet> GenerateRegionTrainingSetNaive(
    const BellwetherSpec& spec, olap::RegionId region);

/// Like GenerateRegionTrainingSetNaive, but over an arbitrary collection of
/// finest-grained cells instead of an OLAP region — the random-sampling
/// baseline of Fig. 7 draws such collections.
Result<storage::RegionTrainingSet> GenerateCellSetTrainingSet(
    const BellwetherSpec& spec, const std::vector<int64_t>& finest_cells);

}  // namespace bellwether::core

#endif  // BELLWETHER_CORE_TRAINING_DATA_GEN_H_
