#ifndef BELLWETHER_CORE_TRAINING_DATA_GEN_H_
#define BELLWETHER_CORE_TRAINING_DATA_GEN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/spec.h"
#include "olap/cube.h"
#include "olap/iceberg.h"
#include "storage/training_data.h"
#include "storage/training_data_sink.h"

namespace bellwether::core {

/// Everything derived from the historical database *except* the training
/// sets themselves: the item dictionary, per-item targets, per-region
/// cost/coverage, the feasible region set, and quarantine stats. The sets
/// stream into a caller-supplied TrainingDataSink during generation, so the
/// profile stays lightweight no matter how large "the entire training data"
/// (paper §5.2) is.
struct TrainingDataProfile {
  olap::ItemDictionary items;
  /// Target value per dense item index; NaN when the item has no target
  /// (such items are excluded from every training set).
  std::vector<double> targets;
  /// Feature names of the design matrix (intercept, item features, regional
  /// features).
  std::vector<std::string> feature_names;
  /// Indexed by RegionId (over the whole region space).
  std::vector<double> region_costs;
  std::vector<double> region_coverage;
  olap::FeasibleRegions feasible;
  /// Fact rows quarantined during the scan (see BellwetherSpec::row_policy);
  /// zero on clean data.
  robust::QuarantineStats row_quarantine;

  /// Index of the given region's training set within the emitted stream, or
  /// -1. Binary search: sets are emitted 1:1 with `feasible.regions`, which
  /// is ascending.
  int64_t FindSet(olap::RegionId region) const;
};

/// Profile plus the finished source over the emitted sets — what most
/// callers want. Produced by GenerateTrainingDataInMemory (or by pairing
/// GenerateTrainingData with any sink and calling Finish yourself).
struct GeneratedTrainingData {
  TrainingDataProfile profile;
  std::unique_ptr<storage::TrainingDataSource> source;

  int64_t FindSet(olap::RegionId region) const {
    return profile.FindSet(region);
  }

  /// Direct view of the region sets when `source` is memory-backed
  /// (MemorySink, or a BudgetedSink that never spilled); nullptr for a
  /// disk-backed source.
  const std::vector<storage::RegionTrainingSet>* memory_sets() const;
};

/// Generates all training sets with one pass over the fact table plus one
/// cube rollup per feature query — the single-OLAP-query evaluation strategy
/// of §4.2 (rewrite to CUBE aggregates, then join the per-feature cubes and
/// apply the iceberg constraints). Region sets are emitted into `sink` in
/// ascending RegionId order as they are assembled (in parallel when
/// spec.exec asks for it — bit-identical to serial at any thread count);
/// the caller finalizes the sink. The sink is left unfinished on error.
Result<TrainingDataProfile> GenerateTrainingData(
    const BellwetherSpec& spec, storage::TrainingDataSink* sink);

/// Convenience wrapper: generates through a MemorySink and finishes it,
/// returning the profile together with the in-memory source.
Result<GeneratedTrainingData> GenerateTrainingDataInMemory(
    const BellwetherSpec& spec);

/// Reference implementation of the *original* (un-rewritten) feature queries
/// of §4.1 for a single region: evaluates
///   alpha_f sigma_{ID=i, Z in r} F        (and the join / pi_FK variants)
/// with plain relational operators, region by region and item by item. Used
/// to validate the cube path (the §4.2 rewrite equivalence) and as the
/// "iterate through all candidate regions, issue a query per region"
/// strawman. The returned set contains exactly the items of I_r that have a
/// target.
Result<storage::RegionTrainingSet> GenerateRegionTrainingSetNaive(
    const BellwetherSpec& spec, olap::RegionId region);

/// Like GenerateRegionTrainingSetNaive, but over an arbitrary collection of
/// finest-grained cells instead of an OLAP region — the random-sampling
/// baseline of Fig. 7 draws such collections.
Result<storage::RegionTrainingSet> GenerateCellSetTrainingSet(
    const BellwetherSpec& spec, const std::vector<int64_t>& finest_cells);

}  // namespace bellwether::core

#endif  // BELLWETHER_CORE_TRAINING_DATA_GEN_H_
