#ifndef BELLWETHER_CORE_MULTI_INSTANCE_H_
#define BELLWETHER_CORE_MULTI_INSTANCE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/spec.h"
#include "regression/error.h"
#include "regression/linear_model.h"

namespace bellwether::core {

/// Multi-instance bellwether analysis (paper §3.4, second extension): the
/// feature query phi_{i,r}(DB) returns a *set* of feature vectors for item i
/// in region r — one per finest-grained cell the item has data in — instead
/// of a single aggregated vector. Each training example is a bag of
/// instances plus the item's target.
///
/// A bag of instances for one item: row-major instance matrix.
struct InstanceBag {
  int32_t item = -1;
  int32_t num_features = 0;
  std::vector<double> instances;  // row-major, num_instances * num_features

  size_t num_instances() const {
    return num_features == 0 ? 0 : instances.size() / num_features;
  }
  const double* instance(size_t k) const {
    return instances.data() + k * static_cast<size_t>(num_features);
  }
};

/// The multi-instance training set of one region.
struct BagTrainingSet {
  olap::RegionId region = olap::kInvalidRegion;
  int32_t num_features = 0;
  std::vector<InstanceBag> bags;   // one per item in I_r
  std::vector<double> targets;     // parallel to bags
};

/// Builds the multi-instance training set of a region: for every item with
/// data in the region, one instance per covered finest cell the item has
/// data in, holding [intercept, item-table features, per-cell regional
/// features]. The per-cell features evaluate the spec's feature queries with
/// the region narrowed to that single cell.
Result<BagTrainingSet> GenerateBagTrainingSet(const BellwetherSpec& spec,
                                              olap::RegionId region);

/// A multi-instance regression model using the mean-embedding reduction
/// (average the bag's instances, then apply a linear model) — the aggregate
/// baseline that Ray & Craven's comparison (cited by the paper) found
/// competitive with dedicated MI methods.
class MeanEmbeddingModel {
 public:
  MeanEmbeddingModel() = default;
  explicit MeanEmbeddingModel(regression::LinearModel model)
      : model_(std::move(model)) {}

  /// Fits on a bag training set (least squares over bag embeddings).
  static Result<MeanEmbeddingModel> Fit(const BagTrainingSet& data);

  /// Prediction for a bag; fails on an empty bag.
  Result<double> Predict(const InstanceBag& bag) const;

  const regression::LinearModel& linear() const { return model_; }

  /// The mean-instance embedding of a bag.
  static std::vector<double> Embed(const InstanceBag& bag);

 private:
  regression::LinearModel model_;
};

/// k-fold cross-validated RMSE of the mean-embedding model over bags.
Result<regression::ErrorStats> CrossValidateBags(const BagTrainingSet& data,
                                                 int32_t folds, Rng* rng);

/// Result of the multi-instance basic search.
struct MiSearchResult {
  olap::RegionId bellwether = olap::kInvalidRegion;
  regression::ErrorStats error;
  MeanEmbeddingModel model;
  std::vector<std::pair<olap::RegionId, double>> scores;  // usable regions

  bool found() const { return bellwether != olap::kInvalidRegion; }
};

struct MiSearchOptions {
  int32_t cv_folds = 10;
  int32_t min_bags = 10;
  uint64_t seed = 17;
};

/// Basic bellwether search over multi-instance training sets: scores every
/// region satisfying the spec's cost/coverage constraints with the CV error
/// of the mean-embedding model and returns the minimum.
Result<MiSearchResult> RunMultiInstanceSearch(const BellwetherSpec& spec,
                                              const MiSearchOptions& options);

}  // namespace bellwether::core

#endif  // BELLWETHER_CORE_MULTI_INSTANCE_H_
