#include "core/basic_search.h"

#include <limits>
#include <memory>
#include <utility>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/eval_util.h"
#include "core/search_internal.h"
#include "exec/parallel.h"
#include "obs/logger.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bellwether::core {

double BasicSearchResult::AverageError() const {
  double sum = 0.0;
  int64_t n = 0;
  for (const auto& s : scores) {
    if (!s.usable) continue;
    sum += s.error.rmse;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double BasicSearchResult::FractionIndistinguishable(double confidence) const {
  if (!found()) return 0.0;
  const double bound = error.UpperConfidenceBound(confidence);
  int64_t total = 0;
  int64_t within = 0;
  for (const auto& s : scores) {
    if (!s.usable) continue;
    ++total;
    if (s.error.rmse <= bound) ++within;
  }
  return total > 0 ? static_cast<double>(within) / static_cast<double>(total)
                   : 0.0;
}

namespace internal {

void ScoreRegion(const storage::RegionTrainingSet& set,
                 const BasicSearchOptions& options,
                 const std::vector<uint8_t>* item_mask, RegionScore* score) {
  score->region = set.region;
  score->usable = false;
  const regression::Dataset data = ToDataset(set, item_mask);
  score->num_examples = data.num_examples();
  if (data.num_examples() <
      static_cast<size_t>(std::max<int32_t>(options.min_examples, 2))) {
    return;
  }
  Rng rng(RegionSeed(options.seed, set.region));
  auto err = regression::EstimateError(data, options.estimate,
                                       options.cv_folds, &rng);
  if (!err.ok()) return;
  score->error = *err;
  score->usable = true;
}

Status RefitModelFromSet(const storage::RegionTrainingSet& set,
                         const std::vector<uint8_t>* item_mask,
                         BasicSearchResult* result) {
  const regression::Dataset data = ToDataset(set, item_mask);
  regression::RegressionSuffStats stats(data.num_features());
  stats.AddDataset(data);
  BW_ASSIGN_OR_RETURN(regression::RobustFit fit, stats.FitWithFallback());
  result->model = std::move(fit.model);
  result->model_degradation = fit.degradation;
  if (fit.degradation == regression::FitDegradation::kRidge) {
    ++result->telemetry.ridge_refits;
  } else if (fit.degradation == regression::FitDegradation::kMeanFallback) {
    ++result->telemetry.mean_fallbacks;
  }
  if (fit.degraded()) {
    BW_LOG(obs::LogLevel::kWarn, "search")
        << "bellwether model refit degraded to '"
        << regression::FitDegradationName(fit.degradation) << "' for region "
        << set.region;
  }
  return Status::OK();
}

}  // namespace internal

namespace {

// Refits the winning model by reading its training set back from the
// source, then delegating to the shared degradation chain.
Status RefitModel(storage::TrainingDataSource* source, size_t index,
                  const std::vector<uint8_t>* item_mask,
                  BasicSearchResult* result) {
  BW_ASSIGN_OR_RETURN(storage::RegionTrainingSet set, source->Read(index));
  return internal::RefitModelFromSet(set, item_mask, result);
}

// Registry counters mirrored alongside the per-search SearchTelemetry;
// resolved once and cached (registry pointers are stable).
struct SearchMetrics {
  obs::Counter* enumerated;
  obs::Counter* scored;
  obs::Counter* pruned_cost;
  obs::Counter* fit_failures;
  obs::Counter* rows;
  obs::Histogram* fit_seconds;
};

const SearchMetrics& Metrics() {
  static const SearchMetrics m{
      obs::DefaultMetrics().GetCounter(obs::kMSearchRegionsEnumerated),
      obs::DefaultMetrics().GetCounter(obs::kMSearchRegionsScored),
      obs::DefaultMetrics().GetCounter(obs::kMSearchRegionsPrunedCost),
      obs::DefaultMetrics().GetCounter(obs::kMSearchFitFailures),
      obs::DefaultMetrics().GetCounter(obs::kMSearchRowsScanned),
      obs::DefaultMetrics().GetHistogram(obs::kMSearchRegionFitSeconds,
                                         obs::LatencyBucketsSeconds())};
  return m;
}

}  // namespace

namespace internal {

void FillSearchReport(std::string_view name,
                      const BasicSearchOptions& options,
                      BasicSearchResult* result) {
  obs::RunReport& r = result->report;
  r.set_name(std::string(name));
  r.SetConfig("search.estimate",
              static_cast<int64_t>(options.estimate));
  r.SetConfig("search.cv_folds", static_cast<int64_t>(options.cv_folds));
  r.SetConfig("search.seed", static_cast<int64_t>(options.seed));
  r.SetConfig("search.min_examples",
              static_cast<int64_t>(options.min_examples));
  const SearchTelemetry& t = result->telemetry;
  r.SetCount("search.regions_enumerated", t.regions_enumerated);
  r.SetCount("search.regions_scored", t.regions_scored);
  r.SetCount("search.skipped_min_examples", t.skipped_min_examples);
  r.SetCount("search.model_fit_failures", t.model_fit_failures);
  r.SetCount("search.pruned_by_cost", t.pruned_by_cost);
  r.SetCount("search.rows_scanned", t.rows_scanned);
  r.SetCount("search.ridge_refits", t.ridge_refits);
  r.SetCount("search.mean_fallbacks", t.mean_fallbacks);
  r.SetCount("search.found", result->found() ? 1 : 0);
  r.SetCount("search.bellwether_region",
             static_cast<int64_t>(result->bellwether));
  r.SetCount("search.model_degradation",
             static_cast<int64_t>(result->model_degradation));
  if (result->found()) r.SetValue("search.bellwether_rmse", result->error.rmse);
  r.AddPhase("search.scan", t.scan_seconds);
}

}  // namespace internal

Result<BasicSearchResult> RunBasicBellwetherSearch(
    storage::TrainingDataSource* source, const BasicSearchOptions& options,
    const std::vector<uint8_t>* item_mask) {
  obs::TraceSpan span("RunBasicBellwetherSearch", "search");
  BasicSearchResult result;
  SearchTelemetry& t = result.telemetry;
  result.scores.reserve(source->num_region_sets());
  size_t index = 0;
  Stopwatch scan_watch;

  // The scan stays sequential (storage arrival order, I/O accounting, and
  // fault-injection arrival counts are untouched); only the per-region
  // scoring work moves onto the pool. Scores are reduced in submission
  // order, so the scores vector — and everything derived from it — is
  // bit-identical to the serial loop for any thread count.
  const int32_t num_threads = exec::ResolveNumThreads(options.exec.num_threads);
  std::unique_ptr<exec::ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<exec::ThreadPool>(num_threads);
  {
    exec::MergeInSubmissionOrder<RegionScore> reducer(
        pool.get(), /*max_outstanding=*/4 * static_cast<size_t>(num_threads),
        "search.score_batch", [&](size_t, RegionScore score) -> Status {
          result.scores.push_back(std::move(score));
          return Status::OK();
        });
    BW_RETURN_IF_ERROR(
        source->Scan([&](const storage::RegionTrainingSet& set) -> Status {
          const size_t source_index = index++;
          ++t.regions_enumerated;
          t.rows_scanned += static_cast<int64_t>(set.num_examples());
          const auto compute =
              [source_index, &options,
               item_mask](const storage::RegionTrainingSet& s) {
                RegionScore score;
                score.source_index = source_index;
                Stopwatch fit_watch;
                internal::ScoreRegion(s, options, item_mask, &score);
                Metrics().fit_seconds->Observe(fit_watch.ElapsedSeconds());
                return score;
              };
          if (reducer.parallel()) {
            // The visited set is only valid during this callback; the task
            // owns a copy.
            return reducer.Submit(
                [compute, copy = set]() { return compute(copy); });
          }
          return reducer.Submit([&]() { return compute(set); });
        }));
    BW_RETURN_IF_ERROR(reducer.Finish());
  }
  for (const auto& score : result.scores) {
    if (score.usable) {
      ++t.regions_scored;
    } else if (score.num_examples <
               static_cast<size_t>(
                   std::max<int32_t>(options.min_examples, 2))) {
      ++t.skipped_min_examples;
    } else {
      ++t.model_fit_failures;
    }
  }
  t.scan_seconds = scan_watch.ElapsedSeconds();
  Metrics().enumerated->Increment(t.regions_enumerated);
  Metrics().scored->Increment(t.regions_scored);
  Metrics().fit_failures->Increment(t.model_fit_failures);
  Metrics().rows->Increment(t.rows_scanned);
  BW_LOG(obs::LogLevel::kInfo, "search")
      .Field("regions", t.regions_enumerated)
      .Field("scored", t.regions_scored)
      .Field("fit_failures", t.model_fit_failures)
      .Field("seconds", t.scan_seconds)
      << "basic search scan done";

  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < result.scores.size(); ++i) {
    const auto& s = result.scores[i];
    if (s.usable && s.error.rmse < best) {
      best = s.error.rmse;
      result.bellwether = s.region;
      result.bellwether_index = i;
      result.error = s.error;
    }
  }
  if (result.found()) {
    BW_RETURN_IF_ERROR(RefitModel(
        source, result.scores[result.bellwether_index].source_index,
        item_mask, &result));
  }
  internal::FillSearchReport("basic_search", options, &result);
  return result;
}

Result<BasicSearchResult> SelectUnderBudget(
    const BasicSearchResult& full, storage::TrainingDataSource* source,
    const std::vector<double>& region_costs, double budget,
    const std::vector<uint8_t>* item_mask) {
  obs::TraceSpan span("SelectUnderBudget", "search");
  BasicSearchResult result;
  result.telemetry = full.telemetry;
  result.telemetry.pruned_by_cost = 0;
  result.scores.reserve(full.scores.size());
  double best = std::numeric_limits<double>::infinity();
  for (const auto& s : full.scores) {
    if (s.region < 0 ||
        static_cast<size_t>(s.region) >= region_costs.size()) {
      return Status::OutOfRange("score region outside cost table");
    }
    if (region_costs[s.region] > budget) {
      ++result.telemetry.pruned_by_cost;
      continue;
    }
    result.scores.push_back(s);
    if (s.usable && s.error.rmse < best) {
      best = s.error.rmse;
      result.bellwether = s.region;
      result.bellwether_index = result.scores.size() - 1;
      result.error = s.error;
    }
  }
  Metrics().pruned_cost->Increment(result.telemetry.pruned_by_cost);
  if (result.found()) {
    BW_RETURN_IF_ERROR(RefitModel(
        source, result.scores[result.bellwether_index].source_index,
        item_mask, &result));
  }
  result.report = full.report;
  result.report.set_name("select_under_budget");
  result.report.SetConfig("search.budget", budget);
  result.report.SetCount("search.pruned_by_cost",
                         result.telemetry.pruned_by_cost);
  result.report.SetCount("search.ridge_refits", result.telemetry.ridge_refits);
  result.report.SetCount("search.mean_fallbacks",
                         result.telemetry.mean_fallbacks);
  result.report.SetCount("search.found", result.found() ? 1 : 0);
  result.report.SetCount("search.bellwether_region",
                         static_cast<int64_t>(result.bellwether));
  result.report.SetCount("search.model_degradation",
                         static_cast<int64_t>(result.model_degradation));
  if (result.found()) {
    result.report.SetValue("search.bellwether_rmse", result.error.rmse);
  }
  return result;
}

Result<BasicSearchResult> SelectLinearCriterion(
    const BasicSearchResult& full, storage::TrainingDataSource* source,
    const std::vector<double>& region_costs,
    const std::vector<double>& region_coverage, double cost_weight,
    double coverage_weight, const std::vector<uint8_t>* item_mask) {
  if (region_costs.size() != region_coverage.size()) {
    return Status::InvalidArgument("cost/coverage table size mismatch");
  }
  obs::TraceSpan span("SelectLinearCriterion", "search");
  BasicSearchResult result;
  result.telemetry = full.telemetry;
  // Select over `full.scores` first; the wholesale copy into the result
  // happens once, reserved up front, only after the scan decided a winner.
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < full.scores.size(); ++i) {
    const auto& s = full.scores[i];
    if (!s.usable) continue;
    if (s.region < 0 ||
        static_cast<size_t>(s.region) >= region_costs.size()) {
      return Status::OutOfRange("score region outside cost table");
    }
    const double objective = s.error.rmse +
                             cost_weight * region_costs[s.region] -
                             coverage_weight * region_coverage[s.region];
    if (objective < best) {
      best = objective;
      result.bellwether = s.region;
      result.bellwether_index = i;
      result.error = s.error;
    }
  }
  result.scores.reserve(full.scores.size());
  result.scores.insert(result.scores.end(), full.scores.begin(),
                       full.scores.end());
  if (result.found()) {
    BW_RETURN_IF_ERROR(RefitModel(
        source, result.scores[result.bellwether_index].source_index,
        item_mask, &result));
  }
  result.report = full.report;
  result.report.set_name("select_linear_criterion");
  result.report.SetConfig("search.cost_weight", cost_weight);
  result.report.SetConfig("search.coverage_weight", coverage_weight);
  result.report.SetCount("search.ridge_refits", result.telemetry.ridge_refits);
  result.report.SetCount("search.mean_fallbacks",
                         result.telemetry.mean_fallbacks);
  result.report.SetCount("search.found", result.found() ? 1 : 0);
  result.report.SetCount("search.bellwether_region",
                         static_cast<int64_t>(result.bellwether));
  result.report.SetCount("search.model_degradation",
                         static_cast<int64_t>(result.model_degradation));
  if (result.found()) {
    result.report.SetValue("search.bellwether_rmse", result.error.rmse);
  }
  return result;
}

}  // namespace bellwether::core
