#include "core/combinatorial.h"

#include <algorithm>
#include <limits>
#include <set>

#include "core/eval_util.h"
#include "core/training_data_gen.h"

namespace bellwether::core {

namespace {

// Cost of a cell set = sum of distinct finest-cell costs.
double CellSetCost(const BellwetherSpec& spec, const std::set<int64_t>& cells) {
  const auto& costs = spec.cost->finest_cell_costs();
  double total = 0.0;
  for (int64_t c : cells) total += costs[c];
  return total;
}

// CV error of the model trained on the union of `cells`.
Result<regression::ErrorStats> EvaluateCells(
    const BellwetherSpec& spec, const std::set<int64_t>& cells,
    const CombinatorialOptions& options) {
  BW_ASSIGN_OR_RETURN(
      storage::RegionTrainingSet set,
      GenerateCellSetTrainingSet(
          spec, std::vector<int64_t>(cells.begin(), cells.end())));
  const regression::Dataset data = ToDataset(set);
  if (data.num_examples() <
      static_cast<size_t>(std::max(options.min_examples, 2))) {
    return Status::FailedPrecondition("too few examples in cell union");
  }
  Rng rng(options.seed);
  return regression::CrossValidationError(data, options.cv_folds, &rng);
}

}  // namespace

Result<CombinatorialResult> RunCombinatorialSearch(
    const BellwetherSpec& spec, const CombinatorialOptions& options) {
  if (options.budget <= 0.0) {
    return Status::InvalidArgument("combinatorial search needs a budget");
  }
  const olap::RegionSpace& space = *spec.space;
  // Candidate pool: affordable regions.
  const double cap = options.budget * options.candidate_cost_fraction;
  std::vector<olap::RegionId> pool;
  for (olap::RegionId r = 0; r < space.NumRegions(); ++r) {
    if (spec.cost->RegionCost(r) <= cap) pool.push_back(r);
  }
  if (pool.empty()) {
    return Status::FailedPrecondition("no affordable candidate region");
  }

  CombinatorialResult best;
  std::set<int64_t> chosen_cells;
  double current_error = std::numeric_limits<double>::infinity();

  for (int32_t round = 0; round < options.max_regions; ++round) {
    olap::RegionId best_add = olap::kInvalidRegion;
    regression::ErrorStats best_err;
    std::set<int64_t> best_cells;
    double best_cost = 0.0;
    for (olap::RegionId r : pool) {
      if (std::find(best.regions.begin(), best.regions.end(), r) !=
          best.regions.end()) {
        continue;
      }
      std::set<int64_t> trial = chosen_cells;
      for (int64_t c : space.FinestCellsIn(r)) trial.insert(c);
      if (trial.size() == chosen_cells.size()) continue;  // fully overlapped
      const double cost = CellSetCost(spec, trial);
      if (cost > options.budget) continue;
      auto err = EvaluateCells(spec, trial, options);
      if (!err.ok()) continue;
      if (best_add == olap::kInvalidRegion || err->rmse < best_err.rmse) {
        best_add = r;
        best_err = *err;
        best_cells = std::move(trial);
        best_cost = cost;
      }
    }
    if (best_add == olap::kInvalidRegion) break;
    const bool improves =
        best_err.rmse < current_error * (1.0 - options.min_relative_gain);
    if (!best.regions.empty() && !improves) break;
    best.regions.push_back(best_add);
    chosen_cells = std::move(best_cells);
    best.cost = best_cost;
    best.error = best_err;
    current_error = best_err.rmse;
  }

  if (!best.found()) {
    return Status::FailedPrecondition(
        "no affordable combination produced a usable model");
  }
  best.cells.assign(chosen_cells.begin(), chosen_cells.end());
  BW_ASSIGN_OR_RETURN(storage::RegionTrainingSet set,
                      GenerateCellSetTrainingSet(spec, best.cells));
  BW_ASSIGN_OR_RETURN(best.model,
                      regression::FitLeastSquares(ToDataset(set)));
  return best;
}

}  // namespace bellwether::core
