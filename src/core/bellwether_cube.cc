#include "core/bellwether_cube.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "exec/parallel.h"
#include "obs/logger.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/checkpoint.h"
#include "robust/fault_injection.h"

namespace bellwether::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using olap::HierarchicalDimension;
using olap::NodeId;
using regression::RegressionSuffStats;
using storage::RegionTrainingSet;

// Best region tracked across regions for one subset. Besides the min-error
// candidate, tracks a *fallback* candidate — the region with the most
// examples for the subset (ties to the earliest region) — so a subset where
// every region's error is infinite can still get a flagged degraded cell.
// Both candidates depend only on the sequence of Offer() calls, which all
// three builders issue in ascending region order, so cube equivalence
// (Lemma 2 / Theorem 1) is preserved.
struct Pick {
  double error = kInf;
  olap::RegionId region = olap::kInvalidRegion;
  RegressionSuffStats stats;
  olap::RegionId fallback_region = olap::kInvalidRegion;
  int64_t fallback_examples = -1;
  RegressionSuffStats fallback_stats;

  void Offer(double err, olap::RegionId r, const RegressionSuffStats& s) {
    if (err < error) {
      error = err;
      region = r;
      stats = s;
    }
    if (s.num_examples() > fallback_examples) {
      fallback_examples = s.num_examples();
      fallback_region = r;
      fallback_stats = s;
    }
  }
};

// Sizes |S| of all cube subsets, counting masked items only.
std::vector<int32_t> SubsetSizes(const ItemSubsetSpace& subsets,
                                 const std::vector<uint8_t>* item_mask) {
  std::vector<int32_t> sizes(subsets.NumSubsets(), 0);
  for (int32_t i = 0; i < subsets.num_items(); ++i) {
    if (item_mask != nullptr && (static_cast<size_t>(i) >= item_mask->size() ||
                                 (*item_mask)[i] == 0)) {
      continue;
    }
    subsets.ForEachContainingSubset(i, [&](SubsetId s) { ++sizes[s]; });
  }
  return sizes;
}

// Significant subsets (|S| >= K), ascending SubsetId — the iceberg cube
// query over the item table (§6.3).
std::vector<SubsetId> SignificantSubsets(const std::vector<int32_t>& sizes,
                                         int32_t min_size) {
  std::vector<SubsetId> out;
  for (size_t s = 0; s < sizes.size(); ++s) {
    if (sizes[s] >= std::max(min_size, 1)) {
      out.push_back(static_cast<SubsetId>(s));
    }
  }
  return out;
}

bool ItemMasked(const std::vector<uint8_t>* item_mask, int32_t item) {
  return item_mask != nullptr &&
         (static_cast<size_t>(item) >= item_mask->size() ||
          (*item_mask)[item] == 0);
}

// Registry counters mirrored alongside the per-build CubeBuildTelemetry;
// resolved once and cached (registry pointers are stable).
struct CubeMetrics {
  obs::Counter* naive_passes;
  obs::Counter* single_scan_passes;
  obs::Counter* optimized_passes;
  obs::Counter* significant;
  obs::Counter* cells;
};

const CubeMetrics& Metrics() {
  static const CubeMetrics m{
      obs::DefaultMetrics().GetCounter(obs::kMCubeNaiveScans),
      obs::DefaultMetrics().GetCounter(obs::kMCubeSingleScanScans),
      obs::DefaultMetrics().GetCounter(obs::kMCubeOptimizedScans),
      obs::DefaultMetrics().GetCounter(obs::kMCubeSignificantSubsets),
      obs::DefaultMetrics().GetCounter(obs::kMCubeCellsMaterialized)};
  return m;
}

// Converts per-subset picks into the final cube, optionally attaching
// cross-validated error statistics for the confidence-bound prediction rule.
// Completes and attaches `telemetry` (cells, wall time from `build_watch`)
// and the flight-recorder report (named after `builder_name`).
Result<BellwetherCube> FinalizeCube(
    std::string_view builder_name, storage::TrainingDataSource* source,
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const CubeBuildConfig& config, const std::vector<uint8_t>* item_mask,
    const std::vector<int32_t>& sizes,
    const std::vector<SubsetId>& significant, std::vector<Pick> picks,
    CubeBuildTelemetry telemetry, const Stopwatch& build_watch) {
  std::vector<int64_t> cell_of(subsets->NumSubsets(), -1);
  std::vector<CubeCell> cells;
  cells.reserve(significant.size());

  // region -> source index, for the CV post-pass.
  std::vector<std::pair<olap::RegionId, size_t>> region_index;
  if (config.compute_cv_stats) {
    const auto ids = source->RegionIds();
    for (size_t i = 0; i < ids.size(); ++i) {
      region_index.emplace_back(ids[i], i);
    }
    std::sort(region_index.begin(), region_index.end());
  }

  for (size_t k = 0; k < significant.size(); ++k) {
    const SubsetId sid = significant[k];
    CubeCell cell;
    cell.subset = sid;
    cell.subset_size = sizes[sid];
    Pick& pick = picks[k];
    if (pick.region != olap::kInvalidRegion && pick.error < kInf) {
      // Graceful degradation: a healthy fit is bit-identical to the plain
      // Fit() path; an ill-conditioned pick yields a flagged degraded model
      // instead of a model-less cell.
      auto fit = pick.stats.FitWithFallback();
      if (fit.ok()) {
        cell.has_model = true;
        cell.region = pick.region;
        cell.error = pick.error;
        cell.model = std::move(fit.value().model);
        cell.degradation = fit.value().degradation;
      }
    }
    if (!cell.has_model && pick.fallback_region != olap::kInvalidRegion &&
        pick.fallback_examples > 0) {
      // No region produced a finite error for this subset; fall back to the
      // region with the most examples so the cell still answers queries,
      // clearly flagged (error = inf, fallback_pick = true).
      auto fit = pick.fallback_stats.FitWithFallback();
      if (fit.ok()) {
        cell.has_model = true;
        cell.fallback_pick = true;
        cell.region = pick.fallback_region;
        cell.error = kInf;
        cell.model = std::move(fit.value().model);
        cell.degradation = fit.value().degradation;
        ++telemetry.fallback_picks;
      }
    }
    if (cell.degradation == regression::FitDegradation::kRidge) {
      ++telemetry.ridge_refits;
    } else if (cell.degradation == regression::FitDegradation::kMeanFallback) {
      ++telemetry.mean_fallbacks;
    }
    if (cell.has_model && config.compute_cv_stats) {
      auto it = std::lower_bound(region_index.begin(), region_index.end(),
                                 std::make_pair(cell.region, size_t{0}));
      if (it != region_index.end() && it->first == cell.region) {
        BW_ASSIGN_OR_RETURN(RegionTrainingSet set, source->Read(it->second));
        regression::Dataset data(set.num_features);
        std::vector<double> row(set.num_features);
        for (size_t r = 0; r < set.num_examples(); ++r) {
          const int32_t item = set.items[r];
          if (ItemMasked(item_mask, item)) continue;
          if (!subsets->SubsetContainsItem(sid, item)) continue;
          row.assign(set.row(r), set.row(r) + set.num_features);
          if (set.weighted()) {
            data.AddWeighted(row, set.targets[r], set.weight(r));
          } else {
            data.Add(row, set.targets[r]);
          }
        }
        Rng rng(RegionSeed(config.seed ^ static_cast<uint64_t>(sid),
                           cell.region));
        auto cv = regression::CrossValidationError(data, config.cv_folds, &rng);
        if (cv.ok()) {
          cell.cv = *cv;
          cell.has_cv = true;
        }
      }
    }
    cell_of[sid] = static_cast<int64_t>(cells.size());
    cells.push_back(std::move(cell));
  }
  telemetry.significant_subsets = static_cast<int64_t>(significant.size());
  telemetry.cells_materialized = static_cast<int64_t>(cells.size());
  telemetry.build_seconds = build_watch.ElapsedSeconds();
  Metrics().significant->Increment(telemetry.significant_subsets);
  Metrics().cells->Increment(telemetry.cells_materialized);
  BW_LOG(obs::LogLevel::kInfo, "cube")
      .Field("passes", telemetry.data_passes)
      .Field("significant", telemetry.significant_subsets)
      .Field("cells", telemetry.cells_materialized)
      .Field("seconds", telemetry.build_seconds)
      << "cube built";
  BellwetherCube cube(std::move(subsets), std::move(cell_of),
                      std::move(cells));
  cube.set_build_telemetry(telemetry);
  // Flight-recorder document. Config deliberately omits
  // config.exec.num_threads and the checkpoint path: logical sections (and
  // the fingerprint) must match serial/parallel and resumed/uninterrupted
  // builds of the same cube.
  obs::RunReport report{std::string(builder_name)};
  report.SetConfig("cube.min_subset_size",
                   static_cast<int64_t>(config.min_subset_size));
  report.SetConfig("cube.min_examples_per_model",
                   static_cast<int64_t>(config.min_examples_per_model));
  report.SetConfig("cube.compute_cv_stats",
                   static_cast<int64_t>(config.compute_cv_stats ? 1 : 0));
  report.SetConfig("cube.cv_folds", static_cast<int64_t>(config.cv_folds));
  report.SetConfig("cube.seed", static_cast<int64_t>(config.seed));
  report.SetCount("cube.data_passes", telemetry.data_passes);
  report.SetCount("cube.significant_subsets", telemetry.significant_subsets);
  report.SetCount("cube.cells_materialized", telemetry.cells_materialized);
  report.SetCount("cube.ridge_refits", telemetry.ridge_refits);
  report.SetCount("cube.mean_fallbacks", telemetry.mean_fallbacks);
  report.SetCount("cube.fallback_picks", telemetry.fallback_picks);
  report.SetCount("cube.checkpoints_saved", telemetry.checkpoints_saved);
  report.SetCount("cube.resumed_regions", telemetry.resumed_regions);
  report.AddPhase("cube.build", telemetry.build_seconds);
  cube.set_build_report(std::move(report));
  return cube;
}

// In-place lattice rollup of per-subset sufficient statistics: child node
// merges into parent, one hierarchy at a time (the data-cube computation of
// Observation 1 / Theorem 1).
void RollupSubsetStats(const olap::RegionSpace& space,
                       std::vector<RegressionSuffStats>* stats) {
  const size_t nd = space.num_dims();
  std::vector<int32_t> cards(nd);
  std::vector<int64_t> strides(nd, 1);
  for (size_t d = 0; d < nd; ++d) {
    cards[d] = olap::DimensionCardinality(space.dim(d));
  }
  for (size_t d = nd - 1; d-- > 0;) strides[d] = strides[d + 1] * cards[d + 1];
  const int64_t total = space.NumRegions();
  for (size_t d = 0; d < nd; ++d) {
    const auto& h = std::get<HierarchicalDimension>(space.dim(d));
    const int64_t stride = strides[d];
    const int64_t block = stride * cards[d];
    for (NodeId n : h.NodesBottomUp()) {
      if (n == h.root()) continue;
      const NodeId parent = h.parent(n);
      for (int64_t hi = 0; hi < total; hi += block) {
        for (int64_t lo = 0; lo < stride; ++lo) {
          RegressionSuffStats& src = (*stats)[hi + n * stride + lo];
          if (src.empty()) continue;
          (*stats)[hi + parent * stride + lo].Merge(src);
        }
      }
    }
  }
}

}  // namespace

Result<std::shared_ptr<ItemSubsetSpace>> ItemSubsetSpace::Create(
    const table::Table& item_table, std::vector<ItemHierarchy> hierarchies) {
  if (hierarchies.empty()) {
    return Status::InvalidArgument("need at least one item hierarchy");
  }
  auto out = std::shared_ptr<ItemSubsetSpace>(new ItemSubsetSpace());
  std::vector<olap::Dimension> dims;
  std::vector<size_t> cols;
  for (const auto& ih : hierarchies) {
    auto idx = item_table.schema().FindField(ih.column);
    if (!idx.has_value()) {
      return Status::NotFound("item hierarchy column missing: " + ih.column);
    }
    if (item_table.schema().field(*idx).type != table::DataType::kString) {
      return Status::InvalidArgument(
          "item hierarchy column must be string labels: " + ih.column);
    }
    cols.push_back(*idx);
    dims.emplace_back(ih.dim);
  }
  out->hierarchies_ = std::move(hierarchies);
  out->space_ = std::make_unique<olap::RegionSpace>(std::move(dims));
  out->coords_.resize(item_table.num_rows());
  for (size_t r = 0; r < item_table.num_rows(); ++r) {
    olap::PointCoords& pc = out->coords_[r];
    pc.resize(cols.size());
    for (size_t h = 0; h < cols.size(); ++h) {
      const auto& col = item_table.column(cols[h]);
      if (col.IsNull(r)) {
        return Status::InvalidArgument("null item hierarchy label (item " +
                                       std::to_string(r) + ")");
      }
      BW_ASSIGN_OR_RETURN(NodeId n,
                          out->hierarchies_[h].dim.FindNode(col.StringAt(r)));
      if (!out->hierarchies_[h].dim.IsLeaf(n)) {
        return Status::InvalidArgument(
            "item hierarchy label is not a leaf: " + col.StringAt(r));
      }
      pc[h] = n;
    }
  }
  return out;
}

std::vector<int32_t> ItemSubsetSpace::SubsetDepths(SubsetId subset) const {
  const olap::RegionCoords coords = space_->Decode(subset);
  std::vector<int32_t> depths(coords.size());
  for (size_t h = 0; h < coords.size(); ++h) {
    depths[h] = hierarchies_[h].dim.depth(coords[h]);
  }
  return depths;
}

Result<CubePrediction> BellwetherCube::PredictItem(
    int32_t item, const RegionFeatureLookup& lookup,
    double confidence) const {
  // Candidate cells: significant subsets containing the item, ordered by
  // their models' upper confidence bound of error.
  struct Candidate {
    double bound;
    SubsetId subset;
    const CubeCell* cell;
  };
  std::vector<Candidate> candidates;
  subsets_->ForEachContainingSubset(item, [&](SubsetId s) {
    const CubeCell* cell = FindCell(s);
    if (cell == nullptr || !cell->has_model) return;
    const double bound = cell->has_cv
                             ? cell->cv.UpperConfidenceBound(confidence)
                             : cell->error;
    candidates.push_back({bound, s, cell});
  });
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.bound != b.bound) return a.bound < b.bound;
              return a.subset < b.subset;
            });
  for (const Candidate& c : candidates) {
    const double* x = lookup.Find(c.cell->region, item);
    if (x == nullptr) continue;  // no data for the item in that region
    CubePrediction out;
    out.value = c.cell->model.Predict(x);
    out.subset = c.subset;
    out.region = c.cell->region;
    out.upper_confidence_bound = c.bound;
    return out;
  }
  return Status::NotFound(
      "no candidate bellwether region has data for the item");
}

std::vector<CrossTabRow> BellwetherCube::CrossTab(
    const std::vector<int32_t>& level_depths,
    const olap::RegionSpace* region_space) const {
  std::vector<CrossTabRow> rows;
  for (const CubeCell& cell : cells_) {
    if (subsets_->SubsetDepths(cell.subset) != level_depths) continue;
    CrossTabRow row;
    row.subset_label = subsets_->SubsetLabel(cell.subset);
    row.subset_size = cell.subset_size;
    if (cell.has_model) {
      row.error = cell.error;
      row.region_label = region_space != nullptr
                             ? region_space->RegionLabel(cell.region)
                             : std::to_string(cell.region);
    } else {
      row.error = kInf;
      row.region_label = "(none)";
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<BellwetherCube> BuildBellwetherCubeNaive(
    storage::TrainingDataSource* source,
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const CubeBuildConfig& config, const std::vector<uint8_t>* item_mask) {
  obs::TraceSpan span("BuildBellwetherCubeNaive", "cube");
  Stopwatch build_watch;
  CubeBuildTelemetry telemetry;
  const std::vector<int32_t> sizes = SubsetSizes(*subsets, item_mask);
  const std::vector<SubsetId> significant =
      SignificantSubsets(sizes, config.min_subset_size);
  std::vector<Pick> picks(significant.size());
  const size_t num_sets = source->num_region_sets();

  std::vector<uint8_t> member(subsets->num_items(), 0);
  for (size_t k = 0; k < significant.size(); ++k) {
    const SubsetId sid = significant[k];
    ++telemetry.data_passes;
    for (int32_t i = 0; i < subsets->num_items(); ++i) {
      member[i] = !ItemMasked(item_mask, i) &&
                  subsets->SubsetContainsItem(sid, i);
    }
    // One basic bellwether search for this subset: read every region.
    for (size_t s = 0; s < num_sets; ++s) {
      BW_ASSIGN_OR_RETURN(RegionTrainingSet set, source->Read(s));
      RegressionSuffStats stats(set.num_features);
      for (size_t row = 0; row < set.num_examples(); ++row) {
        if (member[set.items[row]]) {
          stats.Add(set.row(row), set.targets[row], set.weight(row));
        }
      }
      picks[k].Offer(
          TrainingErrorOfStats(stats, config.min_examples_per_model),
          set.region, stats);
    }
  }
  Metrics().naive_passes->Increment(telemetry.data_passes);
  return FinalizeCube("cube_naive", source, std::move(subsets), config, item_mask, sizes,
                      significant, std::move(picks), telemetry, build_watch);
}

Result<BellwetherCube> BuildBellwetherCubeSingleScan(
    storage::TrainingDataSource* source,
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const CubeBuildConfig& config, const std::vector<uint8_t>* item_mask) {
  obs::TraceSpan span("BuildBellwetherCubeSingleScan", "cube");
  Stopwatch build_watch;
  CubeBuildTelemetry telemetry;
  const std::vector<int32_t> sizes = SubsetSizes(*subsets, item_mask);
  const std::vector<SubsetId> significant =
      SignificantSubsets(sizes, config.min_subset_size);
  std::vector<Pick> picks(significant.size());

  // Dense SubsetId -> significant index (or -1).
  std::vector<int64_t> sig_index(subsets->NumSubsets(), -1);
  for (size_t k = 0; k < significant.size(); ++k) {
    sig_index[significant[k]] = static_cast<int64_t>(k);
  }
  // Per item: the significant subsets containing it, ascending.
  std::vector<std::vector<int32_t>> containing(subsets->num_items());
  for (int32_t i = 0; i < subsets->num_items(); ++i) {
    if (ItemMasked(item_mask, i)) continue;
    subsets->ForEachContainingSubset(i, [&](SubsetId s) {
      if (sig_index[s] >= 0) {
        containing[i].push_back(static_cast<int32_t>(sig_index[s]));
      }
    });
    std::sort(containing[i].begin(), containing[i].end());
  }

  // ---- Checkpoint/resume (docs/ROBUSTNESS.md) ----
  // The build fingerprint ties a checkpoint to this exact build: subset
  // space, significant-subset list, pick-relevant config, and source shape.
  uint64_t fingerprint = 0;
  int64_t resume_from = 0;
  const bool checkpointing = !config.checkpoint_path.empty();
  if (checkpointing) {
    robust::FingerprintBuilder fp;
    fp.Add(static_cast<uint64_t>(subsets->NumSubsets()))
        .Add(static_cast<uint64_t>(source->num_region_sets()))
        .Add(static_cast<uint64_t>(config.min_subset_size))
        .Add(static_cast<uint64_t>(config.min_examples_per_model));
    for (SubsetId sid : significant) fp.Add(static_cast<uint64_t>(sid));
    fingerprint = fp.value();
    auto ckpt = robust::LoadCubeCheckpoint(config.checkpoint_path);
    if (ckpt.ok() && ckpt.value().fingerprint == fingerprint &&
        ckpt.value().picks.size() == significant.size()) {
      for (size_t k = 0; k < picks.size(); ++k) {
        robust::PickCheckpoint& pk = ckpt.value().picks[k];
        picks[k].error = pk.error;
        picks[k].region = pk.region;
        picks[k].stats = std::move(pk.stats);
        picks[k].fallback_region = pk.fallback_region;
        picks[k].fallback_examples = pk.fallback_examples;
        picks[k].fallback_stats = std::move(pk.fallback_stats);
      }
      resume_from = ckpt.value().regions_processed;
      telemetry.resumed_regions = resume_from;
      obs::DefaultMetrics()
          .GetCounter(obs::kMCubeCheckpointResumes)
          ->Increment();
      BW_LOG(obs::LogLevel::kInfo, "cube")
          << "resuming cube build from checkpoint at region " << resume_from;
    }
  }
  auto save_checkpoint = [&](int64_t regions_processed) -> Status {
    robust::CubeBuildCheckpoint ckpt;
    ckpt.fingerprint = fingerprint;
    ckpt.regions_processed = regions_processed;
    ckpt.picks.resize(picks.size());
    for (size_t k = 0; k < picks.size(); ++k) {
      robust::PickCheckpoint& pk = ckpt.picks[k];
      pk.error = picks[k].error;
      pk.region = picks[k].region;
      pk.stats = picks[k].stats;
      pk.fallback_region = picks[k].fallback_region;
      pk.fallback_examples = picks[k].fallback_examples;
      pk.fallback_stats = picks[k].fallback_stats;
    }
    BW_RETURN_IF_ERROR(
        robust::SaveCubeCheckpoint(ckpt, config.checkpoint_path));
    ++telemetry.checkpoints_saved;
    obs::DefaultMetrics()
        .GetCounter(obs::kMCubeCheckpointsSaved)
        ->Increment();
    return Status::OK();
  };

  std::vector<RegressionSuffStats> stats;
  int64_t region_pos = 0;

  // Tail work of one *merged* region, shared by the serial and parallel
  // paths: count it, save a checkpoint on the configured cadence, and honor
  // the injected-crash fault. In the parallel build this runs in ascending
  // region order on the scan thread, so checkpoint contents and crash
  // arrival counts are bit-identical to the serial build.
  auto finish_region = [&]() -> Status {
    ++region_pos;
    if (checkpointing &&
        region_pos % std::max(config.checkpoint_every, 1) == 0) {
      BW_RETURN_IF_ERROR(save_checkpoint(region_pos));
    }
    // Crash injection sits after the checkpoint write, modeling a process
    // killed between completing a region and starting the next one.
    if (robust::ShouldCrash(robust::kFaultCubeScan)) {
      return Status::IoError(
          "injected crash during cube scan (simulated kill)");
    }
    return Status::OK();
  };

  const int32_t num_threads = exec::ResolveNumThreads(config.exec.num_threads);
  std::unique_ptr<exec::ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<exec::ThreadPool>(num_threads);
  Status scan_status;
  if (pool == nullptr) {
    scan_status = source->Scan([&](const RegionTrainingSet& set) -> Status {
      // Fast-forward past regions a resumed checkpoint already accounts for
      // (the physical scan still delivers them; their compute is skipped).
      if (region_pos < resume_from) {
        ++region_pos;
        return Status::OK();
      }
      if (stats.empty()) {
        stats.assign(significant.size(),
                     RegressionSuffStats(set.num_features));
      } else {
        for (auto& s : stats) s.Reset();
      }
      // "Build a model h_r on r for S" for every significant subset S: each
      // row contributes to every containing subset's statistics directly.
      for (size_t row = 0; row < set.num_examples(); ++row) {
        for (int32_t k : containing[set.items[row]]) {
          stats[k].Add(set.row(row), set.targets[row], set.weight(row));
        }
      }
      for (size_t k = 0; k < significant.size(); ++k) {
        picks[k].Offer(
            TrainingErrorOfStats(stats[k], config.min_examples_per_model),
            set.region, stats[k]);
      }
      return finish_region();
    });
  } else {
    // Parallel path: each region's per-subset <MinError, Size> accumulators
    // are computed on a worker from a private copy of the training set (row
    // order, and hence every floating-point accumulation, matches the serial
    // loop exactly), then offered to the shared picks in scan order — the
    // same Offer() sequence the serial loop performs, so cube cells,
    // checkpoints, and crash points are bit-identical for any thread count.
    struct RegionCubeStats {
      olap::RegionId region = olap::kInvalidRegion;
      std::vector<RegressionSuffStats> stats;  // per significant subset
      std::vector<double> error;
    };
    int64_t scan_pos = 0;
    exec::MergeInSubmissionOrder<RegionCubeStats> reducer(
        pool.get(), /*max_outstanding=*/2 * static_cast<size_t>(num_threads),
        "cube.scan_merge", [&](size_t, RegionCubeStats r) -> Status {
          for (size_t k = 0; k < significant.size(); ++k) {
            picks[k].Offer(r.error[k], r.region, r.stats[k]);
          }
          return finish_region();
        });
    scan_status = source->Scan([&](const RegionTrainingSet& set) -> Status {
      if (scan_pos < resume_from) {
        // The resume skip is a strict prefix of the scan, before anything
        // was submitted to the pool, so the merge-side region counter can
        // be advanced inline.
        ++scan_pos;
        ++region_pos;
        return Status::OK();
      }
      ++scan_pos;
      return reducer.Submit(
          [&significant, &containing, &config, set = set]() {
            RegionCubeStats r;
            r.region = set.region;
            r.stats.assign(significant.size(),
                           RegressionSuffStats(set.num_features));
            for (size_t row = 0; row < set.num_examples(); ++row) {
              for (int32_t k : containing[set.items[row]]) {
                r.stats[k].Add(set.row(row), set.targets[row],
                               set.weight(row));
              }
            }
            r.error.resize(significant.size());
            for (size_t k = 0; k < significant.size(); ++k) {
              r.error[k] = TrainingErrorOfStats(
                  r.stats[k], config.min_examples_per_model);
            }
            return r;
          });
    });
    if (scan_status.ok()) scan_status = reducer.Finish();
  }
  BW_RETURN_IF_ERROR(scan_status);
  if (checkpointing) {
    // Final state, in case the region count is not a multiple of the
    // checkpoint interval.
    BW_RETURN_IF_ERROR(save_checkpoint(region_pos));
  }
  telemetry.data_passes = 1;
  Metrics().single_scan_passes->Increment(1);
  return FinalizeCube("cube_single_scan", source, std::move(subsets), config, item_mask, sizes,
                      significant, std::move(picks), telemetry, build_watch);
}

Result<BellwetherCube> BuildBellwetherCubeOptimized(
    storage::TrainingDataSource* source,
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const CubeBuildConfig& config, const std::vector<uint8_t>* item_mask) {
  obs::TraceSpan span("BuildBellwetherCubeOptimized", "cube");
  Stopwatch build_watch;
  CubeBuildTelemetry telemetry;
  const std::vector<int32_t> sizes = SubsetSizes(*subsets, item_mask);
  const std::vector<SubsetId> significant =
      SignificantSubsets(sizes, config.min_subset_size);
  std::vector<Pick> picks(significant.size());

  // Per item: its base subset (leaf coordinate combination).
  std::vector<SubsetId> base_of(subsets->num_items());
  for (int32_t i = 0; i < subsets->num_items(); ++i) {
    base_of[i] = subsets->BaseSubsetOf(i);
  }

  const size_t num_subsets = static_cast<size_t>(subsets->NumSubsets());
  std::vector<RegressionSuffStats> lattice(num_subsets);
  BW_RETURN_IF_ERROR(source->Scan([&](const RegionTrainingSet& set)
                                      -> Status {
    for (auto& s : lattice) {
      if (!s.empty()) s.Reset();
    }
    // Theorem 1: accumulate g(.) at the base subsets only...
    for (size_t row = 0; row < set.num_examples(); ++row) {
      const int32_t item = set.items[row];
      if (ItemMasked(item_mask, item)) continue;
      RegressionSuffStats& s = lattice[base_of[item]];
      if (s.num_features() == 0) {
        s = RegressionSuffStats(set.num_features);
      }
      s.Add(set.row(row), set.targets[row], set.weight(row));
    }
    // ...then combine with q(.) (element-wise sums) up the lattice.
    RollupSubsetStats(subsets->space(), &lattice);
    for (size_t k = 0; k < significant.size(); ++k) {
      picks[k].Offer(TrainingErrorOfStats(lattice[significant[k]],
                                          config.min_examples_per_model),
                     set.region, lattice[significant[k]]);
    }
    return Status::OK();
  }));
  telemetry.data_passes = 1;
  Metrics().optimized_passes->Increment(1);
  return FinalizeCube("cube_optimized", source, std::move(subsets), config, item_mask, sizes,
                      significant, std::move(picks), telemetry, build_watch);
}

}  // namespace bellwether::core
