#include "core/bellwether_cube.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/random.h"
#include "core/bellwether_state.h"
#include "core/cube_build_internal.h"
#include "obs/logger.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bellwether::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using olap::HierarchicalDimension;
using olap::NodeId;
using regression::RegressionSuffStats;
using storage::RegionTrainingSet;

// Registry counters mirrored alongside the per-build CubeBuildTelemetry;
// resolved once and cached (registry pointers are stable).
struct CubeMetrics {
  obs::Counter* naive_passes;
  obs::Counter* single_scan_passes;
  obs::Counter* optimized_passes;
  obs::Counter* significant;
  obs::Counter* cells;
};

const CubeMetrics& Metrics() {
  static const CubeMetrics m{
      obs::DefaultMetrics().GetCounter(obs::kMCubeNaiveScans),
      obs::DefaultMetrics().GetCounter(obs::kMCubeSingleScanScans),
      obs::DefaultMetrics().GetCounter(obs::kMCubeOptimizedScans),
      obs::DefaultMetrics().GetCounter(obs::kMCubeSignificantSubsets),
      obs::DefaultMetrics().GetCounter(obs::kMCubeCellsMaterialized)};
  return m;
}

// In-place lattice rollup of per-subset sufficient statistics: child node
// merges into parent, one hierarchy at a time (the data-cube computation of
// Observation 1 / Theorem 1).
void RollupSubsetStats(const olap::RegionSpace& space,
                       std::vector<RegressionSuffStats>* stats) {
  const size_t nd = space.num_dims();
  std::vector<int32_t> cards(nd);
  std::vector<int64_t> strides(nd, 1);
  for (size_t d = 0; d < nd; ++d) {
    cards[d] = olap::DimensionCardinality(space.dim(d));
  }
  for (size_t d = nd - 1; d-- > 0;) strides[d] = strides[d + 1] * cards[d + 1];
  const int64_t total = space.NumRegions();
  for (size_t d = 0; d < nd; ++d) {
    const auto& h = std::get<HierarchicalDimension>(space.dim(d));
    const int64_t stride = strides[d];
    const int64_t block = stride * cards[d];
    for (NodeId n : h.NodesBottomUp()) {
      if (n == h.root()) continue;
      const NodeId parent = h.parent(n);
      for (int64_t hi = 0; hi < total; hi += block) {
        for (int64_t lo = 0; lo < stride; ++lo) {
          RegressionSuffStats& src = (*stats)[hi + n * stride + lo];
          if (src.empty()) continue;
          (*stats)[hi + parent * stride + lo].Merge(src);
        }
      }
    }
  }
}

}  // namespace

namespace internal {

std::vector<int32_t> SubsetSizes(const ItemSubsetSpace& subsets,
                                 const std::vector<uint8_t>* item_mask) {
  std::vector<int32_t> sizes(subsets.NumSubsets(), 0);
  for (int32_t i = 0; i < subsets.num_items(); ++i) {
    if (item_mask != nullptr && (static_cast<size_t>(i) >= item_mask->size() ||
                                 (*item_mask)[i] == 0)) {
      continue;
    }
    subsets.ForEachContainingSubset(i, [&](SubsetId s) { ++sizes[s]; });
  }
  return sizes;
}

std::vector<SubsetId> SignificantSubsets(const std::vector<int32_t>& sizes,
                                         int32_t min_size) {
  std::vector<SubsetId> out;
  for (size_t s = 0; s < sizes.size(); ++s) {
    if (sizes[s] >= std::max(min_size, 1)) {
      out.push_back(static_cast<SubsetId>(s));
    }
  }
  return out;
}

bool ItemMasked(const std::vector<uint8_t>* item_mask, int32_t item) {
  return item_mask != nullptr &&
         (static_cast<size_t>(item) >= item_mask->size() ||
          (*item_mask)[item] == 0);
}

RegionRowsVisitor SourceRowsVisitor(storage::TrainingDataSource* source) {
  // region -> source index, sorted once; shared so the visitor is copyable.
  auto region_index =
      std::make_shared<std::vector<std::pair<olap::RegionId, size_t>>>();
  const auto ids = source->RegionIds();
  region_index->reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    region_index->emplace_back(ids[i], i);
  }
  std::sort(region_index->begin(), region_index->end());
  return [source, region_index](
             olap::RegionId region,
             const std::function<Status(const RegionTrainingSet&)>& fn)
             -> Status {
    auto it = std::lower_bound(region_index->begin(), region_index->end(),
                               std::make_pair(region, size_t{0}));
    if (it == region_index->end() || it->first != region) {
      return Status::OK();  // region not materialized: cell goes without CV
    }
    BW_ASSIGN_OR_RETURN(RegionTrainingSet set, source->Read(it->second));
    return fn(set);
  };
}

Result<CubeCell> BuildCubeCell(SubsetId sid, int32_t subset_size,
                               const Pick& pick, const CubeBuildConfig& config,
                               const std::vector<uint8_t>* item_mask,
                               const ItemSubsetSpace& subsets,
                               const RegionRowsVisitor& rows) {
  CubeCell cell;
  cell.subset = sid;
  cell.subset_size = subset_size;
  if (pick.region != olap::kInvalidRegion && pick.error < kCubeInf) {
    // Graceful degradation: a healthy fit is bit-identical to the plain
    // Fit() path; an ill-conditioned pick yields a flagged degraded model
    // instead of a model-less cell.
    auto fit = pick.stats.FitWithFallback();
    if (fit.ok()) {
      cell.has_model = true;
      cell.region = pick.region;
      cell.error = pick.error;
      cell.model = std::move(fit.value().model);
      cell.degradation = fit.value().degradation;
    }
  }
  if (!cell.has_model && pick.fallback_region != olap::kInvalidRegion &&
      pick.fallback_examples > 0) {
    // No region produced a finite error for this subset; fall back to the
    // region with the most examples so the cell still answers queries,
    // clearly flagged (error = inf, fallback_pick = true).
    auto fit = pick.fallback_stats.FitWithFallback();
    if (fit.ok()) {
      cell.has_model = true;
      cell.fallback_pick = true;
      cell.region = pick.fallback_region;
      cell.error = kCubeInf;
      cell.model = std::move(fit.value().model);
      cell.degradation = fit.value().degradation;
    }
  }
  if (cell.has_model && config.compute_cv_stats && rows != nullptr) {
    BW_RETURN_IF_ERROR(
        rows(cell.region, [&](const RegionTrainingSet& set) -> Status {
          regression::Dataset data(set.num_features);
          std::vector<double> row(set.num_features);
          for (size_t r = 0; r < set.num_examples(); ++r) {
            const int32_t item = set.items[r];
            if (ItemMasked(item_mask, item)) continue;
            if (!subsets.SubsetContainsItem(sid, item)) continue;
            row.assign(set.row(r), set.row(r) + set.num_features);
            if (set.weighted()) {
              data.AddWeighted(row, set.targets[r], set.weight(r));
            } else {
              data.Add(row, set.targets[r]);
            }
          }
          Rng rng(RegionSeed(config.seed ^ static_cast<uint64_t>(sid),
                             cell.region));
          auto cv =
              regression::CrossValidationError(data, config.cv_folds, &rng);
          if (cv.ok()) {
            cell.cv = *cv;
            cell.has_cv = true;
          }
          return Status::OK();
        }));
  }
  return cell;
}

Result<BellwetherCube> AssembleCube(
    std::string_view builder_name,
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const CubeBuildConfig& config, std::vector<CubeCell> cells,
    CubeBuildTelemetry telemetry, const Stopwatch& build_watch) {
  std::vector<int64_t> cell_of(subsets->NumSubsets(), -1);
  for (size_t i = 0; i < cells.size(); ++i) {
    cell_of[cells[i].subset] = static_cast<int64_t>(i);
  }
  // The degradation counters are a pure function of the finished cells, so
  // recounting here keeps them correct no matter how the cells were derived
  // (fresh scan, or a mix of re-derived and cached cells on the incremental
  // path).
  telemetry.ridge_refits = 0;
  telemetry.mean_fallbacks = 0;
  telemetry.fallback_picks = 0;
  for (const CubeCell& cell : cells) {
    if (cell.fallback_pick) ++telemetry.fallback_picks;
    if (cell.degradation == regression::FitDegradation::kRidge) {
      ++telemetry.ridge_refits;
    } else if (cell.degradation == regression::FitDegradation::kMeanFallback) {
      ++telemetry.mean_fallbacks;
    }
  }
  telemetry.significant_subsets = static_cast<int64_t>(cells.size());
  telemetry.cells_materialized = static_cast<int64_t>(cells.size());
  telemetry.build_seconds = build_watch.ElapsedSeconds();
  Metrics().significant->Increment(telemetry.significant_subsets);
  Metrics().cells->Increment(telemetry.cells_materialized);
  BW_LOG(obs::LogLevel::kInfo, "cube")
      .Field("passes", telemetry.data_passes)
      .Field("significant", telemetry.significant_subsets)
      .Field("cells", telemetry.cells_materialized)
      .Field("seconds", telemetry.build_seconds)
      << "cube built";
  BellwetherCube cube(std::move(subsets), std::move(cell_of),
                      std::move(cells));
  cube.set_build_telemetry(telemetry);
  // Flight-recorder document. Config deliberately omits
  // config.exec.num_threads and the checkpoint path: logical sections (and
  // the fingerprint) must match serial/parallel and resumed/uninterrupted
  // builds of the same cube.
  obs::RunReport report{std::string(builder_name)};
  report.SetConfig("cube.min_subset_size",
                   static_cast<int64_t>(config.min_subset_size));
  report.SetConfig("cube.min_examples_per_model",
                   static_cast<int64_t>(config.min_examples_per_model));
  report.SetConfig("cube.compute_cv_stats",
                   static_cast<int64_t>(config.compute_cv_stats ? 1 : 0));
  report.SetConfig("cube.cv_folds", static_cast<int64_t>(config.cv_folds));
  report.SetConfig("cube.seed", static_cast<int64_t>(config.seed));
  report.SetCount("cube.data_passes", telemetry.data_passes);
  report.SetCount("cube.significant_subsets", telemetry.significant_subsets);
  report.SetCount("cube.cells_materialized", telemetry.cells_materialized);
  report.SetCount("cube.ridge_refits", telemetry.ridge_refits);
  report.SetCount("cube.mean_fallbacks", telemetry.mean_fallbacks);
  report.SetCount("cube.fallback_picks", telemetry.fallback_picks);
  report.SetCount("cube.checkpoints_saved", telemetry.checkpoints_saved);
  report.SetCount("cube.resumed_regions", telemetry.resumed_regions);
  report.AddPhase("cube.build", telemetry.build_seconds);
  cube.set_build_report(std::move(report));
  return cube;
}

}  // namespace internal

namespace {

// Converts per-subset picks into the final cube: the cell-derivation and
// assembly phases back-to-back, for the one-shot builders that still hold
// their picks in a local vector.
Result<BellwetherCube> FinalizeCube(
    std::string_view builder_name, storage::TrainingDataSource* source,
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const CubeBuildConfig& config, const std::vector<uint8_t>* item_mask,
    const std::vector<int32_t>& sizes,
    const std::vector<SubsetId>& significant,
    std::vector<internal::Pick> picks, CubeBuildTelemetry telemetry,
    const Stopwatch& build_watch) {
  internal::RegionRowsVisitor rows;
  if (config.compute_cv_stats) {
    rows = internal::SourceRowsVisitor(source);
  }
  std::vector<CubeCell> cells;
  cells.reserve(significant.size());
  for (size_t k = 0; k < significant.size(); ++k) {
    const SubsetId sid = significant[k];
    BW_ASSIGN_OR_RETURN(
        CubeCell cell,
        internal::BuildCubeCell(sid, sizes[sid], picks[k], config, item_mask,
                                *subsets, rows));
    cells.push_back(std::move(cell));
  }
  return internal::AssembleCube(builder_name, std::move(subsets), config,
                                std::move(cells), telemetry, build_watch);
}

}  // namespace

Result<std::shared_ptr<ItemSubsetSpace>> ItemSubsetSpace::Create(
    const table::Table& item_table, std::vector<ItemHierarchy> hierarchies) {
  if (hierarchies.empty()) {
    return Status::InvalidArgument("need at least one item hierarchy");
  }
  auto out = std::shared_ptr<ItemSubsetSpace>(new ItemSubsetSpace());
  std::vector<olap::Dimension> dims;
  std::vector<size_t> cols;
  for (const auto& ih : hierarchies) {
    auto idx = item_table.schema().FindField(ih.column);
    if (!idx.has_value()) {
      return Status::NotFound("item hierarchy column missing: " + ih.column);
    }
    if (item_table.schema().field(*idx).type != table::DataType::kString) {
      return Status::InvalidArgument(
          "item hierarchy column must be string labels: " + ih.column);
    }
    cols.push_back(*idx);
    dims.emplace_back(ih.dim);
  }
  out->hierarchies_ = std::move(hierarchies);
  out->space_ = std::make_unique<olap::RegionSpace>(std::move(dims));
  out->coords_.resize(item_table.num_rows());
  for (size_t r = 0; r < item_table.num_rows(); ++r) {
    olap::PointCoords& pc = out->coords_[r];
    pc.resize(cols.size());
    for (size_t h = 0; h < cols.size(); ++h) {
      const auto& col = item_table.column(cols[h]);
      if (col.IsNull(r)) {
        return Status::InvalidArgument("null item hierarchy label (item " +
                                       std::to_string(r) + ")");
      }
      BW_ASSIGN_OR_RETURN(NodeId n,
                          out->hierarchies_[h].dim.FindNode(col.StringAt(r)));
      if (!out->hierarchies_[h].dim.IsLeaf(n)) {
        return Status::InvalidArgument(
            "item hierarchy label is not a leaf: " + col.StringAt(r));
      }
      pc[h] = n;
    }
  }
  return out;
}

std::vector<int32_t> ItemSubsetSpace::SubsetDepths(SubsetId subset) const {
  const olap::RegionCoords coords = space_->Decode(subset);
  std::vector<int32_t> depths(coords.size());
  for (size_t h = 0; h < coords.size(); ++h) {
    depths[h] = hierarchies_[h].dim.depth(coords[h]);
  }
  return depths;
}

Result<CubePrediction> BellwetherCube::PredictItem(
    int32_t item, const RegionFeatureLookup& lookup,
    double confidence) const {
  // Candidate cells: significant subsets containing the item, ordered by
  // their models' upper confidence bound of error.
  struct Candidate {
    double bound;
    SubsetId subset;
    const CubeCell* cell;
  };
  std::vector<Candidate> candidates;
  subsets_->ForEachContainingSubset(item, [&](SubsetId s) {
    const CubeCell* cell = FindCell(s);
    if (cell == nullptr || !cell->has_model) return;
    const double bound = cell->has_cv
                             ? cell->cv.UpperConfidenceBound(confidence)
                             : cell->error;
    candidates.push_back({bound, s, cell});
  });
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.bound != b.bound) return a.bound < b.bound;
              return a.subset < b.subset;
            });
  for (const Candidate& c : candidates) {
    const double* x = lookup.Find(c.cell->region, item);
    if (x == nullptr) continue;  // no data for the item in that region
    CubePrediction out;
    out.value = c.cell->model.Predict(x);
    out.subset = c.subset;
    out.region = c.cell->region;
    out.upper_confidence_bound = c.bound;
    return out;
  }
  return Status::NotFound(
      "no candidate bellwether region has data for the item");
}

std::vector<CrossTabRow> BellwetherCube::CrossTab(
    const std::vector<int32_t>& level_depths,
    const olap::RegionSpace* region_space) const {
  std::vector<CrossTabRow> rows;
  for (const CubeCell& cell : cells_) {
    if (subsets_->SubsetDepths(cell.subset) != level_depths) continue;
    CrossTabRow row;
    row.subset_label = subsets_->SubsetLabel(cell.subset);
    row.subset_size = cell.subset_size;
    if (cell.has_model) {
      row.error = cell.error;
      row.region_label = region_space != nullptr
                             ? region_space->RegionLabel(cell.region)
                             : std::to_string(cell.region);
    } else {
      row.error = kInf;
      row.region_label = "(none)";
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<BellwetherCube> BuildBellwetherCubeNaive(
    storage::TrainingDataSource* source,
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const CubeBuildConfig& config, const std::vector<uint8_t>* item_mask) {
  obs::TraceSpan span("BuildBellwetherCubeNaive", "cube");
  Stopwatch build_watch;
  CubeBuildTelemetry telemetry;
  const std::vector<int32_t> sizes =
      internal::SubsetSizes(*subsets, item_mask);
  const std::vector<SubsetId> significant =
      internal::SignificantSubsets(sizes, config.min_subset_size);
  std::vector<internal::Pick> picks(significant.size());
  const size_t num_sets = source->num_region_sets();

  std::vector<uint8_t> member(subsets->num_items(), 0);
  for (size_t k = 0; k < significant.size(); ++k) {
    const SubsetId sid = significant[k];
    ++telemetry.data_passes;
    for (int32_t i = 0; i < subsets->num_items(); ++i) {
      member[i] = !internal::ItemMasked(item_mask, i) &&
                  subsets->SubsetContainsItem(sid, i);
    }
    // One basic bellwether search for this subset: read every region.
    for (size_t s = 0; s < num_sets; ++s) {
      BW_ASSIGN_OR_RETURN(RegionTrainingSet set, source->Read(s));
      RegressionSuffStats stats(set.num_features);
      for (size_t row = 0; row < set.num_examples(); ++row) {
        if (member[set.items[row]]) {
          stats.Add(set.row(row), set.targets[row], set.weight(row));
        }
      }
      picks[k].Offer(
          TrainingErrorOfStats(stats, config.min_examples_per_model),
          set.region, stats);
    }
  }
  Metrics().naive_passes->Increment(telemetry.data_passes);
  return FinalizeCube("cube_naive", source, std::move(subsets), config, item_mask, sizes,
                      significant, std::move(picks), telemetry, build_watch);
}

Result<BellwetherCube> BuildBellwetherCubeSingleScan(
    storage::TrainingDataSource* source,
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const CubeBuildConfig& config, const std::vector<uint8_t>* item_mask) {
  obs::TraceSpan span("BuildBellwetherCubeSingleScan", "cube");
  // Re-expressed over the algebraic state core: Init captures the subset
  // lattice, IngestScan performs the historical single scan (with its
  // checkpoint/resume and parallel merge machinery), Finalize derives the
  // cells. Artifacts are bit-identical to the pre-refactor builder.
  BellwetherState::Options options;
  options.config = config;
  options.incremental = false;
  options.report_name = "cube_single_scan";
  BW_ASSIGN_OR_RETURN(
      std::unique_ptr<BellwetherState> state,
      BellwetherState::Init(std::move(subsets), std::move(options),
                            item_mask));
  BW_RETURN_IF_ERROR(state->IngestScan(source));
  Metrics().single_scan_passes->Increment(1);
  return state->Finalize();
}

Result<BellwetherCube> BuildBellwetherCubeOptimized(
    storage::TrainingDataSource* source,
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const CubeBuildConfig& config, const std::vector<uint8_t>* item_mask) {
  obs::TraceSpan span("BuildBellwetherCubeOptimized", "cube");
  Stopwatch build_watch;
  CubeBuildTelemetry telemetry;
  const std::vector<int32_t> sizes =
      internal::SubsetSizes(*subsets, item_mask);
  const std::vector<SubsetId> significant =
      internal::SignificantSubsets(sizes, config.min_subset_size);
  std::vector<internal::Pick> picks(significant.size());

  // Per item: its base subset (leaf coordinate combination).
  std::vector<SubsetId> base_of(subsets->num_items());
  for (int32_t i = 0; i < subsets->num_items(); ++i) {
    base_of[i] = subsets->BaseSubsetOf(i);
  }

  const size_t num_subsets = static_cast<size_t>(subsets->NumSubsets());
  std::vector<RegressionSuffStats> lattice(num_subsets);
  BW_RETURN_IF_ERROR(source->Scan([&](const RegionTrainingSet& set)
                                      -> Status {
    for (auto& s : lattice) {
      if (!s.empty()) s.Reset();
    }
    // Theorem 1: accumulate g(.) at the base subsets only...
    for (size_t row = 0; row < set.num_examples(); ++row) {
      const int32_t item = set.items[row];
      if (internal::ItemMasked(item_mask, item)) continue;
      RegressionSuffStats& s = lattice[base_of[item]];
      if (s.num_features() == 0) {
        s = RegressionSuffStats(set.num_features);
      }
      s.Add(set.row(row), set.targets[row], set.weight(row));
    }
    // ...then combine with q(.) (element-wise sums) up the lattice.
    RollupSubsetStats(subsets->space(), &lattice);
    for (size_t k = 0; k < significant.size(); ++k) {
      picks[k].Offer(TrainingErrorOfStats(lattice[significant[k]],
                                          config.min_examples_per_model),
                     set.region, lattice[significant[k]]);
    }
    return Status::OK();
  }));
  telemetry.data_passes = 1;
  Metrics().optimized_passes->Increment(1);
  return FinalizeCube("cube_optimized", source, std::move(subsets), config, item_mask, sizes,
                      significant, std::move(picks), telemetry, build_watch);
}

}  // namespace bellwether::core
