#include "core/item_centric_eval.h"

#include <cmath>

#include "common/random.h"
#include "core/eval_util.h"

namespace bellwether::core {

namespace {

// Accumulates squared prediction errors for one method.
struct SqErrAcc {
  double sse = 0.0;
  int64_t n = 0;
  int64_t missed = 0;

  void Hit(double prediction, double truth) {
    const double e = prediction - truth;
    sse += e * e;
    ++n;
  }
  void Miss() { ++missed; }

  MethodResult Finish() const {
    MethodResult out;
    out.predicted = n;
    out.missed = missed;
    out.rmse = n > 0 ? std::sqrt(sse / static_cast<double>(n)) : 0.0;
    return out;
  }
};

}  // namespace

Result<ItemCentricResult> EvaluateItemCentric(const ItemCentricInput& input,
                                              const ItemCentricOptions& opts) {
  if (input.sets == nullptr || input.targets == nullptr ||
      input.item_table == nullptr) {
    return Status::InvalidArgument("incomplete item-centric input");
  }
  if (opts.folds < 2) {
    return Status::InvalidArgument("item-centric evaluation needs >= 2 folds");
  }
  if (opts.run_cube && input.subsets == nullptr) {
    return Status::InvalidArgument("cube evaluation requested without item "
                                   "hierarchies");
  }
  const int32_t num_items = static_cast<int32_t>(input.targets->size());

  // Evaluable items: those with a target.
  std::vector<int32_t> eval_items;
  for (int32_t i = 0; i < num_items; ++i) {
    if (!std::isnan((*input.targets)[i])) eval_items.push_back(i);
  }
  if (static_cast<int32_t>(eval_items.size()) < opts.folds) {
    return Status::FailedPrecondition("fewer evaluable items than folds");
  }
  Rng rng(opts.seed);
  rng.Shuffle(&eval_items);

  storage::MemoryTrainingData source(*input.sets);
  const RegionFeatureLookup lookup(input.sets);

  SqErrAcc basic_acc, tree_acc, cube_acc;
  for (int32_t fold = 0; fold < opts.folds; ++fold) {
    std::vector<uint8_t> train_mask(num_items, 0);
    std::vector<int32_t> test_items;
    for (size_t k = 0; k < eval_items.size(); ++k) {
      if (static_cast<int32_t>(k % opts.folds) == fold) {
        test_items.push_back(eval_items[k]);
      } else {
        train_mask[eval_items[k]] = 1;
      }
    }

    // Basic bellwether search on the training items.
    BW_ASSIGN_OR_RETURN(
        BasicSearchResult basic,
        RunBasicBellwetherSearch(&source, opts.basic, &train_mask));

    // Bellwether tree (RainForest builder).
    BellwetherTree tree({}, {});
    if (opts.run_tree) {
      BW_ASSIGN_OR_RETURN(tree, BuildBellwetherTreeRainForest(
                                    &source, *input.item_table, opts.tree,
                                    &train_mask));
    }

    // Bellwether cube (optimized builder).
    std::unique_ptr<BellwetherCube> cube;
    if (opts.run_cube) {
      BW_ASSIGN_OR_RETURN(BellwetherCube built,
                          BuildBellwetherCubeOptimized(
                              &source, input.subsets, opts.cube, &train_mask));
      cube = std::make_unique<BellwetherCube>(std::move(built));
    }

    for (int32_t item : test_items) {
      const double truth = (*input.targets)[item];
      if (basic.found()) {
        const double* x = lookup.Find(basic.bellwether, item);
        if (x != nullptr) {
          basic_acc.Hit(basic.model.Predict(x), truth);
        } else {
          basic_acc.Miss();
        }
      } else {
        basic_acc.Miss();
      }
      if (opts.run_tree) {
        auto pred = tree.PredictItem(item, lookup);
        if (pred.ok()) {
          tree_acc.Hit(*pred, truth);
        } else {
          tree_acc.Miss();
        }
      }
      if (opts.run_cube) {
        auto pred = cube->PredictItem(item, lookup, opts.cube_confidence);
        if (pred.ok()) {
          cube_acc.Hit(pred->value, truth);
        } else {
          cube_acc.Miss();
        }
      }
    }
  }

  ItemCentricResult out;
  out.basic = basic_acc.Finish();
  out.tree = tree_acc.Finish();
  out.cube = cube_acc.Finish();
  return out;
}

std::vector<storage::RegionTrainingSet> FilterSetsByBudget(
    const std::vector<storage::RegionTrainingSet>& sets,
    const std::vector<double>& region_costs, double budget) {
  std::vector<storage::RegionTrainingSet> out;
  for (const auto& s : sets) {
    if (s.region >= 0 &&
        static_cast<size_t>(s.region) < region_costs.size() &&
        region_costs[s.region] <= budget) {
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace bellwether::core
