#ifndef BELLWETHER_CORE_CLASSIFICATION_CUBE_H_
#define BELLWETHER_CORE_CLASSIFICATION_CUBE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "classify/gaussian_nb.h"
#include "common/status.h"
#include "core/bellwether_cube.h"
#include "core/classification_search.h"
#include "storage/training_data.h"

namespace bellwether::core {

/// A cell of a classification bellwether cube: a significant item subset
/// with the region whose Gaussian NB classifier best predicts the
/// query-generated class labels of the subset's items.
struct ClassificationCubeCell {
  SubsetId subset = olap::kInvalidRegion;
  int32_t subset_size = 0;
  bool has_model = false;
  olap::RegionId region = olap::kInvalidRegion;
  double error = 0.0;  // training-set misclassification rate
  classify::GaussianNbModel model;
};

/// The classification counterpart of the bellwether cube (§6.4's pointer to
/// prediction cubes): for every significant cube subset, the bellwether
/// region of a *classifier*. Gaussian NB statistics are algebraic, so the
/// optimized builder rolls per-base-subset statistics up the item lattice
/// exactly like Theorem 1 rolls up regression statistics; scoring adds one
/// more pass over the region's rows (misclassification counts are additive
/// over rows, so they scatter to every containing subset).
class ClassificationCube {
 public:
  ClassificationCube(std::shared_ptr<const ItemSubsetSpace> subsets,
                     std::vector<int64_t> cell_of,
                     std::vector<ClassificationCubeCell> cells)
      : subsets_(std::move(subsets)),
        cell_of_(std::move(cell_of)),
        cells_(std::move(cells)) {}

  const ItemSubsetSpace& subsets() const { return *subsets_; }
  const std::vector<ClassificationCubeCell>& cells() const { return cells_; }

  const ClassificationCubeCell* FindCell(SubsetId subset) const {
    if (subset < 0 || static_cast<size_t>(subset) >= cell_of_.size() ||
        cell_of_[subset] < 0) {
      return nullptr;
    }
    return &cells_[cell_of_[subset]];
  }

  /// Predicts the class of an item: among the cells containing the item,
  /// pick the lowest-error model whose region has data for the item.
  Result<int32_t> PredictItem(int32_t item,
                              const RegionFeatureLookup& lookup) const;

 private:
  std::shared_ptr<const ItemSubsetSpace> subsets_;
  std::vector<int64_t> cell_of_;
  std::vector<ClassificationCubeCell> cells_;
};

struct ClassificationCubeConfig {
  std::function<int32_t(double target)> labeler;
  int32_t num_classes = 2;
  int32_t min_subset_size = 30;
  int32_t min_examples_per_model = 10;
};

/// Naive builder: one pass over the entire training data per significant
/// subset (reference implementation for tests).
Result<ClassificationCube> BuildClassificationCubeNaive(
    storage::TrainingDataSource* source,
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const ClassificationCubeConfig& config,
    const std::vector<uint8_t>* item_mask = nullptr);

/// Optimized builder: one sequential scan. Per region, NB statistics are
/// accumulated at the base subsets and rolled up the lattice; per-subset
/// models are then scored by scattering each row's misclassification to its
/// containing subsets.
Result<ClassificationCube> BuildClassificationCubeOptimized(
    storage::TrainingDataSource* source,
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const ClassificationCubeConfig& config,
    const std::vector<uint8_t>* item_mask = nullptr);

}  // namespace bellwether::core

#endif  // BELLWETHER_CORE_CLASSIFICATION_CUBE_H_
