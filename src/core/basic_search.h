#ifndef BELLWETHER_CORE_BASIC_SEARCH_H_
#define BELLWETHER_CORE_BASIC_SEARCH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "exec/thread_pool.h"
#include "obs/report.h"
#include "olap/region.h"
#include "regression/error.h"
#include "regression/linear_model.h"
#include "storage/training_data.h"

namespace bellwether::core {

/// Error of the model built on one feasible region.
struct RegionScore {
  olap::RegionId region = olap::kInvalidRegion;
  size_t source_index = 0;  // index within the TrainingDataSource
  regression::ErrorStats error;
  size_t num_examples = 0;
  bool usable = false;  // model fit / error estimation succeeded
};

/// Per-search telemetry, filled by RunBasicBellwetherSearch and the
/// re-selection helpers. The same quantities are mirrored into the process
/// MetricsRegistry (see obs/metrics.h) so benchmarks can export them.
struct SearchTelemetry {
  int64_t regions_enumerated = 0;  // region training sets visited
  int64_t regions_scored = 0;      // usable scores produced
  int64_t skipped_min_examples = 0;  // too few rows to fit a model
  int64_t model_fit_failures = 0;    // error estimation failed
  int64_t pruned_by_cost = 0;      // budget re-selection skips
  int64_t rows_scanned = 0;        // training rows seen across all sets
  double scan_seconds = 0.0;       // wall time of the scoring scan
  int64_t ridge_refits = 0;      // refits recovered by the heavy ridge tier
  int64_t mean_fallbacks = 0;    // refits degraded to the mean model
};

/// Output of the basic bellwether search (Definition 1 with the constrained
/// optimization criterion): the minimum-error feasible region, its model,
/// and — for analysis — the score of every feasible region.
struct BasicSearchResult {
  olap::RegionId bellwether = olap::kInvalidRegion;
  size_t bellwether_index = 0;  // index into `scores`
  regression::ErrorStats error;
  regression::LinearModel model;
  /// Degradation tier that produced `model` (kNone on a healthy refit; see
  /// RegressionSuffStats::FitWithFallback).
  regression::FitDegradation model_degradation =
      regression::FitDegradation::kNone;
  std::vector<RegionScore> scores;
  SearchTelemetry telemetry;
  /// Flight-recorder document for this search: config fingerprint, logical
  /// counts (mirroring `telemetry`), the pick, and the scan wall time as a
  /// phase. Logical sections are bit-identical across thread counts.
  obs::RunReport report;

  bool found() const { return bellwether != olap::kInvalidRegion; }

  /// Mean error over the usable regions ("Avg Err" curve of Fig. 7).
  double AverageError() const;

  /// Fraction of usable regions whose error lies within the `confidence`
  /// interval of the bellwether model's error (Fig. 7(b)): regions that are
  /// statistically indistinguishable from the chosen bellwether.
  double FractionIndistinguishable(double confidence) const;
};

/// Options controlling model scoring.
struct BasicSearchOptions {
  regression::ErrorEstimate estimate =
      regression::ErrorEstimate::kCrossValidation;
  int32_t cv_folds = 10;
  uint64_t seed = 17;
  /// A (region, subset) model needs at least this many training examples to
  /// be eligible; guards against trivially interpolating fits.
  int32_t min_examples = 5;
  /// Parallel region scoring. Per-region RNGs are seeded by
  /// RegionSeed(seed, region), so scores are order-independent; the scores
  /// vector and telemetry are merged in submission order, making the result
  /// bit-identical to the serial scan for every thread count.
  exec::BellwetherExecOptions exec;
};

/// Scores every region training set in `source` (one sequential scan) and
/// returns the minimum-error region. When `item_mask` is non-null, rows are
/// restricted to the masked items (used by item-centric evaluation).
Result<BasicSearchResult> RunBasicBellwetherSearch(
    storage::TrainingDataSource* source, const BasicSearchOptions& options,
    const std::vector<uint8_t>* item_mask = nullptr);

/// Re-selects the bellwether among already-computed scores under a tighter
/// budget, using per-region costs indexed by RegionId. Scores whose region
/// exceeds the budget are skipped. Enables budget sweeps without rescoring.
/// The model is refit from `source`.
Result<BasicSearchResult> SelectUnderBudget(
    const BasicSearchResult& full, storage::TrainingDataSource* source,
    const std::vector<double>& region_costs, double budget,
    const std::vector<uint8_t>* item_mask = nullptr);

/// The paper's alternative *linear optimization criterion* (§3.2): instead
/// of hard constraints, minimize
///   Error(h_r) + cost_weight * cost(r) - coverage_weight * coverage(r)
/// over the scored regions. Returns the minimizing region (model refit from
/// `source`); its `error` field still holds the raw error estimate.
Result<BasicSearchResult> SelectLinearCriterion(
    const BasicSearchResult& full, storage::TrainingDataSource* source,
    const std::vector<double>& region_costs,
    const std::vector<double>& region_coverage, double cost_weight,
    double coverage_weight, const std::vector<uint8_t>* item_mask = nullptr);

}  // namespace bellwether::core

#endif  // BELLWETHER_CORE_BASIC_SEARCH_H_
