#ifndef BELLWETHER_CORE_BASELINES_H_
#define BELLWETHER_CORE_BASELINES_H_

#include <cstdint>

#include "common/random.h"
#include "common/status.h"
#include "core/spec.h"
#include "regression/error.h"

namespace bellwether::core {

/// The random-sampling baseline of Fig. 7 ("Smp Err"): repeatedly draws a
/// random collection of finest-grained cells whose total cost stays within
/// the budget (such a collection generally does not correspond to any
/// OLAP-style region), builds a training set over the collection, and
/// estimates the model error. Returns the mean RMSE over `trials` draws.
Result<regression::ErrorStats> RandomSamplingError(const BellwetherSpec& spec,
                                                   double budget,
                                                   int32_t trials, Rng* rng);

}  // namespace bellwether::core

#endif  // BELLWETHER_CORE_BASELINES_H_
