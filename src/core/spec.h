#ifndef BELLWETHER_CORE_SPEC_H_
#define BELLWETHER_CORE_SPEC_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/thread_pool.h"
#include "olap/cost.h"
#include "olap/region.h"
#include "regression/error.h"
#include "robust/quarantine.h"
#include "table/ops.h"
#include "table/table.h"

namespace bellwether::core {

/// A reference (dimension) table of the star schema, joined to the fact
/// table through a fact foreign-key column.
struct ReferenceTable {
  const table::Table* table = nullptr;
  std::string key_column;  // primary key column in `table`
};

/// One regional feature generation query phi (paper §4.1). All three stylized
/// forms are supported:
///   kFactMeasure:       alpha_f(F.A)  sigma_{ID=i, Z in r} F
///   kReferenceMeasure:  alpha_f(T.A) ((sigma_{ID=i, Z in r} F) join T)
///   kFkDistinctMeasure: alpha_f(T.A) ((pi_FK sigma_{ID=i, Z in r} F) join T)
struct FeatureQuery {
  enum class Kind { kFactMeasure, kReferenceMeasure, kFkDistinctMeasure };

  Kind kind = Kind::kFactMeasure;
  table::AggFn fn = table::AggFn::kSum;
  /// Feature name in the generated training set.
  std::string name;
  /// Measure column: in the fact table (kFactMeasure) or in the reference
  /// table (the other kinds).
  std::string measure_column;
  /// For kReferenceMeasure / kFkDistinctMeasure: reference name (key into
  /// BellwetherSpec::references) and the fact FK column pointing at it.
  std::string reference;
  std::string fk_column;
};

/// The full input of Definition 1: historical database (star schema),
/// candidate region set, training item set, feature/target/cost queries, and
/// the constrained-optimization criterion.
struct BellwetherSpec {
  /// Candidate region set R.
  const olap::RegionSpace* space = nullptr;

  /// Fact table F. Dimension columns are int64 coordinates: for a
  /// hierarchical dimension the *leaf* NodeId, for an interval dimension the
  /// 1-based time point. `dimension_columns[d]` matches `space->dim(d)`.
  const table::Table* fact = nullptr;
  std::string item_id_column;  // int64 item ids in the fact table
  std::vector<std::string> dimension_columns;

  /// Reference tables by name.
  std::unordered_map<std::string, ReferenceTable> references;

  /// Item table I: one row per training item. Numeric item-table feature
  /// columns enter every region's design matrix (they are region-independent
  /// and always available); categorical item columns are used by bellwether
  /// trees/cubes for partitioning only.
  const table::Table* item_table = nullptr;
  std::string item_table_id_column;
  std::vector<std::string> item_feature_columns;  // numeric

  /// Regional feature queries phi.
  std::vector<FeatureQuery> regional_features;

  /// Target query tau: aggregate of a fact measure over the *full* region
  /// (e.g. first-year worldwide profit).
  table::AggFn target_fn = table::AggFn::kSum;
  std::string target_column;

  /// Weighted least squares (paper §6.4): when true, each training example
  /// (item, region) is weighted by the number of fact rows it aggregates —
  /// the standard WLS weighting for aggregated target values. When false
  /// (default), models are ordinary least squares.
  bool weight_by_support = false;

  /// Cost query kappa.
  const olap::CostModel* cost = nullptr;

  /// Constrained optimization criterion (§3.2): minimize error subject to
  /// cost <= budget and coverage >= min_coverage.
  double budget = 0.0;
  double min_coverage = 0.0;

  /// Error measure configuration.
  regression::ErrorEstimate error_estimate =
      regression::ErrorEstimate::kCrossValidation;
  int32_t cv_folds = 10;
  uint64_t seed = 17;

  /// Parallel region-set emission during training-data generation. The fact
  /// scan and cube rollups stay sequential; only the per-region set
  /// assembly runs on workers, merged into the sink in submission order —
  /// so the emitted stream is bit-identical to the serial one for every
  /// thread count.
  exec::BellwetherExecOptions exec;

  /// How training-data generation treats malformed fact rows (non-finite
  /// target or measure values, injected corruption). Permissive quarantines
  /// such rows — counted, logged, skipped — so one bad warehouse row cannot
  /// poison every region's training set; strict fails the generation naming
  /// the row. On clean data the two are identical.
  robust::RowErrorPolicy row_policy = robust::RowErrorPolicy::kPermissive;
};

/// Names of the columns of a generated training-set design matrix, in
/// feature order: intercept, item-table features, regional features.
std::vector<std::string> FeatureNames(const BellwetherSpec& spec);

}  // namespace bellwether::core

#endif  // BELLWETHER_CORE_SPEC_H_
