#include "regression/linear_model.h"

#include <cmath>

#include "obs/metrics.h"

namespace bellwether::regression {

const char* FitDegradationName(FitDegradation d) {
  switch (d) {
    case FitDegradation::kNone:
      return "none";
    case FitDegradation::kRidge:
      return "ridge";
    case FitDegradation::kMeanFallback:
      return "mean";
  }
  return "unknown";
}

RegressionSuffStats::RegressionSuffStats(size_t num_features)
    : p_(num_features),
      xtwx_packed_(PackedSize(num_features), 0.0),
      xtwy_(num_features, 0.0),
      ytwy_(0.0),
      n_(0),
      sum_w_(0.0) {}

void RegressionSuffStats::Reset() {
  xtwx_packed_.assign(PackedSize(p_), 0.0);
  xtwy_.assign(p_, 0.0);
  ytwy_ = 0.0;
  n_ = 0;
  sum_w_ = 0.0;
}

void RegressionSuffStats::AddBatch(const double* xs, const double* ys,
                                   const double* ws, size_t n) {
  const size_t p = p_;
  double* __restrict tri = xtwx_packed_.data();
  double* __restrict xy = xtwy_.data();
  size_t i = 0;
  // Register-blocked rank-4 update: each packed accumulator is loaded and
  // stored once per four examples, with four FMAs in between. The chained
  // `+=` keeps the left-to-right per-element summation order of four
  // scalar Add() calls.
  for (; i + 4 <= n; i += 4) {
    const double* __restrict x0 = xs + i * p;
    const double* __restrict x1 = x0 + p;
    const double* __restrict x2 = x1 + p;
    const double* __restrict x3 = x2 + p;
    const double w0 = ws == nullptr ? 1.0 : ws[i];
    const double w1 = ws == nullptr ? 1.0 : ws[i + 1];
    const double w2 = ws == nullptr ? 1.0 : ws[i + 2];
    const double w3 = ws == nullptr ? 1.0 : ws[i + 3];
    BW_DCHECK(w0 > 0.0 && w1 > 0.0 && w2 > 0.0 && w3 > 0.0);
    const double y0 = ys[i], y1 = ys[i + 1], y2 = ys[i + 2], y3 = ys[i + 3];
    size_t idx = 0;
    for (size_t r = 0; r < p; ++r) {
      const double a0 = w0 * x0[r];
      const double a1 = w1 * x1[r];
      const double a2 = w2 * x2[r];
      const double a3 = w3 * x3[r];
      double* __restrict trow = tri + idx;
      const size_t len = p - r;
      for (size_t c = 0; c < len; ++c) {
        trow[c] = trow[c] + a0 * x0[r + c] + a1 * x1[r + c] + a2 * x2[r + c] +
                  a3 * x3[r + c];
      }
      idx += len;
      xy[r] = xy[r] + a0 * y0 + a1 * y1 + a2 * y2 + a3 * y3;
    }
    ytwy_ = ytwy_ + w0 * y0 * y0 + w1 * y1 * y1 + w2 * y2 * y2 + w3 * y3 * y3;
    sum_w_ = sum_w_ + w0 + w1 + w2 + w3;
  }
  n_ += static_cast<int64_t>(i);
  for (; i < n; ++i) Add(xs + i * p, ys[i], ws == nullptr ? 1.0 : ws[i]);
}

void RegressionSuffStats::AddDataset(const Dataset& data) {
  BW_CHECK(data.num_features() == p_);
  AddBatch(data.x_data(), data.y_data(), data.w_data(), data.num_examples());
}

linalg::Matrix RegressionSuffStats::xtwx() const {
  linalg::Matrix full(p_, p_);
  size_t idx = 0;
  for (size_t r = 0; r < p_; ++r) {
    for (size_t c = r; c < p_; ++c) {
      const double v = xtwx_packed_[idx++];
      full(r, c) = v;
      full(c, r) = v;
    }
  }
  return full;
}

Result<LinearModel> RegressionSuffStats::Fit() const {
  if (n_ == 0) {
    return Status::FailedPrecondition("cannot fit a model on 0 examples");
  }
  BW_ASSIGN_OR_RETURN(linalg::Vector beta, linalg::SolveSpd(xtwx(), xtwy_));
  return LinearModel(std::move(beta));
}

Result<RobustFit> RegressionSuffStats::FitWithFallback(
    double heavy_ridge) const {
  if (n_ == 0) {
    return Status::FailedPrecondition("cannot fit a model on 0 examples");
  }
  const linalg::Matrix full = xtwx();
  if (auto fit = linalg::SolveSpd(full, xtwy_); fit.ok()) {
    return RobustFit{LinearModel(std::move(fit.value())),
                     FitDegradation::kNone};
  }
  if (auto fit = linalg::SolveSpd(full, xtwy_, heavy_ridge); fit.ok()) {
    bool finite = true;
    for (double b : fit.value()) finite = finite && std::isfinite(b);
    if (finite) {
      obs::DefaultMetrics()
          .GetCounter(obs::kMRegressionRidgeRefits)
          ->Increment();
      return RobustFit{LinearModel(std::move(fit.value())),
                       FitDegradation::kRidge};
    }
  }
  // Last resort: predict the weighted mean of the targets. Feature 0 is the
  // intercept column (constant 1), so X'WY[0] / sum(w) is that mean.
  linalg::Vector beta(p_, 0.0);
  const double mean = sum_w_ > 0.0 ? xtwy_[0] / sum_w_ : 0.0;
  beta[0] = std::isfinite(mean) ? mean : 0.0;
  obs::DefaultMetrics()
      .GetCounter(obs::kMRegressionMeanFallbacks)
      ->Increment();
  return RobustFit{LinearModel(std::move(beta)),
                   FitDegradation::kMeanFallback};
}

RegressionSuffStats RegressionSuffStats::FromComponents(linalg::Matrix xtwx,
                                                        linalg::Vector xtwy,
                                                        double ytwy, int64_t n,
                                                        double sum_w) {
  BW_CHECK(xtwx.rows() == xtwx.cols());
  BW_CHECK(xtwx.rows() == xtwy.size());
  const size_t p = xtwy.size();
  RegressionSuffStats out(p);
  size_t idx = 0;
  for (size_t r = 0; r < p; ++r) {
    for (size_t c = r; c < p; ++c) out.xtwx_packed_[idx++] = xtwx(r, c);
  }
  out.xtwy_ = std::move(xtwy);
  out.ytwy_ = ytwy;
  out.n_ = n;
  out.sum_w_ = sum_w;
  return out;
}

RegressionSuffStats RegressionSuffStats::FromPacked(size_t p,
                                                    std::vector<double> packed,
                                                    linalg::Vector xtwy,
                                                    double ytwy, int64_t n,
                                                    double sum_w) {
  BW_CHECK(packed.size() == PackedSize(p));
  BW_CHECK(xtwy.size() == p);
  RegressionSuffStats out(p);
  out.xtwx_packed_ = std::move(packed);
  out.xtwy_ = std::move(xtwy);
  out.ytwy_ = ytwy;
  out.n_ = n;
  out.sum_w_ = sum_w;
  return out;
}

Result<double> RegressionSuffStats::TrainingSse() const {
  if (n_ == 0) {
    return Status::FailedPrecondition("SSE of an empty training set");
  }
  BW_ASSIGN_OR_RETURN(linalg::Vector beta, linalg::SolveSpd(xtwx(), xtwy_));
  // Y'WY - (X'WY)' beta, with beta = (X'WX)^-1 (X'WY).
  const double sse = ytwy_ - linalg::Dot(xtwy_, beta);
  // Guard tiny negative values from floating-point cancellation.
  return sse < 0.0 ? 0.0 : sse;
}

Result<double> RegressionSuffStats::TrainingMse() const {
  BW_ASSIGN_OR_RETURN(double sse, TrainingSse());
  const int64_t dof = n_ - static_cast<int64_t>(p_);
  if (dof <= 0) return 0.0;  // interpolating model
  return sse / static_cast<double>(dof);
}

Result<double> RegressionSuffStats::TrainingRmse() const {
  BW_ASSIGN_OR_RETURN(double mse, TrainingMse());
  return std::sqrt(mse);
}

Result<LinearModel> FitLeastSquares(const Dataset& data) {
  RegressionSuffStats stats(data.num_features());
  stats.AddDataset(data);
  return stats.Fit();
}

}  // namespace bellwether::regression
