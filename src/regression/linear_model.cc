#include "regression/linear_model.h"

#include <cmath>

#include "obs/metrics.h"

namespace bellwether::regression {

const char* FitDegradationName(FitDegradation d) {
  switch (d) {
    case FitDegradation::kNone:
      return "none";
    case FitDegradation::kRidge:
      return "ridge";
    case FitDegradation::kMeanFallback:
      return "mean";
  }
  return "unknown";
}

RegressionSuffStats::RegressionSuffStats(size_t num_features)
    : p_(num_features),
      xtwx_(num_features, num_features),
      xtwy_(num_features, 0.0),
      ytwy_(0.0),
      n_(0),
      sum_w_(0.0) {}

void RegressionSuffStats::Reset() {
  xtwx_ = linalg::Matrix(p_, p_);
  xtwy_.assign(p_, 0.0);
  ytwy_ = 0.0;
  n_ = 0;
  sum_w_ = 0.0;
}

void RegressionSuffStats::Add(const double* x, double y, double w) {
  BW_DCHECK(w > 0.0);
  for (size_t r = 0; r < p_; ++r) {
    const double wr = w * x[r];
    if (wr != 0.0) {
      for (size_t c = 0; c < p_; ++c) xtwx_(r, c) += wr * x[c];
    }
    xtwy_[r] += w * x[r] * y;
  }
  ytwy_ += w * y * y;
  ++n_;
  sum_w_ += w;
}

void RegressionSuffStats::AddDataset(const Dataset& data) {
  BW_CHECK(data.num_features() == p_);
  for (size_t i = 0; i < data.num_examples(); ++i) {
    Add(data.x(i), data.y(i), data.w(i));
  }
}

void RegressionSuffStats::Merge(const RegressionSuffStats& other) {
  if (other.empty()) return;
  if (empty() && p_ == 0) {
    *this = other;
    return;
  }
  BW_CHECK(p_ == other.p_);
  xtwx_ += other.xtwx_;
  for (size_t j = 0; j < p_; ++j) xtwy_[j] += other.xtwy_[j];
  ytwy_ += other.ytwy_;
  n_ += other.n_;
  sum_w_ += other.sum_w_;
}

Result<LinearModel> RegressionSuffStats::Fit() const {
  if (n_ == 0) {
    return Status::FailedPrecondition("cannot fit a model on 0 examples");
  }
  BW_ASSIGN_OR_RETURN(linalg::Vector beta, linalg::SolveSpd(xtwx_, xtwy_));
  return LinearModel(std::move(beta));
}

Result<RobustFit> RegressionSuffStats::FitWithFallback(
    double heavy_ridge) const {
  if (n_ == 0) {
    return Status::FailedPrecondition("cannot fit a model on 0 examples");
  }
  if (auto fit = linalg::SolveSpd(xtwx_, xtwy_); fit.ok()) {
    return RobustFit{LinearModel(std::move(fit.value())),
                     FitDegradation::kNone};
  }
  if (auto fit = linalg::SolveSpd(xtwx_, xtwy_, heavy_ridge); fit.ok()) {
    bool finite = true;
    for (double b : fit.value()) finite = finite && std::isfinite(b);
    if (finite) {
      obs::DefaultMetrics()
          .GetCounter(obs::kMRegressionRidgeRefits)
          ->Increment();
      return RobustFit{LinearModel(std::move(fit.value())),
                       FitDegradation::kRidge};
    }
  }
  // Last resort: predict the weighted mean of the targets. Feature 0 is the
  // intercept column (constant 1), so X'WY[0] / sum(w) is that mean.
  linalg::Vector beta(p_, 0.0);
  const double mean = sum_w_ > 0.0 ? xtwy_[0] / sum_w_ : 0.0;
  beta[0] = std::isfinite(mean) ? mean : 0.0;
  obs::DefaultMetrics()
      .GetCounter(obs::kMRegressionMeanFallbacks)
      ->Increment();
  return RobustFit{LinearModel(std::move(beta)),
                   FitDegradation::kMeanFallback};
}

RegressionSuffStats RegressionSuffStats::FromComponents(linalg::Matrix xtwx,
                                                        linalg::Vector xtwy,
                                                        double ytwy, int64_t n,
                                                        double sum_w) {
  BW_CHECK(xtwx.rows() == xtwx.cols());
  BW_CHECK(xtwx.rows() == xtwy.size());
  RegressionSuffStats out(xtwy.size());
  out.xtwx_ = std::move(xtwx);
  out.xtwy_ = std::move(xtwy);
  out.ytwy_ = ytwy;
  out.n_ = n;
  out.sum_w_ = sum_w;
  return out;
}

Result<double> RegressionSuffStats::TrainingSse() const {
  if (n_ == 0) {
    return Status::FailedPrecondition("SSE of an empty training set");
  }
  BW_ASSIGN_OR_RETURN(linalg::Vector beta, linalg::SolveSpd(xtwx_, xtwy_));
  // Y'WY - (X'WY)' beta, with beta = (X'WX)^-1 (X'WY).
  const double sse = ytwy_ - linalg::Dot(xtwy_, beta);
  // Guard tiny negative values from floating-point cancellation.
  return sse < 0.0 ? 0.0 : sse;
}

Result<double> RegressionSuffStats::TrainingMse() const {
  BW_ASSIGN_OR_RETURN(double sse, TrainingSse());
  const int64_t dof = n_ - static_cast<int64_t>(p_);
  if (dof <= 0) return 0.0;  // interpolating model
  return sse / static_cast<double>(dof);
}

Result<double> RegressionSuffStats::TrainingRmse() const {
  BW_ASSIGN_OR_RETURN(double mse, TrainingMse());
  return std::sqrt(mse);
}

Result<LinearModel> FitLeastSquares(const Dataset& data) {
  RegressionSuffStats stats(data.num_features());
  stats.AddDataset(data);
  return stats.Fit();
}

}  // namespace bellwether::regression
