#include "regression/linear_model.h"

#include <cmath>

namespace bellwether::regression {

RegressionSuffStats::RegressionSuffStats(size_t num_features)
    : p_(num_features),
      xtwx_(num_features, num_features),
      xtwy_(num_features, 0.0),
      ytwy_(0.0),
      n_(0),
      sum_w_(0.0) {}

void RegressionSuffStats::Reset() {
  xtwx_ = linalg::Matrix(p_, p_);
  xtwy_.assign(p_, 0.0);
  ytwy_ = 0.0;
  n_ = 0;
  sum_w_ = 0.0;
}

void RegressionSuffStats::Add(const double* x, double y, double w) {
  BW_DCHECK(w > 0.0);
  for (size_t r = 0; r < p_; ++r) {
    const double wr = w * x[r];
    if (wr != 0.0) {
      for (size_t c = 0; c < p_; ++c) xtwx_(r, c) += wr * x[c];
    }
    xtwy_[r] += w * x[r] * y;
  }
  ytwy_ += w * y * y;
  ++n_;
  sum_w_ += w;
}

void RegressionSuffStats::AddDataset(const Dataset& data) {
  BW_CHECK(data.num_features() == p_);
  for (size_t i = 0; i < data.num_examples(); ++i) {
    Add(data.x(i), data.y(i), data.w(i));
  }
}

void RegressionSuffStats::Merge(const RegressionSuffStats& other) {
  if (other.empty()) return;
  if (empty() && p_ == 0) {
    *this = other;
    return;
  }
  BW_CHECK(p_ == other.p_);
  xtwx_ += other.xtwx_;
  for (size_t j = 0; j < p_; ++j) xtwy_[j] += other.xtwy_[j];
  ytwy_ += other.ytwy_;
  n_ += other.n_;
  sum_w_ += other.sum_w_;
}

Result<LinearModel> RegressionSuffStats::Fit() const {
  if (n_ == 0) {
    return Status::FailedPrecondition("cannot fit a model on 0 examples");
  }
  BW_ASSIGN_OR_RETURN(linalg::Vector beta, linalg::SolveSpd(xtwx_, xtwy_));
  return LinearModel(std::move(beta));
}

Result<double> RegressionSuffStats::TrainingSse() const {
  if (n_ == 0) {
    return Status::FailedPrecondition("SSE of an empty training set");
  }
  BW_ASSIGN_OR_RETURN(linalg::Vector beta, linalg::SolveSpd(xtwx_, xtwy_));
  // Y'WY - (X'WY)' beta, with beta = (X'WX)^-1 (X'WY).
  const double sse = ytwy_ - linalg::Dot(xtwy_, beta);
  // Guard tiny negative values from floating-point cancellation.
  return sse < 0.0 ? 0.0 : sse;
}

Result<double> RegressionSuffStats::TrainingMse() const {
  BW_ASSIGN_OR_RETURN(double sse, TrainingSse());
  const int64_t dof = n_ - static_cast<int64_t>(p_);
  if (dof <= 0) return 0.0;  // interpolating model
  return sse / static_cast<double>(dof);
}

Result<double> RegressionSuffStats::TrainingRmse() const {
  BW_ASSIGN_OR_RETURN(double mse, TrainingMse());
  return std::sqrt(mse);
}

Result<LinearModel> FitLeastSquares(const Dataset& data) {
  RegressionSuffStats stats(data.num_features());
  stats.AddDataset(data);
  return stats.Fit();
}

}  // namespace bellwether::regression
