#ifndef BELLWETHER_REGRESSION_SUFF_STATS_IO_H_
#define BELLWETHER_REGRESSION_SUFF_STATS_IO_H_

#include <iosfwd>

#include "common/status.h"
#include "regression/linear_model.h"

namespace bellwether::regression {

/// Wire format of one RegressionSuffStats on the line-oriented text formats
/// (cube checkpoints, the bellwether-state model_io section):
///
///   stats <p> <n> <sum_w> <ytwy> <packed triangle, p*(p+1)/2 values>
///         <xtwy, p values>\n
///
/// The packed upper triangle is written directly — no unpack to a full
/// p x p matrix and no re-pack on restore — so serialization cost and wire
/// size are both half of the historical full-matrix encoding. All doubles
/// go through %.17g and round-trip exactly ("inf"/"-inf"/"nan" included;
/// reads use strtod because istream rejects them).

/// Doubles round-trip exactly through %.17g.
void WriteWireDouble(std::ostream& out, double v);

/// Reads one %.17g double; kIoError on truncation or a malformed token.
Status ReadWireDouble(std::istream& in, double* v);

/// Writes one statistic in the packed wire format (trailing newline).
void WriteSuffStats(std::ostream& out, const RegressionSuffStats& s);

/// Reads one statistic. Corruption fails cleanly with kIoError: an
/// implausible feature arity (p outside [0, 4096]), an implausible or
/// negative example count (count overflow), or a truncated triangle never
/// turn into a huge allocation or a bogus statistic.
Result<RegressionSuffStats> ReadSuffStats(std::istream& in);

}  // namespace bellwether::regression

#endif  // BELLWETHER_REGRESSION_SUFF_STATS_IO_H_
