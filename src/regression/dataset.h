#ifndef BELLWETHER_REGRESSION_DATASET_H_
#define BELLWETHER_REGRESSION_DATASET_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace bellwether::regression {

/// A numeric training set: n examples with p feature values each (row-major),
/// a target per example, and optional per-example weights (paper §6.4, WLS).
/// Feature matrices built by the bellwether layer include the constant
/// intercept column as feature 0 (paper footnote 1).
class Dataset {
 public:
  Dataset() : num_features_(0) {}
  explicit Dataset(size_t num_features) : num_features_(num_features) {}

  size_t num_features() const { return num_features_; }
  size_t num_examples() const { return y_.size(); }
  bool weighted() const { return !w_.empty(); }

  /// Appends one example; x.size() must equal num_features().
  void Add(const std::vector<double>& x, double y) {
    BW_DCHECK(x.size() == num_features_);
    BW_DCHECK(w_.empty());
    x_.insert(x_.end(), x.begin(), x.end());
    y_.push_back(y);
  }

  /// Appends one weighted example. Mixing weighted and unweighted Add calls
  /// is a programmer error. Weight must be > 0.
  void AddWeighted(const std::vector<double>& x, double y, double w) {
    BW_DCHECK(x.size() == num_features_);
    BW_DCHECK(w_.size() == y_.size());
    BW_DCHECK(w > 0.0);
    x_.insert(x_.end(), x.begin(), x.end());
    y_.push_back(y);
    w_.push_back(w);
  }

  /// Pointer to the feature row of example i.
  const double* x(size_t i) const { return x_.data() + i * num_features_; }
  double y(size_t i) const { return y_[i]; }
  /// Weight of example i (1.0 when unweighted).
  double w(size_t i) const { return w_.empty() ? 1.0 : w_[i]; }

  /// Raw columnar views for batched kernels: row-major n x p features,
  /// n targets, and n weights or nullptr when unweighted.
  const double* x_data() const { return x_.data(); }
  const double* y_data() const { return y_.data(); }
  const double* w_data() const { return w_.empty() ? nullptr : w_.data(); }

  /// Sub-dataset containing the listed examples.
  Dataset Subset(const std::vector<size_t>& indices) const;

  void Reserve(size_t n) {
    x_.reserve(n * num_features_);
    y_.reserve(n);
    w_.reserve(n);
  }

 private:
  size_t num_features_;
  std::vector<double> x_;  // row-major, n * p
  std::vector<double> y_;
  std::vector<double> w_;  // empty = all ones
};

}  // namespace bellwether::regression

#endif  // BELLWETHER_REGRESSION_DATASET_H_
