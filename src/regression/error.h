#ifndef BELLWETHER_REGRESSION_ERROR_H_
#define BELLWETHER_REGRESSION_ERROR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "regression/dataset.h"
#include "regression/linear_model.h"

namespace bellwether::regression {

/// Which error estimate of §2 to use when scoring a region's model.
enum class ErrorEstimate {
  kCrossValidation,  // n-fold CV RMSE (paper default, n = 10)
  kTrainingSet,      // training-set RMSE from the sufficient statistic
};

/// An error estimate together with the spread needed for confidence bounds.
struct ErrorStats {
  double rmse = 0.0;
  /// Standard deviation of the per-fold RMSEs (0 for training-set error).
  double stddev = 0.0;
  /// Number of folds the estimate averaged over (1 for training-set error).
  int32_t num_folds = 1;

  /// Upper bound of the two-sided `confidence` interval of the error, under
  /// the paper's normality assumption over fold errors: rmse + z * sd/sqrt(k).
  double UpperConfidenceBound(double confidence) const;
  /// Lower bound of the same interval (clamped at 0).
  double LowerConfidenceBound(double confidence) const;
};

/// Two-sided standard-normal quantile for the given confidence level, e.g.
/// 0.95 -> 1.959964. Computed with the Acklam inverse-CDF approximation.
double NormalQuantileTwoSided(double confidence);

/// RMSE of `model` on `data` (weighted when the dataset is weighted).
double EvaluateRmse(const LinearModel& model, const Dataset& data);

/// Training-set error: fit on `data`, evaluate on `data`, with the
/// degrees-of-freedom correction of §6.4. Cheap: one pass + one solve.
Result<ErrorStats> TrainingSetError(const Dataset& data);

/// k-fold cross-validation RMSE (§2). Deterministic for a fixed *rng: fold
/// assignment consumes the generator. Folds with an unsolvable fit are
/// skipped; fails when no fold is usable or data is smaller than 2 examples.
Result<ErrorStats> CrossValidationError(const Dataset& data, int32_t k,
                                        Rng* rng);

/// Dispatches on `estimate`; cross-validation uses `k` folds.
Result<ErrorStats> EstimateError(const Dataset& data, ErrorEstimate estimate,
                                 int32_t k, Rng* rng);

}  // namespace bellwether::regression

#endif  // BELLWETHER_REGRESSION_ERROR_H_
