#include "regression/suff_stats_io.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>
#include <utility>

namespace bellwether::regression {

namespace {

// Bounds on the serialized statistic header. A corrupt arity must not turn
// into a gigabyte triangle allocation, and a corrupt (or overflowed)
// example count must not silently poison degrees-of-freedom arithmetic
// downstream — 2^48 examples is far beyond anything a real accumulation
// reaches.
constexpr int64_t kMaxArity = 4096;
constexpr int64_t kMaxExamples = int64_t{1} << 48;

}  // namespace

void WriteWireDouble(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

Status ReadWireDouble(std::istream& in, double* v) {
  std::string tok;
  if (!(in >> tok)) return Status::IoError("truncated value (double)");
  errno = 0;
  char* end = nullptr;
  *v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0') {
    return Status::IoError("bad double: '" + tok + "'");
  }
  return Status::OK();
}

void WriteSuffStats(std::ostream& out, const RegressionSuffStats& s) {
  const size_t p = s.num_features();
  out << "stats " << p << ' ' << s.num_examples() << ' ';
  WriteWireDouble(out, s.sum_weights());
  out << ' ';
  WriteWireDouble(out, s.ytwy());
  for (double v : s.packed_xtwx()) {
    out << ' ';
    WriteWireDouble(out, v);
  }
  for (size_t j = 0; j < p; ++j) {
    out << ' ';
    WriteWireDouble(out, s.xtwy()[j]);
  }
  out << '\n';
}

Result<RegressionSuffStats> ReadSuffStats(std::istream& in) {
  std::string tag;
  int64_t p = 0;
  int64_t n = 0;
  if (!(in >> tag >> p >> n) || tag != "stats") {
    return Status::IoError("truncated suff-stats header");
  }
  if (p < 0 || p > kMaxArity) {
    return Status::IoError("implausible feature count in suff-stats");
  }
  if (n < 0 || n > kMaxExamples) {
    return Status::IoError("implausible example count in suff-stats");
  }
  double sum_w = 0.0;
  double ytwy = 0.0;
  BW_RETURN_IF_ERROR(ReadWireDouble(in, &sum_w));
  BW_RETURN_IF_ERROR(ReadWireDouble(in, &ytwy));
  const size_t arity = static_cast<size_t>(p);
  std::vector<double> packed(RegressionSuffStats::PackedSize(arity));
  for (double& v : packed) {
    BW_RETURN_IF_ERROR(ReadWireDouble(in, &v));
  }
  linalg::Vector xtwy(arity, 0.0);
  for (size_t j = 0; j < arity; ++j) {
    BW_RETURN_IF_ERROR(ReadWireDouble(in, &xtwy[j]));
  }
  return RegressionSuffStats::FromPacked(arity, std::move(packed),
                                         std::move(xtwy), ytwy, n, sum_w);
}

}  // namespace bellwether::regression
