#include "regression/error.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace bellwether::regression {

double ErrorStats::UpperConfidenceBound(double confidence) const {
  if (num_folds <= 1 || stddev == 0.0) return rmse;
  const double z = NormalQuantileTwoSided(confidence);
  return rmse + z * stddev / std::sqrt(static_cast<double>(num_folds));
}

double ErrorStats::LowerConfidenceBound(double confidence) const {
  if (num_folds <= 1 || stddev == 0.0) return rmse;
  const double z = NormalQuantileTwoSided(confidence);
  return std::max(0.0, rmse - z * stddev / std::sqrt(
                                              static_cast<double>(num_folds)));
}

namespace {

// Acklam's rational approximation to the standard normal inverse CDF;
// absolute error < 1.15e-9 over (0, 1).
double NormalInverseCdf(double p) {
  BW_CHECK(p > 0.0 && p < 1.0);
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

}  // namespace

double NormalQuantileTwoSided(double confidence) {
  BW_CHECK(confidence > 0.0 && confidence < 1.0);
  return NormalInverseCdf(0.5 + confidence / 2.0);
}

double EvaluateRmse(const LinearModel& model, const Dataset& data) {
  if (data.num_examples() == 0) return 0.0;
  double sse = 0.0;
  double sum_w = 0.0;
  for (size_t i = 0; i < data.num_examples(); ++i) {
    const double e = data.y(i) - model.Predict(data.x(i));
    sse += data.w(i) * e * e;
    sum_w += data.w(i);
  }
  return sum_w > 0.0 ? std::sqrt(sse / sum_w) : 0.0;
}

Result<ErrorStats> TrainingSetError(const Dataset& data) {
  RegressionSuffStats stats(data.num_features());
  stats.AddDataset(data);
  BW_ASSIGN_OR_RETURN(double rmse, stats.TrainingRmse());
  ErrorStats out;
  out.rmse = rmse;
  out.stddev = 0.0;
  out.num_folds = 1;
  return out;
}

Result<ErrorStats> CrossValidationError(const Dataset& data, int32_t k,
                                        Rng* rng) {
  BW_CHECK(rng != nullptr);
  if (k < 2) return Status::InvalidArgument("cross-validation needs k >= 2");
  const size_t n = data.num_examples();
  if (n < 2) {
    return Status::FailedPrecondition(
        "cross-validation needs at least 2 examples");
  }
  const int32_t folds = std::min<int32_t>(k, static_cast<int32_t>(n));
  // Random permutation -> round-robin fold assignment.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng->Shuffle(&order);

  std::vector<double> fold_errors;
  fold_errors.reserve(folds);
  std::vector<size_t> train_idx, test_idx;
  for (int32_t f = 0; f < folds; ++f) {
    train_idx.clear();
    test_idx.clear();
    for (size_t i = 0; i < n; ++i) {
      if (static_cast<int32_t>(i % folds) == f) {
        test_idx.push_back(order[i]);
      } else {
        train_idx.push_back(order[i]);
      }
    }
    if (test_idx.empty() || train_idx.empty()) continue;
    const Dataset train = data.Subset(train_idx);
    auto model = FitLeastSquares(train);
    if (!model.ok()) continue;  // degenerate fold (e.g. collinear subset)
    fold_errors.push_back(EvaluateRmse(*model, data.Subset(test_idx)));
  }
  if (fold_errors.empty()) {
    return Status::NumericError("no usable cross-validation fold");
  }
  double mean = 0.0;
  for (double e : fold_errors) mean += e;
  mean /= static_cast<double>(fold_errors.size());
  double var = 0.0;
  for (double e : fold_errors) var += (e - mean) * (e - mean);
  var = fold_errors.size() > 1
            ? var / static_cast<double>(fold_errors.size() - 1)
            : 0.0;
  ErrorStats out;
  out.rmse = mean;
  out.stddev = std::sqrt(var);
  out.num_folds = static_cast<int32_t>(fold_errors.size());
  return out;
}

Result<ErrorStats> EstimateError(const Dataset& data, ErrorEstimate estimate,
                                 int32_t k, Rng* rng) {
  if (estimate == ErrorEstimate::kTrainingSet) return TrainingSetError(data);
  return CrossValidationError(data, k, rng);
}

}  // namespace bellwether::regression
