#include "regression/dataset.h"

namespace bellwether::regression {

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  Dataset out(num_features_);
  out.Reserve(indices.size());
  std::vector<double> row(num_features_);
  for (size_t i : indices) {
    BW_DCHECK(i < num_examples());
    row.assign(x(i), x(i) + num_features_);
    if (weighted()) {
      out.AddWeighted(row, y_[i], w_[i]);
    } else {
      out.Add(row, y_[i]);
    }
  }
  return out;
}

}  // namespace bellwether::regression
