#ifndef BELLWETHER_REGRESSION_LINEAR_MODEL_H_
#define BELLWETHER_REGRESSION_LINEAR_MODEL_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "regression/dataset.h"

namespace bellwether::regression {

/// A fitted (weighted) least-squares linear model: y_hat = sum_j x_j beta_j.
/// The intercept, when wanted, is feature 0 with constant value 1 (the
/// dataset builders in the bellwether layer add it).
class LinearModel {
 public:
  LinearModel() = default;
  explicit LinearModel(linalg::Vector beta) : beta_(std::move(beta)) {}

  const linalg::Vector& beta() const { return beta_; }
  size_t num_features() const { return beta_.size(); }

  /// Prediction for one feature row (x must have num_features() entries).
  double Predict(const double* x) const {
    double acc = 0.0;
    for (size_t j = 0; j < beta_.size(); ++j) acc += x[j] * beta_[j];
    return acc;
  }
  double Predict(const std::vector<double>& x) const {
    BW_DCHECK(x.size() == beta_.size());
    return Predict(x.data());
  }

 private:
  linalg::Vector beta_;
};

/// Which tier of the graceful-degradation chain produced a model (see
/// docs/ROBUSTNESS.md). Ordered from best to worst.
enum class FitDegradation {
  kNone,          // ordinary fit succeeded
  kRidge,         // ill-conditioned; recovered with a heavy ridge refit
  kMeanFallback,  // intercept-only weighted-mean model
};

const char* FitDegradationName(FitDegradation d);

/// A model together with the degradation tier that produced it.
struct RobustFit {
  LinearModel model;
  FitDegradation degradation = FitDegradation::kNone;

  bool degraded() const { return degradation != FitDegradation::kNone; }
};

/// The sufficient statistic of Theorem 1: g(S) = <Y'WY, X'WX, X'WY> plus the
/// example count. Fixed size (1 + p*p + p values), independent of |S|;
/// merging two statistics is element-wise addition, which makes the weighted
/// SSE of a WLS linear model an *algebraic* aggregate function and powers
/// the optimized bellwether-cube algorithm (paper §6.4).
class RegressionSuffStats {
 public:
  RegressionSuffStats() : p_(0), ytwy_(0.0), n_(0), sum_w_(0.0) {}
  explicit RegressionSuffStats(size_t num_features);

  size_t num_features() const { return p_; }
  int64_t num_examples() const { return n_; }
  double sum_weights() const { return sum_w_; }
  bool empty() const { return n_ == 0; }

  /// Clears the accumulated values, keeping the feature arity.
  void Reset();

  /// Accumulates one example (weight w > 0; pass 1.0 for OLS).
  void Add(const double* x, double y, double w = 1.0);

  /// Accumulates a whole dataset.
  void AddDataset(const Dataset& data);

  /// The q-combine of Theorem 1: element-wise sum of the statistics. The
  /// other statistic must have the same feature arity (or be empty).
  void Merge(const RegressionSuffStats& other);

  /// Fits the WLS model beta = (X'WX)^-1 (X'WY). Fails if there are no
  /// examples or the normal equations are unsolvable.
  Result<LinearModel> Fit() const;

  /// Graceful-degradation fit: Fit(), then a heavy ridge refit (max ridge
  /// `heavy_ridge`), then the intercept-only weighted-mean model. Always
  /// returns a usable model when there is at least one example, flagging
  /// which tier fired; degradations are mirrored into the metrics registry.
  /// On a well-conditioned statistic the result is bit-identical to Fit().
  Result<RobustFit> FitWithFallback(double heavy_ridge = 1e2) const;

  /// Reassembles a statistic from its components (checkpoint restore and
  /// tests). `xtwx` must be p x p, `xtwy` length p.
  static RegressionSuffStats FromComponents(linalg::Matrix xtwx,
                                            linalg::Vector xtwy, double ytwy,
                                            int64_t n, double sum_w);

  /// Weighted sum of squared errors of the fitted model on the accumulated
  /// data: Y'WY - (X'WY)' (X'WX)^-1 (X'WY), computed directly from the
  /// statistic without revisiting examples (Theorem 1).
  Result<double> TrainingSse() const;

  /// Training-set weighted mean squared error: SSE / (n - p), the
  /// degrees-of-freedom-corrected estimate used by the paper. When n <= p
  /// the model interpolates and the error is reported as 0.
  Result<double> TrainingMse() const;

  /// sqrt(TrainingMse()).
  Result<double> TrainingRmse() const;

  const linalg::Matrix& xtwx() const { return xtwx_; }
  const linalg::Vector& xtwy() const { return xtwy_; }
  double ytwy() const { return ytwy_; }

 private:
  size_t p_;
  linalg::Matrix xtwx_;   // X'WX, p x p
  linalg::Vector xtwy_;   // X'WY, p
  double ytwy_;           // Y'WY
  int64_t n_;
  double sum_w_;
};

/// Convenience: fit a (W)LS model on a dataset via the sufficient statistic.
Result<LinearModel> FitLeastSquares(const Dataset& data);

}  // namespace bellwether::regression

#endif  // BELLWETHER_REGRESSION_LINEAR_MODEL_H_
