#ifndef BELLWETHER_REGRESSION_LINEAR_MODEL_H_
#define BELLWETHER_REGRESSION_LINEAR_MODEL_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "regression/dataset.h"

namespace bellwether::regression {

/// A fitted (weighted) least-squares linear model: y_hat = sum_j x_j beta_j.
/// The intercept, when wanted, is feature 0 with constant value 1 (the
/// dataset builders in the bellwether layer add it).
class LinearModel {
 public:
  LinearModel() = default;
  explicit LinearModel(linalg::Vector beta) : beta_(std::move(beta)) {}

  const linalg::Vector& beta() const { return beta_; }
  size_t num_features() const { return beta_.size(); }

  /// Prediction for one feature row (x must have num_features() entries).
  /// Delegates to linalg::Dot so the serving hot path shares the one
  /// optimized dot-product kernel.
  double Predict(const double* x) const {
    return linalg::Dot(x, beta_.data(), beta_.size());
  }
  double Predict(const std::vector<double>& x) const {
    BW_DCHECK(x.size() == beta_.size());
    return Predict(x.data());
  }

 private:
  linalg::Vector beta_;
};

/// Which tier of the graceful-degradation chain produced a model (see
/// docs/ROBUSTNESS.md). Ordered from best to worst.
enum class FitDegradation {
  kNone,          // ordinary fit succeeded
  kRidge,         // ill-conditioned; recovered with a heavy ridge refit
  kMeanFallback,  // intercept-only weighted-mean model
};

const char* FitDegradationName(FitDegradation d);

/// A model together with the degradation tier that produced it.
struct RobustFit {
  LinearModel model;
  FitDegradation degradation = FitDegradation::kNone;

  bool degraded() const { return degradation != FitDegradation::kNone; }
};

/// The sufficient statistic of Theorem 1: g(S) = <Y'WY, X'WX, X'WY> plus the
/// example count. Fixed size (1 + p*(p+1)/2 + p values), independent of |S|;
/// merging two statistics is element-wise addition, which makes the weighted
/// SSE of a WLS linear model an *algebraic* aggregate function and powers
/// the optimized bellwether-cube algorithm (paper §6.4).
///
/// X'WX is symmetric, so it is stored in *packed* upper-triangular layout
/// (row-major, row r holding columns r..p-1): half the arithmetic and half
/// the memory traffic of the naive p x p rank-1 update, and Merge collapses
/// to one flat sum over a contiguous array. Checkpoint/model I/O serialize
/// the packed triangle directly (regression/suff_stats_io.h) and restore
/// through FromPacked(); only the linalg solvers still go through the
/// xtwx() unpack shim.
class RegressionSuffStats {
 public:
  RegressionSuffStats() : p_(0), ytwy_(0.0), n_(0), sum_w_(0.0) {}
  explicit RegressionSuffStats(size_t num_features);

  size_t num_features() const { return p_; }
  int64_t num_examples() const { return n_; }
  double sum_weights() const { return sum_w_; }
  bool empty() const { return n_ == 0; }

  /// Packed upper-triangular length for arity p.
  static constexpr size_t PackedSize(size_t p) { return p * (p + 1) / 2; }
  /// Index of (r, c), r <= c, in the packed upper-triangular layout.
  static constexpr size_t PackedIndex(size_t p, size_t r, size_t c) {
    return r * p - r * (r - 1) / 2 + (c - r);
  }

  /// Clears the accumulated values, keeping the feature arity.
  void Reset();

  /// Accumulates one example (weight w > 0; pass 1.0 for OLS). Defined
  /// inline below — this is the single hottest call in the tree/cube
  /// builders, and inlining lets the per-arity unrolled kernel fuse into
  /// the caller's loop.
  void Add(const double* x, double y, double w = 1.0);

  /// Accumulates `n` examples at once: `xs` is row-major n x p, `ys` length
  /// n, `ws` length n or null for OLS. Register-blocked rank-k update over
  /// the packed layout — one pass that amortizes the accumulator loads and
  /// stores over four rows. Equivalent to n Add() calls up to floating-point
  /// contraction (same left-to-right summation order per element; see
  /// tests/kernel_equivalence_test.cc for the pinned bound).
  void AddBatch(const double* xs, const double* ys, const double* ws,
                size_t n);

  /// Accumulates a whole dataset (batched).
  void AddDataset(const Dataset& data);

  /// The q-combine of Theorem 1: element-wise sum of the statistics — a
  /// single flat pass over the packed array. The other statistic must have
  /// the same feature arity (or be empty).
  void Merge(const RegressionSuffStats& other);

  /// Fits the WLS model beta = (X'WX)^-1 (X'WY). Fails if there are no
  /// examples or the normal equations are unsolvable.
  Result<LinearModel> Fit() const;

  /// Graceful-degradation fit: Fit(), then a heavy ridge refit (max ridge
  /// `heavy_ridge`), then the intercept-only weighted-mean model. Always
  /// returns a usable model when there is at least one example, flagging
  /// which tier fired; degradations are mirrored into the metrics registry.
  /// On a well-conditioned statistic the result is bit-identical to Fit().
  Result<RobustFit> FitWithFallback(double heavy_ridge = 1e2) const;

  /// Reassembles a statistic from its components (checkpoint restore and
  /// tests). `xtwx` must be p x p, `xtwy` length p. Only the upper triangle
  /// of `xtwx` is read (the statistic is symmetric by construction).
  static RegressionSuffStats FromComponents(linalg::Matrix xtwx,
                                            linalg::Vector xtwy, double ytwy,
                                            int64_t n, double sum_w);

  /// Reassembles a statistic directly from its packed upper triangle
  /// (PackedSize(p) values, row-major) without materializing the full
  /// matrix — the restore path of the packed wire format
  /// (regression/suff_stats_io.h).
  static RegressionSuffStats FromPacked(size_t p, std::vector<double> packed,
                                        linalg::Vector xtwy, double ytwy,
                                        int64_t n, double sum_w);

  /// Weighted sum of squared errors of the fitted model on the accumulated
  /// data: Y'WY - (X'WY)' (X'WX)^-1 (X'WY), computed directly from the
  /// statistic without revisiting examples (Theorem 1).
  Result<double> TrainingSse() const;

  /// Training-set weighted mean squared error: SSE / (n - p), the
  /// degrees-of-freedom-corrected estimate used by the paper. When n <= p
  /// the model interpolates and the error is reported as 0.
  Result<double> TrainingMse() const;

  /// sqrt(TrainingMse()).
  Result<double> TrainingRmse() const;

  /// Full p x p X'WX, unpacked from the packed triangle (the shim that
  /// keeps checkpoint/model artifact formats and the linalg solvers
  /// unchanged). Returns by value — unpack once, not per element.
  linalg::Matrix xtwx() const;
  /// The packed upper triangle itself (row-major, PackedSize(p) values).
  const std::vector<double>& packed_xtwx() const { return xtwx_packed_; }
  const linalg::Vector& xtwy() const { return xtwy_; }
  double ytwy() const { return ytwy_; }

 private:
  size_t p_;
  std::vector<double> xtwx_packed_;  // X'WX upper triangle, p*(p+1)/2
  linalg::Vector xtwy_;              // X'WY, p
  double ytwy_;                      // Y'WY
  int64_t n_;
  double sum_w_;
};

/// Convenience: fit a (W)LS model on a dataset via the sufficient statistic.
Result<LinearModel> FitLeastSquares(const Dataset& data);

namespace detail {

/// Packed symmetric rank-1 update: tri += w * upper(x x'), xy += (w*x) * y.
/// The inner loop runs over the contiguous packed row r (columns r..p-1 of
/// both the triangle and x), so the autovectorizer can lift it to FMA
/// vector code; restrict qualifiers tell it the accumulators never alias x.
inline void PackedRank1(double* __restrict tri, double* __restrict xy,
                        const double* __restrict x, double y, double w,
                        size_t p) {
  size_t idx = 0;
  for (size_t r = 0; r < p; ++r) {
    const double wr = w * x[r];
    double* __restrict trow = tri + idx;
    const double* __restrict xc = x + r;
    const size_t len = p - r;
    for (size_t c = 0; c < len; ++c) trow[c] += wr * xc[c];
    idx += len;
    xy[r] += wr * y;
  }
}

/// Fully unrolled variant for a compile-time arity (the common small p of
/// regression designs): no loop-carried index arithmetic, every accumulator
/// slot addressed statically.
template <size_t P>
inline void PackedRank1Fixed(double* __restrict tri, double* __restrict xy,
                             const double* __restrict x, double y, double w) {
  size_t idx = 0;
  for (size_t r = 0; r < P; ++r) {
    const double wr = w * x[r];
    for (size_t c = r; c < P; ++c) tri[idx++] += wr * x[c];
    xy[r] += wr * y;
  }
}

}  // namespace detail

inline void RegressionSuffStats::Add(const double* x, double y, double w) {
  BW_DCHECK(w > 0.0);
  double* tri = xtwx_packed_.data();
  double* xy = xtwy_.data();
  switch (p_) {
    case 1:
      detail::PackedRank1Fixed<1>(tri, xy, x, y, w);
      break;
    case 2:
      detail::PackedRank1Fixed<2>(tri, xy, x, y, w);
      break;
    case 3:
      detail::PackedRank1Fixed<3>(tri, xy, x, y, w);
      break;
    case 4:
      detail::PackedRank1Fixed<4>(tri, xy, x, y, w);
      break;
    case 5:
      detail::PackedRank1Fixed<5>(tri, xy, x, y, w);
      break;
    case 6:
      detail::PackedRank1Fixed<6>(tri, xy, x, y, w);
      break;
    case 7:
      detail::PackedRank1Fixed<7>(tri, xy, x, y, w);
      break;
    case 8:
      detail::PackedRank1Fixed<8>(tri, xy, x, y, w);
      break;
    default:
      detail::PackedRank1(tri, xy, x, y, w, p_);
      break;
  }
  ytwy_ += w * y * y;
  ++n_;
  sum_w_ += w;
}

inline void RegressionSuffStats::Merge(const RegressionSuffStats& other) {
  if (other.empty()) return;
  if (empty() && p_ == 0) {
    *this = other;
    return;
  }
  BW_CHECK(p_ == other.p_);
  const double* __restrict o = other.xtwx_packed_.data();
  double* __restrict t = xtwx_packed_.data();
  const size_t tn = xtwx_packed_.size();
  for (size_t i = 0; i < tn; ++i) t[i] += o[i];
  for (size_t j = 0; j < p_; ++j) xtwy_[j] += other.xtwy_[j];
  ytwy_ += other.ytwy_;
  n_ += other.n_;
  sum_w_ += other.sum_w_;
}

}  // namespace bellwether::regression

#endif  // BELLWETHER_REGRESSION_LINEAR_MODEL_H_
