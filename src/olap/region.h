#ifndef BELLWETHER_OLAP_REGION_H_
#define BELLWETHER_OLAP_REGION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "olap/dimension.h"

namespace bellwether::olap {

/// Flat index of a candidate region inside a RegionSpace.
using RegionId = int64_t;
constexpr RegionId kInvalidRegion = -1;

/// Per-dimension coordinate of a region. For a hierarchical dimension this is
/// a NodeId; for an interval dimension it is window_end - 1 (so coordinates
/// are always 0-based and dense).
using RegionCoords = std::vector<int32_t>;

/// Per-dimension coordinate of a fact-table point: a *leaf* NodeId for a
/// hierarchical dimension, or a 1-based time point for an interval dimension.
using PointCoords = std::vector<int32_t>;

/// The candidate region set R (paper §3.2): the cross product of the
/// coordinates of the fact-table dimensions. Provides dense region ids,
/// containment tests, enumeration of containing regions of a point, and the
/// finest-grained cell space used by cost tables.
class RegionSpace {
 public:
  explicit RegionSpace(std::vector<Dimension> dims);

  size_t num_dims() const { return dims_.size(); }
  const Dimension& dim(size_t d) const { return dims_[d]; }

  /// |R| — the total number of candidate regions.
  int64_t NumRegions() const { return num_regions_; }

  /// Flat id of a region from its coordinates.
  RegionId Encode(const RegionCoords& coords) const;
  /// Inverse of Encode.
  RegionCoords Decode(RegionId id) const;

  /// Human-readable region label, e.g. "[1-8, MD]".
  std::string RegionLabel(RegionId id) const;

  /// Parses a label of the form produced by RegionLabel.
  Result<RegionId> FindRegion(const std::vector<std::string>& parts) const;

  /// True if the fact point lies inside the region.
  bool RegionContainsPoint(RegionId region, const PointCoords& point) const;

  /// True if every point of `inner` lies inside `outer` (coordinate-wise
  /// subtree / prefix containment).
  bool RegionContainsRegion(RegionId outer, RegionId inner) const;

  /// Invokes `fn` for every region containing the point (the cross product
  /// of ancestor chains and suffix windows).
  void ForEachContainingRegion(const PointCoords& point,
                               const std::function<void(RegionId)>& fn) const;

  /// Region coordinates of the *base cell* a point falls in: the leaf node
  /// itself / the window ending exactly at the point's time.
  RegionCoords BaseCellOf(const PointCoords& point) const;

  /// ---- Finest-grained cell space (cost tables attach to these cells) ----
  /// A finest cell is a combination of (leaf node, single time point).

  int64_t NumFinestCells() const { return num_finest_cells_; }

  /// Finest-cell id of a fact point.
  int64_t FinestCellOf(const PointCoords& point) const;

  /// All finest cells covered by a region.
  std::vector<int64_t> FinestCellsIn(RegionId region) const;

  /// The full-space region: root node on every hierarchical dimension, the
  /// longest window on every interval dimension.
  RegionId FullRegion() const;

 private:
  std::vector<Dimension> dims_;
  std::vector<int32_t> cardinalities_;
  std::vector<int64_t> strides_;  // region-id strides, row-major
  int64_t num_regions_;
  // Finest-cell space.
  std::vector<int32_t> finest_cardinalities_;
  std::vector<int64_t> finest_strides_;
  int64_t num_finest_cells_;
  // For hierarchical dims: node -> index within leaves() (or -1).
  std::vector<std::vector<int32_t>> leaf_index_;
};

}  // namespace bellwether::olap

#endif  // BELLWETHER_OLAP_REGION_H_
