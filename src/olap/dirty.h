#ifndef BELLWETHER_OLAP_DIRTY_H_
#define BELLWETHER_OLAP_DIRTY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "olap/region.h"

namespace bellwether::olap {

/// Dense dirty-flag set over a region (or cube-subset) id space: O(1)
/// marking, ascending-id iteration, and a running count. The incremental
/// cube-maintenance path uses one to track which lattice cells a delta
/// batch touched, so finalization re-derives only those instead of the
/// whole cube.
class DirtySet {
 public:
  DirtySet() = default;
  explicit DirtySet(int64_t size) : flags_(size, 0) {}

  /// Resizes the id space; all flags cleared.
  void Resize(int64_t size) {
    flags_.assign(static_cast<size_t>(size), 0);
    count_ = 0;
  }
  int64_t size() const { return static_cast<int64_t>(flags_.size()); }

  void Mark(RegionId id) {
    if (flags_[id] == 0) {
      flags_[id] = 1;
      ++count_;
    }
  }
  void MarkAll() {
    flags_.assign(flags_.size(), 1);
    count_ = size();
  }
  void Clear() {
    flags_.assign(flags_.size(), 0);
    count_ = 0;
  }
  bool IsMarked(RegionId id) const { return flags_[id] != 0; }
  int64_t count() const { return count_; }

  /// Visits the marked ids in ascending order.
  void ForEachMarked(const std::function<void(RegionId)>& fn) const {
    for (size_t i = 0; i < flags_.size(); ++i) {
      if (flags_[i] != 0) fn(static_cast<RegionId>(i));
    }
  }

 private:
  std::vector<uint8_t> flags_;
  int64_t count_ = 0;
};

/// Marks every region of `space` containing `point`: the ancestor closure
/// of the point's base cell, i.e. the lattice rollup of dirtiness — every
/// aggregate whose value depends on the point (Gray et al.'s cube lattice,
/// restricted to one new fact). `dirty` must be sized to
/// space.NumRegions().
void MarkContainingRegions(const RegionSpace& space, const PointCoords& point,
                           DirtySet* dirty);

}  // namespace bellwether::olap

#endif  // BELLWETHER_OLAP_DIRTY_H_
