#include "olap/dimension.h"

#include <algorithm>

#include "common/check.h"

namespace bellwether::olap {

HierarchicalDimension::HierarchicalDimension(std::string name,
                                             std::string root_label)
    : name_(std::move(name)) {
  labels_.push_back(std::move(root_label));
  parents_.push_back(kInvalidNode);
  children_.emplace_back();
  depths_.push_back(0);
}

NodeId HierarchicalDimension::AddNode(const std::string& label,
                                      NodeId parent) {
  BW_CHECK(parent >= 0 && parent < num_nodes());
  BW_CHECK(std::find(labels_.begin(), labels_.end(), label) == labels_.end());
  const NodeId id = num_nodes();
  labels_.push_back(label);
  parents_.push_back(parent);
  children_.emplace_back();
  depths_.push_back(depths_[parent] + 1);
  children_[parent].push_back(id);
  leaves_dirty_ = true;
  return id;
}

const std::vector<NodeId>& HierarchicalDimension::leaves() const {
  if (leaves_dirty_) {
    leaves_cache_.clear();
    for (NodeId n = 0; n < num_nodes(); ++n) {
      if (IsLeaf(n)) leaves_cache_.push_back(n);
    }
    leaves_dirty_ = false;
  }
  return leaves_cache_;
}

std::vector<NodeId> HierarchicalDimension::LeavesUnder(NodeId n) const {
  std::vector<NodeId> out;
  std::vector<NodeId> stack{n};
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    if (IsLeaf(cur)) {
      out.push_back(cur);
    } else {
      for (NodeId c : children_[cur]) stack.push_back(c);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> HierarchicalDimension::AncestorsOf(NodeId n) const {
  std::vector<NodeId> out;
  for (NodeId cur = n; cur != kInvalidNode; cur = parents_[cur]) {
    out.push_back(cur);
  }
  return out;
}

bool HierarchicalDimension::Contains(NodeId ancestor, NodeId node) const {
  for (NodeId cur = node; cur != kInvalidNode; cur = parents_[cur]) {
    if (cur == ancestor) return true;
  }
  return false;
}

Result<NodeId> HierarchicalDimension::FindNode(
    const std::string& label) const {
  for (NodeId n = 0; n < num_nodes(); ++n) {
    if (labels_[n] == label) return n;
  }
  return Status::NotFound("no node labelled '" + label + "' in dimension " +
                          name_);
}

std::vector<NodeId> HierarchicalDimension::NodesBottomUp() const {
  std::vector<NodeId> order(num_nodes());
  for (NodeId n = 0; n < num_nodes(); ++n) order[n] = n;
  std::stable_sort(order.begin(), order.end(), [this](NodeId a, NodeId b) {
    return depths_[a] > depths_[b];
  });
  return order;
}

int32_t HierarchicalDimension::max_depth() const {
  int32_t m = 0;
  for (int32_t d : depths_) m = std::max(m, d);
  return m;
}

IntervalDimension::IntervalDimension(std::string name, int32_t max_time,
                                     WindowKind kind)
    : name_(std::move(name)), max_time_(max_time), kind_(kind) {
  BW_CHECK(max_time >= 1);
}

int32_t IntervalDimension::num_windows() const {
  if (kind_ == WindowKind::kIncremental) return max_time_;
  return max_time_ * (max_time_ + 1) / 2;
}

std::pair<int32_t, int32_t> IntervalDimension::WindowBounds(
    int32_t window_id) const {
  BW_DCHECK(window_id >= 0 && window_id < num_windows());
  if (kind_ == WindowKind::kIncremental) return {1, window_id + 1};
  // Sliding windows are ordered by length then start: length-L windows
  // occupy a block of max_time - L + 1 consecutive ids.
  int32_t length = 1;
  int32_t id = window_id;
  while (id >= max_time_ - length + 1) {
    id -= max_time_ - length + 1;
    ++length;
  }
  const int32_t start = id + 1;
  return {start, start + length - 1};
}

int32_t IntervalDimension::FindWindow(int32_t start, int32_t end) const {
  if (start < 1 || end > max_time_ || start > end) return -1;
  if (kind_ == WindowKind::kIncremental) {
    return start == 1 ? end - 1 : -1;
  }
  const int32_t length = end - start + 1;
  int32_t id = 0;
  for (int32_t l = 1; l < length; ++l) id += max_time_ - l + 1;
  return id + start - 1;
}

bool IntervalDimension::ContainsWindow(int32_t window_id, int32_t t) const {
  const auto [start, end] = WindowBounds(window_id);
  return t >= start && t <= end;
}

bool IntervalDimension::WindowContainsWindow(int32_t outer,
                                             int32_t inner) const {
  const auto [os, oe] = WindowBounds(outer);
  const auto [is, ie] = WindowBounds(inner);
  return os <= is && ie <= oe;
}

void IntervalDimension::ForEachWindowContaining(
    int32_t t, const std::function<void(int32_t)>& fn) const {
  for (int32_t w = 0; w < num_windows(); ++w) {
    if (ContainsWindow(w, t)) fn(w);
  }
}

std::vector<std::pair<int32_t, int32_t>> IntervalDimension::RollupMerges()
    const {
  std::vector<std::pair<int32_t, int32_t>> merges;
  if (kind_ == WindowKind::kIncremental) {
    // [1..t] = [1..t-1] + base contribution already in the cell.
    for (int32_t t = 0; t + 1 < max_time_; ++t) merges.emplace_back(t, t + 1);
    return merges;
  }
  // Sliding: [s..e] = [s..e-1] + [e..e]; lengths ascending so the shorter
  // source window is already complete.
  for (int32_t length = 2; length <= max_time_; ++length) {
    for (int32_t s = 1; s + length - 1 <= max_time_; ++s) {
      const int32_t to = FindWindow(s, s + length - 1);
      merges.emplace_back(FindWindow(s, s + length - 2), to);
      merges.emplace_back(FindWindow(s + length - 1, s + length - 1), to);
    }
  }
  return merges;
}

std::string IntervalDimension::WindowLabelById(int32_t window_id) const {
  const auto [start, end] = WindowBounds(window_id);
  return "[" + std::to_string(start) + "-" + std::to_string(end) + "]";
}

int32_t DimensionCardinality(const Dimension& dim) {
  if (const auto* h = std::get_if<HierarchicalDimension>(&dim)) {
    return h->num_nodes();
  }
  return std::get<IntervalDimension>(dim).num_windows();
}

const std::string& DimensionName(const Dimension& dim) {
  if (const auto* h = std::get_if<HierarchicalDimension>(&dim)) {
    return h->name();
  }
  return std::get<IntervalDimension>(dim).name();
}

}  // namespace bellwether::olap
