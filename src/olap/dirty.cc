#include "olap/dirty.h"

namespace bellwether::olap {

void MarkContainingRegions(const RegionSpace& space, const PointCoords& point,
                           DirtySet* dirty) {
  space.ForEachContainingRegion(point,
                               [dirty](RegionId r) { dirty->Mark(r); });
}

}  // namespace bellwether::olap
