#ifndef BELLWETHER_OLAP_COST_H_
#define BELLWETHER_OLAP_COST_H_

#include <vector>

#include "common/status.h"
#include "olap/region.h"

namespace bellwether::olap {

/// The cost query kappa_r(DB) of the paper (§3.2, §4.1): the user provides a
/// cost for each finest-grained cell of the region space (e.g. each
/// [month, state] pair); the cost of a larger region is the sum of the costs
/// of the finest cells it covers.
class CostModel {
 public:
  /// `finest_cell_costs` must have space->NumFinestCells() entries, all >= 0.
  static Result<CostModel> Create(const RegionSpace* space,
                                  std::vector<double> finest_cell_costs);

  /// Cost of one region (precomputed; O(1)).
  double RegionCost(RegionId r) const { return region_costs_[r]; }

  /// Costs of all regions, indexed by RegionId.
  const std::vector<double>& region_costs() const { return region_costs_; }

  /// The user-supplied cost table: one entry per finest cell.
  const std::vector<double>& finest_cell_costs() const {
    return finest_cell_costs_;
  }

  const RegionSpace& space() const { return *space_; }

 private:
  CostModel(const RegionSpace* space, std::vector<double> finest,
            std::vector<double> region_costs)
      : space_(space),
        finest_cell_costs_(std::move(finest)),
        region_costs_(std::move(region_costs)) {}

  const RegionSpace* space_;
  std::vector<double> finest_cell_costs_;
  std::vector<double> region_costs_;
};

}  // namespace bellwether::olap

#endif  // BELLWETHER_OLAP_COST_H_
