#include "olap/iceberg.h"

#include <algorithm>

#include "common/check.h"

namespace bellwether::olap {

FeasibleRegions FindFeasibleRegionsBruteForce(
    const RegionSpace& space, const std::vector<double>& region_costs,
    const std::vector<double>& region_coverage, double budget,
    double min_coverage) {
  BW_CHECK(static_cast<int64_t>(region_costs.size()) == space.NumRegions());
  BW_CHECK(static_cast<int64_t>(region_coverage.size()) ==
           space.NumRegions());
  FeasibleRegions out;
  for (RegionId r = 0; r < space.NumRegions(); ++r) {
    ++out.regions_examined;
    if (region_costs[r] > budget) {
      ++out.pruned_by_cost;
    } else if (region_coverage[r] < min_coverage) {
      ++out.pruned_by_coverage;
    } else {
      out.regions.push_back(r);
    }
  }
  return out;
}

namespace {

// DFS state shared across the recursion of the pruned search.
struct Search {
  const RegionSpace* space;
  const std::vector<double>* costs;
  const std::vector<double>* coverage;
  double budget;
  double min_coverage;
  FeasibleRegions* out;

  std::vector<size_t> hier_dims;      // dimension indices that are trees
  std::vector<size_t> interval_dims;  // dimension indices that are windows
  std::vector<std::vector<int64_t>> subtree_sizes;  // per hier dim, per node
  std::vector<int64_t> tree_sizes;                  // per hier dim
  std::vector<int32_t> max_windows;                 // per interval dim
  /// True when every interval dimension's window cost is monotone in the
  /// window id — the precondition of the budget break below.
  bool windows_cost_monotone = true;
  int64_t windows_product = 1;

  RegionCoords coords;  // working coordinates

  // Upper bound on the coverage of any region whose hierarchical
  // coordinates for dims [0..k] equal the current choices (or lie in their
  // subtrees for dim k) and are arbitrary for dims (k..): the current
  // choices with roots for the remaining tree dims and maximal windows.
  bool CoverageBoundOk(size_t k) {
    const RegionCoords saved = coords;
    for (size_t j = k + 1; j < hier_dims.size(); ++j) {
      coords[hier_dims[j]] = 0;  // root
    }
    for (size_t j = 0; j < interval_dims.size(); ++j) {
      coords[interval_dims[j]] = max_windows[j] - 1;
    }
    const bool ok = (*coverage)[space->Encode(coords)] >= min_coverage;
    coords = saved;
    return ok;
  }

  // Number of regions covered by pruning the subtree of the dim-k node
  // currently selected (dims < k fixed, dims > k unconstrained).
  int64_t PrunedCount(size_t k) const {
    int64_t n = windows_product * subtree_sizes[k][coords[hier_dims[k]]];
    for (size_t j = k + 1; j < hier_dims.size(); ++j) n *= tree_sizes[j];
    return n;
  }

  // Enumerates windows for interval dims [k..), with monotone cost pruning.
  void RecurseWindows(size_t k) {
    if (k == interval_dims.size()) {
      const RegionId r = space->Encode(coords);
      ++out->regions_examined;
      if ((*costs)[r] > budget) {
        ++out->pruned_by_cost;
      } else if ((*coverage)[r] < min_coverage) {
        ++out->pruned_by_coverage;
      } else {
        out->regions.push_back(r);
      }
      return;
    }
    int64_t later = 1;
    for (size_t j = k + 1; j < interval_dims.size(); ++j) {
      later *= max_windows[j];
    }
    for (int32_t t = 0; t < max_windows[k]; ++t) {
      coords[interval_dims[k]] = t;
      // Cheapest completion: remaining windows at their first (shortest)
      // id. For incremental windows, costs grow with the id (non-negative
      // finest-cell costs), so once the cheapest completion exceeds the
      // budget, every later window does too. Sliding windows are not
      // id-monotone, so the break is disabled for them.
      if (windows_cost_monotone) {
        for (size_t j = k + 1; j < interval_dims.size(); ++j) {
          coords[interval_dims[j]] = 0;
        }
        if ((*costs)[space->Encode(coords)] > budget) {
          const int64_t skipped =
              static_cast<int64_t>(max_windows[k] - t) * later;
          out->regions_pruned += skipped;
          out->pruned_by_cost += skipped;
          break;
        }
      }
      RecurseWindows(k + 1);
    }
  }

  // Enumerates the hierarchical node tuples depth-first. For dim k, walks
  // the tree from the current coordinate's subtree root; a node failing the
  // coverage bound prunes its entire subtree.
  void RecurseNodes(size_t k) {
    if (k == hier_dims.size()) {
      RecurseWindows(0);
      return;
    }
    const auto& h = std::get<HierarchicalDimension>(space->dim(hier_dims[k]));
    std::vector<NodeId> stack{h.root()};
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      coords[hier_dims[k]] = n;
      if (!CoverageBoundOk(k)) {
        const int64_t skipped = PrunedCount(k);
        out->regions_pruned += skipped;
        out->pruned_by_coverage += skipped;
        continue;  // skip children too: their coverage is no larger
      }
      RecurseNodes(k + 1);
      for (NodeId c : h.children(n)) stack.push_back(c);
    }
    coords[hier_dims[k]] = h.root();
  }
};

}  // namespace

FeasibleRegions FindFeasibleRegionsPruned(
    const RegionSpace& space, const std::vector<double>& region_costs,
    const std::vector<double>& region_coverage, double budget,
    double min_coverage) {
  BW_CHECK(static_cast<int64_t>(region_costs.size()) == space.NumRegions());
  BW_CHECK(static_cast<int64_t>(region_coverage.size()) ==
           space.NumRegions());
  FeasibleRegions out;
  Search s;
  s.space = &space;
  s.costs = &region_costs;
  s.coverage = &region_coverage;
  s.budget = budget;
  s.min_coverage = min_coverage;
  s.out = &out;
  s.coords.assign(space.num_dims(), 0);
  for (size_t d = 0; d < space.num_dims(); ++d) {
    if (const auto* h = std::get_if<HierarchicalDimension>(&space.dim(d))) {
      s.hier_dims.push_back(d);
      std::vector<int64_t> sizes(h->num_nodes(), 1);
      for (NodeId n : h->NodesBottomUp()) {
        for (NodeId c : h->children(n)) sizes[n] += sizes[c];
      }
      s.tree_sizes.push_back(sizes[h->root()]);
      s.subtree_sizes.push_back(std::move(sizes));
    } else {
      const auto& iv = std::get<IntervalDimension>(space.dim(d));
      s.interval_dims.push_back(d);
      s.max_windows.push_back(iv.num_windows());
      s.windows_cost_monotone &= iv.CostMonotoneByIndex();
      s.windows_product *= iv.num_windows();
    }
  }
  s.RecurseNodes(0);
  std::sort(out.regions.begin(), out.regions.end());
  return out;
}

}  // namespace bellwether::olap
