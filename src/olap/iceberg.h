#ifndef BELLWETHER_OLAP_ICEBERG_H_
#define BELLWETHER_OLAP_ICEBERG_H_

#include <vector>

#include "olap/region.h"

namespace bellwether::olap {

/// Result of the feasible-region (iceberg) search: regions r with
/// cost(r) <= budget and coverage(r) >= min_coverage (paper §4.2), plus
/// counters showing how much of the region space the pruned search skipped.
struct FeasibleRegions {
  std::vector<RegionId> regions;  // ascending RegionId order
  int64_t regions_examined = 0;   // regions whose constraints were evaluated
  int64_t regions_pruned = 0;     // regions skipped by monotonicity pruning
  /// Regions excluded because of the cost budget: examined-and-rejected
  /// plus (pruned search only) those skipped by the monotone-cost break.
  int64_t pruned_by_cost = 0;
  /// Regions excluded because of the coverage threshold: examined-and-
  /// rejected plus (pruned search only) whole subtrees skipped by the
  /// anti-monotone coverage bound.
  int64_t pruned_by_coverage = 0;
};

/// Brute-force reference: evaluates the constraints on every region.
FeasibleRegions FindFeasibleRegionsBruteForce(
    const RegionSpace& space, const std::vector<double>& region_costs,
    const std::vector<double>& region_coverage, double budget,
    double min_coverage);

/// BUC-style pruned search. Exploits two monotonicity properties of the
/// OLAP region space:
///  * coverage is anti-monotone when descending a hierarchical dimension or
///    shrinking a window (fewer items have data in a smaller region), so a
///    subtree is pruned once its most-covering region falls below the
///    threshold;
///  * cost is monotone when growing a window (non-negative finest-cell
///    costs), so the window scan stops at the first window over budget.
/// Produces exactly the same region set as the brute-force search.
FeasibleRegions FindFeasibleRegionsPruned(
    const RegionSpace& space, const std::vector<double>& region_costs,
    const std::vector<double>& region_coverage, double budget,
    double min_coverage);

}  // namespace bellwether::olap

#endif  // BELLWETHER_OLAP_ICEBERG_H_
