#ifndef BELLWETHER_OLAP_CUBE_H_
#define BELLWETHER_OLAP_CUBE_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "olap/region.h"
#include "table/ops.h"

namespace bellwether::olap {

/// Distributive numeric accumulator covering SUM / COUNT / MIN / MAX and the
/// algebraic AVG. One instance per (region, item) cell.
struct NumericAgg {
  double sum = 0.0;
  int64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Add(double v) {
    sum += v;
    ++count;
    min = std::min(min, v);
    max = std::max(max, v);
  }

  void Merge(const NumericAgg& o) {
    sum += o.sum;
    count += o.count;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }

  bool empty() const { return count == 0; }

  /// Aggregate result; nullopt when no values were accumulated (except
  /// kCount, which is 0).
  std::optional<double> Finish(table::AggFn fn) const {
    using table::AggFn;
    if (fn == AggFn::kCount) return static_cast<double>(count);
    if (count == 0) return std::nullopt;
    switch (fn) {
      case AggFn::kSum:
        return sum;
      case AggFn::kMin:
        return min;
      case AggFn::kMax:
        return max;
      case AggFn::kAvg:
        return sum / static_cast<double>(count);
      default:
        BW_CHECK(false);
    }
    return std::nullopt;
  }
};

/// Accumulator for the pi_FK feature queries (paper §4.1, third form): the
/// set of distinct foreign keys an item references within a region. Set
/// union is distributive, so rollup stays exact even when the same key
/// appears in several child cells.
struct FkSetAgg {
  std::set<int64_t> keys;

  void Add(int64_t fk) { keys.insert(fk); }
  void Merge(const FkSetAgg& o) { keys.insert(o.keys.begin(), o.keys.end()); }
  bool empty() const { return keys.empty(); }
};

/// Maps external item ids to dense indices [0, size).
class ItemDictionary {
 public:
  /// Index of `id`, inserting it if new.
  int32_t GetOrAdd(int64_t id) {
    auto [it, inserted] = index_.emplace(id, ids_.size());
    if (inserted) ids_.push_back(id);
    return static_cast<int32_t>(it->second);
  }

  /// Index of `id`, or -1 if unknown.
  int32_t Find(int64_t id) const {
    auto it = index_.find(id);
    return it == index_.end() ? -1 : static_cast<int32_t>(it->second);
  }

  int64_t IdAt(int32_t index) const { return ids_[index]; }
  int32_t size() const { return static_cast<int32_t>(ids_.size()); }

 private:
  std::unordered_map<int64_t, size_t> index_;
  std::vector<int64_t> ids_;
};

/// A dense cube of accumulators over (candidate region, item) implementing
/// the CUBE operation of the rewritten feature queries (paper §4.2):
/// alpha_{Z, ID, f(A)} with the aggregate computed for *every* region, not
/// only the finest ones. Fill base cells from fact rows, then call Rollup()
/// once; afterwards Cell(r, i) holds the aggregate over all fact rows of
/// item i falling inside region r.
///
/// Rollup runs one in-place pass per dimension: child tree nodes merge into
/// their parents bottom-up (hierarchical dimensions), and window t merges
/// into window t+1 (incremental-interval dimensions). Both are exact because
/// the accumulators are distributive.
template <typename Acc>
class RegionItemCube {
 public:
  RegionItemCube(const RegionSpace* space, int32_t num_items)
      : space_(space),
        num_items_(num_items),
        cells_(static_cast<size_t>(space->NumRegions()) * num_items) {
    BW_CHECK(num_items >= 0);
    // Region-id strides, identical to RegionSpace's row-major layout.
    const size_t nd = space->num_dims();
    cards_.resize(nd);
    strides_.assign(nd, 1);
    for (size_t d = 0; d < nd; ++d) cards_[d] = DimensionCardinality(space->dim(d));
    for (size_t d = nd - 1; d-- > 0;) strides_[d] = strides_[d + 1] * cards_[d + 1];
  }

  int32_t num_items() const { return num_items_; }
  const RegionSpace& space() const { return *space_; }

  /// Cell for the *base* region of a fact point; use during the fill phase.
  Acc& BaseCell(const PointCoords& point, int32_t item) {
    return Cell(space_->Encode(space_->BaseCellOf(point)), item);
  }

  Acc& Cell(RegionId r, int32_t item) {
    BW_DCHECK(item >= 0 && item < num_items_);
    return cells_[static_cast<size_t>(r) * num_items_ + item];
  }
  const Acc& Cell(RegionId r, int32_t item) const {
    BW_DCHECK(item >= 0 && item < num_items_);
    return cells_[static_cast<size_t>(r) * num_items_ + item];
  }

  /// Performs the bottom-up CUBE rollup. Call exactly once, after all base
  /// cells are filled.
  void Rollup() {
    BW_CHECK(!rolled_up_);
    rolled_up_ = true;
    for (size_t d = 0; d < space_->num_dims(); ++d) {
      if (const auto* h =
              std::get_if<HierarchicalDimension>(&space_->dim(d))) {
        for (NodeId n : h->NodesBottomUp()) {
          if (n == h->root()) continue;
          MergeSlice(d, n, h->parent(n));
        }
      } else {
        const auto& iv = std::get<IntervalDimension>(space_->dim(d));
        // Window-kind-specific merge schedule (prefix accumulation for
        // incremental windows; shorter-into-longer for sliding ones).
        for (const auto& [from, to] : iv.RollupMerges()) {
          MergeSlice(d, from, to);
        }
      }
    }
  }

  bool rolled_up() const { return rolled_up_; }

 private:
  // Merges every cell whose dim-d coordinate is `from` into the cell with
  // coordinate `to` (all other coordinates and the item fixed).
  void MergeSlice(size_t d, int32_t from, int32_t to) {
    const int64_t stride = strides_[d];               // in region units
    const int64_t block = stride * cards_[d];         // one full digit cycle
    const int64_t num_regions = space_->NumRegions();
    for (int64_t hi = 0; hi < num_regions; hi += block) {
      const int64_t from_base = hi + from * stride;
      const int64_t to_base = hi + to * stride;
      for (int64_t lo = 0; lo < stride; ++lo) {
        Acc* src = &cells_[static_cast<size_t>(from_base + lo) * num_items_];
        Acc* dst = &cells_[static_cast<size_t>(to_base + lo) * num_items_];
        for (int32_t i = 0; i < num_items_; ++i) {
          if (!src[i].empty()) dst[i].Merge(src[i]);
        }
      }
    }
  }

  const RegionSpace* space_;
  int32_t num_items_;
  std::vector<Acc> cells_;
  std::vector<int32_t> cards_;
  std::vector<int64_t> strides_;
  bool rolled_up_ = false;
};

}  // namespace bellwether::olap

#endif  // BELLWETHER_OLAP_CUBE_H_
