#ifndef BELLWETHER_OLAP_CUBE_H_
#define BELLWETHER_OLAP_CUBE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <set>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "olap/region.h"
#include "table/ops.h"

// Runtime-dispatched AVX2 merge kernels (GCC/Clang function target
// attributes; no global -march change, scalar fallback kept for other
// builds and pre-AVX2 hosts).
#if defined(__x86_64__) && defined(__GNUC__)
#define BW_CUBE_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace bellwether::olap {

/// Distributive numeric accumulator covering SUM / COUNT / MIN / MAX and the
/// algebraic AVG. One instance per (region, item) cell.
struct NumericAgg {
  double sum = 0.0;
  int64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Add(double v) {
    sum += v;
    ++count;
    min = std::min(min, v);
    max = std::max(max, v);
  }

  void Merge(const NumericAgg& o) {
    sum += o.sum;
    count += o.count;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }

  bool empty() const { return count == 0; }

  /// Aggregate result; nullopt when no values were accumulated (except
  /// kCount, which is 0).
  std::optional<double> Finish(table::AggFn fn) const {
    using table::AggFn;
    if (fn == AggFn::kCount) return static_cast<double>(count);
    if (count == 0) return std::nullopt;
    switch (fn) {
      case AggFn::kSum:
        return sum;
      case AggFn::kMin:
        return min;
      case AggFn::kMax:
        return max;
      case AggFn::kAvg:
        return sum / static_cast<double>(count);
      default:
        BW_CHECK(false);
    }
    return std::nullopt;
  }
};

/// Accumulator for the pi_FK feature queries (paper §4.1, third form): the
/// set of distinct foreign keys an item references within a region. Set
/// union is distributive, so rollup stays exact even when the same key
/// appears in several child cells.
struct FkSetAgg {
  std::set<int64_t> keys;

  void Add(int64_t fk) { keys.insert(fk); }
  void Merge(const FkSetAgg& o) { keys.insert(o.keys.begin(), o.keys.end()); }
  bool empty() const { return keys.empty(); }
};

namespace detail {

/// Merges a contiguous run of `n` accumulators cell-by-cell. Generic
/// fallback for accumulators with indirection (e.g. FkSetAgg): skip empty
/// sources, virtual-shaped Merge per cell.
template <typename Acc>
inline void MergeAccRun(Acc* dst, const Acc* src, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (!src[i].empty()) dst[i].Merge(src[i]);
  }
}

#if defined(BW_CUBE_X86_DISPATCH)

inline const bool kCubeHasAvx2 = __builtin_cpu_supports("avx2");
inline const bool kCubeHasAvx512 = __builtin_cpu_supports("avx512f");

/// AVX-512 twin of the AVX2 kernels below: two cells per 512-bit vector,
/// count lanes 1 and 5, min lanes 2 and 6, max lanes 3 and 7. Same
/// bit-identical lane semantics (min/max take the second operand on ties,
/// matching std::min(d, s) / std::max(d, s)).
__attribute__((target("avx512f"))) inline __m512d MergeCellsAvx512(
    __m512d d, __m512d s) {
  const __m512d fsum = _mm512_add_pd(d, s);
  const __m512d isum = _mm512_castsi512_pd(
      _mm512_add_epi64(_mm512_castpd_si512(d), _mm512_castpd_si512(s)));
  const __m512d mn = _mm512_min_pd(s, d);
  const __m512d mx = _mm512_max_pd(s, d);
  __m512d r = _mm512_mask_blend_pd(0b00100010, fsum, isum);
  r = _mm512_mask_blend_pd(0b01000100, r, mn);
  return _mm512_mask_blend_pd(0b10001000, r, mx);
}

__attribute__((target("avx512f"))) inline void MergeAccRunAvx512(
    NumericAgg* dst, const NumericAgg* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* sp = reinterpret_cast<const double*>(src + i);
    const __m512d s0 = _mm512_loadu_pd(sp);
    const __m512d s1 = _mm512_loadu_pd(sp + 8);
    const __m512i any = _mm512_or_si512(_mm512_castpd_si512(s0),
                                        _mm512_castpd_si512(s1));
    if (_mm512_test_epi64_mask(any, _mm512_set_epi64(0, 0, -1, 0, 0, 0, -1,
                                                     0)) == 0) {
      continue;
    }
    double* dp = reinterpret_cast<double*>(dst + i);
    _mm512_storeu_pd(dp, MergeCellsAvx512(_mm512_loadu_pd(dp), s0));
    _mm512_storeu_pd(dp + 8, MergeCellsAvx512(_mm512_loadu_pd(dp + 8), s1));
  }
  for (; i < n; ++i) {
    if (src[i].count != 0) dst[i].Merge(src[i]);
  }
}

__attribute__((target("avx512f"))) inline void MergeAccRunFanInAvx512(
    NumericAgg* dst, const NumericAgg* const* srcs, size_t k, size_t n) {
  const __m512i count_lanes =
      _mm512_set_epi64(0, 0, -1, 0, 0, 0, -1, 0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    double* dp = reinterpret_cast<double*>(dst + i);
    __m512d d0 = _mm512_setzero_pd(), d1 = d0;
    bool loaded = false;
    for (size_t j = 0; j < k; ++j) {
      const double* sp = reinterpret_cast<const double*>(srcs[j] + i);
      const __m512d s0 = _mm512_loadu_pd(sp);
      const __m512d s1 = _mm512_loadu_pd(sp + 8);
      const __m512i any = _mm512_or_si512(_mm512_castpd_si512(s0),
                                          _mm512_castpd_si512(s1));
      if (_mm512_test_epi64_mask(any, count_lanes) == 0) continue;
      if (!loaded) {
        d0 = _mm512_loadu_pd(dp);
        d1 = _mm512_loadu_pd(dp + 8);
        loaded = true;
      }
      d0 = MergeCellsAvx512(d0, s0);
      d1 = MergeCellsAvx512(d1, s1);
    }
    if (loaded) {
      _mm512_storeu_pd(dp, d0);
      _mm512_storeu_pd(dp + 8, d1);
    }
  }
  for (; i < n; ++i) {
    for (size_t j = 0; j < k; ++j) {
      if (srcs[j][i].count != 0) dst[i].Merge(srcs[j][i]);
    }
  }
}

/// One NumericAgg cell is exactly one 256-bit vector [sum, count, min, max]
/// (static_asserts below). Merging two cells is lane-parallel: fp add for
/// the sum lane, 64-bit integer add for the count lane, fp min/max for the
/// extrema lanes, blended back together by immediate masks. min_pd(s, d)
/// matches std::min(d, s) exactly (second operand on ties), ditto max, so
/// the result is bit-identical to the scalar merge.
__attribute__((target("avx2"))) inline __m256d MergeCellAvx2(__m256d d,
                                                             __m256d s) {
  const __m256d fsum = _mm256_add_pd(d, s);
  const __m256d isum = _mm256_castsi256_pd(
      _mm256_add_epi64(_mm256_castpd_si256(d), _mm256_castpd_si256(s)));
  const __m256d mn = _mm256_min_pd(s, d);
  const __m256d mx = _mm256_max_pd(s, d);
  __m256d r = _mm256_blend_pd(fsum, isum, 0b0010);
  r = _mm256_blend_pd(r, mn, 0b0100);
  return _mm256_blend_pd(r, mx, 0b1000);
}

__attribute__((target("avx2"))) inline void MergeAccRunAvx2(
    NumericAgg* dst, const NumericAgg* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* sp = reinterpret_cast<const double*>(src + i);
    const __m256d s0 = _mm256_loadu_pd(sp);
    const __m256d s1 = _mm256_loadu_pd(sp + 4);
    const __m256d s2 = _mm256_loadu_pd(sp + 8);
    const __m256d s3 = _mm256_loadu_pd(sp + 12);
    // Lane 1 of the OR of the four cell vectors is the OR of their counts:
    // zero means the whole group is empty and dst is never touched.
    const __m256i any = _mm256_or_si256(
        _mm256_or_si256(_mm256_castpd_si256(s0), _mm256_castpd_si256(s1)),
        _mm256_or_si256(_mm256_castpd_si256(s2), _mm256_castpd_si256(s3)));
    if (_mm256_extract_epi64(any, 1) == 0) continue;
    double* dp = reinterpret_cast<double*>(dst + i);
    _mm256_storeu_pd(dp, MergeCellAvx2(_mm256_loadu_pd(dp), s0));
    _mm256_storeu_pd(dp + 4, MergeCellAvx2(_mm256_loadu_pd(dp + 4), s1));
    _mm256_storeu_pd(dp + 8, MergeCellAvx2(_mm256_loadu_pd(dp + 8), s2));
    _mm256_storeu_pd(dp + 12, MergeCellAvx2(_mm256_loadu_pd(dp + 12), s3));
  }
  for (; i < n; ++i) {
    if (src[i].count != 0) dst[i].Merge(src[i]);
  }
}

__attribute__((target("avx2"))) inline void MergeAccRunFanInAvx2(
    NumericAgg* dst, const NumericAgg* const* srcs, size_t k, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    double* dp = reinterpret_cast<double*>(dst + i);
    // The four dst vectors are loaded lazily on the first live source and
    // stay in registers across all k sources — one dst read + write per
    // group total, instead of one per source.
    __m256d d0 = _mm256_setzero_pd(), d1 = d0, d2 = d0, d3 = d0;
    bool loaded = false;
    for (size_t j = 0; j < k; ++j) {
      const double* sp = reinterpret_cast<const double*>(srcs[j] + i);
      const __m256d s0 = _mm256_loadu_pd(sp);
      const __m256d s1 = _mm256_loadu_pd(sp + 4);
      const __m256d s2 = _mm256_loadu_pd(sp + 8);
      const __m256d s3 = _mm256_loadu_pd(sp + 12);
      const __m256i any = _mm256_or_si256(
          _mm256_or_si256(_mm256_castpd_si256(s0), _mm256_castpd_si256(s1)),
          _mm256_or_si256(_mm256_castpd_si256(s2), _mm256_castpd_si256(s3)));
      if (_mm256_extract_epi64(any, 1) == 0) continue;
      if (!loaded) {
        d0 = _mm256_loadu_pd(dp);
        d1 = _mm256_loadu_pd(dp + 4);
        d2 = _mm256_loadu_pd(dp + 8);
        d3 = _mm256_loadu_pd(dp + 12);
        loaded = true;
      }
      d0 = MergeCellAvx2(d0, s0);
      d1 = MergeCellAvx2(d1, s1);
      d2 = MergeCellAvx2(d2, s2);
      d3 = MergeCellAvx2(d3, s3);
    }
    if (loaded) {
      _mm256_storeu_pd(dp, d0);
      _mm256_storeu_pd(dp + 4, d1);
      _mm256_storeu_pd(dp + 8, d2);
      _mm256_storeu_pd(dp + 12, d3);
    }
  }
  for (; i < n; ++i) {
    for (size_t j = 0; j < k; ++j) {
      if (srcs[j][i].count != 0) dst[i].Merge(srcs[j][i]);
    }
  }
}

#endif  // BW_CUBE_X86_DISPATCH

/// NumericAgg is a flat POD (four scalar fields, no indirection), and
/// merging an *empty* NumericAgg is the identity: sum += 0, count += 0,
/// min(x, +inf) = x, max(x, -inf) = x. That makes the run merge a plain
/// contiguous array addition the autovectorizer can lift — no per-cell
/// branch. Rollup sources are mostly empty (base cells are sparse), so
/// groups of four source counts are OR-ed first and an all-empty group is
/// skipped without touching dst at all. Four cells is the sweet spot: at a
/// few-percent base density a 32-cell block is ~70% likely to contain at
/// least one live cell (skipping almost nothing), while a 4-cell group
/// skips ~85% of dst read+write traffic and still amortizes the branch.
inline void MergeAccRun(NumericAgg* dst, const NumericAgg* src, size_t n) {
  static_assert(std::is_trivially_copyable_v<NumericAgg>);
  static_assert(sizeof(NumericAgg) == 32);
  static_assert(offsetof(NumericAgg, sum) == 0 &&
                offsetof(NumericAgg, count) == 8 &&
                offsetof(NumericAgg, min) == 16 &&
                offsetof(NumericAgg, max) == 24);
#if defined(BW_CUBE_X86_DISPATCH)
  if (kCubeHasAvx512) return MergeAccRunAvx512(dst, src, n);
  if (kCubeHasAvx2) return MergeAccRunAvx2(dst, src, n);
#endif
  constexpr size_t kGroup = 4;
  size_t i = 0;
  for (; i + kGroup <= n; i += kGroup) {
    const NumericAgg* __restrict s = src + i;
    if ((s[0].count | s[1].count | s[2].count | s[3].count) == 0) continue;
    NumericAgg* __restrict d = dst + i;
    for (size_t j = 0; j < kGroup; ++j) {
      d[j].sum += s[j].sum;
      d[j].count += s[j].count;
      d[j].min = std::min(d[j].min, s[j].min);
      d[j].max = std::max(d[j].max, s[j].max);
    }
  }
  for (; i < n; ++i) {
    if (src[i].count != 0) dst[i].Merge(src[i]);
  }
}

/// Fan-in merge: folds `k` source runs into one destination run in a single
/// pass. The group of destination cells stays in registers/L1 across all k
/// sources instead of the destination slice being re-streamed from memory
/// once per source (the hierarchy rollup's children -> parent pattern).
/// Per-element summation order equals k successive MergeAccRun calls in
/// srcs order.
template <typename Acc>
inline void MergeAccRunFanIn(Acc* dst, const Acc* const* srcs, size_t k,
                             size_t n) {
  for (size_t j = 0; j < k; ++j) MergeAccRun(dst, srcs[j], n);
}

inline void MergeAccRunFanIn(NumericAgg* dst, const NumericAgg* const* srcs,
                             size_t k, size_t n) {
#if defined(BW_CUBE_X86_DISPATCH)
  if (kCubeHasAvx512) return MergeAccRunFanInAvx512(dst, srcs, k, n);
  if (kCubeHasAvx2) return MergeAccRunFanInAvx2(dst, srcs, k, n);
#endif
  constexpr size_t kGroup = 4;
  size_t i = 0;
  for (; i + kGroup <= n; i += kGroup) {
    NumericAgg* __restrict d = dst + i;
    for (size_t j = 0; j < k; ++j) {
      const NumericAgg* __restrict s = srcs[j] + i;
      if ((s[0].count | s[1].count | s[2].count | s[3].count) == 0) continue;
      for (size_t c = 0; c < kGroup; ++c) {
        d[c].sum += s[c].sum;
        d[c].count += s[c].count;
        d[c].min = std::min(d[c].min, s[c].min);
        d[c].max = std::max(d[c].max, s[c].max);
      }
    }
  }
  for (; i < n; ++i) {
    for (size_t j = 0; j < k; ++j) {
      if (srcs[j][i].count != 0) dst[i].Merge(srcs[j][i]);
    }
  }
}

}  // namespace detail

/// Maps external item ids to dense indices [0, size).
class ItemDictionary {
 public:
  /// Index of `id`, inserting it if new.
  int32_t GetOrAdd(int64_t id) {
    auto [it, inserted] = index_.emplace(id, ids_.size());
    if (inserted) ids_.push_back(id);
    return static_cast<int32_t>(it->second);
  }

  /// Index of `id`, or -1 if unknown.
  int32_t Find(int64_t id) const {
    auto it = index_.find(id);
    return it == index_.end() ? -1 : static_cast<int32_t>(it->second);
  }

  int64_t IdAt(int32_t index) const { return ids_[index]; }
  int32_t size() const { return static_cast<int32_t>(ids_.size()); }

 private:
  std::unordered_map<int64_t, size_t> index_;
  std::vector<int64_t> ids_;
};

/// A dense cube of accumulators over (candidate region, item) implementing
/// the CUBE operation of the rewritten feature queries (paper §4.2):
/// alpha_{Z, ID, f(A)} with the aggregate computed for *every* region, not
/// only the finest ones. Fill base cells from fact rows, then call Rollup()
/// once; afterwards Cell(r, i) holds the aggregate over all fact rows of
/// item i falling inside region r.
///
/// Rollup runs one in-place pass per dimension: child tree nodes merge into
/// their parents bottom-up (hierarchical dimensions), and window t merges
/// into window t+1 (incremental-interval dimensions). Both are exact because
/// the accumulators are distributive.
template <typename Acc>
class RegionItemCube {
 public:
  RegionItemCube(const RegionSpace* space, int32_t num_items)
      : space_(space),
        num_items_(num_items),
        cells_(static_cast<size_t>(space->NumRegions()) * num_items) {
    BW_CHECK(num_items >= 0);
    // Region-id strides, identical to RegionSpace's row-major layout.
    const size_t nd = space->num_dims();
    cards_.resize(nd);
    strides_.assign(nd, 1);
    for (size_t d = 0; d < nd; ++d) cards_[d] = DimensionCardinality(space->dim(d));
    for (size_t d = nd - 1; d-- > 0;) strides_[d] = strides_[d + 1] * cards_[d + 1];
  }

  int32_t num_items() const { return num_items_; }
  const RegionSpace& space() const { return *space_; }

  /// Cell for the *base* region of a fact point; use during the fill phase.
  Acc& BaseCell(const PointCoords& point, int32_t item) {
    return Cell(space_->Encode(space_->BaseCellOf(point)), item);
  }

  Acc& Cell(RegionId r, int32_t item) {
    BW_DCHECK(item >= 0 && item < num_items_);
    return cells_[static_cast<size_t>(r) * num_items_ + item];
  }
  const Acc& Cell(RegionId r, int32_t item) const {
    BW_DCHECK(item >= 0 && item < num_items_);
    return cells_[static_cast<size_t>(r) * num_items_ + item];
  }

  /// Performs the bottom-up CUBE rollup. Call exactly once, after all base
  /// cells are filled.
  void Rollup() {
    BW_CHECK(!rolled_up_);
    rolled_up_ = true;
    for (size_t d = 0; d < space_->num_dims(); ++d) {
      if (const auto* h =
              std::get_if<HierarchicalDimension>(&space_->dim(d))) {
        // Fan-in: all children of a node merge into it in one fused pass,
        // so the parent slice is read and written once instead of once per
        // child. Bottom-up order guarantees every child's subtree is
        // complete before the child is consumed as a source.
        for (NodeId n : h->NodesBottomUp()) {
          if (h->IsLeaf(n)) continue;
          MergeSliceFanIn(d, h->children(n), n);
        }
      } else {
        const auto& iv = std::get<IntervalDimension>(space_->dim(d));
        // Window-kind-specific merge schedule (prefix accumulation for
        // incremental windows; shorter-into-longer for sliding ones),
        // applied column-tile by column-tile so the window chain's tiles
        // stay cache-resident across the whole schedule. Merges are
        // element-wise, so tiling reorders work only across columns —
        // per-cell arithmetic order is identical to applying the schedule
        // slice by slice.
        MergeSlicesTiled(d, iv.RollupMerges());
      }
    }
  }

  bool rolled_up() const { return rolled_up_; }

 private:
  // Merges every cell whose dim-d coordinate is `from` into the cell with
  // coordinate `to` (all other coordinates and the item fixed). The regions
  // {hi + from*stride + lo : lo in [0, stride)} are consecutive region ids,
  // so in the row-major cells_ layout each hi block's slice is ONE
  // contiguous run of stride * num_items accumulators — merged flat
  // (vectorized for POD accumulators) instead of per-cell.
  void MergeSlice(size_t d, int32_t from, int32_t to) {
    const int64_t stride = strides_[d];               // in region units
    const int64_t block = stride * cards_[d];         // one full digit cycle
    const int64_t num_regions = space_->NumRegions();
    const size_t run = static_cast<size_t>(stride) * num_items_;
    for (int64_t hi = 0; hi < num_regions; hi += block) {
      const Acc* src =
          &cells_[static_cast<size_t>(hi + from * stride) * num_items_];
      Acc* dst = &cells_[static_cast<size_t>(hi + to * stride) * num_items_];
      detail::MergeAccRun(dst, src, run);
    }
  }

  // MergeSlice generalized to many sources: every `from` coordinate merges
  // into `to` in one fused pass (detail::MergeAccRunFanIn), srcs order
  // preserved.
  void MergeSliceFanIn(size_t d, const std::vector<int32_t>& from,
                       int32_t to) {
    if (from.empty()) return;
    const int64_t stride = strides_[d];
    const int64_t block = stride * cards_[d];
    const int64_t num_regions = space_->NumRegions();
    const size_t run = static_cast<size_t>(stride) * num_items_;
    std::vector<const Acc*> srcs(from.size());
    for (int64_t hi = 0; hi < num_regions; hi += block) {
      for (size_t k = 0; k < from.size(); ++k) {
        srcs[k] =
            &cells_[static_cast<size_t>(hi + from[k] * stride) * num_items_];
      }
      Acc* dst = &cells_[static_cast<size_t>(hi + to * stride) * num_items_];
      detail::MergeAccRunFanIn(dst, srcs.data(), srcs.size(), run);
    }
  }

  // Applies a (from, to) merge schedule column-tile by column-tile: a tile
  // of kTileCells accumulators is pushed through the *entire* schedule
  // before moving on, so a chain like the incremental-window prefix reuses
  // each freshly written tile from cache as the next merge's source
  // instead of re-streaming full slices from memory.
  void MergeSlicesTiled(
      size_t d, const std::vector<std::pair<int32_t, int32_t>>& merges) {
    constexpr size_t kTileCells = 4096;
    const int64_t stride = strides_[d];
    const int64_t block = stride * cards_[d];
    const int64_t num_regions = space_->NumRegions();
    const size_t run = static_cast<size_t>(stride) * num_items_;
    for (int64_t hi = 0; hi < num_regions; hi += block) {
      for (size_t off = 0; off < run; off += kTileCells) {
        const size_t len = std::min(kTileCells, run - off);
        for (const auto& [from, to] : merges) {
          const Acc* src =
              &cells_[static_cast<size_t>(hi + from * stride) * num_items_ +
                      off];
          Acc* dst =
              &cells_[static_cast<size_t>(hi + to * stride) * num_items_ +
                      off];
          detail::MergeAccRun(dst, src, len);
        }
      }
    }
  }

  const RegionSpace* space_;
  int32_t num_items_;
  std::vector<Acc> cells_;
  std::vector<int32_t> cards_;
  std::vector<int64_t> strides_;
  bool rolled_up_ = false;
};

}  // namespace bellwether::olap

#endif  // BELLWETHER_OLAP_CUBE_H_
