#ifndef BELLWETHER_OLAP_DIMENSION_H_
#define BELLWETHER_OLAP_DIMENSION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"

namespace bellwether::olap {

/// Node index within a hierarchical dimension.
using NodeId = int32_t;
constexpr NodeId kInvalidNode = -1;

/// A tree-structured dimension (paper §4.1, "hierarchical dimension"), e.g.
/// Location: All -> Country -> State. Values recorded in the fact table are
/// leaves; every tree node is a candidate region coordinate. Node 0 is the
/// root. Also used for the item hierarchies of bellwether cubes (§6.1).
class HierarchicalDimension {
 public:
  /// Creates a dimension containing only the root node.
  explicit HierarchicalDimension(std::string name, std::string root_label);

  /// Adds a child of `parent`; returns the new node id. Labels must be
  /// unique within the dimension (they name region coordinates).
  NodeId AddNode(const std::string& label, NodeId parent);

  const std::string& name() const { return name_; }
  int32_t num_nodes() const { return static_cast<int32_t>(labels_.size()); }
  NodeId root() const { return 0; }

  const std::string& label(NodeId n) const { return labels_[n]; }
  NodeId parent(NodeId n) const { return parents_[n]; }
  const std::vector<NodeId>& children(NodeId n) const { return children_[n]; }
  /// Depth of `n` (root = 0).
  int32_t depth(NodeId n) const { return depths_[n]; }
  bool IsLeaf(NodeId n) const { return children_[n].empty(); }

  /// All leaves, in insertion order.
  const std::vector<NodeId>& leaves() const;

  /// Leaves in the subtree rooted at `n`.
  std::vector<NodeId> LeavesUnder(NodeId n) const;

  /// Chain n, parent(n), ..., root.
  std::vector<NodeId> AncestorsOf(NodeId n) const;

  /// True if `node` lies in the subtree rooted at `ancestor` (inclusive).
  bool Contains(NodeId ancestor, NodeId node) const;

  /// Node with the given label.
  Result<NodeId> FindNode(const std::string& label) const;

  /// Nodes ordered by decreasing depth (children before parents); this is
  /// the processing order for bottom-up cube rollup.
  std::vector<NodeId> NodesBottomUp() const;

  /// Maximum depth over all nodes.
  int32_t max_depth() const;

 private:
  std::string name_;
  std::vector<std::string> labels_;
  std::vector<NodeId> parents_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<int32_t> depths_;
  mutable std::vector<NodeId> leaves_cache_;
  mutable bool leaves_dirty_ = true;
};

/// The window family of an interval dimension (paper §4.1: "Currently, we
/// only consider incremental intervals, but in general they can be defined
/// by different kinds of windows").
enum class WindowKind {
  /// Prefix windows [1..t], one per t — the paper's incremental intervals.
  kIncremental,
  /// All contiguous windows [s..e] with 1 <= s <= e <= max_time.
  kSliding,
};

/// An interval dimension: values recorded in the fact table are time points
/// 1..max_time; candidate coordinates are windows. Window ids are 0-based
/// and ordered by length then start, so ids 0..max_time-1 are always the
/// single-contribution base windows ([1..t] for incremental, [t..t] for
/// sliding) and the last id is the full window [1..max_time].
class IntervalDimension {
 public:
  IntervalDimension(std::string name, int32_t max_time,
                    WindowKind kind = WindowKind::kIncremental);

  const std::string& name() const { return name_; }
  int32_t max_time() const { return max_time_; }
  WindowKind kind() const { return kind_; }

  /// Number of candidate windows: max_time (incremental) or
  /// max_time*(max_time+1)/2 (sliding).
  int32_t num_windows() const;

  /// Inclusive 1-based [start, end] of the window with the given id.
  std::pair<int32_t, int32_t> WindowBounds(int32_t window_id) const;

  /// Id of the window [start..end]; returns -1 when the window is not a
  /// candidate of this kind (e.g. start != 1 for incremental).
  int32_t FindWindow(int32_t start, int32_t end) const;

  /// True if time point `t` falls inside the window with the given id.
  bool ContainsWindow(int32_t window_id, int32_t t) const;

  /// True if every point of window `inner` lies inside window `outer`.
  bool WindowContainsWindow(int32_t outer, int32_t inner) const;

  /// Invokes fn(id) for every window containing time point t, ascending id.
  void ForEachWindowContaining(int32_t t,
                               const std::function<void(int32_t)>& fn) const;

  /// The bottom-up cube rollup schedule: ordered (from_id, to_id) merges
  /// that extend the base windows (ids 0..max_time-1) to all windows. After
  /// applying them in order, a cell at id w aggregates exactly the time
  /// points of WindowBounds(w).
  std::vector<std::pair<int32_t, int32_t>> RollupMerges() const;

  /// True when window cost is non-decreasing in the window id (given
  /// non-negative cell costs) — enables the iceberg budget break. Holds for
  /// incremental windows; not for sliding ones.
  bool CostMonotoneByIndex() const {
    return kind_ == WindowKind::kIncremental;
  }

  /// "[s-e]".
  std::string WindowLabelById(int32_t window_id) const;

  /// Legacy incremental helper: true if t falls in [1..window_end].
  bool Contains(int32_t window_end, int32_t t) const {
    return t >= 1 && t <= window_end;
  }

 private:
  std::string name_;
  int32_t max_time_;
  WindowKind kind_;
};

/// A dimension of the fact-table region space: either hierarchical or an
/// incremental interval.
using Dimension = std::variant<HierarchicalDimension, IntervalDimension>;

/// Number of candidate coordinates of a dimension (tree nodes or windows).
int32_t DimensionCardinality(const Dimension& dim);

/// Name of a dimension.
const std::string& DimensionName(const Dimension& dim);

}  // namespace bellwether::olap

#endif  // BELLWETHER_OLAP_DIMENSION_H_
