#include "olap/region.h"

#include <algorithm>

#include "common/check.h"

namespace bellwether::olap {

RegionSpace::RegionSpace(std::vector<Dimension> dims)
    : dims_(std::move(dims)) {
  BW_CHECK(!dims_.empty());
  num_regions_ = 1;
  num_finest_cells_ = 1;
  cardinalities_.resize(dims_.size());
  finest_cardinalities_.resize(dims_.size());
  leaf_index_.resize(dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d) {
    cardinalities_[d] = DimensionCardinality(dims_[d]);
    if (const auto* h = std::get_if<HierarchicalDimension>(&dims_[d])) {
      const auto& leaves = h->leaves();
      finest_cardinalities_[d] = static_cast<int32_t>(leaves.size());
      leaf_index_[d].assign(h->num_nodes(), -1);
      for (size_t i = 0; i < leaves.size(); ++i) {
        leaf_index_[d][leaves[i]] = static_cast<int32_t>(i);
      }
    } else {
      finest_cardinalities_[d] =
          std::get<IntervalDimension>(dims_[d]).max_time();
    }
    num_regions_ *= cardinalities_[d];
    num_finest_cells_ *= finest_cardinalities_[d];
  }
  // Row-major strides.
  strides_.assign(dims_.size(), 1);
  finest_strides_.assign(dims_.size(), 1);
  for (size_t d = dims_.size() - 1; d-- > 0;) {
    strides_[d] = strides_[d + 1] * cardinalities_[d + 1];
    finest_strides_[d] = finest_strides_[d + 1] * finest_cardinalities_[d + 1];
  }
}

RegionId RegionSpace::Encode(const RegionCoords& coords) const {
  BW_DCHECK(coords.size() == dims_.size());
  RegionId id = 0;
  for (size_t d = 0; d < dims_.size(); ++d) {
    BW_DCHECK(coords[d] >= 0 && coords[d] < cardinalities_[d]);
    id += coords[d] * strides_[d];
  }
  return id;
}

RegionCoords RegionSpace::Decode(RegionId id) const {
  BW_DCHECK(id >= 0 && id < num_regions_);
  RegionCoords coords(dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d) {
    coords[d] = static_cast<int32_t>(id / strides_[d]);
    id %= strides_[d];
  }
  return coords;
}

std::string RegionSpace::RegionLabel(RegionId id) const {
  const RegionCoords coords = Decode(id);
  std::string out = "[";
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (d) out += ", ";
    if (const auto* h = std::get_if<HierarchicalDimension>(&dims_[d])) {
      out += h->label(coords[d]);
    } else {
      const auto& iv = std::get<IntervalDimension>(dims_[d]);
      const auto [start, end] = iv.WindowBounds(coords[d]);
      out += std::to_string(start) + "-" + std::to_string(end);
    }
  }
  out += "]";
  return out;
}

Result<RegionId> RegionSpace::FindRegion(
    const std::vector<std::string>& parts) const {
  if (parts.size() != dims_.size()) {
    return Status::InvalidArgument("region spec has wrong arity");
  }
  RegionCoords coords(dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (const auto* h = std::get_if<HierarchicalDimension>(&dims_[d])) {
      BW_ASSIGN_OR_RETURN(NodeId n, h->FindNode(parts[d]));
      coords[d] = n;
    } else {
      const auto& iv = std::get<IntervalDimension>(dims_[d]);
      // Accept "t" (meaning [1..t] / [t..t]) or "s-e".
      const std::string& spec = parts[d];
      const size_t dash = spec.rfind('-');
      int32_t start = 1;
      int32_t end = 0;
      if (dash == std::string::npos) {
        end = static_cast<int32_t>(std::atoi(spec.c_str()));
        if (iv.kind() == WindowKind::kSliding) start = end;
      } else {
        start = static_cast<int32_t>(std::atoi(spec.substr(0, dash).c_str()));
        end = static_cast<int32_t>(std::atoi(spec.substr(dash + 1).c_str()));
      }
      const int32_t id = iv.FindWindow(start, end);
      if (id < 0) {
        return Status::OutOfRange("no such window: " + parts[d]);
      }
      coords[d] = id;
    }
  }
  return Encode(coords);
}

bool RegionSpace::RegionContainsPoint(RegionId region,
                                      const PointCoords& point) const {
  BW_DCHECK(point.size() == dims_.size());
  const RegionCoords coords = Decode(region);
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (const auto* h = std::get_if<HierarchicalDimension>(&dims_[d])) {
      if (!h->Contains(coords[d], point[d])) return false;
    } else {
      const auto& iv = std::get<IntervalDimension>(dims_[d]);
      if (!iv.ContainsWindow(coords[d], point[d])) return false;
    }
  }
  return true;
}

bool RegionSpace::RegionContainsRegion(RegionId outer, RegionId inner) const {
  const RegionCoords co = Decode(outer);
  const RegionCoords ci = Decode(inner);
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (const auto* h = std::get_if<HierarchicalDimension>(&dims_[d])) {
      if (!h->Contains(co[d], ci[d])) return false;
    } else {
      const auto& iv = std::get<IntervalDimension>(dims_[d]);
      if (!iv.WindowContainsWindow(co[d], ci[d])) return false;
    }
  }
  return true;
}

void RegionSpace::ForEachContainingRegion(
    const PointCoords& point, const std::function<void(RegionId)>& fn) const {
  BW_DCHECK(point.size() == dims_.size());
  // Per-dimension candidate coordinates.
  std::vector<std::vector<int32_t>> choices(dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (const auto* h = std::get_if<HierarchicalDimension>(&dims_[d])) {
      for (NodeId a : h->AncestorsOf(point[d])) choices[d].push_back(a);
    } else {
      const auto& iv = std::get<IntervalDimension>(dims_[d]);
      iv.ForEachWindowContaining(
          point[d], [&](int32_t w) { choices[d].push_back(w); });
    }
  }
  // Odometer over the cross product.
  std::vector<size_t> pos(dims_.size(), 0);
  RegionCoords coords(dims_.size());
  for (;;) {
    for (size_t d = 0; d < dims_.size(); ++d) coords[d] = choices[d][pos[d]];
    fn(Encode(coords));
    size_t d = dims_.size();
    while (d-- > 0) {
      if (++pos[d] < choices[d].size()) break;
      pos[d] = 0;
      if (d == 0) return;
    }
  }
}

RegionCoords RegionSpace::BaseCellOf(const PointCoords& point) const {
  BW_DCHECK(point.size() == dims_.size());
  RegionCoords coords(dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (std::holds_alternative<HierarchicalDimension>(dims_[d])) {
      coords[d] = point[d];  // the leaf node itself
    } else {
      coords[d] = point[d] - 1;  // window ending exactly at t
    }
  }
  return coords;
}

int64_t RegionSpace::FinestCellOf(const PointCoords& point) const {
  int64_t id = 0;
  for (size_t d = 0; d < dims_.size(); ++d) {
    int32_t idx;
    if (std::holds_alternative<HierarchicalDimension>(dims_[d])) {
      idx = leaf_index_[d][point[d]];
      BW_DCHECK(idx >= 0);
    } else {
      idx = point[d] - 1;
    }
    id += idx * finest_strides_[d];
  }
  return id;
}

std::vector<int64_t> RegionSpace::FinestCellsIn(RegionId region) const {
  const RegionCoords coords = Decode(region);
  std::vector<std::vector<int32_t>> choices(dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (const auto* h = std::get_if<HierarchicalDimension>(&dims_[d])) {
      for (NodeId leaf : h->LeavesUnder(coords[d])) {
        choices[d].push_back(leaf_index_[d][leaf]);
      }
    } else {
      const auto& iv = std::get<IntervalDimension>(dims_[d]);
      const auto [start, end] = iv.WindowBounds(coords[d]);
      for (int32_t t = start; t <= end; ++t) choices[d].push_back(t - 1);
    }
  }
  std::vector<int64_t> out;
  std::vector<size_t> pos(dims_.size(), 0);
  for (;;) {
    int64_t id = 0;
    for (size_t d = 0; d < dims_.size(); ++d) {
      id += choices[d][pos[d]] * finest_strides_[d];
    }
    out.push_back(id);
    size_t d = dims_.size();
    bool done = true;
    while (d-- > 0) {
      if (++pos[d] < choices[d].size()) {
        done = false;
        break;
      }
      pos[d] = 0;
    }
    if (done) break;
  }
  return out;
}

RegionId RegionSpace::FullRegion() const {
  RegionCoords coords(dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (std::holds_alternative<HierarchicalDimension>(dims_[d])) {
      coords[d] = 0;  // root
    } else {
      coords[d] = cardinalities_[d] - 1;  // longest window
    }
  }
  return Encode(coords);
}

}  // namespace bellwether::olap
