#include "olap/cost.h"

#include "olap/cube.h"

namespace bellwether::olap {

Result<CostModel> CostModel::Create(const RegionSpace* space,
                                    std::vector<double> finest_cell_costs) {
  if (static_cast<int64_t>(finest_cell_costs.size()) !=
      space->NumFinestCells()) {
    return Status::InvalidArgument(
        "cost table must have one entry per finest cell");
  }
  for (double c : finest_cell_costs) {
    if (c < 0.0) {
      return Status::InvalidArgument("finest-cell costs must be >= 0");
    }
  }
  // Aggregate the cost of every region with one cube rollup: base cells of
  // the region space are exactly the finest cells, so we reuse the same
  // bottom-up machinery with a single pseudo-item.
  RegionItemCube<NumericAgg> cube(space, /*num_items=*/1);
  // Map finest-cell ids back to base-region coordinates by enumerating the
  // finest cells of the full region (which covers everything).
  const std::vector<int64_t> all_cells = space->FinestCellsIn(space->FullRegion());
  // FinestCellsIn enumerates the full cross product; we need the base-region
  // coordinates of each. Rebuild them from per-dimension leaf/time lists.
  // Simpler: walk every base region and map it to its finest cell id.
  (void)all_cells;
  const size_t nd = space->num_dims();
  std::vector<std::vector<int32_t>> base_choices(nd);   // region coords
  std::vector<std::vector<int32_t>> point_choices(nd);  // fact-point coords
  for (size_t d = 0; d < nd; ++d) {
    if (const auto* h = std::get_if<HierarchicalDimension>(&space->dim(d))) {
      for (NodeId leaf : h->leaves()) {
        base_choices[d].push_back(leaf);
        point_choices[d].push_back(leaf);
      }
    } else {
      const auto& iv = std::get<IntervalDimension>(space->dim(d));
      for (int32_t t = 1; t <= iv.max_time(); ++t) {
        base_choices[d].push_back(t - 1);
        point_choices[d].push_back(t);
      }
    }
  }
  std::vector<size_t> pos(nd, 0);
  RegionCoords coords(nd);
  PointCoords point(nd);
  for (;;) {
    for (size_t d = 0; d < nd; ++d) {
      coords[d] = base_choices[d][pos[d]];
      point[d] = point_choices[d][pos[d]];
    }
    const int64_t cell = space->FinestCellOf(point);
    cube.Cell(space->Encode(coords), 0).Add(finest_cell_costs[cell]);
    size_t d = nd;
    bool done = true;
    while (d-- > 0) {
      if (++pos[d] < base_choices[d].size()) {
        done = false;
        break;
      }
      pos[d] = 0;
    }
    if (done) break;
  }
  cube.Rollup();
  std::vector<double> region_costs(space->NumRegions());
  for (RegionId r = 0; r < space->NumRegions(); ++r) {
    region_costs[r] = cube.Cell(r, 0).sum;
  }
  return CostModel(space, std::move(finest_cell_costs),
                   std::move(region_costs));
}

}  // namespace bellwether::olap
