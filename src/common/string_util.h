#ifndef BELLWETHER_COMMON_STRING_UTIL_H_
#define BELLWETHER_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace bellwether {

/// Splits `s` on `delim`; empty fields are preserved ("a,,b" -> 3 fields).
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Joins `parts` with `delim` between elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Formats a double compactly for table output (up to 6 significant digits,
/// no trailing zeros).
std::string FormatDouble(double v);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace bellwether

#endif  // BELLWETHER_COMMON_STRING_UTIL_H_
