#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace bellwether {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  BW_CHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  BW_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  cached_gaussian_ = mag * std::sin(two_pi * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace bellwether
