#ifndef BELLWETHER_COMMON_STOPWATCH_H_
#define BELLWETHER_COMMON_STOPWATCH_H_

#include <chrono>

namespace bellwether {

/// Wall-clock stopwatch with accumulated-time semantics, used by the
/// benchmark harnesses and the observability layer. Starts running on
/// construction; Pause()/Resume() let multi-phase loops exclude setup work
/// from the measured time.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Discards accumulated time and restarts the running segment at now.
  void Restart() {
    accumulated_ = Duration::zero();
    running_ = true;
    start_ = Clock::now();
  }

  /// Stops the clock, banking the current segment. No-op when paused.
  void Pause() {
    if (!running_) return;
    accumulated_ += Clock::now() - start_;
    running_ = false;
  }

  /// Restarts the clock after a Pause(). No-op when already running.
  void Resume() {
    if (running_) return;
    running_ = true;
    start_ = Clock::now();
  }

  bool running() const { return running_; }

  /// Seconds accumulated across all running segments, including the
  /// currently running one.
  double ElapsedSeconds() const {
    Duration total = accumulated_;
    if (running_) total += Clock::now() - start_;
    return std::chrono::duration<double>(total).count();
  }

  /// Milliseconds; see ElapsedSeconds().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  using Duration = Clock::duration;
  Clock::time_point start_;
  Duration accumulated_ = Duration::zero();
  bool running_ = true;
};

}  // namespace bellwether

#endif  // BELLWETHER_COMMON_STOPWATCH_H_
