#ifndef BELLWETHER_COMMON_CHECK_H_
#define BELLWETHER_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace bellwether::internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  // Flush both streams so the diagnostic survives the abort even when stderr
  // is redirected to a fully-buffered file (death tests, batch jobs).
  std::fprintf(stderr, "BW_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::fflush(stdout);
  std::abort();
}

[[noreturn]] inline void CheckOkFailed(const char* file, int line,
                                       const char* expr,
                                       const char* status_text) {
  std::fprintf(stderr, "BW_CHECK_OK failed at %s:%d: %s -> %s\n", file, line,
               expr, status_text);
  std::fflush(stderr);
  std::fflush(stdout);
  std::abort();
}

}  // namespace bellwether::internal_check

/// Invariant check, enabled in all build modes. Use for programmer errors
/// (violated preconditions inside the library), not for user-input validation
/// — user input errors must be reported through Status.
#define BW_CHECK(expr)                                                     \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::bellwether::internal_check::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                      \
  } while (false)

/// Aborts with the status message when a Status-returning expression is not
/// OK. For call sites where failure is a programmer error, not a runtime
/// condition (tools, tests, examples).
#define BW_CHECK_OK(expr)                                              \
  do {                                                                 \
    const auto& bw_check_ok_status = (expr);                           \
    if (!bw_check_ok_status.ok()) {                                    \
      ::bellwether::internal_check::CheckOkFailed(                     \
          __FILE__, __LINE__, #expr,                                   \
          bw_check_ok_status.ToString().c_str());                      \
    }                                                                  \
  } while (false)

/// Debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define BW_DCHECK(expr) \
  do {                  \
  } while (false)
#else
#define BW_DCHECK(expr) BW_CHECK(expr)
#endif

#endif  // BELLWETHER_COMMON_CHECK_H_
