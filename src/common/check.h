#ifndef BELLWETHER_COMMON_CHECK_H_
#define BELLWETHER_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace bellwether::internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "BW_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace bellwether::internal_check

/// Invariant check, enabled in all build modes. Use for programmer errors
/// (violated preconditions inside the library), not for user-input validation
/// — user input errors must be reported through Status.
#define BW_CHECK(expr)                                                     \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::bellwether::internal_check::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                      \
  } while (false)

/// Debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define BW_DCHECK(expr) \
  do {                  \
  } while (false)
#else
#define BW_DCHECK(expr) BW_CHECK(expr)
#endif

#endif  // BELLWETHER_COMMON_CHECK_H_
