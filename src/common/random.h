#ifndef BELLWETHER_COMMON_RANDOM_H_
#define BELLWETHER_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bellwether {

/// Deterministic pseudo-random generator (xoshiro256**). All experiments,
/// cross-validation fold assignments, and synthetic data generators draw from
/// this class so results reproduce bit-for-bit for a fixed seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Bernoulli with probability p of returning true.
  bool NextBool(double p = 0.5);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextUint64(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// A derived generator with an independent stream; used to give each
  /// component (fold assignment, noise, ...) its own substream.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace bellwether

#endif  // BELLWETHER_COMMON_RANDOM_H_
