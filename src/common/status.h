#ifndef BELLWETHER_COMMON_STATUS_H_
#define BELLWETHER_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace bellwether {

/// Error categories used across the library. The library does not use C++
/// exceptions; every fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kNumericError,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after
/// arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT: implicit
  /// Implicit construction from a non-OK status.
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT: implicit

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Status of the result; OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Precondition: ok(). Accessing the value of an error result aborts.
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status from an expression.
#define BW_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::bellwether::Status _bw_st = (expr);        \
    if (!_bw_st.ok()) return _bw_st;             \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define BW_ASSIGN_OR_RETURN(lhs, rexpr)          \
  BW_ASSIGN_OR_RETURN_IMPL_(                     \
      BW_CONCAT_(_bw_result_, __LINE__), lhs, rexpr)

#define BW_CONCAT_INNER_(x, y) x##y
#define BW_CONCAT_(x, y) BW_CONCAT_INNER_(x, y)
#define BW_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                              \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

}  // namespace bellwether

#endif  // BELLWETHER_COMMON_STATUS_H_
