#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace bellwether {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace bellwether
