#include "storage/training_data_sink.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/arena.h"

namespace bellwether::storage {

namespace {

obs::Gauge* PeakResidentGauge() {
  static obs::Gauge* g =
      obs::DefaultMetrics().GetGauge(obs::kMDatagenPeakResidentBytes);
  return g;
}

}  // namespace

void TrainingDataSink::NoteAppend(const RegionTrainingSet& set,
                                  size_t resident_bytes) {
  if (!ordering_violated_ && static_cast<int64_t>(set.region) <= last_region_ &&
      sets_appended_ > 0) {
    ordering_violated_ = true;
    ordering_error_ = "region " + std::to_string(set.region) +
                      " appended after region " + std::to_string(last_region_);
  }
  last_region_ = static_cast<int64_t>(set.region);
  ++sets_appended_;
  PeakResidentGauge()->SetMax(static_cast<double>(resident_bytes));
}

Status TrainingDataSink::CheckOrdering() const {
  if (ordering_violated_) {
    return Status::FailedPrecondition(
        "training sets not in ascending RegionId order: " + ordering_error_);
  }
  return Status::OK();
}

Status MemorySink::Append(RegionTrainingSet&& set) {
  NoteAppend(set, resident_bytes_ + set.ByteSize());
  resident_bytes_ += set.ByteSize();
  sets_.push_back(std::move(set));
  return Status::OK();
}

Result<std::unique_ptr<TrainingDataSource>> MemorySink::Finish() {
  BW_RETURN_IF_ERROR(CheckOrdering());
  resident_bytes_ = 0;
  return std::unique_ptr<TrainingDataSource>(
      std::make_unique<MemoryTrainingData>(std::move(sets_)));
}

Result<std::unique_ptr<SpillSink>> SpillSink::Create(const std::string& path) {
  BW_ASSIGN_OR_RETURN(auto writer, SpillFileWriter::Create(path));
  return std::unique_ptr<SpillSink>(new SpillSink(path, std::move(writer)));
}

Status SpillSink::Append(RegionTrainingSet&& set) {
  NoteAppend(set, set.ByteSize());
  const Status st = writer_->Append(set);
  // The set is on disk (or the sink failed); its buffers go back to the
  // arena so the producer's next BuildRegionSet reuses them.
  RegionSetArena::Default().Release(std::move(set));
  return st;
}

Result<std::unique_ptr<TrainingDataSource>> SpillSink::Finish() {
  BW_RETURN_IF_ERROR(CheckOrdering());
  BW_CHECK(writer_ != nullptr);
  BW_RETURN_IF_ERROR(writer_->Finish());
  writer_.reset();
  BW_ASSIGN_OR_RETURN(auto source, SpilledTrainingData::Open(path_));
  return std::unique_ptr<TrainingDataSource>(std::move(source));
}

BudgetedSink::BudgetedSink(size_t memory_budget_bytes, std::string spill_path)
    : memory_budget_bytes_(memory_budget_bytes),
      spill_path_(std::move(spill_path)) {}

// On any migration error the sink is dead; the buffered shells still go
// back to the arena so producer-side Acquire/Release traffic balances on
// failure paths too (the shells would otherwise be freed when the
// abandoned sink is destroyed, silently draining the pool).
void BudgetedSink::ReleaseBuffered() {
  for (auto& set : buffered_) {
    RegionSetArena::Default().Release(std::move(set));
  }
  buffered_.clear();
  buffered_.shrink_to_fit();
  resident_bytes_ = 0;
}

Status BudgetedSink::MigrateToSpill() {
  obs::TraceSpan span("BudgetedSink::MigrateToSpill", "storage");
  auto writer = SpillFileWriter::Create(spill_path_);
  if (!writer.ok()) {
    ReleaseBuffered();
    return writer.status();
  }
  writer_ = std::move(writer).value();
  spilled_ = true;
  for (auto& set : buffered_) {
    const Status st = writer_->Append(set);
    if (!st.ok()) {
      ReleaseBuffered();
      return st;
    }
    // Release each set as soon as it is on disk, so the resident footprint
    // shrinks monotonically during the migration instead of doubling.
    RegionSetArena::Default().Release(std::move(set));
  }
  buffered_.clear();
  buffered_.shrink_to_fit();
  resident_bytes_ = 0;
  return Status::OK();
}

Status BudgetedSink::Append(RegionTrainingSet&& set) {
  const size_t incoming = set.ByteSize();
  NoteAppend(set, resident_bytes_ + incoming);
  if (writer_ == nullptr &&
      resident_bytes_ + incoming <= memory_budget_bytes_) {
    resident_bytes_ += incoming;
    buffered_.push_back(std::move(set));
    return Status::OK();
  }
  if (writer_ == nullptr) {
    const Status st = MigrateToSpill();
    if (!st.ok()) {
      // The incoming set dies with the failed sink; its shell still goes
      // back to the arena like on the success path.
      RegionSetArena::Default().Release(std::move(set));
      return st;
    }
  }
  const Status st = writer_->Append(set);
  RegionSetArena::Default().Release(std::move(set));
  return st;
}

Result<std::unique_ptr<TrainingDataSource>> BudgetedSink::Finish() {
  BW_RETURN_IF_ERROR(CheckOrdering());
  if (writer_ == nullptr) {
    resident_bytes_ = 0;
    return std::unique_ptr<TrainingDataSource>(
        std::make_unique<MemoryTrainingData>(std::move(buffered_)));
  }
  BW_RETURN_IF_ERROR(writer_->Finish());
  writer_.reset();
  BW_ASSIGN_OR_RETURN(auto source, SpilledTrainingData::Open(spill_path_));
  return std::unique_ptr<TrainingDataSource>(std::move(source));
}

}  // namespace bellwether::storage
