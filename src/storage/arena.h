#ifndef BELLWETHER_STORAGE_ARENA_H_
#define BELLWETHER_STORAGE_ARENA_H_

#include <cstddef>
#include <mutex>
#include <vector>

#include "storage/training_data.h"

namespace bellwether::storage {

/// A freelist of RegionTrainingSet shells that recycles their vector
/// buffers across the datagen emit loop. Streaming generation builds one
/// RegionTrainingSet per feasible region and the spill sinks drop it right
/// after writing it to disk, so without reuse every region pays four heap
/// allocations (items/features/targets/weights) that the very next region
/// re-requests at roughly the same size — the malloc churn the per-phase
/// allocation tracker attributes to EmitRegionSets. Acquire() hands out a
/// cleared shell whose buffers keep their capacity; Release() returns a
/// shell to the pool.
///
/// Thread-safe: producers Acquire() on pool workers while the scan thread
/// Release()s behind the in-order reducer. The pool is bounded; releases
/// beyond the bound simply free the shell. Traffic is mirrored to the
/// bellwether_storage_arena_* counters so the reuse rate is observable.
class RegionSetArena {
 public:
  /// Process-wide arena shared by datagen producers and sinks.
  static RegionSetArena& Default();

  explicit RegionSetArena(size_t max_pooled = 256)
      : max_pooled_(max_pooled) {}

  /// A recycled shell (empty, capacity retained) or a fresh one.
  RegionTrainingSet Acquire();

  /// Returns a shell's buffers to the pool for reuse. The set's contents
  /// are discarded; only the vector capacities survive.
  void Release(RegionTrainingSet&& set);

  /// Shells currently pooled (tests/diagnostics).
  size_t pooled() const;

 private:
  const size_t max_pooled_;
  mutable std::mutex mu_;
  std::vector<RegionTrainingSet> free_;
};

}  // namespace bellwether::storage

#endif  // BELLWETHER_STORAGE_ARENA_H_
