#ifndef BELLWETHER_STORAGE_RETRYING_SOURCE_H_
#define BELLWETHER_STORAGE_RETRYING_SOURCE_H_

#include <cstdint>
#include <functional>

#include "common/random.h"
#include "storage/training_data.h"

namespace bellwether::storage {

/// Backoff/retry tuning for RetryingTrainingDataSource. Defaults are sized
/// for the transient blips a local spill file or network volume produces;
/// see docs/ROBUSTNESS.md for guidance on tuning them.
struct RetryPolicy {
  /// Retries per operation after the initial attempt; kIoError only.
  int max_retries = 3;
  /// First backoff; each further retry multiplies by `multiplier` and is
  /// capped at `max_backoff_micros`.
  int64_t initial_backoff_micros = 1000;
  double multiplier = 2.0;
  int64_t max_backoff_micros = 100000;
  /// Fractional jitter: each sleep is scaled by a deterministic uniform
  /// factor in [1 - jitter, 1 + jitter], decorrelating concurrent retriers.
  double jitter = 0.1;
  uint64_t seed = 0x42574A4954ULL;
  /// Injectable clock for tests. Defaults to a real sleep when null.
  std::function<void(int64_t micros)> sleep_fn;
};

/// Per-wrapper retry accounting (also mirrored into the metrics registry as
/// bellwether_storage_retries_total / bellwether_storage_retry_exhausted_total).
struct RetryStats {
  int64_t retries = 0;      // transient failures that were retried
  int64_t exhaustions = 0;  // operations failed after the final retry
};

/// Decorator that makes any TrainingDataSource resilient to transient
/// kIoError failures using bounded exponential backoff with jitter.
///
/// Scan() restarts the inner scan after a transient failure but *skips the
/// records already delivered*, so the consumer's callback sees every record
/// exactly once, in order, regardless of how many physical re-scans were
/// needed. The wrapper keeps its own IoStats in which a retried Scan still
/// counts as ONE sequential scan — the Lemma 1/2 scan-count telemetry is a
/// statement about logical passes the algorithm requested, and remains
/// testable at this layer while the inner source's IoStats expose the
/// physical re-reads.
///
/// Errors returned by the consumer callback itself are never retried; they
/// propagate immediately, as without the wrapper.
class RetryingTrainingDataSource final : public TrainingDataSource {
 public:
  /// Does not take ownership of `inner`, which must outlive the wrapper.
  explicit RetryingTrainingDataSource(TrainingDataSource* inner,
                                      RetryPolicy policy = {});

  size_t num_region_sets() const override {
    return inner_->num_region_sets();
  }
  Status Scan(
      const std::function<Status(const RegionTrainingSet&)>& fn) override;
  Result<RegionTrainingSet> Read(size_t index) override;
  std::vector<olap::RegionId> RegionIds() override;

  const RetryStats& retry_stats() const { return retry_stats_; }
  TrainingDataSource* inner() { return inner_; }

 private:
  /// Sleeps for the attempt-th backoff interval (attempt >= 1).
  void Backoff(int attempt);

  TrainingDataSource* inner_;
  RetryPolicy policy_;
  RetryStats retry_stats_;
  Rng rng_;
};

}  // namespace bellwether::storage

#endif  // BELLWETHER_STORAGE_RETRYING_SOURCE_H_
