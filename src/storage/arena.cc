#include "storage/arena.h"

#include <utility>

#include "obs/metrics.h"

namespace bellwether::storage {

RegionSetArena& RegionSetArena::Default() {
  static RegionSetArena* arena = new RegionSetArena();
  return *arena;
}

RegionTrainingSet RegionSetArena::Acquire() {
  obs::DefaultMetrics().GetCounter(obs::kMArenaAcquires)->Increment();
  RegionTrainingSet set;
  bool reused = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      set = std::move(free_.back());
      free_.pop_back();
      reused = true;
    }
  }
  if (reused) {
    obs::DefaultMetrics().GetCounter(obs::kMArenaReuses)->Increment();
  }
  return set;
}

void RegionSetArena::Release(RegionTrainingSet&& set) {
  obs::DefaultMetrics().GetCounter(obs::kMArenaReleases)->Increment();
  set.region = olap::kInvalidRegion;
  set.num_features = 0;
  set.items.clear();
  set.features.clear();
  set.targets.clear();
  set.weights.clear();
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.size() >= max_pooled_) return;  // beyond the bound: just free
  free_.push_back(std::move(set));
}

size_t RegionSetArena::pooled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

}  // namespace bellwether::storage
