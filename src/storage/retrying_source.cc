#include "storage/retrying_source.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/logger.h"
#include "obs/metrics.h"

namespace bellwether::storage {

namespace {

struct RetryMetrics {
  obs::Counter* retries;
  obs::Counter* exhausted;
};

const RetryMetrics& Metrics() {
  static const RetryMetrics m{
      obs::DefaultMetrics().GetCounter(obs::kMStorageRetries),
      obs::DefaultMetrics().GetCounter(obs::kMStorageRetryExhausted)};
  return m;
}

}  // namespace

RetryingTrainingDataSource::RetryingTrainingDataSource(
    TrainingDataSource* inner, RetryPolicy policy)
    : inner_(inner), policy_(std::move(policy)), rng_(policy_.seed) {}

void RetryingTrainingDataSource::Backoff(int attempt) {
  double micros = static_cast<double>(policy_.initial_backoff_micros);
  for (int i = 1; i < attempt; ++i) micros *= policy_.multiplier;
  micros = std::min(micros, static_cast<double>(policy_.max_backoff_micros));
  if (policy_.jitter > 0.0) {
    micros *= rng_.NextDouble(1.0 - policy_.jitter, 1.0 + policy_.jitter);
  }
  const auto sleep_micros = static_cast<int64_t>(micros);
  if (policy_.sleep_fn) {
    policy_.sleep_fn(sleep_micros);
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_micros));
  }
}

Status RetryingTrainingDataSource::Scan(
    const std::function<Status(const RegionTrainingSet&)>& fn) {
  // One *logical* scan regardless of physical re-attempts; see class comment.
  ++io_stats_.sequential_scans;
  size_t delivered = 0;
  bool callback_error = false;
  int attempt = 0;
  for (;;) {
    size_t pos = 0;
    const Status st = inner_->Scan([&](const RegionTrainingSet& s) -> Status {
      // On a re-attempt, fast-forward past records the consumer already saw
      // so it observes an exactly-once, in-order stream.
      if (pos++ < delivered) return Status::OK();
      const Status cb = fn(s);
      if (!cb.ok()) {
        callback_error = true;
        return cb;
      }
      ++delivered;
      ++io_stats_.region_reads;
      io_stats_.bytes_read += static_cast<int64_t>(s.ByteSize());
      return Status::OK();
    });
    if (st.ok() || callback_error) return st;
    if (st.code() != StatusCode::kIoError) return st;
    if (attempt >= policy_.max_retries) {
      ++retry_stats_.exhaustions;
      Metrics().exhausted->Increment();
      BW_LOG(obs::LogLevel::kWarn, "storage.retry")
          << "scan failed after " << policy_.max_retries
                   << " retries: " << st.ToString();
      return st;
    }
    ++attempt;
    ++retry_stats_.retries;
    Metrics().retries->Increment();
    BW_LOG(obs::LogLevel::kInfo, "storage.retry")
        << "transient scan failure (attempt " << attempt << "/"
                 << policy_.max_retries << "), retrying: " << st.ToString();
    Backoff(attempt);
  }
}

Result<RegionTrainingSet> RetryingTrainingDataSource::Read(size_t index) {
  int attempt = 0;
  for (;;) {
    Result<RegionTrainingSet> r = inner_->Read(index);
    if (r.ok()) {
      ++io_stats_.region_reads;
      io_stats_.bytes_read += static_cast<int64_t>(r.value().ByteSize());
      return r;
    }
    if (r.status().code() != StatusCode::kIoError) return r;
    if (attempt >= policy_.max_retries) {
      ++retry_stats_.exhaustions;
      Metrics().exhausted->Increment();
      BW_LOG(obs::LogLevel::kWarn, "storage.retry")
          << "read of region set " << index << " failed after "
                   << policy_.max_retries
                   << " retries: " << r.status().ToString();
      return r;
    }
    ++attempt;
    ++retry_stats_.retries;
    Metrics().retries->Increment();
    Backoff(attempt);
  }
}

std::vector<olap::RegionId> RetryingTrainingDataSource::RegionIds() {
  return inner_->RegionIds();
}

}  // namespace bellwether::storage
