#include "storage/training_data.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"

namespace bellwether::storage {

namespace {

constexpr uint64_t kMagic = 0x42574C5350494C31ULL;  // "BWLSPIL1"

// Registry counters mirrored alongside the per-source IoStats; resolved
// once and cached (registry pointers are stable).
struct StorageMetrics {
  obs::Counter* scans;
  obs::Counter* reads;
  obs::Counter* rows;
  obs::Counter* bytes;
};

const StorageMetrics& Metrics() {
  static const StorageMetrics m{
      obs::DefaultMetrics().GetCounter(obs::kMStorageScans),
      obs::DefaultMetrics().GetCounter(obs::kMStorageRegionReads),
      obs::DefaultMetrics().GetCounter(obs::kMStorageRowsScanned),
      obs::DefaultMetrics().GetCounter(obs::kMStorageBytesRead)};
  return m;
}

Status WriteRaw(std::FILE* f, const void* data, size_t bytes) {
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    return Status::IoError(std::string("spill write failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status ReadRaw(std::FILE* f, void* data, size_t bytes) {
  if (std::fread(data, 1, bytes, f) != bytes) {
    return Status::IoError("spill read failed (truncated file?)");
  }
  return Status::OK();
}

template <typename T>
Status WritePod(std::FILE* f, const T& v) {
  return WriteRaw(f, &v, sizeof(T));
}

template <typename T>
Status ReadPod(std::FILE* f, T* v) {
  return ReadRaw(f, v, sizeof(T));
}

// Models the device wait as blocked time, not CPU time: a real disk read
// parks the thread off-CPU, so a spin loop here would both distort CPU
// profiles (ITIMER_PROF samples the spin, not the kernels) and steal cores
// from compute threads in the parallel-scaling benchmarks. Absolute
// deadline so EINTR retries do not accumulate drift.
void SimulatedDeviceWaitMicros(int64_t micros) {
  if (micros <= 0) return;
  timespec deadline;
  clock_gettime(CLOCK_MONOTONIC, &deadline);
  deadline.tv_sec += micros / 1000000;
  deadline.tv_nsec += (micros % 1000000) * 1000;
  if (deadline.tv_nsec >= 1000000000L) {
    deadline.tv_nsec -= 1000000000L;
    ++deadline.tv_sec;
  }
  while (clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &deadline,
                         nullptr) == EINTR) {
  }
}

}  // namespace

size_t RegionTrainingSet::ByteSize() const {
  // Exactly the serialized spill-record size (header: region int64,
  // num_features int32, count int64, has_weights uint8 — then the items,
  // features, targets, and optional weights arrays). BudgetedSink's memory
  // budget and the IoStats byte counters both rely on this matching what
  // SpillFileWriter::Append actually writes.
  constexpr size_t kHeaderBytes =
      sizeof(int64_t) + sizeof(int32_t) + sizeof(int64_t) + sizeof(uint8_t);
  return kHeaderBytes + items.size() * sizeof(int32_t) +
         features.size() * sizeof(double) + targets.size() * sizeof(double) +
         weights.size() * sizeof(double);
}

MemoryTrainingData::MemoryTrainingData(std::vector<RegionTrainingSet> sets)
    : sets_(std::move(sets)) {}

Status MemoryTrainingData::Scan(
    const std::function<Status(const RegionTrainingSet&)>& fn) {
  obs::TraceSpan span("MemoryTrainingData::Scan", "storage");
  ++io_stats_.sequential_scans;
  Metrics().scans->Increment();
  for (const auto& s : sets_) {
    BW_RETURN_IF_ERROR(robust::MaybeInjectIo(robust::kFaultStorageScan));
    ++io_stats_.region_reads;
    io_stats_.bytes_read += static_cast<int64_t>(s.ByteSize());
    Metrics().reads->Increment();
    Metrics().rows->Increment(static_cast<int64_t>(s.num_examples()));
    Metrics().bytes->Increment(static_cast<int64_t>(s.ByteSize()));
    BW_RETURN_IF_ERROR(fn(s));
  }
  return Status::OK();
}

Result<RegionTrainingSet> MemoryTrainingData::Read(size_t index) {
  if (index >= sets_.size()) {
    return Status::OutOfRange("region set index out of range");
  }
  // The copy below is intentional: Read() models the paper's "read the
  // training data of one region from storage" random access, so callers own
  // (and may mutate) the returned set while sets_ stays canonical. In-place
  // iteration goes through Scan().
  BW_RETURN_IF_ERROR(robust::MaybeInjectIo(robust::kFaultStorageRead));
  ++io_stats_.region_reads;
  io_stats_.bytes_read += static_cast<int64_t>(sets_[index].ByteSize());
  Metrics().reads->Increment();
  Metrics().rows->Increment(
      static_cast<int64_t>(sets_[index].num_examples()));
  Metrics().bytes->Increment(static_cast<int64_t>(sets_[index].ByteSize()));
  return sets_[index];
}

std::vector<olap::RegionId> MemoryTrainingData::RegionIds() {
  std::vector<olap::RegionId> out;
  out.reserve(sets_.size());
  for (const auto& s : sets_) out.push_back(s.region);
  return out;
}

Result<std::unique_ptr<SpillFileWriter>> SpillFileWriter::Create(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create spill file " + path + ": " +
                           std::strerror(errno));
  }
  auto writer = std::unique_ptr<SpillFileWriter>(
      new SpillFileWriter(path, f));
  BW_RETURN_IF_ERROR(WritePod(f, kMagic));
  return writer;
}

SpillFileWriter::~SpillFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SpillFileWriter::Append(const RegionTrainingSet& set) {
  // Injected write failure, before any bytes land: sinks must release the
  // set's buffers to the arena on this path like on the success path.
  BW_RETURN_IF_ERROR(robust::MaybeInjectIo(robust::kFaultStorageSpill));
  BW_CHECK(!finished_);
  BW_CHECK(set.targets.size() == set.items.size());
  BW_CHECK(set.features.size() ==
           set.items.size() * static_cast<size_t>(set.num_features));
  BW_CHECK(set.weights.empty() || set.weights.size() == set.items.size());
  offsets_.push_back(std::ftell(file_));
  region_ids_.push_back(set.region);
  BW_RETURN_IF_ERROR(WritePod(file_, static_cast<int64_t>(set.region)));
  BW_RETURN_IF_ERROR(WritePod(file_, set.num_features));
  BW_RETURN_IF_ERROR(WritePod(file_, static_cast<int64_t>(set.items.size())));
  const uint8_t has_weights = set.weighted() ? 1 : 0;
  BW_RETURN_IF_ERROR(WritePod(file_, has_weights));
  BW_RETURN_IF_ERROR(WriteRaw(file_, set.items.data(),
                              set.items.size() * sizeof(int32_t)));
  BW_RETURN_IF_ERROR(WriteRaw(file_, set.features.data(),
                              set.features.size() * sizeof(double)));
  BW_RETURN_IF_ERROR(WriteRaw(file_, set.targets.data(),
                              set.targets.size() * sizeof(double)));
  if (has_weights) {
    BW_RETURN_IF_ERROR(WriteRaw(file_, set.weights.data(),
                                set.weights.size() * sizeof(double)));
  }
  return Status::OK();
}

Status SpillFileWriter::Finish() {
  BW_CHECK(!finished_);
  finished_ = true;
  const int64_t index_offset = std::ftell(file_);
  const int64_t count = static_cast<int64_t>(offsets_.size());
  BW_RETURN_IF_ERROR(WriteRaw(file_, offsets_.data(),
                              offsets_.size() * sizeof(int64_t)));
  BW_RETURN_IF_ERROR(WriteRaw(file_, region_ids_.data(),
                              region_ids_.size() * sizeof(int64_t)));
  BW_RETURN_IF_ERROR(WritePod(file_, index_offset));
  BW_RETURN_IF_ERROR(WritePod(file_, count));
  if (std::fflush(file_) != 0) return Status::IoError("spill flush failed");
  std::fclose(file_);
  file_ = nullptr;
  return Status::OK();
}

Result<std::unique_ptr<SpilledTrainingData>> SpilledTrainingData::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open spill file " + path + ": " +
                           std::strerror(errno));
  }
  uint64_t magic = 0;
  if (!ReadPod(f, &magic).ok() || magic != kMagic) {
    std::fclose(f);
    return Status::IoError("bad spill file magic: " + path);
  }
  // Footer: [offsets][region_ids][index_offset][count].
  if (std::fseek(f, -2 * static_cast<long>(sizeof(int64_t)), SEEK_END) != 0) {
    std::fclose(f);
    return Status::IoError("cannot seek spill footer: " + path);
  }
  int64_t index_offset = 0;
  int64_t count = 0;
  Status st = ReadPod(f, &index_offset);
  if (st.ok()) st = ReadPod(f, &count);
  if (!st.ok() || count < 0) {
    std::fclose(f);
    return Status::IoError("corrupt spill footer: " + path);
  }
  std::vector<int64_t> offsets(count);
  std::vector<int64_t> region_ids(count);
  if (std::fseek(f, static_cast<long>(index_offset), SEEK_SET) != 0) {
    std::fclose(f);
    return Status::IoError("cannot seek spill index: " + path);
  }
  st = ReadRaw(f, offsets.data(), offsets.size() * sizeof(int64_t));
  if (st.ok()) {
    st = ReadRaw(f, region_ids.data(), region_ids.size() * sizeof(int64_t));
  }
  if (!st.ok()) {
    std::fclose(f);
    return st;
  }
  return std::unique_ptr<SpilledTrainingData>(new SpilledTrainingData(
      path, f, std::move(offsets), std::move(region_ids), index_offset));
}

SpilledTrainingData::~SpilledTrainingData() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SpilledTrainingData::ReadRecord(size_t index, RegionTrainingSet* out) {
  // One seek + one read for the whole record (the footer index gives its
  // extent), parsed from the reusable buffer — instead of seven small freads
  // per record, which dominated the spill-scan profile.
  constexpr int64_t kHeaderBytes =
      sizeof(int64_t) + sizeof(int32_t) + sizeof(int64_t) + sizeof(uint8_t);
  const int64_t offset = offsets_[index];
  const int64_t length = RecordEnd(index) - offset;
  if (length < kHeaderBytes) {
    return Status::IoError("corrupt spill record");
  }
  if (read_buffer_.size() < static_cast<size_t>(length)) {
    read_buffer_.resize(static_cast<size_t>(length));
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IoError("seek failed in spill file");
  }
  BW_RETURN_IF_ERROR(
      ReadRaw(file_, read_buffer_.data(), static_cast<size_t>(length)));
  const unsigned char* p = read_buffer_.data();
  const auto consume = [&p](void* dst, size_t bytes) {
    std::memcpy(dst, p, bytes);
    p += bytes;
  };
  int64_t region = 0;
  int64_t n = 0;
  uint8_t has_weights = 0;
  consume(&region, sizeof(region));
  consume(&out->num_features, sizeof(out->num_features));
  consume(&n, sizeof(n));
  consume(&has_weights, sizeof(has_weights));
  if (n < 0 || out->num_features < 0 || has_weights > 1) {
    return Status::IoError("corrupt spill record");
  }
  const int64_t expected =
      kHeaderBytes + n * static_cast<int64_t>(sizeof(int32_t)) +
      n * out->num_features * static_cast<int64_t>(sizeof(double)) +
      n * static_cast<int64_t>(sizeof(double)) +
      (has_weights ? n * static_cast<int64_t>(sizeof(double)) : 0);
  if (expected != length) {
    return Status::IoError("corrupt spill record");
  }
  out->region = region;
  out->items.resize(n);
  out->features.resize(static_cast<size_t>(n) * out->num_features);
  out->targets.resize(n);
  out->weights.resize(has_weights ? n : 0);
  consume(out->items.data(), out->items.size() * sizeof(int32_t));
  consume(out->features.data(), out->features.size() * sizeof(double));
  consume(out->targets.data(), out->targets.size() * sizeof(double));
  if (has_weights) {
    consume(out->weights.data(), out->weights.size() * sizeof(double));
  }
  SimulatedDeviceWaitMicros(simulated_latency_micros_);
  ++io_stats_.region_reads;
  io_stats_.bytes_read += static_cast<int64_t>(out->ByteSize());
  Metrics().reads->Increment();
  Metrics().rows->Increment(static_cast<int64_t>(out->num_examples()));
  Metrics().bytes->Increment(static_cast<int64_t>(out->ByteSize()));
  return Status::OK();
}

Status SpilledTrainingData::Scan(
    const std::function<Status(const RegionTrainingSet&)>& fn) {
  obs::TraceSpan span("SpilledTrainingData::Scan", "storage");
  ++io_stats_.sequential_scans;
  Metrics().scans->Increment();
  RegionTrainingSet set;
  for (size_t i = 0; i < offsets_.size(); ++i) {
    BW_RETURN_IF_ERROR(robust::MaybeInjectIo(robust::kFaultStorageScan));
    BW_RETURN_IF_ERROR(ReadRecord(i, &set));
    BW_RETURN_IF_ERROR(fn(set));
  }
  return Status::OK();
}

Result<RegionTrainingSet> SpilledTrainingData::Read(size_t index) {
  if (index >= offsets_.size()) {
    return Status::OutOfRange("region set index out of range");
  }
  BW_RETURN_IF_ERROR(robust::MaybeInjectIo(robust::kFaultStorageRead));
  RegionTrainingSet set;
  BW_RETURN_IF_ERROR(ReadRecord(index, &set));
  return set;
}

std::vector<olap::RegionId> SpilledTrainingData::RegionIds() {
  return std::vector<olap::RegionId>(region_ids_.begin(), region_ids_.end());
}

}  // namespace bellwether::storage
