#ifndef BELLWETHER_STORAGE_TRAINING_DATA_H_
#define BELLWETHER_STORAGE_TRAINING_DATA_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "olap/region.h"

namespace bellwether::storage {

/// The training set of one feasible region (paper §4.2): one row per item
/// with data in the region; feature rows include the intercept column and
/// the item-table features followed by the regional features.
struct RegionTrainingSet {
  olap::RegionId region = olap::kInvalidRegion;
  int32_t num_features = 0;
  std::vector<int32_t> items;    // dense item indices, ascending
  std::vector<double> features;  // row-major, items.size() * num_features
  std::vector<double> targets;   // items.size()
  /// Optional per-example weights for weighted least squares (paper §6.4);
  /// empty means all weights are 1 (ordinary least squares).
  std::vector<double> weights;

  size_t num_examples() const { return items.size(); }
  const double* row(size_t i) const {
    return features.data() + i * static_cast<size_t>(num_features);
  }
  bool weighted() const { return !weights.empty(); }
  /// Weight of example i (1.0 when unweighted).
  double weight(size_t i) const { return weights.empty() ? 1.0 : weights[i]; }
  /// Exact serialized spill-record size (header + items + features +
  /// targets + weights), used for I/O accounting and the BudgetedSink
  /// memory budget.
  size_t ByteSize() const;
};

/// I/O accounting for a training-data source. The scan-based algorithms
/// (RF tree, single-scan cube) are compared against the naive ones by the
/// number of sequential scans vs. random per-region reads (Fig. 11(a)).
struct IoStats {
  int64_t sequential_scans = 0;
  int64_t region_reads = 0;  // individual training sets materialized
  int64_t bytes_read = 0;

  void Reset() { *this = IoStats{}; }
};

/// Abstract source of the "entire training data": the training sets of all
/// feasible regions, iterated in ascending RegionId order.
class TrainingDataSource {
 public:
  virtual ~TrainingDataSource() = default;

  virtual size_t num_region_sets() const = 0;

  /// One sequential pass over all region training sets, in order. The
  /// visited reference is only valid during the callback.
  virtual Status Scan(
      const std::function<Status(const RegionTrainingSet&)>& fn) = 0;

  /// Random access to the i-th region training set (0 <= i <
  /// num_region_sets()). For the disk-backed source every call re-reads from
  /// the file — deliberately, to model the paper's "each time they need the
  /// training data from a region, they always read the data from disk".
  virtual Result<RegionTrainingSet> Read(size_t index) = 0;

  /// RegionIds in scan order.
  virtual std::vector<olap::RegionId> RegionIds() = 0;

  const IoStats& io_stats() const { return io_stats_; }
  void ResetIoStats() { io_stats_.Reset(); }

 protected:
  IoStats io_stats_;
};

/// In-memory source; Read() copies (intentionally — callers own the
/// returned set), Scan() visits in place.
class MemoryTrainingData final : public TrainingDataSource {
 public:
  explicit MemoryTrainingData(std::vector<RegionTrainingSet> sets);

  size_t num_region_sets() const override { return sets_.size(); }
  Status Scan(
      const std::function<Status(const RegionTrainingSet&)>& fn) override;
  Result<RegionTrainingSet> Read(size_t index) override;
  std::vector<olap::RegionId> RegionIds() override;

  const std::vector<RegionTrainingSet>& sets() const { return sets_; }

 private:
  std::vector<RegionTrainingSet> sets_;
};

/// Writes region training sets to a binary spill file, in scan order.
class SpillFileWriter {
 public:
  /// Creates/truncates `path`.
  static Result<std::unique_ptr<SpillFileWriter>> Create(
      const std::string& path);
  ~SpillFileWriter();

  Status Append(const RegionTrainingSet& set);
  /// Flushes and writes the footer index. Must be called exactly once.
  Status Finish();

  const std::string& path() const { return path_; }

 private:
  explicit SpillFileWriter(std::string path, std::FILE* f)
      : path_(std::move(path)), file_(f) {}

  std::string path_;
  std::FILE* file_;
  std::vector<int64_t> offsets_;
  std::vector<int64_t> region_ids_;
  bool finished_ = false;
};

/// Disk-backed source over a spill file written by SpillFileWriter. Each
/// Read()/Scan step fetches the whole record with a single seek + read into
/// a reusable buffer (sized once to the largest record seen) and parses it
/// from memory, instead of issuing one small read per field/array. An
/// optional artificial per-read latency models a slow device for the
/// Fig. 11(a) comparison.
class SpilledTrainingData final : public TrainingDataSource {
 public:
  static Result<std::unique_ptr<SpilledTrainingData>> Open(
      const std::string& path);
  ~SpilledTrainingData() override;

  size_t num_region_sets() const override { return offsets_.size(); }
  Status Scan(
      const std::function<Status(const RegionTrainingSet&)>& fn) override;
  Result<RegionTrainingSet> Read(size_t index) override;
  std::vector<olap::RegionId> RegionIds() override;

  /// Adds `micros` of busy-wait per record read, simulating device latency.
  void set_simulated_read_latency_micros(int64_t micros) {
    simulated_latency_micros_ = micros;
  }

 private:
  SpilledTrainingData(std::string path, std::FILE* f,
                      std::vector<int64_t> offsets,
                      std::vector<int64_t> region_ids, int64_t index_offset)
      : path_(std::move(path)),
        file_(f),
        offsets_(std::move(offsets)),
        region_ids_(std::move(region_ids)),
        index_offset_(index_offset) {}

  /// One past the last byte of record i: the next record's offset, or the
  /// footer index for the final record.
  int64_t RecordEnd(size_t i) const {
    return i + 1 < offsets_.size() ? offsets_[i + 1] : index_offset_;
  }

  Status ReadRecord(size_t index, RegionTrainingSet* out);

  std::string path_;
  std::FILE* file_;
  std::vector<int64_t> offsets_;
  std::vector<int64_t> region_ids_;
  int64_t index_offset_ = 0;
  std::vector<unsigned char> read_buffer_;  // reused across record reads
  int64_t simulated_latency_micros_ = 0;
};

}  // namespace bellwether::storage

#endif  // BELLWETHER_STORAGE_TRAINING_DATA_H_
