#ifndef BELLWETHER_STORAGE_TRAINING_DATA_SINK_H_
#define BELLWETHER_STORAGE_TRAINING_DATA_SINK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/training_data.h"

namespace bellwether::storage {

/// Consumer side of streaming training-data generation: the producer hands
/// over one RegionTrainingSet at a time (ascending RegionId, the storage
/// scan order) and finalizes into a TrainingDataSource over everything
/// appended. Implementations decide where the sets live — memory, disk, or
/// memory-up-to-a-budget-then-disk — so the producer never materializes the
/// entire training data unless the sink chooses to.
///
/// The ascending-RegionId ordering invariant is recorded during Append and
/// enforced at Finish(): a violated sink fails with kFailedPrecondition
/// instead of returning a source whose scan order would silently differ
/// from every consumer's assumption (binary-search FindSet, checkpoint
/// fingerprints, Fig. 11 scan accounting).
class TrainingDataSink {
 public:
  virtual ~TrainingDataSink() = default;

  /// Takes ownership of the next region training set.
  virtual Status Append(RegionTrainingSet&& set) = 0;

  /// Finalizes and returns the source over everything appended. Must be
  /// called exactly once, after the last Append.
  virtual Result<std::unique_ptr<TrainingDataSource>> Finish() = 0;

  /// Sets appended so far.
  int64_t sets_appended() const { return sets_appended_; }

 protected:
  /// Bookkeeping shared by all sinks; call first in every Append. Updates
  /// the ordering record and the datagen.peak_resident_bytes gauge
  /// (`resident_bytes` = the sink's resident training-set footprint with
  /// `set` included).
  void NoteAppend(const RegionTrainingSet& set, size_t resident_bytes);

  /// OK, or kFailedPrecondition naming the first out-of-order append.
  Status CheckOrdering() const;

 private:
  int64_t sets_appended_ = 0;
  int64_t last_region_ = -1;
  bool ordering_violated_ = false;
  std::string ordering_error_;
};

/// Keeps every appended set in memory (moved in, never copied) and finishes
/// into a MemoryTrainingData that owns them — the streaming replacement for
/// the old build-a-vector-then-copy path.
class MemorySink final : public TrainingDataSink {
 public:
  MemorySink() = default;

  Status Append(RegionTrainingSet&& set) override;
  Result<std::unique_ptr<TrainingDataSource>> Finish() override;

  /// Resident training-set bytes currently held.
  size_t resident_bytes() const { return resident_bytes_; }

 private:
  std::vector<RegionTrainingSet> sets_;
  size_t resident_bytes_ = 0;
};

/// Streams every appended set straight to a spill file; only the set being
/// written is ever resident. Finishes into a SpilledTrainingData over the
/// file.
class SpillSink final : public TrainingDataSink {
 public:
  /// Creates/truncates the spill file at `path`.
  static Result<std::unique_ptr<SpillSink>> Create(const std::string& path);

  Status Append(RegionTrainingSet&& set) override;
  Result<std::unique_ptr<TrainingDataSource>> Finish() override;

  const std::string& path() const { return path_; }

 private:
  SpillSink(std::string path, std::unique_ptr<SpillFileWriter> writer)
      : path_(std::move(path)), writer_(std::move(writer)) {}

  std::string path_;
  std::unique_ptr<SpillFileWriter> writer_;
};

/// Accumulates in memory until the resident footprint would exceed
/// `memory_budget_bytes`, then transparently migrates everything appended so
/// far to a spill file and streams the remainder straight to disk. Peak
/// resident training-set bytes are therefore bounded by
/// memory_budget_bytes + the largest single region set (the one whose
/// arrival triggers the migration), and O(largest region) thereafter.
/// Finish() returns a MemoryTrainingData when the budget was never
/// exceeded, otherwise a SpilledTrainingData — consumers see the same
/// TrainingDataSource contract either way.
class BudgetedSink final : public TrainingDataSink {
 public:
  /// The spill file at `spill_path` is only created if the budget is
  /// actually exceeded.
  BudgetedSink(size_t memory_budget_bytes, std::string spill_path);

  Status Append(RegionTrainingSet&& set) override;
  Result<std::unique_ptr<TrainingDataSource>> Finish() override;

  /// True once the budget was exceeded and the sets migrated to disk.
  bool spilled() const { return spilled_; }
  /// Resident training-set bytes currently buffered (0 after migration).
  size_t resident_bytes() const { return resident_bytes_; }
  const std::string& spill_path() const { return spill_path_; }

 private:
  Status MigrateToSpill();
  /// Returns every buffered shell to the RegionSetArena (used on migration
  /// error paths, so arena traffic balances even when the sink fails).
  void ReleaseBuffered();

  size_t memory_budget_bytes_;
  std::string spill_path_;
  std::vector<RegionTrainingSet> buffered_;
  size_t resident_bytes_ = 0;
  bool spilled_ = false;
  std::unique_ptr<SpillFileWriter> writer_;  // non-null once spilled
};

}  // namespace bellwether::storage

#endif  // BELLWETHER_STORAGE_TRAINING_DATA_SINK_H_
