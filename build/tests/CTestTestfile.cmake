# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/olap_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/core_training_data_test[1]_include.cmake")
include("/root/repo/build/tests/core_basic_search_test[1]_include.cmake")
include("/root/repo/build/tests/core_tree_test[1]_include.cmake")
include("/root/repo/build/tests/core_cube_test[1]_include.cmake")
include("/root/repo/build/tests/core_item_centric_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/core_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/core_multi_instance_test[1]_include.cmake")
include("/root/repo/build/tests/classify_test[1]_include.cmake")
include("/root/repo/build/tests/classification_cube_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/model_io_test[1]_include.cmake")
include("/root/repo/build/tests/eval_util_test[1]_include.cmake")
