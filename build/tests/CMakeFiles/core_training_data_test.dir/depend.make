# Empty dependencies file for core_training_data_test.
# This may be replaced when dependencies are built.
