file(REMOVE_RECURSE
  "CMakeFiles/eval_util_test.dir/eval_util_test.cc.o"
  "CMakeFiles/eval_util_test.dir/eval_util_test.cc.o.d"
  "eval_util_test"
  "eval_util_test.pdb"
  "eval_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
