file(REMOVE_RECURSE
  "CMakeFiles/core_cube_test.dir/core_cube_test.cc.o"
  "CMakeFiles/core_cube_test.dir/core_cube_test.cc.o.d"
  "core_cube_test"
  "core_cube_test.pdb"
  "core_cube_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_cube_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
