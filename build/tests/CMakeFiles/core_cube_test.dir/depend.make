# Empty dependencies file for core_cube_test.
# This may be replaced when dependencies are built.
