
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/linalg_test.cc" "tests/CMakeFiles/linalg_test.dir/linalg_test.cc.o" "gcc" "tests/CMakeFiles/linalg_test.dir/linalg_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bellwether_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/bellwether_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/bellwether_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/regression/CMakeFiles/bellwether_regression.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/bellwether_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/bellwether_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/olap/CMakeFiles/bellwether_olap.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/bellwether_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bellwether_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
