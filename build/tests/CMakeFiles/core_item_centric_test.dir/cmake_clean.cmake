file(REMOVE_RECURSE
  "CMakeFiles/core_item_centric_test.dir/core_item_centric_test.cc.o"
  "CMakeFiles/core_item_centric_test.dir/core_item_centric_test.cc.o.d"
  "core_item_centric_test"
  "core_item_centric_test.pdb"
  "core_item_centric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_item_centric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
