# Empty compiler generated dependencies file for core_item_centric_test.
# This may be replaced when dependencies are built.
