file(REMOVE_RECURSE
  "CMakeFiles/classification_cube_test.dir/classification_cube_test.cc.o"
  "CMakeFiles/classification_cube_test.dir/classification_cube_test.cc.o.d"
  "classification_cube_test"
  "classification_cube_test.pdb"
  "classification_cube_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classification_cube_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
