# Empty dependencies file for classification_cube_test.
# This may be replaced when dependencies are built.
