file(REMOVE_RECURSE
  "CMakeFiles/bellwether_classify.dir/error.cc.o"
  "CMakeFiles/bellwether_classify.dir/error.cc.o.d"
  "CMakeFiles/bellwether_classify.dir/gaussian_nb.cc.o"
  "CMakeFiles/bellwether_classify.dir/gaussian_nb.cc.o.d"
  "libbellwether_classify.a"
  "libbellwether_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bellwether_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
