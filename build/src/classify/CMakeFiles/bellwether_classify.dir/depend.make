# Empty dependencies file for bellwether_classify.
# This may be replaced when dependencies are built.
