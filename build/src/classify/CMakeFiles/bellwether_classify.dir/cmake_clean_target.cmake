file(REMOVE_RECURSE
  "libbellwether_classify.a"
)
