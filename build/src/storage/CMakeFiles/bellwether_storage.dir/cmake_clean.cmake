file(REMOVE_RECURSE
  "CMakeFiles/bellwether_storage.dir/training_data.cc.o"
  "CMakeFiles/bellwether_storage.dir/training_data.cc.o.d"
  "libbellwether_storage.a"
  "libbellwether_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bellwether_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
