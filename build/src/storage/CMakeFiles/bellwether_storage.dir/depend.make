# Empty dependencies file for bellwether_storage.
# This may be replaced when dependencies are built.
