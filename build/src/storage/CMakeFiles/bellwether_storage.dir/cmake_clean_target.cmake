file(REMOVE_RECURSE
  "libbellwether_storage.a"
)
