file(REMOVE_RECURSE
  "CMakeFiles/bellwether_olap.dir/cost.cc.o"
  "CMakeFiles/bellwether_olap.dir/cost.cc.o.d"
  "CMakeFiles/bellwether_olap.dir/dimension.cc.o"
  "CMakeFiles/bellwether_olap.dir/dimension.cc.o.d"
  "CMakeFiles/bellwether_olap.dir/iceberg.cc.o"
  "CMakeFiles/bellwether_olap.dir/iceberg.cc.o.d"
  "CMakeFiles/bellwether_olap.dir/region.cc.o"
  "CMakeFiles/bellwether_olap.dir/region.cc.o.d"
  "libbellwether_olap.a"
  "libbellwether_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bellwether_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
