# Empty compiler generated dependencies file for bellwether_olap.
# This may be replaced when dependencies are built.
