file(REMOVE_RECURSE
  "libbellwether_olap.a"
)
