
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/olap/cost.cc" "src/olap/CMakeFiles/bellwether_olap.dir/cost.cc.o" "gcc" "src/olap/CMakeFiles/bellwether_olap.dir/cost.cc.o.d"
  "/root/repo/src/olap/dimension.cc" "src/olap/CMakeFiles/bellwether_olap.dir/dimension.cc.o" "gcc" "src/olap/CMakeFiles/bellwether_olap.dir/dimension.cc.o.d"
  "/root/repo/src/olap/iceberg.cc" "src/olap/CMakeFiles/bellwether_olap.dir/iceberg.cc.o" "gcc" "src/olap/CMakeFiles/bellwether_olap.dir/iceberg.cc.o.d"
  "/root/repo/src/olap/region.cc" "src/olap/CMakeFiles/bellwether_olap.dir/region.cc.o" "gcc" "src/olap/CMakeFiles/bellwether_olap.dir/region.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bellwether_common.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/bellwether_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
