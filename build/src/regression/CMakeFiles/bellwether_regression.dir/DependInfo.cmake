
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regression/dataset.cc" "src/regression/CMakeFiles/bellwether_regression.dir/dataset.cc.o" "gcc" "src/regression/CMakeFiles/bellwether_regression.dir/dataset.cc.o.d"
  "/root/repo/src/regression/error.cc" "src/regression/CMakeFiles/bellwether_regression.dir/error.cc.o" "gcc" "src/regression/CMakeFiles/bellwether_regression.dir/error.cc.o.d"
  "/root/repo/src/regression/linear_model.cc" "src/regression/CMakeFiles/bellwether_regression.dir/linear_model.cc.o" "gcc" "src/regression/CMakeFiles/bellwether_regression.dir/linear_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bellwether_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/bellwether_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
