# Empty dependencies file for bellwether_regression.
# This may be replaced when dependencies are built.
