file(REMOVE_RECURSE
  "libbellwether_regression.a"
)
