file(REMOVE_RECURSE
  "CMakeFiles/bellwether_regression.dir/dataset.cc.o"
  "CMakeFiles/bellwether_regression.dir/dataset.cc.o.d"
  "CMakeFiles/bellwether_regression.dir/error.cc.o"
  "CMakeFiles/bellwether_regression.dir/error.cc.o.d"
  "CMakeFiles/bellwether_regression.dir/linear_model.cc.o"
  "CMakeFiles/bellwether_regression.dir/linear_model.cc.o.d"
  "libbellwether_regression.a"
  "libbellwether_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bellwether_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
