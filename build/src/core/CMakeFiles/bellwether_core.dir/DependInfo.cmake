
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/bellwether_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/bellwether_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/basic_search.cc" "src/core/CMakeFiles/bellwether_core.dir/basic_search.cc.o" "gcc" "src/core/CMakeFiles/bellwether_core.dir/basic_search.cc.o.d"
  "/root/repo/src/core/bellwether_cube.cc" "src/core/CMakeFiles/bellwether_core.dir/bellwether_cube.cc.o" "gcc" "src/core/CMakeFiles/bellwether_core.dir/bellwether_cube.cc.o.d"
  "/root/repo/src/core/bellwether_tree.cc" "src/core/CMakeFiles/bellwether_core.dir/bellwether_tree.cc.o" "gcc" "src/core/CMakeFiles/bellwether_core.dir/bellwether_tree.cc.o.d"
  "/root/repo/src/core/classification_cube.cc" "src/core/CMakeFiles/bellwether_core.dir/classification_cube.cc.o" "gcc" "src/core/CMakeFiles/bellwether_core.dir/classification_cube.cc.o.d"
  "/root/repo/src/core/classification_search.cc" "src/core/CMakeFiles/bellwether_core.dir/classification_search.cc.o" "gcc" "src/core/CMakeFiles/bellwether_core.dir/classification_search.cc.o.d"
  "/root/repo/src/core/combinatorial.cc" "src/core/CMakeFiles/bellwether_core.dir/combinatorial.cc.o" "gcc" "src/core/CMakeFiles/bellwether_core.dir/combinatorial.cc.o.d"
  "/root/repo/src/core/eval_util.cc" "src/core/CMakeFiles/bellwether_core.dir/eval_util.cc.o" "gcc" "src/core/CMakeFiles/bellwether_core.dir/eval_util.cc.o.d"
  "/root/repo/src/core/item_centric_eval.cc" "src/core/CMakeFiles/bellwether_core.dir/item_centric_eval.cc.o" "gcc" "src/core/CMakeFiles/bellwether_core.dir/item_centric_eval.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/bellwether_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/bellwether_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/multi_instance.cc" "src/core/CMakeFiles/bellwether_core.dir/multi_instance.cc.o" "gcc" "src/core/CMakeFiles/bellwether_core.dir/multi_instance.cc.o.d"
  "/root/repo/src/core/training_data_gen.cc" "src/core/CMakeFiles/bellwether_core.dir/training_data_gen.cc.o" "gcc" "src/core/CMakeFiles/bellwether_core.dir/training_data_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bellwether_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/bellwether_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/bellwether_table.dir/DependInfo.cmake"
  "/root/repo/build/src/olap/CMakeFiles/bellwether_olap.dir/DependInfo.cmake"
  "/root/repo/build/src/regression/CMakeFiles/bellwether_regression.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/bellwether_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/bellwether_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
