file(REMOVE_RECURSE
  "CMakeFiles/bellwether_core.dir/baselines.cc.o"
  "CMakeFiles/bellwether_core.dir/baselines.cc.o.d"
  "CMakeFiles/bellwether_core.dir/basic_search.cc.o"
  "CMakeFiles/bellwether_core.dir/basic_search.cc.o.d"
  "CMakeFiles/bellwether_core.dir/bellwether_cube.cc.o"
  "CMakeFiles/bellwether_core.dir/bellwether_cube.cc.o.d"
  "CMakeFiles/bellwether_core.dir/bellwether_tree.cc.o"
  "CMakeFiles/bellwether_core.dir/bellwether_tree.cc.o.d"
  "CMakeFiles/bellwether_core.dir/classification_cube.cc.o"
  "CMakeFiles/bellwether_core.dir/classification_cube.cc.o.d"
  "CMakeFiles/bellwether_core.dir/classification_search.cc.o"
  "CMakeFiles/bellwether_core.dir/classification_search.cc.o.d"
  "CMakeFiles/bellwether_core.dir/combinatorial.cc.o"
  "CMakeFiles/bellwether_core.dir/combinatorial.cc.o.d"
  "CMakeFiles/bellwether_core.dir/eval_util.cc.o"
  "CMakeFiles/bellwether_core.dir/eval_util.cc.o.d"
  "CMakeFiles/bellwether_core.dir/item_centric_eval.cc.o"
  "CMakeFiles/bellwether_core.dir/item_centric_eval.cc.o.d"
  "CMakeFiles/bellwether_core.dir/model_io.cc.o"
  "CMakeFiles/bellwether_core.dir/model_io.cc.o.d"
  "CMakeFiles/bellwether_core.dir/multi_instance.cc.o"
  "CMakeFiles/bellwether_core.dir/multi_instance.cc.o.d"
  "CMakeFiles/bellwether_core.dir/training_data_gen.cc.o"
  "CMakeFiles/bellwether_core.dir/training_data_gen.cc.o.d"
  "libbellwether_core.a"
  "libbellwether_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bellwether_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
