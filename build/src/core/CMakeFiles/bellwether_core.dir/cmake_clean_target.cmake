file(REMOVE_RECURSE
  "libbellwether_core.a"
)
