# Empty dependencies file for bellwether_core.
# This may be replaced when dependencies are built.
