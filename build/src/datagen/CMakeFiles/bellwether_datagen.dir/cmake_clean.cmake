file(REMOVE_RECURSE
  "CMakeFiles/bellwether_datagen.dir/book_store.cc.o"
  "CMakeFiles/bellwether_datagen.dir/book_store.cc.o.d"
  "CMakeFiles/bellwether_datagen.dir/hierarchy_util.cc.o"
  "CMakeFiles/bellwether_datagen.dir/hierarchy_util.cc.o.d"
  "CMakeFiles/bellwether_datagen.dir/mail_order.cc.o"
  "CMakeFiles/bellwether_datagen.dir/mail_order.cc.o.d"
  "CMakeFiles/bellwether_datagen.dir/scalability.cc.o"
  "CMakeFiles/bellwether_datagen.dir/scalability.cc.o.d"
  "CMakeFiles/bellwether_datagen.dir/simulation.cc.o"
  "CMakeFiles/bellwether_datagen.dir/simulation.cc.o.d"
  "libbellwether_datagen.a"
  "libbellwether_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bellwether_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
