
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/book_store.cc" "src/datagen/CMakeFiles/bellwether_datagen.dir/book_store.cc.o" "gcc" "src/datagen/CMakeFiles/bellwether_datagen.dir/book_store.cc.o.d"
  "/root/repo/src/datagen/hierarchy_util.cc" "src/datagen/CMakeFiles/bellwether_datagen.dir/hierarchy_util.cc.o" "gcc" "src/datagen/CMakeFiles/bellwether_datagen.dir/hierarchy_util.cc.o.d"
  "/root/repo/src/datagen/mail_order.cc" "src/datagen/CMakeFiles/bellwether_datagen.dir/mail_order.cc.o" "gcc" "src/datagen/CMakeFiles/bellwether_datagen.dir/mail_order.cc.o.d"
  "/root/repo/src/datagen/scalability.cc" "src/datagen/CMakeFiles/bellwether_datagen.dir/scalability.cc.o" "gcc" "src/datagen/CMakeFiles/bellwether_datagen.dir/scalability.cc.o.d"
  "/root/repo/src/datagen/simulation.cc" "src/datagen/CMakeFiles/bellwether_datagen.dir/simulation.cc.o" "gcc" "src/datagen/CMakeFiles/bellwether_datagen.dir/simulation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bellwether_core.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/bellwether_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/regression/CMakeFiles/bellwether_regression.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/bellwether_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/bellwether_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/olap/CMakeFiles/bellwether_olap.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/bellwether_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bellwether_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
