file(REMOVE_RECURSE
  "libbellwether_datagen.a"
)
