# Empty compiler generated dependencies file for bellwether_datagen.
# This may be replaced when dependencies are built.
