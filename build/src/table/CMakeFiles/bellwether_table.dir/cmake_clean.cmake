file(REMOVE_RECURSE
  "CMakeFiles/bellwether_table.dir/csv.cc.o"
  "CMakeFiles/bellwether_table.dir/csv.cc.o.d"
  "CMakeFiles/bellwether_table.dir/ops.cc.o"
  "CMakeFiles/bellwether_table.dir/ops.cc.o.d"
  "CMakeFiles/bellwether_table.dir/schema.cc.o"
  "CMakeFiles/bellwether_table.dir/schema.cc.o.d"
  "CMakeFiles/bellwether_table.dir/table.cc.o"
  "CMakeFiles/bellwether_table.dir/table.cc.o.d"
  "CMakeFiles/bellwether_table.dir/value.cc.o"
  "CMakeFiles/bellwether_table.dir/value.cc.o.d"
  "libbellwether_table.a"
  "libbellwether_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bellwether_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
