# Empty dependencies file for bellwether_table.
# This may be replaced when dependencies are built.
