file(REMOVE_RECURSE
  "libbellwether_table.a"
)
