file(REMOVE_RECURSE
  "libbellwether_linalg.a"
)
