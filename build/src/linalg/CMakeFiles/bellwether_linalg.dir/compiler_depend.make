# Empty compiler generated dependencies file for bellwether_linalg.
# This may be replaced when dependencies are built.
