file(REMOVE_RECURSE
  "CMakeFiles/bellwether_linalg.dir/matrix.cc.o"
  "CMakeFiles/bellwether_linalg.dir/matrix.cc.o.d"
  "libbellwether_linalg.a"
  "libbellwether_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bellwether_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
