# Empty compiler generated dependencies file for bellwether_common.
# This may be replaced when dependencies are built.
