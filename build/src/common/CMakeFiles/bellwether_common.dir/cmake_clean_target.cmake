file(REMOVE_RECURSE
  "libbellwether_common.a"
)
