file(REMOVE_RECURSE
  "CMakeFiles/bellwether_common.dir/random.cc.o"
  "CMakeFiles/bellwether_common.dir/random.cc.o.d"
  "CMakeFiles/bellwether_common.dir/status.cc.o"
  "CMakeFiles/bellwether_common.dir/status.cc.o.d"
  "CMakeFiles/bellwether_common.dir/string_util.cc.o"
  "CMakeFiles/bellwether_common.dir/string_util.cc.o.d"
  "libbellwether_common.a"
  "libbellwether_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bellwether_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
