# Empty compiler generated dependencies file for extensions_report.
# This may be replaced when dependencies are built.
