# Empty dependencies file for extensions_report.
# This may be replaced when dependencies are built.
