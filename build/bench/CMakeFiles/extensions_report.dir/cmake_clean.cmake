file(REMOVE_RECURSE
  "CMakeFiles/extensions_report.dir/extensions_report.cc.o"
  "CMakeFiles/extensions_report.dir/extensions_report.cc.o.d"
  "extensions_report"
  "extensions_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensions_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
