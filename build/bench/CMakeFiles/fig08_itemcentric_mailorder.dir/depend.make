# Empty dependencies file for fig08_itemcentric_mailorder.
# This may be replaced when dependencies are built.
