file(REMOVE_RECURSE
  "CMakeFiles/fig08_itemcentric_mailorder.dir/fig08_itemcentric_mailorder.cc.o"
  "CMakeFiles/fig08_itemcentric_mailorder.dir/fig08_itemcentric_mailorder.cc.o.d"
  "fig08_itemcentric_mailorder"
  "fig08_itemcentric_mailorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_itemcentric_mailorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
