file(REMOVE_RECURSE
  "CMakeFiles/fig09_bookstore.dir/fig09_bookstore.cc.o"
  "CMakeFiles/fig09_bookstore.dir/fig09_bookstore.cc.o.d"
  "fig09_bookstore"
  "fig09_bookstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_bookstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
