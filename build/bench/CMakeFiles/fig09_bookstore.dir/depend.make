# Empty dependencies file for fig09_bookstore.
# This may be replaced when dependencies are built.
