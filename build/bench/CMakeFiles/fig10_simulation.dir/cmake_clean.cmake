file(REMOVE_RECURSE
  "CMakeFiles/fig10_simulation.dir/fig10_simulation.cc.o"
  "CMakeFiles/fig10_simulation.dir/fig10_simulation.cc.o.d"
  "fig10_simulation"
  "fig10_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
