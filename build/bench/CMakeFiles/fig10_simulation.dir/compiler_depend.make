# Empty compiler generated dependencies file for fig10_simulation.
# This may be replaced when dependencies are built.
