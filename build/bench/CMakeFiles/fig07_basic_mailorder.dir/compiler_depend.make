# Empty compiler generated dependencies file for fig07_basic_mailorder.
# This may be replaced when dependencies are built.
