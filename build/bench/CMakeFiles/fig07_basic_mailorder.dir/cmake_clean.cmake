file(REMOVE_RECURSE
  "CMakeFiles/fig07_basic_mailorder.dir/fig07_basic_mailorder.cc.o"
  "CMakeFiles/fig07_basic_mailorder.dir/fig07_basic_mailorder.cc.o.d"
  "fig07_basic_mailorder"
  "fig07_basic_mailorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_basic_mailorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
