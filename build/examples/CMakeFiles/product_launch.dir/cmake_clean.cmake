file(REMOVE_RECURSE
  "CMakeFiles/product_launch.dir/product_launch.cpp.o"
  "CMakeFiles/product_launch.dir/product_launch.cpp.o.d"
  "product_launch"
  "product_launch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/product_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
