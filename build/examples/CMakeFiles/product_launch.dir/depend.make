# Empty dependencies file for product_launch.
# This may be replaced when dependencies are built.
