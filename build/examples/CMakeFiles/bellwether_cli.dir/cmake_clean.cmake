file(REMOVE_RECURSE
  "CMakeFiles/bellwether_cli.dir/bellwether_cli.cpp.o"
  "CMakeFiles/bellwether_cli.dir/bellwether_cli.cpp.o.d"
  "bellwether_cli"
  "bellwether_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bellwether_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
