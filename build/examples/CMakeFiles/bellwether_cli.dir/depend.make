# Empty dependencies file for bellwether_cli.
# This may be replaced when dependencies are built.
