file(REMOVE_RECURSE
  "CMakeFiles/cube_explorer.dir/cube_explorer.cpp.o"
  "CMakeFiles/cube_explorer.dir/cube_explorer.cpp.o.d"
  "cube_explorer"
  "cube_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cube_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
