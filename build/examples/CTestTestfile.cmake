# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_product_launch "/root/repo/build/examples/product_launch")
set_tests_properties(example_product_launch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cube_explorer "/root/repo/build/examples/cube_explorer")
set_tests_properties(example_cube_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_budget_planner "/root/repo/build/examples/budget_planner")
set_tests_properties(example_budget_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bellwether_cli "/root/repo/build/examples/bellwether_cli")
set_tests_properties(example_bellwether_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
