// benchdiff: compares two flight-recorder run reports (BENCH_<name>.json,
// docs/OBSERVABILITY.md "Run reports & benchdiff") and exits non-zero when
// the new run regressed. CI runs this as the perf gate against the previous
// successful run's uploaded artifacts.
//
//   benchdiff [flags] <baseline.json> <current.json>
//
// Flags:
//   --threshold=<frac>      relative slowdown that counts as a regression
//                           (default 0.15 = 15%)
//   --min-seconds=<s>       noise floor: phases where both runs are below
//                           this are never flagged (default 0.005)
//   --fail-on-count-drift   treat logical count/value drift as a failure
//   --fail-on-alloc-drift   treat per-phase allocation-count drift (from
//                           the reports' profile sections) as a failure
//   --alloc-threshold=<f>   relative allocation-call change flagged as
//                           drift (default 0.10)
//   --json[=<path>]         also emit the comparison as machine-readable
//                           JSON (one object per compared phase) to <path>,
//                           or to stdout after the human report when bare;
//                           exit codes are unchanged
//   --warn-only             print the comparison but always exit 0
//
// Exit codes: 0 = no regression, 1 = regression (or drift with
// --fail-on-count-drift / --fail-on-alloc-drift), 2 = usage / parse error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/report.h"

namespace {

using bellwether::Result;
using bellwether::obs::BenchDiffOptions;
using bellwether::obs::BenchDiffResult;
using bellwether::obs::CompareRunReports;
using bellwether::obs::RunReport;

void Usage() {
  std::fprintf(stderr,
               "usage: benchdiff [--threshold=F] [--min-seconds=S] "
               "[--fail-on-count-drift] [--fail-on-alloc-drift] "
               "[--alloc-threshold=F] [--json[=PATH]] [--warn-only] "
               "<baseline.json> <current.json>\n");
}

Result<RunReport> Load(const char* path) {
  auto text = bellwether::obs::ReadTextFile(path);
  if (!text.ok()) return text.status();
  return RunReport::FromJson(*text);
}

}  // namespace

int main(int argc, char** argv) {
  BenchDiffOptions options;
  bool warn_only = false;
  bool json_requested = false;
  std::string json_path;  // empty = stdout
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threshold=", 12) == 0) {
      options.threshold = std::atof(arg + 12);
      if (options.threshold <= 0) {
        std::fprintf(stderr, "benchdiff: bad --threshold\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--min-seconds=", 14) == 0) {
      options.min_seconds = std::atof(arg + 14);
    } else if (std::strcmp(arg, "--fail-on-count-drift") == 0) {
      options.fail_on_count_drift = true;
    } else if (std::strcmp(arg, "--fail-on-alloc-drift") == 0) {
      options.fail_on_alloc_drift = true;
    } else if (std::strncmp(arg, "--alloc-threshold=", 18) == 0) {
      options.alloc_drift_threshold = std::atof(arg + 18);
      if (options.alloc_drift_threshold <= 0) {
        std::fprintf(stderr, "benchdiff: bad --alloc-threshold\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--json") == 0) {
      json_requested = true;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_requested = true;
      json_path = arg + 7;
    } else if (std::strcmp(arg, "--warn-only") == 0) {
      warn_only = true;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "benchdiff: unknown flag %s\n", arg);
      Usage();
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    Usage();
    return 2;
  }

  auto baseline = Load(positional[0]);
  if (!baseline.ok()) {
    std::fprintf(stderr, "benchdiff: %s: %s\n", positional[0],
                 baseline.status().ToString().c_str());
    return 2;
  }
  auto current = Load(positional[1]);
  if (!current.ok()) {
    std::fprintf(stderr, "benchdiff: %s: %s\n", positional[1],
                 current.status().ToString().c_str());
    return 2;
  }

  const BenchDiffResult diff = CompareRunReports(*baseline, *current, options);
  std::printf("benchdiff %s -> %s (threshold %.0f%%, floor %.3fs)\n",
              positional[0], positional[1], options.threshold * 100.0,
              options.min_seconds);
  std::printf("%s", diff.Summary().c_str());

  if (json_requested) {
    const std::string json = diff.ToJson() + "\n";
    if (json_path.empty()) {
      std::printf("%s", json.c_str());
    } else {
      const bellwether::Status st =
          bellwether::obs::WriteTextFile(json_path, json);
      if (!st.ok()) {
        std::fprintf(stderr, "benchdiff: %s: %s\n", json_path.c_str(),
                     st.ToString().c_str());
        return 2;
      }
    }
  }

  if (diff.failed && warn_only) {
    std::printf("warn-only: regression reported but exit forced to 0\n");
    return 0;
  }
  return diff.failed ? 1 : 0;
}
