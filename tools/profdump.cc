// profdump: renders and diffs collapsed-stack CPU profiles written by the
// bench drivers' --profile-out flag (docs/OBSERVABILITY.md "Profiling").
// The input is flamegraph.pl-compatible text, one "stack count" line per
// folded stack with ';'-separated frames, the first frame being the
// enclosing trace-span label (phase).
//
//   profdump [flags] <profile.txt>           render one profile
//   profdump --diff [flags] <old> <new>      compare two profiles
//
// Flags:
//   --top=<n>        rows per self-time table (default 15)
//   --phase=<label>  restrict the self-time table to one phase label
//   --tree           also render the aggregated call tree (branches below
//                    --tree-min-pct=<f> percent of total are pruned, 0.5
//                    by default)
//
// Exit codes: 0 = ok, 2 = usage / parse error.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/profiler.h"

namespace {

using bellwether::Result;
using bellwether::obs::Profile;

void Usage() {
  std::fprintf(stderr,
               "usage: profdump [--top=N] [--phase=LABEL] [--tree] "
               "[--tree-min-pct=F] <profile.txt>\n"
               "       profdump --diff [--top=N] <old.txt> <new.txt>\n");
}

Result<Profile> Load(const char* path) {
  auto text = bellwether::obs::ReadTextFile(path);
  if (!text.ok()) return text.status();
  return Profile::FromCollapsed(*text);
}

double Pct(int64_t part, int64_t whole) {
  return whole > 0 ? 100.0 * static_cast<double>(part) /
                         static_cast<double>(whole)
                   : 0.0;
}

void PrintHeader(const char* path, const Profile& profile) {
  std::printf("%s: %lld samples", path,
              static_cast<long long>(profile.total_samples()));
  if (profile.period_us() > 0) {
    std::printf(", %lldus period (~%.2fs CPU)",
                static_cast<long long>(profile.period_us()),
                static_cast<double>(profile.total_samples()) *
                    static_cast<double>(profile.period_us()) * 1e-6);
  }
  if (profile.dropped_samples() > 0) {
    std::printf(", %lld dropped",
                static_cast<long long>(profile.dropped_samples()));
  }
  std::printf("\n");
}

void PrintPhaseTable(const Profile& profile) {
  std::printf("\nsamples by phase (root span label)\n");
  std::printf("%8s %7s  %s\n", "samples", "%", "phase");
  for (const auto& [phase, samples] : profile.SamplesByRootFrame()) {
    std::printf("%8lld %6.1f%%  %s\n", static_cast<long long>(samples),
                Pct(samples, profile.total_samples()), phase.c_str());
  }
}

void PrintSelfTable(const Profile& profile, const std::string& phase,
                    int top) {
  if (phase.empty()) {
    std::printf("\ntop self-time frames (all phases)\n");
  } else {
    std::printf("\ntop self-time frames in phase \"%s\"\n", phase.c_str());
  }
  std::printf("%8s %7s %8s  %s\n", "self", "self%", "total", "frame");
  const auto table = profile.SelfTimeTable(phase);
  int rows = 0;
  for (const auto& stat : table) {
    if (rows++ >= top) break;
    std::printf("%8lld %6.1f%% %8lld  %s\n",
                static_cast<long long>(stat.self),
                Pct(stat.self, profile.total_samples()),
                static_cast<long long>(stat.total), stat.frame.c_str());
  }
  if (table.empty()) std::printf("(no samples)\n");
}

// Aggregated call tree, rendered root-down with per-branch sample counts.
struct TreeNode {
  int64_t self = 0;
  int64_t total = 0;
  std::map<std::string, TreeNode> children;
};

void PrintTree(const TreeNode& node, const std::string& name, int depth,
               int64_t grand_total, double min_pct) {
  if (Pct(node.total, grand_total) < min_pct) return;
  std::printf("%8lld %6.1f%%  %*s%s", static_cast<long long>(node.total),
              Pct(node.total, grand_total), 2 * depth, "", name.c_str());
  if (node.self > 0 && !node.children.empty()) {
    std::printf(" [self %lld]", static_cast<long long>(node.self));
  }
  std::printf("\n");
  // Children sorted by weight so the hot path reads top-down.
  std::vector<std::pair<const std::string*, const TreeNode*>> kids;
  kids.reserve(node.children.size());
  for (const auto& [child_name, child] : node.children) {
    kids.emplace_back(&child_name, &child);
  }
  std::sort(kids.begin(), kids.end(), [](const auto& a, const auto& b) {
    if (a.second->total != b.second->total) {
      return a.second->total > b.second->total;
    }
    return *a.first < *b.first;
  });
  for (const auto& [child_name, child] : kids) {
    PrintTree(*child, *child_name, depth + 1, grand_total, min_pct);
  }
}

void PrintCallTree(const Profile& profile, double min_pct) {
  TreeNode root;
  root.total = profile.total_samples();
  for (const auto& [stack, count] : profile.stacks()) {
    TreeNode* node = &root;
    size_t start = 0;
    while (start <= stack.size()) {
      const size_t sep = stack.find(';', start);
      const std::string frame =
          stack.substr(start, sep == std::string::npos ? sep : sep - start);
      node = &node->children[frame];
      node->total += count;
      if (sep == std::string::npos) {
        node->self += count;
        break;
      }
      start = sep + 1;
    }
  }
  std::printf("\ncall tree (branches under %.1f%% pruned)\n", min_pct);
  std::printf("%8s %7s  %s\n", "total", "%", "frame");
  std::vector<std::pair<const std::string*, const TreeNode*>> roots;
  for (const auto& [name, child] : root.children) {
    roots.emplace_back(&name, &child);
  }
  std::sort(roots.begin(), roots.end(), [](const auto& a, const auto& b) {
    if (a.second->total != b.second->total) {
      return a.second->total > b.second->total;
    }
    return *a.first < *b.first;
  });
  for (const auto& [name, child] : roots) {
    PrintTree(*child, *name, 0, profile.total_samples(), min_pct);
  }
}

// Diff: per-frame self-time shares of two profiles, sorted by the absolute
// change in share so the biggest movers lead regardless of run length.
int DiffProfiles(const char* old_path, const char* new_path, int top) {
  auto old_profile = Load(old_path);
  if (!old_profile.ok()) {
    std::fprintf(stderr, "profdump: %s: %s\n", old_path,
                 old_profile.status().ToString().c_str());
    return 2;
  }
  auto new_profile = Load(new_path);
  if (!new_profile.ok()) {
    std::fprintf(stderr, "profdump: %s: %s\n", new_path,
                 new_profile.status().ToString().c_str());
    return 2;
  }
  PrintHeader(old_path, *old_profile);
  PrintHeader(new_path, *new_profile);

  struct Shares {
    int64_t old_self = 0;
    int64_t new_self = 0;
    double old_pct = 0.0;
    double new_pct = 0.0;
  };
  std::map<std::string, Shares> frames;
  for (const auto& stat : old_profile->SelfTimeTable()) {
    Shares& s = frames[stat.frame];
    s.old_self = stat.self;
    s.old_pct = Pct(stat.self, old_profile->total_samples());
  }
  for (const auto& stat : new_profile->SelfTimeTable()) {
    Shares& s = frames[stat.frame];
    s.new_self = stat.self;
    s.new_pct = Pct(stat.self, new_profile->total_samples());
  }
  std::vector<std::pair<std::string, Shares>> sorted(frames.begin(),
                                                     frames.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    const double da = std::abs(a.second.new_pct - a.second.old_pct);
    const double db = std::abs(b.second.new_pct - b.second.old_pct);
    if (da != db) return da > db;
    return a.first < b.first;
  });
  std::printf("\nself-time share change (old -> new, by |delta|)\n");
  std::printf("%8s %8s %8s  %s\n", "old%", "new%", "delta", "frame");
  int rows = 0;
  for (const auto& [frame, s] : sorted) {
    if (rows++ >= top) break;
    std::printf("%7.2f%% %7.2f%% %+7.2f%%  %s\n", s.old_pct, s.new_pct,
                s.new_pct - s.old_pct, frame.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool diff = false;
  bool tree = false;
  int top = 15;
  double tree_min_pct = 0.5;
  std::string phase;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--diff") == 0) {
      diff = true;
    } else if (std::strcmp(arg, "--tree") == 0) {
      tree = true;
    } else if (std::strncmp(arg, "--top=", 6) == 0) {
      top = std::atoi(arg + 6);
      if (top <= 0) {
        std::fprintf(stderr, "profdump: bad --top\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--tree-min-pct=", 15) == 0) {
      tree_min_pct = std::atof(arg + 15);
    } else if (std::strncmp(arg, "--phase=", 8) == 0) {
      phase = arg + 8;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "profdump: unknown flag %s\n", arg);
      Usage();
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  if (diff) {
    if (positional.size() != 2) {
      Usage();
      return 2;
    }
    return DiffProfiles(positional[0], positional[1], top);
  }

  if (positional.size() != 1) {
    Usage();
    return 2;
  }
  auto profile = Load(positional[0]);
  if (!profile.ok()) {
    std::fprintf(stderr, "profdump: %s: %s\n", positional[0],
                 profile.status().ToString().c_str());
    return 2;
  }
  PrintHeader(positional[0], *profile);
  PrintPhaseTable(*profile);
  PrintSelfTable(*profile, phase, top);
  if (tree) PrintCallTree(*profile, tree_min_pct);
  return 0;
}
