// ReadCsv error reporting and quarantine: malformed input names the file,
// row, and column; strict reads never hand back a partially-filled table;
// permissive reads quarantine bad rows with exact counters.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "robust/fault_injection.h"
#include "table/csv.h"

namespace bellwether::table {
namespace {

Schema TwoColSchema() {
  return Schema({{"name", DataType::kString}, {"x", DataType::kDouble}});
}

std::string WriteFile(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << content;
  out.close();
  return path;
}

TEST(CsvRobustTest, WrongFieldCountNamesRowAndCounts) {
  const std::string path =
      WriteFile("wrong_count.csv", "name,x\nok,1.5\na,2.5,extra\n");
  auto t = ReadCsv(path, TwoColSchema());
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  const std::string msg = t.status().ToString();
  EXPECT_NE(msg.find(path + ":3:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("expected 2 fields, got 3"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(CsvRobustTest, BadDoubleNamesColumn) {
  const std::string path =
      WriteFile("bad_double.csv", "name,x\nok,1.5\nbad,oops\n");
  auto t = ReadCsv(path, TwoColSchema());
  ASSERT_FALSE(t.ok());
  const std::string msg = t.status().ToString();
  EXPECT_NE(msg.find(":3:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("column 'x' (#1)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("bad double 'oops'"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(CsvRobustTest, BadInt64NamesColumn) {
  const Schema schema({{"id", DataType::kInt64}});
  const std::string path = WriteFile("bad_int.csv", "id\n7\n7.5\n");
  auto t = ReadCsv(path, schema);
  ASSERT_FALSE(t.ok());
  const std::string msg = t.status().ToString();
  EXPECT_NE(msg.find("column 'id' (#0)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("bad int64 '7.5'"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(CsvRobustTest, UnterminatedQuoteNamesRow) {
  const std::string path =
      WriteFile("bad_quote.csv", "name,x\n\"oops,1.0\n");
  auto t = ReadCsv(path, TwoColSchema());
  ASSERT_FALSE(t.ok());
  const std::string msg = t.status().ToString();
  EXPECT_NE(msg.find(":2:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unterminated quote"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(CsvRobustTest, EmptyFileIsIoError) {
  const std::string path = WriteFile("empty.csv", "");
  auto t = ReadCsv(path, TwoColSchema());
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(CsvRobustTest, PermissiveQuarantinesBadRowsWithExactCounters) {
  const std::string path = WriteFile(
      "mixed.csv", "name,x\nok1,1.0\nbad,oops\nok2,2.0\nbad,1,2\nok3,3.0\n");
  CsvReadOptions options;
  options.row_policy = robust::RowErrorPolicy::kPermissive;
  robust::QuarantineStats stats;
  options.stats = &stats;
  auto t = ReadCsv(path, TwoColSchema(), options);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 3u);  // the three good rows, in order
  EXPECT_EQ(t->ValueAt(0, 0).ToString(), "ok1");
  EXPECT_EQ(t->ValueAt(2, 0).ToString(), "ok3");
  EXPECT_EQ(stats.rows_seen, 5);
  EXPECT_EQ(stats.rows_quarantined, 2);
  ASSERT_EQ(stats.sample_errors.size(), 2u);
  EXPECT_NE(stats.sample_errors[0].find("bad double"), std::string::npos);
  EXPECT_NE(stats.sample_errors[1].find("expected 2 fields"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvRobustTest, InjectedCorruptionQuarantineMatchesFireCount) {
  // A ~500-row file read with a 2% corruption rate: the number of
  // quarantined rows equals the number of injected faults exactly, and the
  // surviving rows are the non-corrupted ones in order.
  std::string content = "name,x\n";
  for (int i = 0; i < 500; ++i) {
    content += "row" + std::to_string(i) + "," + std::to_string(i) + ".5\n";
  }
  const std::string path = WriteFile("injected.csv", content);
  robust::FaultRegistry::Default().Disarm();
  robust::FaultRegistry::Default().set_seed(99);
  ASSERT_TRUE(
      robust::FaultRegistry::Default().Arm("csv.row:corrupt@0.02").ok());
  CsvReadOptions options;
  options.row_policy = robust::RowErrorPolicy::kPermissive;
  robust::QuarantineStats stats;
  options.stats = &stats;
  auto t = ReadCsv(path, TwoColSchema(), options);
  const int64_t injected =
      robust::FaultRegistry::Default().fires(robust::kFaultCsvRow);
  robust::FaultRegistry::Default().Disarm();
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_GT(injected, 0);
  EXPECT_EQ(stats.rows_quarantined, injected);
  EXPECT_EQ(t->num_rows(), 500u - static_cast<size_t>(injected));
  std::remove(path.c_str());
}

TEST(CsvRobustTest, StrictInjectedCorruptionFailsWithContext) {
  const std::string path = WriteFile("strict.csv", "name,x\nok,1.0\n");
  robust::FaultRegistry::Default().Disarm();
  ASSERT_TRUE(robust::FaultRegistry::Default().Arm("csv.row:corrupt@1").ok());
  auto t = ReadCsv(path, TwoColSchema());
  robust::FaultRegistry::Default().Disarm();
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().ToString().find("injected corrupt row"),
            std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bellwether::table
