#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "regression/dataset.h"
#include "regression/error.h"
#include "regression/linear_model.h"

namespace bellwether::regression {
namespace {

// y = 3 + 2*x with small deterministic structure, exact fit expected.
Dataset MakeExactLinear() {
  Dataset d(2);  // intercept + x
  for (double x : {0.0, 1.0, 2.0, 3.0, 4.0}) {
    d.Add({1.0, x}, 3.0 + 2.0 * x);
  }
  return d;
}

Dataset MakeNoisyLinear(int n, double noise, uint64_t seed) {
  Rng rng(seed);
  Dataset d(3);
  for (int i = 0; i < n; ++i) {
    const double x1 = rng.NextDouble(-5, 5);
    const double x2 = rng.NextDouble(-5, 5);
    d.Add({1.0, x1, x2},
          1.5 - 2.0 * x1 + 0.5 * x2 + noise * rng.NextGaussian());
  }
  return d;
}

TEST(DatasetTest, AddAndAccess) {
  Dataset d = MakeExactLinear();
  EXPECT_EQ(d.num_examples(), 5u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_DOUBLE_EQ(d.x(2)[1], 2.0);
  EXPECT_DOUBLE_EQ(d.y(2), 7.0);
  EXPECT_DOUBLE_EQ(d.w(2), 1.0);
}

TEST(DatasetTest, Subset) {
  Dataset d = MakeExactLinear();
  Dataset s = d.Subset({0, 4});
  EXPECT_EQ(s.num_examples(), 2u);
  EXPECT_DOUBLE_EQ(s.y(1), 11.0);
}

TEST(LinearModelTest, ExactRecovery) {
  auto model = FitLeastSquares(MakeExactLinear());
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->beta()[0], 3.0, 1e-9);
  EXPECT_NEAR(model->beta()[1], 2.0, 1e-9);
  EXPECT_NEAR(model->Predict({1.0, 10.0}), 23.0, 1e-8);
}

TEST(LinearModelTest, NoisyRecovery) {
  auto model = FitLeastSquares(MakeNoisyLinear(2000, 0.1, 5));
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->beta()[0], 1.5, 0.05);
  EXPECT_NEAR(model->beta()[1], -2.0, 0.05);
  EXPECT_NEAR(model->beta()[2], 0.5, 0.05);
}

TEST(LinearModelTest, FitFailsOnEmpty) {
  RegressionSuffStats stats(2);
  EXPECT_FALSE(stats.Fit().ok());
  EXPECT_FALSE(stats.TrainingSse().ok());
}

TEST(SuffStatsTest, WlsDownweightsOutliers) {
  // Clean line y = x plus one gross outlier with negligible weight.
  Dataset d(2);
  d.AddWeighted({1.0, 1.0}, 1.0, 1.0);
  d.AddWeighted({1.0, 2.0}, 2.0, 1.0);
  d.AddWeighted({1.0, 3.0}, 3.0, 1.0);
  d.AddWeighted({1.0, 4.0}, 100.0, 1e-8);
  auto model = FitLeastSquares(d);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->beta()[0], 0.0, 1e-3);
  EXPECT_NEAR(model->beta()[1], 1.0, 1e-3);
}

// Theorem 1: g is fixed-size and q (element-wise sum) recombines exactly —
// merged statistics over any partition equal the monolithic statistics.
class SuffStatsMergeTest : public ::testing::TestWithParam<int> {};

TEST_P(SuffStatsMergeTest, MergeEqualsMonolithic) {
  Rng rng(GetParam());
  const size_t p = 1 + rng.NextUint64(5);
  Dataset d(p);
  const int n = 50 + static_cast<int>(rng.NextUint64(100));
  std::vector<double> x(p);
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.NextDouble(-3, 3);
    d.AddWeighted(x, rng.NextDouble(-10, 10), rng.NextDouble(0.1, 2.0));
  }
  RegressionSuffStats whole(p);
  whole.AddDataset(d);

  // Split into 3 random parts.
  RegressionSuffStats parts[3] = {RegressionSuffStats(p),
                                  RegressionSuffStats(p),
                                  RegressionSuffStats(p)};
  for (size_t i = 0; i < d.num_examples(); ++i) {
    parts[rng.NextUint64(3)].Add(d.x(i), d.y(i), d.w(i));
  }
  RegressionSuffStats merged(p);
  for (auto& part : parts) merged.Merge(part);

  EXPECT_EQ(merged.num_examples(), whole.num_examples());
  EXPECT_NEAR(merged.ytwy(), whole.ytwy(), 1e-7);
  EXPECT_LT(merged.xtwx().DistanceTo(whole.xtwx()), 1e-7);
  ASSERT_TRUE(whole.TrainingSse().ok());
  ASSERT_TRUE(merged.TrainingSse().ok());
  EXPECT_NEAR(*merged.TrainingSse(), *whole.TrainingSse(),
              1e-6 * (1.0 + *whole.TrainingSse()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuffStatsMergeTest, ::testing::Range(1, 11));

TEST(SuffStatsTest, MergeIntoDefaultConstructed) {
  RegressionSuffStats a;  // empty, arity 0
  RegressionSuffStats b(2);
  b.Add(std::vector<double>{1.0, 2.0}.data(), 3.0);
  a.Merge(b);
  EXPECT_EQ(a.num_examples(), 1);
  EXPECT_EQ(a.num_features(), 2u);
}

TEST(SuffStatsTest, SseMatchesDirectComputation) {
  Dataset d = MakeNoisyLinear(200, 1.0, 9);
  RegressionSuffStats stats(d.num_features());
  stats.AddDataset(d);
  auto model = stats.Fit();
  ASSERT_TRUE(model.ok());
  double direct = 0.0;
  for (size_t i = 0; i < d.num_examples(); ++i) {
    const double e = d.y(i) - model->Predict(d.x(i));
    direct += e * e;
  }
  ASSERT_TRUE(stats.TrainingSse().ok());
  EXPECT_NEAR(*stats.TrainingSse(), direct, 1e-6 * (1.0 + direct));
}

TEST(SuffStatsTest, InterpolatingModelHasZeroMse) {
  // n == p: degrees of freedom 0.
  Dataset d(2);
  d.Add({1.0, 1.0}, 5.0);
  d.Add({1.0, 2.0}, 7.0);
  RegressionSuffStats stats(2);
  stats.AddDataset(d);
  ASSERT_TRUE(stats.TrainingMse().ok());
  EXPECT_DOUBLE_EQ(*stats.TrainingMse(), 0.0);
}

TEST(SuffStatsTest, ResetClears) {
  RegressionSuffStats stats(2);
  stats.Add(std::vector<double>{1.0, 1.0}.data(), 2.0);
  stats.Reset();
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.num_features(), 2u);
}

TEST(ErrorTest, NormalQuantiles) {
  EXPECT_NEAR(NormalQuantileTwoSided(0.95), 1.959964, 1e-4);
  EXPECT_NEAR(NormalQuantileTwoSided(0.99), 2.575829, 1e-4);
  EXPECT_NEAR(NormalQuantileTwoSided(0.90), 1.644854, 1e-4);
}

TEST(ErrorTest, ConfidenceBounds) {
  ErrorStats e;
  e.rmse = 10.0;
  e.stddev = 2.0;
  e.num_folds = 4;
  const double ub = e.UpperConfidenceBound(0.95);
  const double lb = e.LowerConfidenceBound(0.95);
  EXPECT_NEAR(ub, 10.0 + 1.959964 * 2.0 / 2.0, 1e-3);
  EXPECT_NEAR(lb, 10.0 - 1.959964 * 2.0 / 2.0, 1e-3);
  // Degenerate spread: bound equals the estimate.
  e.stddev = 0.0;
  EXPECT_DOUBLE_EQ(e.UpperConfidenceBound(0.99), 10.0);
}

TEST(ErrorTest, TrainingErrorApproximatesNoiseLevel) {
  Dataset d = MakeNoisyLinear(2000, 2.0, 13);
  auto err = TrainingSetError(d);
  ASSERT_TRUE(err.ok());
  EXPECT_NEAR(err->rmse, 2.0, 0.15);
}

TEST(ErrorTest, CrossValidationApproximatesNoiseLevel) {
  Dataset d = MakeNoisyLinear(1000, 2.0, 17);
  Rng rng(1);
  auto err = CrossValidationError(d, 10, &rng);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->num_folds, 10);
  EXPECT_NEAR(err->rmse, 2.0, 0.25);
  EXPECT_GT(err->stddev, 0.0);
}

TEST(ErrorTest, TrainingAndCvAgreeForLinearModels) {
  // §7.1 Fig. 7(c): for simple linear models, training-set error tracks
  // cross-validation error closely.
  Dataset d = MakeNoisyLinear(800, 1.5, 23);
  Rng rng(2);
  auto cv = CrossValidationError(d, 10, &rng);
  auto tr = TrainingSetError(d);
  ASSERT_TRUE(cv.ok());
  ASSERT_TRUE(tr.ok());
  EXPECT_NEAR(cv->rmse, tr->rmse, 0.1 * tr->rmse);
}

TEST(ErrorTest, CvIsDeterministicGivenSeed) {
  Dataset d = MakeNoisyLinear(300, 1.0, 29);
  Rng r1(7), r2(7);
  auto a = CrossValidationError(d, 10, &r1);
  auto b = CrossValidationError(d, 10, &r2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->rmse, b->rmse);
}

TEST(ErrorTest, CvRejectsTinyInputs) {
  Dataset d(1);
  d.Add({1.0}, 1.0);
  Rng rng(1);
  EXPECT_FALSE(CrossValidationError(d, 10, &rng).ok());
}

TEST(ErrorTest, EvaluateRmseKnownValue) {
  LinearModel model({0.0, 1.0});  // y_hat = x
  Dataset d(2);
  d.Add({1.0, 1.0}, 2.0);  // error 1
  d.Add({1.0, 2.0}, 2.0);  // error 0
  EXPECT_NEAR(EvaluateRmse(model, d), std::sqrt(0.5), 1e-12);
}

}  // namespace
}  // namespace bellwether::regression
