#include <gtest/gtest.h>

#include <cmath>

#include "core/multi_instance.h"
#include "core/training_data_gen.h"
#include "datagen/mail_order.h"

namespace bellwether::core {
namespace {

class MultiInstanceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::MailOrderConfig config;
    config.num_items = 60;
    config.density = 0.8;
    config.seed = 101;
    dataset_ =
        new datagen::MailOrderDataset(datagen::GenerateMailOrder(config));
    spec_ = new BellwetherSpec(dataset_->MakeSpec(40.0, 0.4));
  }
  static void TearDownTestSuite() {
    delete spec_;
    delete dataset_;
  }
  static datagen::MailOrderDataset* dataset_;
  static BellwetherSpec* spec_;
};

datagen::MailOrderDataset* MultiInstanceTest::dataset_ = nullptr;
BellwetherSpec* MultiInstanceTest::spec_ = nullptr;

TEST_F(MultiInstanceTest, BagShapesAreConsistent) {
  const olap::RegionId region = *spec_->space->FindRegion({"1-3", "MD"});
  auto bags = GenerateBagTrainingSet(*spec_, region);
  ASSERT_TRUE(bags.ok()) << bags.status().ToString();
  ASSERT_GT(bags->bags.size(), 0u);
  EXPECT_EQ(bags->bags.size(), bags->targets.size());
  // intercept + RDExpense + 4 regional features.
  EXPECT_EQ(bags->num_features, 6);
  for (const auto& bag : bags->bags) {
    EXPECT_GT(bag.num_instances(), 0u);
    // A window of 3 months over one state has at most 3 finest cells.
    EXPECT_LE(bag.num_instances(), 3u);
    EXPECT_EQ(bag.num_features, bags->num_features);
    for (size_t k = 0; k < bag.num_instances(); ++k) {
      EXPECT_DOUBLE_EQ(bag.instance(k)[0], 1.0);  // intercept per instance
    }
  }
}

TEST_F(MultiInstanceTest, InstancesSumToAggregatedFeatures) {
  // Summing the per-cell RegionalProfit instances of a bag must equal the
  // aggregated RegionalProfit feature of the standard (single-vector) path.
  const olap::RegionId region = *spec_->space->FindRegion({"1-3", "MD"});
  auto bags = GenerateBagTrainingSet(*spec_, region);
  ASSERT_TRUE(bags.ok());
  auto flat = GenerateRegionTrainingSetNaive(*spec_, region);
  ASSERT_TRUE(flat.ok());
  // Feature layout: [intercept, RDExpense, RegionalProfit, ...]; profit is
  // index 2 in both representations.
  for (const auto& bag : bags->bags) {
    const int64_t row = FindItemRow(*flat, bag.item);
    if (row < 0) continue;
    double instance_sum = 0.0;
    for (size_t k = 0; k < bag.num_instances(); ++k) {
      instance_sum += bag.instance(k)[2];
    }
    EXPECT_NEAR(instance_sum, flat->row(row)[2],
                1e-9 * (1.0 + std::fabs(instance_sum)));
  }
}

TEST_F(MultiInstanceTest, MeanEmbeddingFitAndPredict) {
  const olap::RegionId region = *spec_->space->FindRegion({"1-4", "MD"});
  auto bags = GenerateBagTrainingSet(*spec_, region);
  ASSERT_TRUE(bags.ok());
  auto model = MeanEmbeddingModel::Fit(*bags);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  // In-sample predictions correlate with the targets.
  double sse = 0.0, sst = 0.0, mean = 0.0;
  for (double t : bags->targets) mean += t;
  mean /= bags->targets.size();
  for (size_t i = 0; i < bags->bags.size(); ++i) {
    auto p = model->Predict(bags->bags[i]);
    ASSERT_TRUE(p.ok());
    sse += (*p - bags->targets[i]) * (*p - bags->targets[i]);
    sst += (bags->targets[i] - mean) * (bags->targets[i] - mean);
  }
  EXPECT_LT(sse, 0.5 * sst);  // R^2 > 0.5 in the planted state
}

TEST_F(MultiInstanceTest, PredictRejectsEmptyBag) {
  MeanEmbeddingModel model{regression::LinearModel({1.0, 2.0})};
  InstanceBag empty;
  empty.num_features = 2;
  EXPECT_FALSE(model.Predict(empty).ok());
}

TEST_F(MultiInstanceTest, CrossValidateBagsRuns) {
  const olap::RegionId region = *spec_->space->FindRegion({"1-4", "MD"});
  auto bags = GenerateBagTrainingSet(*spec_, region);
  ASSERT_TRUE(bags.ok());
  Rng rng(3);
  auto err = CrossValidateBags(*bags, 5, &rng);
  ASSERT_TRUE(err.ok());
  EXPECT_GT(err->rmse, 0.0);
  EXPECT_EQ(err->num_folds, 5);
}

TEST_F(MultiInstanceTest, SearchFindsPlantedStateRegion) {
  MiSearchOptions options;
  options.cv_folds = 5;
  options.min_bags = 20;
  auto result = RunMultiInstanceSearch(*spec_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->found());
  EXPECT_GT(result->scores.size(), 5u);
  // The chosen region's location coordinate is the planted state.
  EXPECT_EQ(spec_->space->Decode(result->bellwether)[1],
            dataset_->planted_state_node)
      << spec_->space->RegionLabel(result->bellwether);
  // Every scored region respects the cost constraint.
  for (const auto& [region, rmse] : result->scores) {
    EXPECT_LE(spec_->cost->RegionCost(region), spec_->budget);
    EXPECT_GE(rmse, result->error.rmse - 1e-12);
  }
}

}  // namespace
}  // namespace bellwether::core
