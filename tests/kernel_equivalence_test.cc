// Randomized property tests pinning the optimized kernels of the SIMD/
// cache-conscious pass to retained reference implementations:
//
//  * RegressionSuffStats packed Add / batched AddBatch vs a naive full-
//    matrix reference. The packed kernels keep the per-element left-to-
//    right summation order of the scalar path, but the compiler is free to
//    contract a*b+c into FMA differently per loop (-ffp-contract), so the
//    comparison uses a small documented relative bound rather than bit
//    equality.
//  * Merge and the flat NumericAgg MergeSlice run: pure same-order
//    additions, compared exactly.
//  * FromComponents / xtwx() unpack-pack round trips: exact.
//
// Determinism of *one binary* across thread counts and checkpoint resume is
// covered by parallel_determinism_test and robust_test; these tests pin the
// numerics of the kernels themselves.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "datagen/hierarchy_util.h"
#include "linalg/matrix.h"
#include "olap/cube.h"
#include "olap/region.h"
#include "regression/linear_model.h"

namespace bellwether {
namespace {

using regression::RegressionSuffStats;

// Relative bound for values that may differ only by FMA contraction
// choices: a handful of ULPs. 64 * eps is ~1.4e-14 relative — far below
// any tolerance the consumers use, far above real contraction drift.
constexpr double kContractionRelBound = 64 * 1e-16;

void ExpectClose(double a, double b, const char* what) {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  EXPECT_LE(std::abs(a - b), kContractionRelBound * scale)
      << what << ": " << a << " vs " << b;
}

// Reference accumulator: the pre-packing implementation — full p x p
// matrix, scalar rank-1 updates.
struct RefSuffStats {
  explicit RefSuffStats(size_t p)
      : p(p), xtwx(p, p), xtwy(p, 0.0), ytwy(0.0), n(0), sum_w(0.0) {}

  void Add(const double* x, double y, double w) {
    for (size_t r = 0; r < p; ++r) {
      const double wr = w * x[r];
      for (size_t c = 0; c < p; ++c) xtwx(r, c) += wr * x[c];
      xtwy[r] += wr * y;
    }
    ytwy += w * y * y;
    ++n;
    sum_w += w;
  }

  void Merge(const RefSuffStats& o) {
    xtwx += o.xtwx;
    for (size_t j = 0; j < p; ++j) xtwy[j] += o.xtwy[j];
    ytwy += o.ytwy;
    n += o.n;
    sum_w += o.sum_w;
  }

  size_t p;
  linalg::Matrix xtwx;
  linalg::Vector xtwy;
  double ytwy;
  int64_t n;
  double sum_w;
};

std::vector<double> RandomRows(Rng& rng, size_t n, size_t p) {
  std::vector<double> rows(n * p);
  for (size_t i = 0; i < n; ++i) {
    rows[i * p] = 1.0;  // intercept, like real designs
    for (size_t j = 1; j < p; ++j) {
      rows[i * p + j] = rng.NextDouble(-10, 10);
    }
  }
  return rows;
}

void CompareToRef(const RegressionSuffStats& s, const RefSuffStats& ref) {
  ASSERT_EQ(s.num_features(), ref.p);
  EXPECT_EQ(s.num_examples(), ref.n);
  ExpectClose(s.sum_weights(), ref.sum_w, "sum_w");
  ExpectClose(s.ytwy(), ref.ytwy, "ytwy");
  const linalg::Matrix full = s.xtwx();
  for (size_t r = 0; r < ref.p; ++r) {
    ExpectClose(s.xtwy()[r], ref.xtwy[r], "xtwy");
    // The packed kernel computes the upper triangle; the reference fills
    // both halves with (potentially ulp-asymmetric) products. Compare
    // against the upper-triangle entry.
    for (size_t c = r; c < ref.p; ++c) {
      ExpectClose(full(r, c), ref.xtwx(r, c), "xtwx");
      EXPECT_EQ(full(r, c), full(c, r)) << "unpack must be symmetric";
    }
  }
}

class SuffStatsEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SuffStatsEquivalenceTest, PackedAddMatchesReference) {
  const size_t p = GetParam();
  Rng rng(100 + p);
  const size_t n = 257;
  const auto rows = RandomRows(rng, n, p);
  RegressionSuffStats packed(p);
  RefSuffStats ref(p);
  for (size_t i = 0; i < n; ++i) {
    const double y = rng.NextDouble(-5, 5);
    const double w = rng.NextDouble(0.1, 2.0);
    packed.Add(rows.data() + i * p, y, w);
    ref.Add(rows.data() + i * p, y, w);
  }
  CompareToRef(packed, ref);
}

TEST_P(SuffStatsEquivalenceTest, AddBatchMatchesSequentialAdds) {
  const size_t p = GetParam();
  Rng rng(200 + p);
  // Deliberately not a multiple of 4: exercises the blocked body + tail.
  const size_t n = 123;
  const auto rows = RandomRows(rng, n, p);
  std::vector<double> ys(n), ws(n);
  for (size_t i = 0; i < n; ++i) {
    ys[i] = rng.NextDouble(-5, 5);
    ws[i] = rng.NextDouble(0.1, 2.0);
  }

  RegressionSuffStats batched(p);
  batched.AddBatch(rows.data(), ys.data(), ws.data(), n);
  RegressionSuffStats sequential(p);
  for (size_t i = 0; i < n; ++i) {
    sequential.Add(rows.data() + i * p, ys[i], ws[i]);
  }

  EXPECT_EQ(batched.num_examples(), sequential.num_examples());
  ExpectClose(batched.sum_weights(), sequential.sum_weights(), "sum_w");
  ExpectClose(batched.ytwy(), sequential.ytwy(), "ytwy");
  for (size_t j = 0; j < p; ++j) {
    ExpectClose(batched.xtwy()[j], sequential.xtwy()[j], "xtwy");
  }
  const auto& bp = batched.packed_xtwx();
  const auto& sp = sequential.packed_xtwx();
  ASSERT_EQ(bp.size(), sp.size());
  for (size_t i = 0; i < bp.size(); ++i) {
    ExpectClose(bp[i], sp[i], "packed xtwx");
  }

  // Null weights == all-ones weights, bit-exact.
  RegressionSuffStats ols_null(p), ols_ones(p);
  std::vector<double> ones(n, 1.0);
  ols_null.AddBatch(rows.data(), ys.data(), nullptr, n);
  ols_ones.AddBatch(rows.data(), ys.data(), ones.data(), n);
  EXPECT_EQ(ols_null.packed_xtwx(), ols_ones.packed_xtwx());
  EXPECT_EQ(ols_null.xtwy(), ols_ones.xtwy());
  EXPECT_EQ(ols_null.ytwy(), ols_ones.ytwy());
}

TEST_P(SuffStatsEquivalenceTest, MergeIsExactFlatSum) {
  const size_t p = GetParam();
  Rng rng(300 + p);
  const size_t n = 64;
  const auto rows_a = RandomRows(rng, n, p);
  const auto rows_b = RandomRows(rng, n, p);
  RegressionSuffStats a(p), b(p);
  RefSuffStats ra(p), rb(p);
  for (size_t i = 0; i < n; ++i) {
    const double ya = rng.NextDouble(), yb = rng.NextDouble();
    a.Add(rows_a.data() + i * p, ya);
    ra.Add(rows_a.data() + i * p, ya, 1.0);
    b.Add(rows_b.data() + i * p, yb);
    rb.Add(rows_b.data() + i * p, yb, 1.0);
  }
  // Exactness of the flat sum: merging packed stats must equal element-wise
  // addition of the individual packed arrays, bit for bit.
  std::vector<double> expect = a.packed_xtwx();
  for (size_t i = 0; i < expect.size(); ++i) {
    expect[i] += b.packed_xtwx()[i];
  }
  a.Merge(b);
  EXPECT_EQ(a.packed_xtwx(), expect);
  // And it still agrees with the reference merge up to contraction drift.
  ra.Merge(rb);
  CompareToRef(a, ra);
}

TEST_P(SuffStatsEquivalenceTest, FromComponentsRoundTripsExactly) {
  const size_t p = GetParam();
  Rng rng(400 + p);
  const size_t n = 50;
  const auto rows = RandomRows(rng, n, p);
  RegressionSuffStats s(p);
  for (size_t i = 0; i < n; ++i) {
    s.Add(rows.data() + i * p, rng.NextDouble(), rng.NextDouble(0.5, 1.5));
  }
  const RegressionSuffStats back = RegressionSuffStats::FromComponents(
      s.xtwx(), s.xtwy(), s.ytwy(), s.num_examples(), s.sum_weights());
  EXPECT_EQ(back.packed_xtwx(), s.packed_xtwx());
  EXPECT_EQ(back.xtwy(), s.xtwy());
  EXPECT_EQ(back.ytwy(), s.ytwy());
  EXPECT_EQ(back.num_examples(), s.num_examples());
  EXPECT_EQ(back.sum_weights(), s.sum_weights());
}

TEST_P(SuffStatsEquivalenceTest, PackedIndexMatchesUnpackedLayout) {
  const size_t p = GetParam();
  Rng rng(500 + p);
  RegressionSuffStats s(p);
  std::vector<double> x(p);
  for (int i = 0; i < 20; ++i) {
    for (auto& v : x) v = rng.NextDouble(-3, 3);
    s.Add(x.data(), rng.NextDouble());
  }
  const linalg::Matrix full = s.xtwx();
  ASSERT_EQ(s.packed_xtwx().size(), RegressionSuffStats::PackedSize(p));
  for (size_t r = 0; r < p; ++r) {
    for (size_t c = r; c < p; ++c) {
      EXPECT_EQ(s.packed_xtwx()[RegressionSuffStats::PackedIndex(p, r, c)],
                full(r, c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SuffStatsEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 13, 24));

// ---- Flat CUBE rollup ----

// Reference for the NumericAgg run specialization: the generic per-cell
// skip-empty merge (identical to the pre-flattening MergeSlice body).
void RefMergeRun(olap::NumericAgg* dst, const olap::NumericAgg* src,
                 size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (!src[i].empty()) dst[i].Merge(src[i]);
  }
}

TEST(FlatMergeRunTest, NumericAggRunMatchesPerCellReferenceExactly) {
  Rng rng(42);
  // Sizes around the chunk boundary (32) plus a big sparse run.
  for (size_t n : {0ul, 1ul, 31ul, 32ul, 33ul, 64ul, 100ul, 1000ul}) {
    for (double density : {0.0, 0.05, 0.5, 1.0}) {
      std::vector<olap::NumericAgg> src(n), dst(n);
      for (size_t i = 0; i < n; ++i) {
        if (rng.NextDouble() < density) {
          const int k = 1 + static_cast<int>(rng.NextUint64(3));
          for (int j = 0; j < k; ++j) src[i].Add(rng.NextDouble(-100, 100));
        }
        if (rng.NextDouble() < density) {
          dst[i].Add(rng.NextDouble(-100, 100));
        }
      }
      std::vector<olap::NumericAgg> expect = dst;
      RefMergeRun(expect.data(), src.data(), n);
      olap::detail::MergeAccRun(dst.data(), src.data(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(dst[i].sum, expect[i].sum);
        EXPECT_EQ(dst[i].count, expect[i].count);
        EXPECT_EQ(dst[i].min, expect[i].min);
        EXPECT_EQ(dst[i].max, expect[i].max);
      }
    }
  }
}

TEST(FlatMergeRunTest, FkSetAggRunMatchesReference) {
  Rng rng(43);
  const size_t n = 100;
  std::vector<olap::FkSetAgg> src(n), dst(n);
  for (size_t i = 0; i < n; ++i) {
    const int k = static_cast<int>(rng.NextUint64(5));
    for (int j = 0; j < k; ++j) {
      src[i].Add(static_cast<int64_t>(rng.NextUint64(20)));
    }
    if (rng.NextDouble() < 0.5) {
      dst[i].Add(static_cast<int64_t>(rng.NextUint64(20)));
    }
  }
  std::vector<olap::FkSetAgg> expect = dst;
  for (size_t i = 0; i < n; ++i) {
    if (!src[i].empty()) expect[i].Merge(src[i]);
  }
  olap::detail::MergeAccRun(dst.data(), src.data(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(dst[i].keys, expect[i].keys);
}

// End-to-end rollup oracle: aggregate every draw directly into every
// containing region and compare against the cube after Rollup(). count/min/
// max are exact (order-independent); sum is compared within the
// contraction/reassociation bound because the rollup tree adds partial sums
// in a different order than direct accumulation.
TEST(FlatRollupTest, RollupMatchesContainingRegionOracle) {
  std::vector<olap::Dimension> dims;
  dims.emplace_back(olap::IntervalDimension("Time", 6));
  dims.emplace_back(
      datagen::BuildBalancedHierarchy("Loc", "All", {3, 3}, "L"));
  olap::RegionSpace space(std::move(dims));
  const auto& loc = std::get<olap::HierarchicalDimension>(space.dim(1));
  const auto& leaves = loc.leaves();

  const int32_t items = 7;
  olap::RegionItemCube<olap::NumericAgg> cube(&space, items);
  std::vector<std::vector<olap::NumericAgg>> oracle(
      space.NumRegions(), std::vector<olap::NumericAgg>(items));
  Rng rng(44);
  for (int draw = 0; draw < 500; ++draw) {
    const int32_t item = static_cast<int32_t>(rng.NextUint64(items));
    const olap::PointCoords point{
        static_cast<int32_t>(1 + rng.NextUint64(6)),
        leaves[rng.NextUint64(leaves.size())]};
    const double v = rng.NextDouble(-50, 50);
    cube.BaseCell(point, item).Add(v);
    space.ForEachContainingRegion(
        point, [&](olap::RegionId r) { oracle[r][item].Add(v); });
  }
  cube.Rollup();
  for (olap::RegionId r = 0; r < space.NumRegions(); ++r) {
    for (int32_t i = 0; i < items; ++i) {
      const auto& got = cube.Cell(r, i);
      const auto& want = oracle[r][i];
      EXPECT_EQ(got.count, want.count) << "region " << r << " item " << i;
      EXPECT_EQ(got.min, want.min);
      EXPECT_EQ(got.max, want.max);
      const double scale =
          std::max({std::abs(got.sum), std::abs(want.sum), 1.0});
      EXPECT_LE(std::abs(got.sum - want.sum), 1e-10 * scale);
    }
  }
}

}  // namespace
}  // namespace bellwether
