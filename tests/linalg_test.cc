#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/matrix.h"

namespace bellwether::linalg {
namespace {

TEST(MatrixTest, FromRowsAndAccess) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

TEST(MatrixTest, IdentityMultiplyIsNoop) {
  Matrix m = Matrix::FromRows({{2, -1}, {3, 5}});
  Matrix prod = Matrix::Identity(2).Multiply(m);
  EXPECT_TRUE(prod == m);
}

TEST(MatrixTest, TransposeTwiceIsIdentity) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_TRUE(m.Transposed().Transposed() == m);
}

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Vector v = a.MultiplyVector({1.0, 1.0});
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(MatrixTest, PlusEqualsAndScale) {
  Matrix a = Matrix::FromRows({{1, 1}, {1, 1}});
  Matrix b = Matrix::FromRows({{2, 0}, {0, 2}});
  a += b;
  a *= 0.5;
  EXPECT_DOUBLE_EQ(a(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.5);
}

TEST(MatrixTest, OuterProductAccumulation) {
  Matrix acc(2, 2);
  AddScaledOuterProduct({1.0, 2.0}, 2.0, &acc);
  EXPECT_DOUBLE_EQ(acc(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(acc(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(acc(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(acc(1, 1), 8.0);
}

TEST(MatrixTest, Dot) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
}

TEST(SolveTest, SolveSpdKnownSystem) {
  // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5].
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  auto x = SolveSpd(a, {10, 8});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.75, 1e-12);
  EXPECT_NEAR((*x)[1], 1.5, 1e-12);
}

TEST(SolveTest, SolveLuWithPivoting) {
  // Requires pivoting: zero on the initial diagonal.
  Matrix a = Matrix::FromRows({{0, 1}, {1, 0}});
  auto x = SolveLu(a, {3, 5});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 5.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(SolveTest, SolveLuRejectsSingular) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  auto x = SolveLu(a, {1, 2});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kNumericError);
}

TEST(SolveTest, SolveSpdRidgeFallbackOnSingular) {
  // Rank-deficient PSD matrix: the ridge fallback should still produce a
  // finite solution with a small residual on the range of A.
  Matrix a = Matrix::FromRows({{1, 1}, {1, 1}});
  auto x = SolveSpd(a, {2, 2});
  ASSERT_TRUE(x.ok());
  const Vector r = a.MultiplyVector(*x);
  EXPECT_NEAR(r[0], 2.0, 1e-3);
  EXPECT_NEAR(r[1], 2.0, 1e-3);
}

TEST(SolveTest, SolveSpdShapeMismatch) {
  Matrix a = Matrix::FromRows({{1, 0}, {0, 1}});
  EXPECT_FALSE(SolveSpd(a, {1.0}).ok());
}

TEST(SolveTest, InvertSpdTimesSelfIsIdentity) {
  Matrix a = Matrix::FromRows({{5, 1, 0}, {1, 4, 1}, {0, 1, 3}});
  auto inv = InvertSpd(a);
  ASSERT_TRUE(inv.ok());
  const Matrix prod = a.Multiply(*inv);
  EXPECT_LT(prod.DistanceTo(Matrix::Identity(3)), 1e-9);
}

// Property: SolveSpd solves random SPD systems (A = B'B + I) to high
// accuracy, across sizes.
class SolveSpdPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SolveSpdPropertyTest, RandomSpdSystemsSolve) {
  const int n = GetParam();
  Rng rng(1000 + n);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix b(n, n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) b(r, c) = rng.NextGaussian();
    }
    Matrix a = b.Transposed().Multiply(b);
    for (int i = 0; i < n; ++i) a(i, i) += 1.0;
    Vector rhs(n);
    for (auto& v : rhs) v = rng.NextGaussian();
    auto x = SolveSpd(a, rhs);
    ASSERT_TRUE(x.ok());
    const Vector back = a.MultiplyVector(*x);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(back[i], rhs[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolveSpdPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace bellwether::linalg
