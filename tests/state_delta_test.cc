// The incremental-maintenance contract of core::BellwetherState
// (DESIGN.md, algebraic state layer): for any split of the fact-row stream
// into delta batches, the ApplyDelta-maintained cube is bit-identical —
// cells, artifact bytes, and the report's logical sections — to a
// from-scratch rebuild over the concatenated stream, at one and many
// threads, with deterministic faults armed, and across kill/reopen of the
// persisted state. Plus the building blocks: DirtySet semantics, the
// dirty-cell re-derivation economy, FinalizeSearch parity with the
// sequential basic search, and the StateDeltaSink adapter.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/basic_search.h"
#include "core/bellwether_cube.h"
#include "core/bellwether_state.h"
#include "core/model_io.h"
#include "datagen/simulation.h"
#include "olap/dirty.h"
#include "olap/region.h"
#include "robust/fault_injection.h"
#include "storage/training_data.h"

namespace bellwether::core {
namespace {

class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec) {
    robust::FaultRegistry::Default().Disarm();
    const Status st = robust::FaultRegistry::Default().Arm(spec);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  ~ScopedFaults() { robust::FaultRegistry::Default().Disarm(); }
};

datagen::SimulationDataset MakeSim(uint64_t seed) {
  datagen::SimulationConfig config;
  config.num_items = 200;
  config.generator_tree_nodes = 7;
  config.noise = 0.2;
  config.num_windows = 3;
  config.location_fanouts = {2, 2};
  config.seed = seed;
  return datagen::GenerateSimulation(config);
}

CubeBuildConfig MakeConfig() {
  CubeBuildConfig config;
  config.min_subset_size = 20;
  config.min_examples_per_model = 8;
  return config;
}

storage::RegionTrainingSet SliceRows(const storage::RegionTrainingSet& set,
                                     size_t lo, size_t hi) {
  storage::RegionTrainingSet out;
  out.region = set.region;
  out.num_features = set.num_features;
  for (size_t i = lo; i < hi; ++i) {
    out.items.push_back(set.items[i]);
    out.targets.push_back(set.targets[i]);
    for (int32_t f = 0; f < set.num_features; ++f) {
      out.features.push_back(set.features[i * set.num_features + f]);
    }
    if (set.weighted()) out.weights.push_back(set.weights[i]);
  }
  return out;
}

// Splits each region's rows into `num_batches` contiguous chunks at random
// boundaries; batch j holds chunk j of every region. Concatenating the
// batches restores the original row order exactly, so a from-scratch build
// over the unsplit sets is the ground truth for the delta-maintained state.
std::vector<std::vector<storage::RegionTrainingSet>> SplitIntoBatches(
    const std::vector<storage::RegionTrainingSet>& sets, int num_batches,
    Rng* rng) {
  std::vector<std::vector<storage::RegionTrainingSet>> batches(num_batches);
  for (const auto& set : sets) {
    const size_t n = set.num_examples();
    std::vector<size_t> cuts;
    cuts.push_back(0);
    for (int j = 1; j < num_batches; ++j) {
      cuts.push_back(static_cast<size_t>(rng->NextUint64(n + 1)));
    }
    cuts.push_back(n);
    std::sort(cuts.begin(), cuts.end());
    for (int j = 0; j < num_batches; ++j) {
      batches[j].push_back(SliceRows(set, cuts[j], cuts[j + 1]));
    }
  }
  return batches;
}

void ExpectCubesIdentical(const BellwetherCube& got,
                          const BellwetherCube& want) {
  ASSERT_EQ(got.cells().size(), want.cells().size());
  for (size_t i = 0; i < want.cells().size(); ++i) {
    const CubeCell& a = got.cells()[i];
    const CubeCell& b = want.cells()[i];
    EXPECT_EQ(a.subset, b.subset) << "cell " << i;
    EXPECT_EQ(a.subset_size, b.subset_size) << "cell " << i;
    EXPECT_EQ(a.has_model, b.has_model) << "cell " << i;
    EXPECT_EQ(a.region, b.region) << "cell " << i;
    EXPECT_EQ(a.error, b.error) << "cell " << i;
    EXPECT_EQ(a.model.beta(), b.model.beta()) << "cell " << i;
    EXPECT_EQ(a.degradation, b.degradation) << "cell " << i;
    EXPECT_EQ(a.fallback_pick, b.fallback_pick) << "cell " << i;
    EXPECT_EQ(a.has_cv, b.has_cv) << "cell " << i;
    if (b.has_cv) {
      EXPECT_EQ(a.cv.rmse, b.cv.rmse) << "cell " << i;
      EXPECT_EQ(a.cv.stddev, b.cv.stddev) << "cell " << i;
    }
  }
  EXPECT_EQ(got.build_telemetry().data_passes,
            want.build_telemetry().data_passes);
  EXPECT_EQ(got.build_telemetry().significant_subsets,
            want.build_telemetry().significant_subsets);
  EXPECT_EQ(got.build_telemetry().fallback_picks,
            want.build_telemetry().fallback_picks);
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// Saves both cubes and compares the artifact files byte for byte.
void ExpectSameArtifactBytes(const BellwetherCube& got,
                             const BellwetherCube& want,
                             const std::string& tag) {
  const std::string got_path = ::testing::TempDir() + "/" + tag + "_got.bwc";
  const std::string want_path = ::testing::TempDir() + "/" + tag + "_want.bwc";
  ASSERT_TRUE(SaveBellwetherCube(got, got_path).ok());
  ASSERT_TRUE(SaveBellwetherCube(want, want_path).ok());
  EXPECT_EQ(ReadAll(got_path), ReadAll(want_path));
  std::remove(got_path.c_str());
  std::remove(want_path.c_str());
}

Result<std::unique_ptr<BellwetherState>> NewState(
    std::shared_ptr<const ItemSubsetSpace> subsets,
    const CubeBuildConfig& config,
    const std::vector<uint8_t>* item_mask = nullptr) {
  BellwetherState::Options options;
  options.config = config;
  return BellwetherState::Init(std::move(subsets), std::move(options),
                               item_mask);
}

// ---- DirtySet ----

TEST(DirtySetTest, MarkCountClearAndAscendingVisit) {
  olap::DirtySet dirty(10);
  EXPECT_EQ(dirty.count(), 0);
  dirty.Mark(7);
  dirty.Mark(2);
  dirty.Mark(7);  // idempotent
  EXPECT_EQ(dirty.count(), 2);
  EXPECT_TRUE(dirty.IsMarked(2));
  EXPECT_TRUE(dirty.IsMarked(7));
  EXPECT_FALSE(dirty.IsMarked(3));
  std::vector<olap::RegionId> seen;
  dirty.ForEachMarked([&](olap::RegionId id) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<olap::RegionId>{2, 7}));
  dirty.Clear();
  EXPECT_EQ(dirty.count(), 0);
  EXPECT_FALSE(dirty.IsMarked(2));
  dirty.MarkAll();
  EXPECT_EQ(dirty.count(), 10);
}

TEST(DirtySetTest, MarkContainingRegionsIsTheAncestorClosure) {
  // All -> US {WI, MD}, KR over a 3-week incremental time dimension.
  olap::HierarchicalDimension loc("Location", "All");
  const olap::NodeId us = loc.AddNode("US", loc.root());
  const olap::NodeId wi = loc.AddNode("WI", us);
  loc.AddNode("MD", us);
  loc.AddNode("KR", loc.root());
  std::vector<olap::Dimension> dims;
  dims.emplace_back(olap::IntervalDimension("Time", 3));
  dims.emplace_back(loc);
  olap::RegionSpace space(std::move(dims));

  const olap::PointCoords point{2, wi};
  std::vector<olap::RegionId> expected;
  space.ForEachContainingRegion(point,
                                [&](olap::RegionId r) { expected.push_back(r); });
  std::sort(expected.begin(), expected.end());
  ASSERT_FALSE(expected.empty());

  olap::DirtySet dirty(space.NumRegions());
  olap::MarkContainingRegions(space, point, &dirty);
  EXPECT_EQ(dirty.count(), static_cast<int64_t>(expected.size()));
  std::vector<olap::RegionId> marked;
  dirty.ForEachMarked([&](olap::RegionId r) { marked.push_back(r); });
  EXPECT_EQ(marked, expected);
}

// ---- Keystone: delta-maintained == rebuilt, bit for bit ----

TEST(StateDeltaTest, DeltaEqualsRebuildForRandomSplits) {
  const CubeBuildConfig config = MakeConfig();
  for (uint64_t seed : {11u, 12u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    datagen::SimulationDataset sim = MakeSim(seed);
    auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
    ASSERT_TRUE(subsets.ok());

    // Ground truth 1: the historical single-scan builder over the full data.
    storage::MemoryTrainingData source(sim.sets);
    auto scan_cube = BuildBellwetherCubeSingleScan(&source, *subsets, config);
    ASSERT_TRUE(scan_cube.ok()) << scan_cube.status().ToString();
    ASSERT_FALSE(scan_cube->cells().empty());

    // Ground truth 2: an incremental state fed everything in one batch.
    auto rebuild = NewState(*subsets, config);
    ASSERT_TRUE(rebuild.ok());
    ASSERT_TRUE((*rebuild)->ApplyDelta(sim.sets).ok());
    auto rebuild_cube = (*rebuild)->Finalize();
    ASSERT_TRUE(rebuild_cube.ok()) << rebuild_cube.status().ToString();
    ExpectCubesIdentical(*rebuild_cube, *scan_cube);

    Rng rng(seed * 1000 + 7);
    for (int32_t threads : {1, 4}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      auto batches = SplitIntoBatches(sim.sets, /*num_batches=*/3, &rng);
      CubeBuildConfig par = config;
      par.exec.num_threads = threads;
      auto state = NewState(*subsets, par);
      ASSERT_TRUE(state.ok());
      for (auto& batch : batches) {
        ASSERT_TRUE((*state)->ApplyDelta(std::move(batch)).ok());
      }
      auto cube = (*state)->Finalize();
      ASSERT_TRUE(cube.ok()) << cube.status().ToString();
      ExpectCubesIdentical(*cube, *rebuild_cube);
      ExpectSameArtifactBytes(*cube, *scan_cube,
                              "delta_" + std::to_string(seed) + "_" +
                                  std::to_string(threads));
      // The report's logical sections — config, counts, fingerprint — match
      // the one-batch rebuild exactly (phases are timing and exempt).
      EXPECT_EQ(cube->build_report().LogicalJson(),
                rebuild_cube->build_report().LogicalJson());
    }
  }
}

TEST(StateDeltaTest, MaskedStateMatchesMaskedSingleScan) {
  datagen::SimulationDataset sim = MakeSim(21);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  const CubeBuildConfig config = MakeConfig();
  std::vector<uint8_t> mask((*subsets)->num_items(), 0);
  for (size_t i = 0; i < mask.size(); i += 3) mask[i] = 1;

  storage::MemoryTrainingData source(sim.sets);
  auto scan_cube =
      BuildBellwetherCubeSingleScan(&source, *subsets, config, &mask);
  ASSERT_TRUE(scan_cube.ok());

  Rng rng(99);
  auto batches = SplitIntoBatches(sim.sets, 2, &rng);
  auto state = NewState(*subsets, config, &mask);
  ASSERT_TRUE(state.ok());
  for (auto& batch : batches) {
    ASSERT_TRUE((*state)->ApplyDelta(std::move(batch)).ok());
  }
  auto cube = (*state)->Finalize();
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  ExpectCubesIdentical(*cube, *scan_cube);
}

// ---- Dirty-cell economy ----

TEST(StateDeltaTest, FinalizeReusesCleanCellsAndRederivesDirtyOnes) {
  datagen::SimulationDataset sim = MakeSim(31);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  const CubeBuildConfig config = MakeConfig();

  auto state = NewState(*subsets, config);
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE((*state)->ApplyDelta(sim.sets).ok());
  EXPECT_GT((*state)->dirty_cells(), 0);
  auto first = (*state)->Finalize();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*state)->dirty_cells(), 0);

  // No deltas since the last Finalize: everything is reused and the cube is
  // identical.
  auto again = (*state)->Finalize();
  ASSERT_TRUE(again.ok());
  ExpectCubesIdentical(*again, *first);

  // A small delta to one region dirties only the cells its items touch, and
  // the re-finalized cube equals a from-scratch rebuild over the
  // concatenated stream.
  storage::RegionTrainingSet small = SliceRows(sim.sets.front(), 0, 3);
  ASSERT_TRUE((*state)->ApplyDelta({small}).ok());
  const int64_t dirty = (*state)->dirty_cells();
  EXPECT_GT(dirty, 0);
  EXPECT_LT(dirty, (*state)->num_significant_subsets());
  auto updated = (*state)->Finalize();
  ASSERT_TRUE(updated.ok());

  auto rebuild = NewState(*subsets, config);
  ASSERT_TRUE(rebuild.ok());
  std::vector<storage::RegionTrainingSet> all = sim.sets;
  ASSERT_TRUE((*rebuild)->ApplyDelta(std::move(all)).ok());
  ASSERT_TRUE((*rebuild)->ApplyDelta({small}).ok());
  auto rebuild_cube = (*rebuild)->Finalize();
  ASSERT_TRUE(rebuild_cube.ok());
  ExpectCubesIdentical(*updated, *rebuild_cube);
}

// ---- Faults on the delta path ----

TEST(StateDeltaTest, EntryIoFaultIsTransactionalAndRetryable) {
  datagen::SimulationDataset sim = MakeSim(41);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  const CubeBuildConfig config = MakeConfig();

  auto state = NewState(*subsets, config);
  ASSERT_TRUE(state.ok());
  {
    ScopedFaults faults("state.delta:io@1");
    std::vector<storage::RegionTrainingSet> batch = sim.sets;
    const Status st = (*state)->ApplyDelta(std::move(batch));
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kIoError);
  }
  // The entry fault fires before any mutation: nothing was ingested.
  EXPECT_EQ((*state)->delta_batches(), 0);
  EXPECT_EQ((*state)->num_regions(), 0);
  EXPECT_EQ((*state)->dirty_cells(), 0);

  // Retrying the identical batch converges on the clean result.
  ASSERT_TRUE((*state)->ApplyDelta(sim.sets).ok());
  auto cube = (*state)->Finalize();
  ASSERT_TRUE(cube.ok());

  storage::MemoryTrainingData source(sim.sets);
  auto scan_cube = BuildBellwetherCubeSingleScan(&source, *subsets, config);
  ASSERT_TRUE(scan_cube.ok());
  ExpectCubesIdentical(*cube, *scan_cube);
}

TEST(StateDeltaTest, CrashMidBatchReopensFromSaveAndConverges) {
  datagen::SimulationDataset sim = MakeSim(51);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  CubeBuildConfig config = MakeConfig();
  config.checkpoint_path = ::testing::TempDir() + "/state_crash.bws";

  Rng rng(510);
  const auto batches = SplitIntoBatches(sim.sets, 2, &rng);

  // Reference: both batches applied cleanly.
  auto ref = NewState(*subsets, MakeConfig());
  ASSERT_TRUE(ref.ok());
  for (const auto& batch : batches) {
    std::vector<storage::RegionTrainingSet> copy = batch;
    ASSERT_TRUE((*ref)->ApplyDelta(std::move(copy)).ok());
  }
  auto ref_cube = (*ref)->Finalize();
  ASSERT_TRUE(ref_cube.ok());

  for (int32_t resume_threads : {1, 4}) {
    SCOPED_TRACE("resume_threads=" + std::to_string(resume_threads));
    {
      auto state = NewState(*subsets, config);
      ASSERT_TRUE(state.ok());
      std::vector<storage::RegionTrainingSet> first = batches[0];
      // Batch 1 lands and is saved at the batch boundary.
      ASSERT_TRUE((*state)->ApplyDelta(std::move(first)).ok());
      EXPECT_EQ((*state)->delta_batches(), 1);
      // Batch 2 is killed after its first region's commit: the in-memory
      // state now holds a partial batch and must be abandoned.
      ScopedFaults faults("state.delta:crash@1");
      std::vector<storage::RegionTrainingSet> second = batches[1];
      const Status st = (*state)->ApplyDelta(std::move(second));
      ASSERT_FALSE(st.ok());
      EXPECT_EQ(st.code(), StatusCode::kIoError);
    }
    // Reopen the last good save and re-apply the whole killed batch.
    auto reopened = BellwetherState::Open(config.checkpoint_path, *subsets);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ((*reopened)->delta_batches(), 1);
    exec::BellwetherExecOptions exec;
    exec.num_threads = resume_threads;
    (*reopened)->set_exec(exec);
    std::vector<storage::RegionTrainingSet> second = batches[1];
    ASSERT_TRUE((*reopened)->ApplyDelta(std::move(second)).ok());
    auto cube = (*reopened)->Finalize();
    ASSERT_TRUE(cube.ok()) << cube.status().ToString();
    ExpectCubesIdentical(*cube, *ref_cube);
    ExpectSameArtifactBytes(*cube, *ref_cube,
                            "crash_" + std::to_string(resume_threads));
    std::remove(config.checkpoint_path.c_str());
  }
}

// ---- Persistence ----

TEST(StateDeltaTest, SaveOpenRoundTripPreservesStateAndArtifacts) {
  datagen::SimulationDataset sim = MakeSim(61);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  const CubeBuildConfig config = MakeConfig();
  const std::string path = ::testing::TempDir() + "/state_roundtrip.bws";

  auto state = NewState(*subsets, config);
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE((*state)->ApplyDelta(sim.sets).ok());
  auto want = (*state)->Finalize();
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE((*state)->Save(path).ok());

  auto reopened = BellwetherState::Open(path, *subsets);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->fingerprint(), (*state)->fingerprint());
  EXPECT_EQ((*reopened)->num_regions(), (*state)->num_regions());
  EXPECT_EQ((*reopened)->delta_batches(), 1);
  auto got = (*reopened)->Finalize();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectCubesIdentical(*got, *want);
  ExpectSameArtifactBytes(*got, *want, "roundtrip");
  std::remove(path.c_str());
}

TEST(StateDeltaTest, OpenRejectsForeignSubsetSpace) {
  datagen::SimulationDataset sim = MakeSim(71);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  const std::string path = ::testing::TempDir() + "/state_foreign.bws";
  auto state = NewState(*subsets, MakeConfig());
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE((*state)->ApplyDelta(sim.sets).ok());
  ASSERT_TRUE((*state)->Save(path).ok());

  // A different simulation: different item universe, different subset
  // lattice — the stored fingerprint cannot match.
  datagen::SimulationConfig small;
  small.num_items = 80;
  small.generator_tree_nodes = 5;
  small.num_windows = 2;
  small.location_fanouts = {2};
  small.seed = 73;
  datagen::SimulationDataset tiny = datagen::GenerateSimulation(small);
  auto foreign = ItemSubsetSpace::Create(tiny.items, tiny.item_hierarchies);
  ASSERT_TRUE(foreign.ok());
  auto r = BellwetherState::Open(path, *foreign);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

// ---- Delta batch validation ----

TEST(StateDeltaTest, RejectsOutOfOrderBatchesAndSkipsEmptySets) {
  datagen::SimulationDataset sim = MakeSim(75);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  auto state = NewState(*subsets, MakeConfig());
  ASSERT_TRUE(state.ok());

  ASSERT_GE(sim.sets.size(), 2u);
  std::vector<storage::RegionTrainingSet> descending;
  descending.push_back(storage::RegionTrainingSet(sim.sets[1]));
  descending.push_back(storage::RegionTrainingSet(sim.sets[0]));
  const Status st = (*state)->ApplyDelta(std::move(descending));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*state)->num_regions(), 0);

  // An empty set contributes nothing — no slot, no dirty cells — so the
  // result matches a rebuild that never saw it.
  storage::RegionTrainingSet empty;
  empty.region = sim.sets[0].region;
  empty.num_features = sim.sets[0].num_features;
  ASSERT_TRUE((*state)->ApplyDelta({empty}).ok());
  EXPECT_EQ((*state)->num_regions(), 0);
  EXPECT_EQ((*state)->dirty_cells(), 0);
}

// ---- Search over the retained rows ----

TEST(StateDeltaTest, FinalizeSearchMatchesSequentialBasicSearch) {
  datagen::SimulationDataset sim = MakeSim(81);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  auto state = NewState(*subsets, MakeConfig());
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE((*state)->ApplyDelta(sim.sets).ok());

  BasicSearchOptions options;  // cross-validated: exercises the per-cell RNG
  storage::MemoryTrainingData source(sim.sets);
  auto want = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(want->found());

  auto got = (*state)->FinalizeSearch(options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->bellwether, want->bellwether);
  EXPECT_EQ(got->bellwether_index, want->bellwether_index);
  EXPECT_EQ(got->error.rmse, want->error.rmse);
  EXPECT_EQ(got->model.beta(), want->model.beta());
  ASSERT_EQ(got->scores.size(), want->scores.size());
  for (size_t i = 0; i < want->scores.size(); ++i) {
    EXPECT_EQ(got->scores[i].region, want->scores[i].region) << i;
    EXPECT_EQ(got->scores[i].source_index, want->scores[i].source_index);
    EXPECT_EQ(got->scores[i].usable, want->scores[i].usable) << i;
    if (want->scores[i].usable) {
      EXPECT_EQ(got->scores[i].error.rmse, want->scores[i].error.rmse) << i;
    }
  }
  EXPECT_EQ(got->telemetry.regions_enumerated,
            want->telemetry.regions_enumerated);
  EXPECT_EQ(got->telemetry.regions_scored, want->telemetry.regions_scored);
  EXPECT_EQ(got->telemetry.rows_scanned, want->telemetry.rows_scanned);
  EXPECT_EQ(got->report.LogicalJson(), want->report.LogicalJson());

  // Cached second run: identical result.
  auto cached = (*state)->FinalizeSearch(options);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached->bellwether, got->bellwether);
  EXPECT_EQ(cached->error.rmse, got->error.rmse);

  // Changing the scoring options invalidates the cache and matches a fresh
  // sequential search under the new options.
  BasicSearchOptions training;
  training.estimate = regression::ErrorEstimate::kTrainingSet;
  storage::MemoryTrainingData source2(sim.sets);
  auto want2 = RunBasicBellwetherSearch(&source2, training);
  ASSERT_TRUE(want2.ok());
  auto got2 = (*state)->FinalizeSearch(training);
  ASSERT_TRUE(got2.ok());
  EXPECT_EQ(got2->bellwether, want2->bellwether);
  EXPECT_EQ(got2->error.rmse, want2->error.rmse);
  EXPECT_EQ(got2->model.beta(), want2->model.beta());
}

// ---- StateDeltaSink ----

TEST(StateDeltaTest, StateDeltaSinkFoldsAStreamIntoTheState) {
  datagen::SimulationDataset sim = MakeSim(91);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  const CubeBuildConfig config = MakeConfig();

  storage::MemoryTrainingData source(sim.sets);
  auto scan_cube = BuildBellwetherCubeSingleScan(&source, *subsets, config);
  ASSERT_TRUE(scan_cube.ok());

  auto state = NewState(*subsets, config);
  ASSERT_TRUE(state.ok());
  StateDeltaSink sink(state->get(), /*sets_per_batch=*/3);
  for (const auto& set : sim.sets) {
    ASSERT_TRUE(sink.Append(storage::RegionTrainingSet(set)).ok());
  }
  EXPECT_EQ(sink.sets_appended(), static_cast<int64_t>(sim.sets.size()));
  auto empty_source = sink.Finish();
  ASSERT_TRUE(empty_source.ok());
  EXPECT_EQ((*empty_source)->num_region_sets(), 0u);

  auto cube = (*state)->Finalize();
  ASSERT_TRUE(cube.ok());
  ExpectCubesIdentical(*cube, *scan_cube);
}

}  // namespace
}  // namespace bellwether::core
