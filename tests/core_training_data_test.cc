#include <gtest/gtest.h>

#include <cmath>

#include "core/training_data_gen.h"
#include "olap/cost.h"
#include "olap/dimension.h"
#include "olap/region.h"
#include "table/table.h"

namespace bellwether::core {
namespace {

using olap::HierarchicalDimension;
using olap::IntervalDimension;
using olap::NodeId;
using table::AggFn;
using table::DataType;
using table::Schema;
using table::Table;
using table::Value;

// A tiny handcrafted star schema exercising all three feature-query forms.
struct TinyDb {
  Table fact{Schema({{"Time", DataType::kInt64},
                     {"Location", DataType::kInt64},
                     {"ItemID", DataType::kInt64},
                     {"AdNo", DataType::kInt64},
                     {"Profit", DataType::kDouble}})};
  Table items{Schema({{"ItemID", DataType::kInt64},
                      {"RDExpense", DataType::kDouble}})};
  Table ads{Schema(
      {{"AdNo", DataType::kInt64}, {"AdSize", DataType::kDouble}})};
  std::unique_ptr<olap::RegionSpace> space;
  std::unique_ptr<olap::CostModel> cost;
  NodeId wi = 0, md = 0;

  TinyDb() {
    HierarchicalDimension loc("Location", "All");
    const NodeId us = loc.AddNode("US", loc.root());
    wi = loc.AddNode("WI", us);
    md = loc.AddNode("MD", us);
    std::vector<olap::Dimension> dims;
    dims.emplace_back(IntervalDimension("Time", 2));
    dims.emplace_back(loc);
    space = std::make_unique<olap::RegionSpace>(std::move(dims));
    std::vector<double> cell_costs(space->NumFinestCells(), 1.0);
    cost = std::make_unique<olap::CostModel>(
        std::move(olap::CostModel::Create(space.get(), cell_costs)).value());

    items.AppendRow({Value(int64_t{1}), Value(10.0)});
    items.AppendRow({Value(int64_t{2}), Value(20.0)});
    items.AppendRow({Value(int64_t{3}), Value(30.0)});
    ads.AppendRow({Value(int64_t{100}), Value(1.0)});
    ads.AppendRow({Value(int64_t{101}), Value(4.0)});
    ads.AppendRow({Value(int64_t{102}), Value(9.0)});

    AddOrder(1, wi, 1, 100, 10.0);
    AddOrder(1, wi, 1, 101, 20.0);   // item 1, week 1, WI, two ads
    AddOrder(2, wi, 1, 100, 5.0);    // same ad again in week 2
    AddOrder(1, md, 1, 102, 40.0);
    AddOrder(1, md, 2, 100, 7.0);
    AddOrder(2, md, 2, 101, 9.0);
    AddOrder(2, wi, 3, 102, -2.0);   // item 3 only appears in week 2 WI
  }

  void AddOrder(int64_t t, NodeId loc, int64_t item, int64_t ad, double p) {
    fact.AppendRow({Value(t), Value(static_cast<int64_t>(loc)), Value(item),
                    Value(ad), Value(p)});
  }

  BellwetherSpec MakeSpec(double budget, double min_coverage) const {
    BellwetherSpec spec;
    spec.space = space.get();
    spec.fact = &fact;
    spec.item_id_column = "ItemID";
    spec.dimension_columns = {"Time", "Location"};
    spec.references["ads"] = ReferenceTable{&ads, "AdNo"};
    spec.item_table = &items;
    spec.item_table_id_column = "ItemID";
    spec.item_feature_columns = {"RDExpense"};
    spec.regional_features = {
        {FeatureQuery::Kind::kFactMeasure, AggFn::kSum, "RegionalProfit",
         "Profit", "", ""},
        {FeatureQuery::Kind::kReferenceMeasure, AggFn::kMax, "RegionalMaxAd",
         "AdSize", "ads", "AdNo"},
        {FeatureQuery::Kind::kFkDistinctMeasure, AggFn::kSum,
         "RegionalTotalAdSize", "AdSize", "ads", "AdNo"},
    };
    spec.target_fn = AggFn::kSum;
    spec.target_column = "Profit";
    spec.cost = cost.get();
    spec.budget = budget;
    spec.min_coverage = min_coverage;
    return spec;
  }
};

TEST(TrainingDataGenTest, TargetsAreWholeSpaceAggregates) {
  TinyDb db;
  auto data = GenerateTrainingDataInMemory(db.MakeSpec(100.0, 0.0));
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data->profile.targets.size(), 3u);
  EXPECT_NEAR(data->profile.targets[0], 10 + 20 + 5 + 40, 1e-9);  // item 1
  EXPECT_NEAR(data->profile.targets[1], 7 + 9, 1e-9);             // item 2
  EXPECT_NEAR(data->profile.targets[2], -2, 1e-9);                // item 3
}

TEST(TrainingDataGenTest, FeatureNamesLayout) {
  TinyDb db;
  const auto names = FeatureNames(db.MakeSpec(100.0, 0.0));
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "(intercept)");
  EXPECT_EQ(names[1], "RDExpense");
  EXPECT_EQ(names[2], "RegionalProfit");
  EXPECT_EQ(names[4], "RegionalTotalAdSize");
}

TEST(TrainingDataGenTest, RegionalFeatureValues) {
  TinyDb db;
  auto data = GenerateTrainingDataInMemory(db.MakeSpec(100.0, 0.0));
  ASSERT_TRUE(data.ok());
  // Region [1-2, WI]: item 1 has rows (10, ad100), (20, ad101), (5, ad100).
  const olap::RegionId r = *db.space->FindRegion({"1-2", "WI"});
  const int64_t idx = data->FindSet(r);
  ASSERT_GE(idx, 0);
  const auto& set = (*data->memory_sets())[idx];
  // Items present: 1 and 3.
  ASSERT_EQ(set.items.size(), 2u);
  EXPECT_EQ(set.items[0], 0);
  EXPECT_EQ(set.items[1], 2);
  const double* row = set.row(0);
  EXPECT_DOUBLE_EQ(row[0], 1.0);    // intercept
  EXPECT_DOUBLE_EQ(row[1], 10.0);   // RDExpense
  EXPECT_DOUBLE_EQ(row[2], 35.0);   // regional profit 10+20+5
  EXPECT_DOUBLE_EQ(row[3], 4.0);    // max ad size among {1, 4, 1}
  // Distinct ads {100, 101} -> sizes 1 + 4 (ad 100 counted once).
  EXPECT_DOUBLE_EQ(row[4], 5.0);
  EXPECT_DOUBLE_EQ(set.targets[0], 75.0);
}

TEST(TrainingDataGenTest, CoverageCountsItemsWithData) {
  TinyDb db;
  auto data = GenerateTrainingDataInMemory(db.MakeSpec(100.0, 0.0));
  ASSERT_TRUE(data.ok());
  // [1-1, WI]: only item 1 -> 1/3. [1-2, All]: all items -> 1.
  EXPECT_NEAR(
      data->profile.region_coverage[*db.space->FindRegion({"1-1", "WI"})],
      1.0 / 3.0, 1e-12);
  EXPECT_NEAR(
      data->profile.region_coverage[*db.space->FindRegion({"1-2", "All"})],
      1.0, 1e-12);
}

TEST(TrainingDataGenTest, BudgetAndCoveragePruneRegions) {
  TinyDb db;
  // Each finest cell costs 1; [1-2, All] costs 2*3=6.
  auto all = GenerateTrainingDataInMemory(db.MakeSpec(100.0, 0.0));
  ASSERT_TRUE(all.ok());
  auto tight = GenerateTrainingDataInMemory(db.MakeSpec(2.0, 0.0));
  ASSERT_TRUE(tight.ok());
  EXPECT_LT(tight->memory_sets()->size(), all->memory_sets()->size());
  for (const auto& set : *tight->memory_sets()) {
    EXPECT_LE(all->profile.region_costs[set.region], 2.0);
  }
  auto covered = GenerateTrainingDataInMemory(db.MakeSpec(100.0, 0.9));
  ASSERT_TRUE(covered.ok());
  for (const auto& set : *covered->memory_sets()) {
    EXPECT_GE(all->profile.region_coverage[set.region], 0.9);
  }
}

// The §4.2 rewrite equivalence: the single-pass CUBE path produces exactly
// the same training set as evaluating the original per-region queries with
// plain relational operators.
TEST(TrainingDataGenTest, CubePathMatchesNaiveQueriesEverywhere) {
  TinyDb db;
  const BellwetherSpec spec = db.MakeSpec(100.0, 0.0);
  auto data = GenerateTrainingDataInMemory(spec);
  ASSERT_TRUE(data.ok());
  ASSERT_GT(data->memory_sets()->size(), 0u);
  for (const auto& set : *data->memory_sets()) {
    auto naive = GenerateRegionTrainingSetNaive(spec, set.region);
    ASSERT_TRUE(naive.ok()) << naive.status().ToString();
    ASSERT_EQ(naive->items, set.items)
        << "region " << db.space->RegionLabel(set.region);
    ASSERT_EQ(naive->num_features, set.num_features);
    for (size_t i = 0; i < set.features.size(); ++i) {
      EXPECT_NEAR(naive->features[i], set.features[i], 1e-9)
          << "feature flat index " << i << " in region "
          << db.space->RegionLabel(set.region);
    }
    for (size_t i = 0; i < set.targets.size(); ++i) {
      EXPECT_NEAR(naive->targets[i], set.targets[i], 1e-9);
    }
  }
}

TEST(TrainingDataGenTest, CellSetTrainingSetMatchesRegionWhenEquivalent) {
  TinyDb db;
  const BellwetherSpec spec = db.MakeSpec(100.0, 0.0);
  // The cell set covering exactly [1-2, WI].
  const olap::RegionId r = *db.space->FindRegion({"1-2", "WI"});
  auto via_cells = GenerateCellSetTrainingSet(spec, db.space->FinestCellsIn(r));
  auto via_region = GenerateRegionTrainingSetNaive(spec, r);
  ASSERT_TRUE(via_cells.ok());
  ASSERT_TRUE(via_region.ok());
  EXPECT_EQ(via_cells->items, via_region->items);
  EXPECT_EQ(via_cells->features, via_region->features);
}

TEST(TrainingDataGenTest, ValidatesSpec) {
  TinyDb db;
  BellwetherSpec spec = db.MakeSpec(10.0, 0.0);
  spec.target_column = "Nope";
  EXPECT_FALSE(GenerateTrainingDataInMemory(spec).ok());
  spec = db.MakeSpec(10.0, 0.0);
  spec.dimension_columns = {"Time"};
  EXPECT_FALSE(GenerateTrainingDataInMemory(spec).ok());
  spec = db.MakeSpec(10.0, 0.0);
  spec.regional_features[1].reference = "unknown";
  EXPECT_FALSE(GenerateTrainingDataInMemory(spec).ok());
}

TEST(TrainingDataGenTest, MemorySourceRoundTrip) {
  TinyDb db;
  auto data = GenerateTrainingDataInMemory(db.MakeSpec(100.0, 0.0));
  ASSERT_TRUE(data.ok());
  ASSERT_NE(data->source, nullptr);
  ASSERT_NE(data->memory_sets(), nullptr);
  EXPECT_EQ(data->source->num_region_sets(), data->memory_sets()->size());
  EXPECT_EQ(data->source->num_region_sets(),
            data->profile.feasible.regions.size());
  auto ids = data->source->RegionIds();
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

// Generation streams into a caller-supplied sink; the sink observes every
// feasible region exactly once, in ascending RegionId order.
TEST(TrainingDataGenTest, SinkReceivesSetsInAscendingRegionOrder) {
  TinyDb db;
  storage::MemorySink sink;
  auto profile = GenerateTrainingData(db.MakeSpec(100.0, 0.0), &sink);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(sink.sets_appended(),
            static_cast<int64_t>(profile->feasible.regions.size()));
  auto source = sink.Finish();
  ASSERT_TRUE(source.ok());
  auto ids = (*source)->RegionIds();
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_EQ(ids, profile->feasible.regions);
}

TEST(TrainingDataGenTest, NullSinkIsRejected) {
  TinyDb db;
  EXPECT_FALSE(GenerateTrainingData(db.MakeSpec(100.0, 0.0), nullptr).ok());
}

// FindSet binary-searches the ascending feasible-region list.
TEST(TrainingDataGenTest, FindSetMatchesLinearScan) {
  TinyDb db;
  auto data = GenerateTrainingDataInMemory(db.MakeSpec(100.0, 0.0));
  ASSERT_TRUE(data.ok());
  const auto& regions = data->profile.feasible.regions;
  ASSERT_FALSE(regions.empty());
  for (olap::RegionId r = 0; r < db.space->NumRegions(); ++r) {
    int64_t expected = -1;
    for (size_t i = 0; i < regions.size(); ++i) {
      if (regions[i] == r) expected = static_cast<int64_t>(i);
    }
    EXPECT_EQ(data->FindSet(r), expected) << "region " << r;
  }
}

}  // namespace
}  // namespace bellwether::core
