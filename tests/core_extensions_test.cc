#include <gtest/gtest.h>

#include <cmath>

#include "core/basic_search.h"
#include "core/combinatorial.h"
#include "core/eval_util.h"
#include "core/training_data_gen.h"
#include "datagen/mail_order.h"
#include "storage/training_data.h"

namespace bellwether::core {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::MailOrderConfig config;
    config.num_items = 120;
    config.density = 1.0;
    config.seed = 77;
    dataset_ =
        new datagen::MailOrderDataset(datagen::GenerateMailOrder(config));
    spec_ = new BellwetherSpec(dataset_->MakeSpec(60.0, 0.5));
    auto data = GenerateTrainingDataInMemory(*spec_);
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    data_ = new GeneratedTrainingData(std::move(data).value());
  }
  static void TearDownTestSuite() {
    delete data_;
    delete spec_;
    delete dataset_;
  }
  static datagen::MailOrderDataset* dataset_;
  static BellwetherSpec* spec_;
  static GeneratedTrainingData* data_;
};

datagen::MailOrderDataset* ExtensionsTest::dataset_ = nullptr;
BellwetherSpec* ExtensionsTest::spec_ = nullptr;
GeneratedTrainingData* ExtensionsTest::data_ = nullptr;

// ---- Linear optimization criterion (§3.2) ----

TEST_F(ExtensionsTest, LinearCriterionWithZeroWeightsMatchesMinError) {
  storage::TrainingDataSource& source = *data_->source;
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kTrainingSet;
  auto full = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(full.ok());
  auto linear = SelectLinearCriterion(*full, &source, data_->profile.region_costs,
                                      data_->profile.region_coverage, 0.0, 0.0);
  ASSERT_TRUE(linear.ok());
  EXPECT_EQ(linear->bellwether, full->bellwether);
}

TEST_F(ExtensionsTest, CostWeightPushesTowardCheaperRegions) {
  storage::TrainingDataSource& source = *data_->source;
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kTrainingSet;
  auto full = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(full->found());
  // A huge cost weight turns the objective into cost minimization.
  auto frugal = SelectLinearCriterion(*full, &source, data_->profile.region_costs,
                                      data_->profile.region_coverage, 1e9, 0.0);
  ASSERT_TRUE(frugal.ok());
  ASSERT_TRUE(frugal->found());
  EXPECT_LE(data_->profile.region_costs[frugal->bellwether],
            data_->profile.region_costs[full->bellwether]);
  // And it is the globally cheapest usable region.
  for (const auto& s : full->scores) {
    if (!s.usable) continue;
    EXPECT_GE(data_->profile.region_costs[s.region],
              data_->profile.region_costs[frugal->bellwether] - 1e-12);
  }
}

TEST_F(ExtensionsTest, CoverageWeightPushesTowardBroaderRegions) {
  storage::TrainingDataSource& source = *data_->source;
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kTrainingSet;
  auto full = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(full.ok());
  auto broad = SelectLinearCriterion(*full, &source, data_->profile.region_costs,
                                     data_->profile.region_coverage, 0.0, 1e9);
  ASSERT_TRUE(broad.ok());
  ASSERT_TRUE(broad->found());
  for (const auto& s : full->scores) {
    if (!s.usable) continue;
    EXPECT_LE(data_->profile.region_coverage[s.region],
              data_->profile.region_coverage[broad->bellwether] + 1e-12);
  }
}

TEST_F(ExtensionsTest, LinearCriterionValidatesTables) {
  storage::TrainingDataSource& source = *data_->source;
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kTrainingSet;
  auto full = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(full.ok());
  std::vector<double> short_cov(3, 0.0);
  EXPECT_FALSE(SelectLinearCriterion(*full, &source, data_->profile.region_costs,
                                     short_cov, 1.0, 1.0)
                   .ok());
}

// ---- Combinatorial bellwether analysis (§3.4) ----

TEST_F(ExtensionsTest, CombinatorialSearchFindsAffordableCombination) {
  CombinatorialOptions options;
  options.budget = 30.0;
  options.max_regions = 2;
  options.cv_folds = 5;
  options.min_examples = 20;
  auto result = RunCombinatorialSearch(*spec_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->found());
  EXPECT_LE(result->cost, options.budget);
  EXPECT_LE(static_cast<int32_t>(result->regions.size()),
            options.max_regions);
  EXPECT_FALSE(result->cells.empty());
  // Cells are exactly the union of the chosen regions' finest cells.
  std::set<int64_t> expected;
  for (olap::RegionId r : result->regions) {
    for (int64_t c : spec_->space->FinestCellsIn(r)) expected.insert(c);
  }
  EXPECT_EQ(std::set<int64_t>(result->cells.begin(), result->cells.end()),
            expected);
}

TEST_F(ExtensionsTest, CombinatorialAtLeastMatchesSingleRegionGreedily) {
  // The greedy search's first step evaluates every affordable single
  // region, so its final error cannot exceed the best single affordable
  // region's error (same error measure, same folds).
  CombinatorialOptions options;
  options.budget = 25.0;
  options.max_regions = 3;
  options.cv_folds = 5;
  options.min_examples = 20;
  auto combo = RunCombinatorialSearch(*spec_, options);
  ASSERT_TRUE(combo.ok());
  // Best single affordable region, evaluated identically.
  double best_single = std::numeric_limits<double>::infinity();
  for (olap::RegionId r = 0; r < spec_->space->NumRegions(); ++r) {
    if (spec_->cost->RegionCost(r) > options.budget) continue;
    auto set = GenerateRegionTrainingSetNaive(*spec_, r);
    if (!set.ok()) continue;
    const regression::Dataset d = ToDataset(*set);
    if (d.num_examples() < 20) continue;
    Rng rng(options.seed);
    auto err = regression::CrossValidationError(d, options.cv_folds, &rng);
    if (err.ok()) best_single = std::min(best_single, err->rmse);
  }
  EXPECT_LE(combo->error.rmse, best_single + 1e-9);
}

TEST_F(ExtensionsTest, CombinatorialRejectsZeroBudget) {
  CombinatorialOptions options;
  options.budget = 0.0;
  EXPECT_FALSE(RunCombinatorialSearch(*spec_, options).ok());
}

// ---- Weighted least squares end-to-end (§6.4) ----

TEST_F(ExtensionsTest, WeightBySupportProducesWeightedSets) {
  BellwetherSpec wspec = *spec_;
  wspec.weight_by_support = true;
  auto wdata = GenerateTrainingDataInMemory(wspec);
  ASSERT_TRUE(wdata.ok());
  ASSERT_EQ(wdata->memory_sets()->size(), data_->memory_sets()->size());
  bool any_weighted = false;
  for (const auto& set : *wdata->memory_sets()) {
    ASSERT_EQ(set.weights.size(), set.items.size());
    for (double w : set.weights) EXPECT_GE(w, 1.0);
    any_weighted = true;
  }
  EXPECT_TRUE(any_weighted);
}

TEST_F(ExtensionsTest, WeightedNaivePathMatchesCubePath) {
  BellwetherSpec wspec = *spec_;
  wspec.weight_by_support = true;
  auto wdata = GenerateTrainingDataInMemory(wspec);
  ASSERT_TRUE(wdata.ok());
  // Compare the weights on a handful of regions against the naive path.
  int compared = 0;
  const auto& wsets = *wdata->memory_sets();
  for (size_t k = 0; k < wsets.size() && compared < 5; k += 37) {
    const auto& set = wsets[k];
    auto naive = GenerateRegionTrainingSetNaive(wspec, set.region);
    ASSERT_TRUE(naive.ok());
    ASSERT_EQ(naive->weights, set.weights);
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

TEST_F(ExtensionsTest, WeightedSearchRunsAndFindsPlantedState) {
  BellwetherSpec wspec = *spec_;
  wspec.weight_by_support = true;
  auto wdata = GenerateTrainingDataInMemory(wspec);
  ASSERT_TRUE(wdata.ok());
  storage::TrainingDataSource& source = *wdata->source;
  BasicSearchOptions options;
  options.estimate = regression::ErrorEstimate::kTrainingSet;
  options.min_examples = 30;
  auto result = RunBasicBellwetherSearch(&source, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found());
  EXPECT_EQ(spec_->space->Decode(result->bellwether)[1],
            dataset_->planted_state_node);
}

TEST(WeightedSpillTest, WeightsSurviveTheSpillFile) {
  storage::RegionTrainingSet set;
  set.region = 5;
  set.num_features = 2;
  set.items = {0, 1, 2};
  set.targets = {1.0, 2.0, 3.0};
  set.features = {1, 0.5, 1, 0.6, 1, 0.7};
  set.weights = {1.0, 4.0, 9.0};
  const std::string path = ::testing::TempDir() + "/weighted.spill";
  {
    auto writer = storage::SpillFileWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(set).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  auto src = storage::SpilledTrainingData::Open(path);
  ASSERT_TRUE(src.ok());
  auto back = (*src)->Read(0);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->weights, set.weights);
  EXPECT_TRUE(back->weighted());
  std::remove(path.c_str());
}

TEST(WeightedDatasetTest, ToDatasetCarriesWeights) {
  storage::RegionTrainingSet set;
  set.region = 0;
  set.num_features = 1;
  set.items = {0, 1};
  set.targets = {1.0, 2.0};
  set.features = {1.0, 1.0};
  set.weights = {2.0, 3.0};
  const regression::Dataset d = ToDataset(set);
  ASSERT_TRUE(d.weighted());
  EXPECT_DOUBLE_EQ(d.w(0), 2.0);
  EXPECT_DOUBLE_EQ(d.w(1), 3.0);
}

}  // namespace
}  // namespace bellwether::core
