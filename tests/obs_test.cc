#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/logger.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bellwether::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 10.0, 100.0});
  // v lands in the first bucket whose bound satisfies v <= bound.
  h.Observe(0.5);    // bucket 0 (le=1)
  h.Observe(1.0);    // bucket 0 (boundary is inclusive)
  h.Observe(1.0001); // bucket 1 (le=10)
  h.Observe(10.0);   // bucket 1
  h.Observe(100.0);  // bucket 2 (le=100)
  h.Observe(100.5);  // +Inf overflow
  h.Observe(1e9);    // +Inf overflow

  const std::vector<int64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // 3 finite bounds + implicit +Inf
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 2);
  EXPECT_EQ(h.TotalCount(), 7);
  EXPECT_NEAR(h.Sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 100.0 + 100.5 + 1e9,
              1e-6);
}

TEST(HistogramTest, ResetZeroesCountsKeepsBounds) {
  Histogram h({1.0, 2.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0);
  EXPECT_EQ(h.Sum(), 0.0);
  for (int64_t c : h.BucketCounts()) EXPECT_EQ(c, 0);
  EXPECT_EQ(h.bucket_bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(HistogramTest, LatencyBucketsAreStrictlyIncreasing) {
  const std::vector<double>& bounds = LatencyBucketsSeconds();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// ---------------------------------------------------------------------------
// Counter / Gauge under concurrency
// ---------------------------------------------------------------------------

TEST(CounterTest, ConcurrentIncrementsAreNotLost) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test_concurrent_total");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncrements; ++i) counter->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kIncrements);
}

TEST(HistogramTest, ConcurrentObservationsAreNotLost) {
  Histogram h({1.0, 2.0, 3.0});
  constexpr int kThreads = 4;
  constexpr int kObservations = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kObservations; ++i) h.Observe(1.5);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.TotalCount(), int64_t{kThreads} * kObservations);
  EXPECT_EQ(h.BucketCounts()[1], int64_t{kThreads} * kObservations);
}

TEST(GaugeTest, SetMaxTracksPeak) {
  Gauge g;
  g.SetMax(3.0);
  g.SetMax(1.0);
  EXPECT_EQ(g.Value(), 3.0);
  g.SetMax(7.5);
  EXPECT_EQ(g.Value(), 7.5);
  g.Add(-2.5);
  EXPECT_EQ(g.Value(), 5.0);
}

// ---------------------------------------------------------------------------
// Registry lookup & export
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, LookupReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x_total");
  Counter* b = registry.GetCounter("x_total");
  EXPECT_EQ(a, b);
  Histogram* h1 = registry.GetHistogram("h_seconds", {1.0, 2.0});
  // A second lookup with different bounds returns the existing histogram.
  Histogram* h2 = registry.GetHistogram("h_seconds", {99.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->bucket_bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistryTest, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total", "help text")->Increment(42);
  registry.GetGauge("peak_bytes")->Set(128.0);
  Histogram* h = registry.GetHistogram("latency_seconds", {0.5, 1.0});
  h->Observe(0.25);
  h->Observe(0.75);
  h->Observe(5.0);

  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("requests_total 42"), std::string::npos);
  EXPECT_NE(text.find("peak_bytes 128"), std::string::npos);
  // Histogram buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"0.5\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 3"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonExportRoundTripsThroughParser) {
  MetricsRegistry registry;
  registry.GetCounter("scans_total")->Increment(7);
  registry.GetGauge("peak")->Set(3.5);
  Histogram* h = registry.GetHistogram("fit_seconds", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(20.0);

  auto parsed = ParseJson(registry.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& root = *parsed;
  ASSERT_TRUE(root.is_object());

  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* scans = counters->Find("scans_total");
  ASSERT_NE(scans, nullptr);
  EXPECT_EQ(scans->number(), 7.0);

  const JsonValue* gauges = root.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("peak")->number(), 3.5);

  const JsonValue* hist = root.Find("histograms");
  ASSERT_NE(hist, nullptr);
  const JsonValue* fit = hist->Find("fit_seconds");
  ASSERT_NE(fit, nullptr);
  EXPECT_EQ(fit->Find("count")->number(), 2.0);
  const JsonValue* buckets = fit->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  ASSERT_EQ(buckets->array().size(), 3u);
  // Cumulative counts, le ascending, ending with the +Inf (null le) bucket.
  EXPECT_EQ(buckets->array()[0].Find("le")->number(), 1.0);
  EXPECT_EQ(buckets->array()[0].Find("count")->number(), 1.0);
  EXPECT_EQ(buckets->array()[1].Find("count")->number(), 1.0);
  EXPECT_TRUE(buckets->array()[2].Find("le")->is_null());
  EXPECT_EQ(buckets->array()[2].Find("count")->number(), 2.0);
}

TEST(MetricsRegistryTest, ExportsIterateInSortedNameOrder) {
  MetricsRegistry registry;
  // Registered deliberately out of order: every export must sort by name so
  // two runs' outputs diff cleanly.
  registry.GetCounter("zz_last")->Increment();
  registry.GetGauge("aa_first")->Set(1.0);
  registry.GetCounter("mm_middle")->Increment();

  const std::vector<std::string> names = registry.MetricNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));

  const std::string prom = registry.ToPrometheusText();
  EXPECT_LT(prom.find("aa_first"), prom.find("mm_middle"));
  EXPECT_LT(prom.find("mm_middle"), prom.find("zz_last"));

  const std::string json = registry.ToJson();
  EXPECT_LT(json.find("mm_middle"), json.find("zz_last"));

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.gauges.size(), 1u);
  EXPECT_TRUE(std::is_sorted(snap.counters.begin(), snap.counters.end(),
                             [](const auto& a, const auto& b) {
                               return a.first < b.first;
                             }));
}

TEST(MetricsRegistryTest, ResetAllKeepsRegistrations) {
  MetricsRegistry registry;
  registry.GetCounter("a_total")->Increment(5);
  registry.GetGauge("b")->Set(2.0);
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("a_total")->Value(), 0);
  EXPECT_EQ(registry.GetGauge("b")->Value(), 0.0);
  const std::vector<std::string> names = registry.MetricNames();
  EXPECT_EQ(names.size(), 2u);
}

TEST(MetricsRegistryTest, RegisterStandardMetricsCoversCanonicalNames) {
  MetricsRegistry registry;
  RegisterStandardMetrics(&registry);
  const std::vector<std::string> names = registry.MetricNames();
  auto has = [&names](std::string_view n) {
    for (const auto& name : names) {
      if (name == n) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(kMSearchRegionsEnumerated));
  EXPECT_TRUE(has(kMSearchRegionsPrunedCost));
  EXPECT_TRUE(has(kMSearchRegionsPrunedCoverage));
  EXPECT_TRUE(has(kMSearchRowsScanned));
  EXPECT_TRUE(has(kMSearchRegionFitSeconds));
  EXPECT_TRUE(has(kMTreeRfScans));
  EXPECT_TRUE(has(kMCubeSingleScanScans));
  EXPECT_TRUE(has(kMStorageScans));
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

TEST(TraceTest, NestedSpansRecordParentChildOrdering) {
  Trace trace;
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    TraceSpan outer("outer", "test", &trace);
    outer_id = outer.span_id();
    {
      TraceSpan inner("inner", "test", &trace);
      inner_id = inner.span_id();
    }
  }
  const std::vector<TraceEvent> events = trace.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans record on close, so the child precedes the parent in the buffer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].span_id, inner_id);
  EXPECT_EQ(events[0].parent_span_id, outer_id);
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].parent_span_id, 0u);
  EXPECT_EQ(events[1].depth, 0);
  // The child is contained in the parent's time range.
  EXPECT_GE(events[0].start_us, events[1].start_us);
  EXPECT_LE(events[0].start_us + events[0].duration_us,
            events[1].start_us + events[1].duration_us);
}

TEST(TraceTest, EndClosesEarlyAndDestructorBecomesNoOp) {
  Trace trace;
  {
    TraceSpan a("first", "test", &trace);
    a.End();
    a.End();  // second End is a no-op
    TraceSpan b("second", "test", &trace);
    // `a` already closed, so `b` has no parent.
    EXPECT_EQ(trace.Snapshot().size(), 1u);
  }
  const std::vector<TraceEvent> events = trace.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "first");
  EXPECT_EQ(events[1].name, "second");
  EXPECT_EQ(events[1].parent_span_id, 0u);
  EXPECT_EQ(events[1].depth, 0);
}

TEST(TraceTest, DisabledTraceRecordsNothing) {
  Trace trace;
  trace.set_enabled(false);
  { TraceSpan span("skipped", "test", &trace); }
  EXPECT_TRUE(trace.Snapshot().empty());
}

TEST(TraceTest, CapacityBoundDropsAndCounts) {
  Trace trace;
  trace.set_capacity(2);
  for (int i = 0; i < 5; ++i) {
    TraceSpan span("s", "test", &trace);
  }
  EXPECT_EQ(trace.Snapshot().size(), 2u);
  EXPECT_EQ(trace.dropped_events(), 3);
}

TEST(TraceTest, ChromeTraceJsonRoundTripsThroughParser) {
  Trace trace;
  {
    TraceSpan outer("outer \"quoted\"", "cat", &trace);
    TraceSpan inner("inner", "cat", &trace);
  }
  auto parsed = ParseJson(trace.ToChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* all = parsed->Find("traceEvents");
  ASSERT_NE(all, nullptr);
  ASSERT_TRUE(all->is_array());
  // Ignore "M" thread_name metadata (covered separately): only span events.
  std::vector<const JsonValue*> spans;
  for (const JsonValue& e : all->array()) {
    if (e.Find("ph")->str() == "X") spans.push_back(&e);
  }
  ASSERT_EQ(spans.size(), 2u);
  // Emitted sorted by start time: outer first despite closing last.
  const JsonValue& first = *spans[0];
  EXPECT_EQ(first.Find("name")->str(), "outer \"quoted\"");
  EXPECT_EQ(first.Find("ph")->str(), "X");
  EXPECT_TRUE(first.Find("ts")->is_number());
  EXPECT_TRUE(first.Find("dur")->is_number());
  const JsonValue& second = *spans[1];
  EXPECT_EQ(second.Find("name")->str(), "inner");
  const JsonValue* args = second.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->Find("parent_span_id")->number(),
            first.Find("args")->Find("span_id")->number());
  EXPECT_EQ(args->Find("depth")->number(), 1.0);
}

TEST(TraceTest, NamedThreadsEmitChromeMetadataEvents) {
  SetCurrentThreadName("obs-test-main");
  EXPECT_EQ(ThreadName(CurrentThreadId()), "obs-test-main");
  EXPECT_TRUE(ThreadName(0xfffffff0u).empty()) << "unnamed tids stay bare";

  Trace trace;
  { TraceSpan span("work", "cat", &trace); }
  auto parsed = ParseJson(trace.ToChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found = false;
  for (const JsonValue& e : events->array()) {
    if (e.Find("ph")->str() != "M") continue;
    EXPECT_EQ(e.Find("name")->str(), "thread_name");
    const JsonValue* args = e.Find("args");
    ASSERT_NE(args, nullptr);
    if (args->Find("name")->str() == "obs-test-main" &&
        e.Find("tid")->number() == static_cast<double>(CurrentThreadId())) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "metadata event for the named thread is missing";
}

// ---------------------------------------------------------------------------
// Logger
// ---------------------------------------------------------------------------

TEST(LoggerTest, ParseLogLevel) {
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("WARN"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("Info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("3"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("0"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("garbage"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel(""), LogLevel::kOff);
}

TEST(LoggerTest, OffByDefaultAndShouldLogRespectsLevel) {
  Logger& logger = Logger::Get();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kOff);
  EXPECT_FALSE(logger.ShouldLog(LogLevel::kError));
  logger.set_level(LogLevel::kWarn);
  EXPECT_TRUE(logger.ShouldLog(LogLevel::kError));
  EXPECT_TRUE(logger.ShouldLog(LogLevel::kWarn));
  EXPECT_FALSE(logger.ShouldLog(LogLevel::kInfo));
  // kOff as a message severity never logs, at any level.
  logger.set_level(LogLevel::kDebug);
  EXPECT_FALSE(logger.ShouldLog(LogLevel::kOff));
  logger.set_level(saved);
}

TEST(LoggerTest, StructuredLineContainsFields) {
  Logger& logger = Logger::Get();
  const LogLevel saved = logger.level();
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  logger.set_sink(tmp);
  logger.set_level(LogLevel::kInfo);
  BW_LOG(LogLevel::kInfo, "test.component").Field("k", 42) << "hello world";
  logger.set_level(saved);
  logger.set_sink(nullptr);

  std::fflush(tmp);
  std::rewind(tmp);
  char buf[512] = {0};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, tmp);
  std::fclose(tmp);
  const std::string line(buf, n);
  EXPECT_NE(line.find("level=info"), std::string::npos) << line;
  EXPECT_NE(line.find("component=test.component"), std::string::npos);
  EXPECT_NE(line.find("msg=\"hello world"), std::string::npos);
  EXPECT_NE(line.find("k=42"), std::string::npos);
  // Every line carries the monotonic timestamp and the small thread id that
  // correlates log lines with trace spans.
  EXPECT_EQ(line.rfind("ts=", 0), 0u) << line;
  EXPECT_NE(line.find(" tid="), std::string::npos) << line;
}

TEST(LoggerTest, ConcurrentWritesAreRaceFreeAndLineAtomic) {
  Logger& logger = Logger::Get();
  const LogLevel saved = logger.level();
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  logger.set_sink(tmp);
  logger.set_level(LogLevel::kInfo);
  constexpr int kThreads = 4;
  constexpr int kLines = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        BW_LOG(LogLevel::kInfo, "test.race").Field("t", t) << "line";
      }
    });
  }
  for (auto& th : threads) th.join();
  logger.set_level(saved);
  logger.set_sink(nullptr);

  std::fflush(tmp);
  std::rewind(tmp);
  std::string all;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), tmp)) > 0) all.append(buf, n);
  std::fclose(tmp);
  // fprintf is atomic per call (POSIX stdio locking), so every line must be
  // intact: starts with ts=, contains a tid=, one line per Write.
  int lines = 0;
  size_t pos = 0;
  while (pos < all.size()) {
    const size_t eol = all.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = all.substr(pos, eol - pos);
    EXPECT_EQ(line.rfind("ts=", 0), 0u) << line;
    EXPECT_NE(line.find(" tid="), std::string::npos) << line;
    ++lines;
    pos = eol + 1;
  }
  EXPECT_EQ(lines, kThreads * kLines);
}

// ---------------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------------

TEST(JsonTest, ParsesScalarsAndContainers) {
  auto v = ParseJson(R"({"a": [1, 2.5, -3e2], "b": "x\n\"y\"",
                         "c": true, "d": null, "e": {}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_EQ(a->array()[0].number(), 1.0);
  EXPECT_EQ(a->array()[1].number(), 2.5);
  EXPECT_EQ(a->array()[2].number(), -300.0);
  EXPECT_EQ(v->Find("b")->str(), "x\n\"y\"");
  EXPECT_TRUE(v->Find("c")->boolean());
  EXPECT_TRUE(v->Find("d")->is_null());
  EXPECT_TRUE(v->Find("e")->is_object());
  EXPECT_TRUE(v->Find("e")->object().empty());
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(ParseJson("'single'").ok());
  EXPECT_FALSE(ParseJson("{\"a\"}").ok());
}

TEST(JsonTest, WriteJsonRoundTrips) {
  const std::string text =
      R"({"arr":[1,2],"nested":{"s":"hi \"there\""},"n":null,"t":true})";
  auto v = ParseJson(text);
  ASSERT_TRUE(v.ok());
  auto again = ParseJson(WriteJson(*v));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(WriteJson(*v), WriteJson(*again));
  EXPECT_EQ(again->Find("nested")->Find("s")->str(), "hi \"there\"");
}

TEST(JsonTest, JsonNumberFormatsIntegralValuesCompactly) {
  EXPECT_EQ(JsonNumber(3.0), "3");
  EXPECT_EQ(JsonNumber(3.5), "3.5");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
}

}  // namespace
}  // namespace bellwether::obs
