#include <gtest/gtest.h>

#include <cmath>

#include "core/eval_util.h"
#include "regression/linear_model.h"

namespace bellwether::core {
namespace {

storage::RegionTrainingSet MakeSet(int64_t region) {
  storage::RegionTrainingSet set;
  set.region = region;
  set.num_features = 2;
  set.items = {1, 3, 7};
  set.targets = {10.0, 30.0, 70.0};
  set.features = {1.0, 1.1, 1.0, 3.1, 1.0, 7.1};
  return set;
}

TEST(EvalUtilTest, ToDatasetCopiesRows) {
  const auto set = MakeSet(0);
  const regression::Dataset d = ToDataset(set);
  ASSERT_EQ(d.num_examples(), 3u);
  EXPECT_DOUBLE_EQ(d.x(1)[1], 3.1);
  EXPECT_DOUBLE_EQ(d.y(2), 70.0);
}

TEST(EvalUtilTest, ToDatasetAppliesItemMask) {
  const auto set = MakeSet(0);
  std::vector<uint8_t> mask(8, 0);
  mask[3] = 1;
  mask[7] = 1;
  const regression::Dataset d = ToDataset(set, &mask);
  ASSERT_EQ(d.num_examples(), 2u);
  EXPECT_DOUBLE_EQ(d.y(0), 30.0);
  // Items beyond the mask size are treated as excluded.
  std::vector<uint8_t> short_mask(2, 1);
  EXPECT_EQ(ToDataset(set, &short_mask).num_examples(), 1u);  // only item 1
}

TEST(EvalUtilTest, FindItemRowBinarySearch) {
  const auto set = MakeSet(0);
  EXPECT_EQ(FindItemRow(set, 1), 0);
  EXPECT_EQ(FindItemRow(set, 3), 1);
  EXPECT_EQ(FindItemRow(set, 7), 2);
  EXPECT_EQ(FindItemRow(set, 2), -1);
  EXPECT_EQ(FindItemRow(set, 99), -1);
}

TEST(EvalUtilTest, RegionSeedIsDeterministicAndSpread) {
  EXPECT_EQ(RegionSeed(7, 3), RegionSeed(7, 3));
  EXPECT_NE(RegionSeed(7, 3), RegionSeed(7, 4));
  EXPECT_NE(RegionSeed(7, 3), RegionSeed(8, 3));
}

TEST(EvalUtilTest, RegionFeatureLookup) {
  std::vector<storage::RegionTrainingSet> sets{MakeSet(5), MakeSet(2)};
  sets[1].targets = {11.0, 31.0, 71.0};
  const RegionFeatureLookup lookup(&sets);
  const double* x = lookup.Find(5, 3);
  ASSERT_NE(x, nullptr);
  EXPECT_DOUBLE_EQ(x[1], 3.1);
  EXPECT_EQ(lookup.Find(5, 2), nullptr);   // item absent
  EXPECT_EQ(lookup.Find(9, 3), nullptr);   // region absent
  EXPECT_DOUBLE_EQ(lookup.TargetOf(2, 7), 71.0);
  EXPECT_TRUE(std::isnan(lookup.TargetOf(2, 4)));
  EXPECT_TRUE(std::isnan(lookup.TargetOf(8, 1)));
}

TEST(EvalUtilTest, TrainingErrorOfStatsThresholds) {
  regression::RegressionSuffStats stats(2);
  const std::vector<double> x{1.0, 2.0};
  stats.Add(x.data(), 5.0);
  // Below min_examples: infinite.
  EXPECT_TRUE(std::isinf(TrainingErrorOfStats(stats, 5)));
  for (int i = 0; i < 6; ++i) {
    const std::vector<double> xi{1.0, static_cast<double>(i)};
    stats.Add(xi.data(), 2.0 * i + 1.0);
  }
  const double err = TrainingErrorOfStats(stats, 5);
  EXPECT_TRUE(std::isfinite(err));
  EXPECT_GE(err, 0.0);
}

}  // namespace
}  // namespace bellwether::core
