#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <set>
#include <thread>

#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace bellwether {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arg");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arg");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNumericError), "NumericError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  BW_ASSIGN_OR_RETURN(int half, HalveEven(x));
  BW_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto err = QuarterEven(6);  // 6 -> 3, which is odd
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, BoundedUniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(10), 10u);
    const int64_t v = rng.NextInt64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble(2.0, 3.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(RngTest, BoundedUniformHitsAllValues) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.NextUint64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, GaussianMomentsAreSane) {
  Rng rng(11);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  auto reshuffled = v;
  std::sort(reshuffled.begin(), reshuffled.end());
  EXPECT_EQ(reshuffled, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(44);
  Rng forked = a.Fork();
  // The fork should not replay the parent's stream.
  EXPECT_NE(a.NextUint64(), forked.NextUint64());
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  const auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(JoinStrings(parts, ","), "x,y,z");
  EXPECT_EQ(SplitString(JoinStrings(parts, "|"), '|'), parts);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("bellwether", "bell"));
  EXPECT_FALSE(StartsWith("bell", "bellwether"));
}

TEST(StringUtilTest, FormatDoubleIsCompact) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(2.0), "2");
}

TEST(StopwatchTest, RunsOnConstructionAndAccumulates) {
  Stopwatch sw;
  EXPECT_TRUE(sw.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double t1 = sw.ElapsedSeconds();
  EXPECT_GT(t1, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(sw.ElapsedSeconds(), t1);  // still accumulating while running
}

TEST(StopwatchTest, PauseExcludesTimeUntilResume) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  sw.Pause();
  EXPECT_FALSE(sw.running());
  const double paused_at = sw.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Time does not advance while paused.
  EXPECT_DOUBLE_EQ(sw.ElapsedSeconds(), paused_at);
  sw.Resume();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // Time after the Resume is banked on top of the pre-Pause segment; the
  // 50ms spent paused is excluded.
  EXPECT_GT(sw.ElapsedSeconds(), paused_at);
  EXPECT_LT(sw.ElapsedSeconds(), paused_at + 0.045);
}

TEST(StopwatchTest, PauseAndResumeAreIdempotent) {
  Stopwatch sw;
  sw.Resume();  // no-op while running
  EXPECT_TRUE(sw.running());
  sw.Pause();
  const double t = sw.ElapsedSeconds();
  sw.Pause();  // no-op while paused
  EXPECT_FALSE(sw.running());
  EXPECT_DOUBLE_EQ(sw.ElapsedSeconds(), t);
}

TEST(StopwatchTest, RestartDiscardsAccumulatedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sw.Pause();
  sw.Restart();
  EXPECT_TRUE(sw.running());
  EXPECT_LT(sw.ElapsedSeconds(), 0.005);
  EXPECT_NEAR(sw.ElapsedMillis(), sw.ElapsedSeconds() * 1e3, 1.0);
}

}  // namespace
}  // namespace bellwether
