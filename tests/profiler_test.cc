// Sampling CPU profiler and heap tracker (src/obs/profiler.*,
// src/obs/heap_track.*): label interning and the per-thread label stack,
// Profile folding/merging and the collapsed-stack round trip, self-time
// attribution, live SIGPROF sampling with trace-span phase tags, heap
// allocation attribution, and the non-perturbation contract — builder
// outputs stay bit-identical across thread counts with both facilities
// armed.

#include <gtest/gtest.h>

#include <cstdint>
#include <ctime>
#include <string>
#include <vector>

#include "core/basic_search.h"
#include "core/bellwether_cube.h"
#include "core/bellwether_tree.h"
#include "datagen/simulation.h"
#include "obs/heap_track.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "storage/training_data.h"

namespace bellwether::obs {
namespace {

// ---------------------------------------------------------------------------
// Labels
// ---------------------------------------------------------------------------

TEST(ProfileLabelTest, InterningIsStableAndNeverZero) {
  const uint32_t a = InternProfileLabel("profiler-test-label-a");
  const uint32_t b = InternProfileLabel("profiler-test-label-b");
  EXPECT_NE(a, kNoProfileLabel);
  EXPECT_NE(b, kNoProfileLabel);
  EXPECT_NE(a, b);
  EXPECT_EQ(InternProfileLabel("profiler-test-label-a"), a);
  EXPECT_EQ(ProfileLabelName(a), "profiler-test-label-a");
  EXPECT_EQ(ProfileLabelName(kNoProfileLabel), "(no span)");
}

TEST(ProfileLabelTest, PushPopTracksInnermostLabel) {
  EXPECT_EQ(CurrentProfileLabel(), kNoProfileLabel);
  const uint32_t outer = InternProfileLabel("profiler-test-outer");
  const uint32_t inner = InternProfileLabel("profiler-test-inner");
  ASSERT_TRUE(PushProfileLabel(outer));
  EXPECT_EQ(CurrentProfileLabel(), outer);
  ASSERT_TRUE(PushProfileLabel(inner));
  EXPECT_EQ(CurrentProfileLabel(), inner);
  PopProfileLabel();
  EXPECT_EQ(CurrentProfileLabel(), outer);
  PopProfileLabel();
  EXPECT_EQ(CurrentProfileLabel(), kNoProfileLabel);
}

TEST(ProfileLabelTest, TraceSpansPushLabelsOnlyWhileCaptureIsArmed) {
  // Disarmed (the default): spans never touch the label stack.
  ASSERT_FALSE(ProfileLabelCaptureEnabled());
  {
    TraceSpan span("profiler-test-span-off");
    EXPECT_EQ(CurrentProfileLabel(), kNoProfileLabel);
  }

  internal::SetCaptureFlag(1, true);
  ASSERT_TRUE(ProfileLabelCaptureEnabled());
  {
    TraceSpan span("profiler-test-span-on");
    EXPECT_EQ(ProfileLabelName(CurrentProfileLabel()),
              "profiler-test-span-on");
  }
  EXPECT_EQ(CurrentProfileLabel(), kNoProfileLabel);
  internal::SetCaptureFlag(1, false);
  EXPECT_FALSE(ProfileLabelCaptureEnabled());
}

// ---------------------------------------------------------------------------
// Profile folding
// ---------------------------------------------------------------------------

TEST(ProfileTest, AddStackFoldsAndMergeSums) {
  Profile a;
  a.AddStack("p;f;g", 2);
  a.AddStack("p;f;g", 3);
  a.AddStack("p;f", 1);
  a.set_period_us(1000);
  EXPECT_EQ(a.total_samples(), 6);
  EXPECT_EQ(a.stacks().at("p;f;g"), 5);

  Profile b;
  b.AddStack("p;f;g", 1);
  b.AddStack("q;h", 4);
  b.add_dropped_samples(2);
  a.Merge(b);
  EXPECT_EQ(a.total_samples(), 11);
  EXPECT_EQ(a.stacks().at("p;f;g"), 6);
  EXPECT_EQ(a.stacks().at("q;h"), 4);
  EXPECT_EQ(a.dropped_samples(), 2);
  EXPECT_EQ(a.period_us(), 1000);
}

TEST(ProfileTest, CollapsedRoundTripIsLossless) {
  Profile p;
  p.AddStack("phase-a;func1;func2", 7);
  p.AddStack("phase-b;func3", 11);
  p.set_period_us(500);
  p.add_dropped_samples(3);

  const std::string text = p.ToCollapsed();
  auto parsed = Profile::FromCollapsed(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->stacks(), p.stacks());
  EXPECT_EQ(parsed->total_samples(), p.total_samples());
  EXPECT_EQ(parsed->period_us(), 500);
  EXPECT_EQ(parsed->dropped_samples(), 3);
  // Re-emitting the parse is byte-identical (stable sorted stacks).
  EXPECT_EQ(parsed->ToCollapsed(), text);
}

TEST(ProfileTest, FromCollapsedSkipsUnknownHeadersAndRejectsGarbage) {
  auto ok = Profile::FromCollapsed(
      "# period_us 250\n# future_key 9\n\nroot;leaf 4\n");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->period_us(), 250);
  EXPECT_EQ(ok->total_samples(), 4);

  EXPECT_FALSE(Profile::FromCollapsed("no-count-line\n").ok());
  EXPECT_FALSE(Profile::FromCollapsed("stack notanumber\n").ok());
}

TEST(ProfileTest, SelfTimeTableAttributesSelfAndTotal) {
  Profile p;
  p.AddStack("p;a;b", 3);
  p.AddStack("p;a", 2);
  p.AddStack("p;a;b;a", 1);  // recursion: 'a' counted once for total

  const auto table = p.SelfTimeTable();
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table[0].frame, "a");
  EXPECT_EQ(table[0].self, 3);
  EXPECT_EQ(table[0].total, 6);
  EXPECT_EQ(table[1].frame, "b");
  EXPECT_EQ(table[1].self, 3);
  EXPECT_EQ(table[1].total, 4);
  EXPECT_EQ(table[2].frame, "p");
  EXPECT_EQ(table[2].self, 0);
  EXPECT_EQ(table[2].total, 6);

  // Restricting to a root frame strips it and drops other roots.
  p.AddStack("q;z", 10);
  const auto scoped = p.SelfTimeTable("p");
  ASSERT_EQ(scoped.size(), 2u);
  EXPECT_EQ(scoped[0].frame, "a");
  EXPECT_EQ(scoped[0].self, 3);
  EXPECT_EQ(scoped[1].frame, "b");
}

TEST(ProfileTest, SamplesByRootFrameSlicesPerPhase) {
  Profile p;
  p.AddStack("phase-a;f", 3);
  p.AddStack("phase-a;g;h", 4);
  p.AddStack("phase-b;f", 5);
  const auto by_root = p.SamplesByRootFrame();
  ASSERT_EQ(by_root.size(), 2u);
  EXPECT_EQ(by_root.at("phase-a"), 7);
  EXPECT_EQ(by_root.at("phase-b"), 5);
}

// ---------------------------------------------------------------------------
// Live sampling
// ---------------------------------------------------------------------------

// Burns roughly `seconds` of CPU time so ITIMER_PROF is guaranteed to
// expire; returns a value the optimizer cannot discard.
double SpinCpu(double seconds) {
  const std::clock_t start = std::clock();
  const auto budget =
      static_cast<std::clock_t>(seconds * CLOCKS_PER_SEC);
  volatile double sink = 1.0;
  while (std::clock() - start < budget) {
    for (int i = 1; i < 1000; ++i) sink = sink + 1.0 / i;
  }
  return sink;
}

TEST(ProfilerTest, StartStopLifecycleAndErrors) {
  Profiler& profiler = Profiler::Default();
  EXPECT_FALSE(profiler.running());
  EXPECT_FALSE(profiler.Stop().ok()) << "Stop while idle must fail";

  ProfilerOptions bad;
  bad.period_us = 0;
  EXPECT_FALSE(profiler.Start(bad).ok());

  ASSERT_TRUE(profiler.Start().ok());
  EXPECT_TRUE(profiler.running());
  EXPECT_FALSE(profiler.Start().ok()) << "double Start must fail";
  auto profile = profiler.Stop();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_FALSE(profiler.running());
}

// ThreadSanitizer queues asynchronous signals and only delivers them at
// runtime interception points, which a pure arithmetic spin loop never
// reaches — sampling there is legal but yields ~0 samples.
bool TsanDefersAsyncSignals() {
#if defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

TEST(ProfilerTest, CapturesSamplesTaggedWithTheEnclosingSpan) {
  if (TsanDefersAsyncSignals()) {
    GTEST_SKIP() << "tsan defers SIGPROF past the spin loop";
  }
  Profiler& profiler = Profiler::Default();
  Profiler::RegisterCurrentThread();
  ProfilerOptions options;
  options.period_us = 1000;
  ASSERT_TRUE(profiler.Start(options).ok());
  {
    TraceSpan span("profiler-test-burn");
    SpinCpu(0.3);
  }
  auto profile = profiler.Stop();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile->period_us(), 1000);
  // 0.3s of CPU at a 1ms period: well over a hundred expirations; require
  // just a handful to stay robust on slow CI machines.
  EXPECT_GE(profile->total_samples(), 5);
  const auto by_root = profile->SamplesByRootFrame();
  auto it = by_root.find("profiler-test-burn");
  ASSERT_NE(it, by_root.end())
      << "samples taken inside the span must carry its label";
  EXPECT_GE(it->second, 1);
  EXPECT_FALSE(profile->ToCollapsed().empty());
}

// ---------------------------------------------------------------------------
// Heap tracker
// ---------------------------------------------------------------------------

TEST(HeapTrackerTest, AttributesAllocationsToTheEnclosingSpan) {
  if (!HeapTracker::interposed()) {
    GTEST_SKIP() << "sanitizer build: allocator interposition compiled out";
  }
  HeapTracker::Enable();
  ASSERT_TRUE(HeapTracker::enabled());
  {
    TraceSpan span("heap-test-span");
    std::vector<char> block(1 << 20, 'x');
    ASSERT_EQ(block[123], 'x');
  }
  const auto snapshot = HeapTracker::Snapshot();
  HeapTracker::Disable();
  EXPECT_FALSE(HeapTracker::enabled());

  auto it = snapshot.find("heap-test-span");
  ASSERT_NE(it, snapshot.end());
  EXPECT_GE(it->second.alloc_calls, 1);
  EXPECT_GE(it->second.alloc_bytes, 1 << 20);
  EXPECT_GE(it->second.free_calls, 1);
}

TEST(HeapTrackerTest, DisabledTrackerCountsNothing) {
  ASSERT_FALSE(HeapTracker::enabled());
  HeapTracker::Enable();
  HeapTracker::Disable();
  {
    TraceSpan span("heap-test-disabled");
    std::vector<char> block(1 << 16, 'y');
    ASSERT_EQ(block[7], 'y');
  }
  EXPECT_EQ(HeapTracker::Snapshot().count("heap-test-disabled"), 0u);
}

// ---------------------------------------------------------------------------
// Non-perturbation: builders produce bit-identical logical output across
// thread counts with the sampler and heap tracker armed.
// ---------------------------------------------------------------------------

datagen::SimulationDataset MakeSim(uint64_t seed) {
  datagen::SimulationConfig config;
  config.num_items = 150;
  config.generator_tree_nodes = 7;
  config.noise = 0.2;
  config.num_windows = 3;
  config.location_fanouts = {2, 2};
  config.seed = seed;
  return datagen::GenerateSimulation(config);
}

TEST(ProfilerDeterminismTest, BuildersBitIdenticalAcrossThreadsWhileArmed) {
  Profiler& profiler = Profiler::Default();
  ProfilerOptions options;
  options.period_us = 500;  // oversample to stress the handler
  ASSERT_TRUE(profiler.Start(options).ok());
  HeapTracker::Enable();

  datagen::SimulationDataset sim = MakeSim(67);
  auto subsets =
      core::ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());

  std::string serial_search, serial_tree, serial_cube;
  std::string serial_search_fp, serial_tree_fp, serial_cube_fp;
  for (int32_t threads : {1, 4}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));

    core::BasicSearchOptions search_opts;
    search_opts.exec.num_threads = threads;
    storage::MemoryTrainingData search_src(sim.sets);
    auto search = core::RunBasicBellwetherSearch(&search_src, search_opts);
    ASSERT_TRUE(search.ok()) << search.status().ToString();

    core::TreeBuildConfig tree_cfg;
    tree_cfg.split_columns = sim.feature_columns;
    tree_cfg.min_items = 25;
    tree_cfg.max_depth = 3;
    tree_cfg.min_examples_per_model = 8;
    tree_cfg.exec.num_threads = threads;
    storage::MemoryTrainingData tree_src(sim.sets);
    auto tree =
        core::BuildBellwetherTreeRainForest(&tree_src, sim.items, tree_cfg);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();

    core::CubeBuildConfig cube_cfg;
    cube_cfg.min_subset_size = 20;
    cube_cfg.min_examples_per_model = 8;
    cube_cfg.exec.num_threads = threads;
    storage::MemoryTrainingData cube_src(sim.sets);
    auto cube =
        core::BuildBellwetherCubeSingleScan(&cube_src, *subsets, cube_cfg);
    ASSERT_TRUE(cube.ok()) << cube.status().ToString();

    if (threads == 1) {
      serial_search = search->report.LogicalJson();
      serial_tree = tree->build_report().LogicalJson();
      serial_cube = cube->build_report().LogicalJson();
      serial_search_fp = search->report.ConfigFingerprint();
      serial_tree_fp = tree->build_report().ConfigFingerprint();
      serial_cube_fp = cube->build_report().ConfigFingerprint();
      EXPECT_FALSE(serial_search.empty());
    } else {
      EXPECT_EQ(search->report.LogicalJson(), serial_search);
      EXPECT_EQ(tree->build_report().LogicalJson(), serial_tree);
      EXPECT_EQ(cube->build_report().LogicalJson(), serial_cube);
      EXPECT_EQ(search->report.ConfigFingerprint(), serial_search_fp);
      EXPECT_EQ(tree->build_report().ConfigFingerprint(), serial_tree_fp);
      EXPECT_EQ(cube->build_report().ConfigFingerprint(), serial_cube_fp);
    }
  }

  HeapTracker::Disable();
  auto profile = profiler.Stop();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  if (!TsanDefersAsyncSignals()) {
    EXPECT_GE(profile->total_samples(), 1)
        << "the armed sampler should have observed the builds";
  }
}

}  // namespace
}  // namespace bellwether::obs
