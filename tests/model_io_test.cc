#include <gtest/gtest.h>

#include <cstdio>

#include "core/bellwether_cube.h"
#include "core/bellwether_tree.h"
#include "core/eval_util.h"
#include "core/model_io.h"
#include "datagen/simulation.h"
#include "storage/training_data.h"

namespace bellwether::core {
namespace {

datagen::SimulationDataset MakeSim(uint64_t seed) {
  datagen::SimulationConfig config;
  config.num_items = 200;
  config.generator_tree_nodes = 7;
  config.noise = 0.2;
  config.num_windows = 3;
  config.location_fanouts = {2, 2};
  config.seed = seed;
  return datagen::GenerateSimulation(config);
}

TEST(ModelIoTest, LinearModelRoundTrip) {
  const std::string path = ::testing::TempDir() + "/model.bwl";
  regression::LinearModel model({1.5, -2.25, 1e-17, 3.0});
  ASSERT_TRUE(SaveLinearModel(model, 42, path).ok());
  auto back = LoadLinearModel(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->region, 42);
  ASSERT_EQ(back->model.beta().size(), 4u);
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(back->model.beta()[j], model.beta()[j]);
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, LinearModelRejectsWrongMagic) {
  const std::string path = ::testing::TempDir() + "/bad.bwl";
  FILE* f = fopen(path.c_str(), "w");
  fputs("something else\n", f);
  fclose(f);
  EXPECT_FALSE(LoadLinearModel(path).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, TreeRoundTripPreservesPredictions) {
  datagen::SimulationDataset sim = MakeSim(71);
  storage::MemoryTrainingData source(sim.sets);
  TreeBuildConfig config;
  config.split_columns = sim.feature_columns;
  config.min_items = 40;
  config.max_depth = 3;
  config.min_examples_per_model = 10;
  auto tree = BuildBellwetherTreeRainForest(&source, sim.items, config);
  ASSERT_TRUE(tree.ok());
  const std::string path = ::testing::TempDir() + "/tree.bwt";
  ASSERT_TRUE(SaveBellwetherTree(*tree, path).ok());
  auto back = LoadBellwetherTree(path, sim.items);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->nodes().size(), tree->nodes().size());
  const RegionFeatureLookup lookup(&sim.sets);
  for (int32_t i = 0; i < 60; ++i) {
    EXPECT_EQ(back->RouteItem(i), tree->RouteItem(i)) << "item " << i;
    auto a = tree->PredictItem(i, lookup);
    auto b = back->PredictItem(i, lookup);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_DOUBLE_EQ(*a, *b);
    }
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, TreeLoadValidatesChildren) {
  const std::string path = ::testing::TempDir() + "/tree_bad.bwt";
  FILE* f = fopen(path.c_str(), "w");
  fputs("bellwether-tree-v2\n0\n1\n0 5 1 3 0 1.0 0.0\n1 1\n-1 0 0 2\n1 99\n",
        f);
  fclose(f);
  EXPECT_FALSE(LoadBellwetherTree(path, table::Table()).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, CubeRoundTripPreservesPredictions) {
  datagen::SimulationDataset sim = MakeSim(73);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  storage::MemoryTrainingData source(sim.sets);
  CubeBuildConfig config;
  config.min_subset_size = 20;
  config.min_examples_per_model = 10;
  config.compute_cv_stats = true;
  auto cube = BuildBellwetherCubeOptimized(&source, *subsets, config);
  ASSERT_TRUE(cube.ok());
  const std::string path = ::testing::TempDir() + "/cube.bwc";
  ASSERT_TRUE(SaveBellwetherCube(*cube, path).ok());
  auto back = LoadBellwetherCube(path, *subsets);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->cells().size(), cube->cells().size());
  for (size_t i = 0; i < cube->cells().size(); ++i) {
    EXPECT_EQ(back->cells()[i].subset, cube->cells()[i].subset);
    EXPECT_EQ(back->cells()[i].region, cube->cells()[i].region);
    EXPECT_EQ(back->cells()[i].has_cv, cube->cells()[i].has_cv);
  }
  const RegionFeatureLookup lookup(&sim.sets);
  for (int32_t i = 0; i < 40; ++i) {
    auto a = cube->PredictItem(i, lookup);
    auto b = back->PredictItem(i, lookup);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_DOUBLE_EQ(a->value, b->value);
      EXPECT_EQ(a->subset, b->subset);
    }
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, CubeLoadRejectsMismatchedSubsetSpace) {
  datagen::SimulationDataset sim = MakeSim(75);
  auto subsets = ItemSubsetSpace::Create(sim.items, sim.item_hierarchies);
  ASSERT_TRUE(subsets.ok());
  storage::MemoryTrainingData source(sim.sets);
  CubeBuildConfig config;
  config.min_subset_size = 20;
  config.compute_cv_stats = false;
  auto cube = BuildBellwetherCubeOptimized(&source, *subsets, config);
  ASSERT_TRUE(cube.ok());
  const std::string path = ::testing::TempDir() + "/cube_mismatch.bwc";
  ASSERT_TRUE(SaveBellwetherCube(*cube, path).ok());
  // A smaller subset space (only one hierarchy) must be rejected.
  auto other = ItemSubsetSpace::Create(
      sim.items, {sim.item_hierarchies[0]});
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(LoadBellwetherCube(path, *other).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bellwether::core
